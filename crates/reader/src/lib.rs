//! The reader: source text → syntax objects.
//!
//! Like the Chez Scheme and Racket readers (§4.1–4.2 of the paper), this
//! reader attaches a [`pgmp_syntax::SourceObject`] to **every** syntax
//! object it produces, which is what lets the profiler attribute counts to
//! source expressions and lets meta-programs query them.
//!
//! Supported lexical syntax: proper/improper lists, vectors `#(…)`,
//! booleans `#t`/`#f`, characters `#\a` (plus named characters), strings
//! with escapes, exact integers, inexact reals, symbols, line comments `;`,
//! block comments `#| … |#`, datum comments `#;`, and the quotation forms
//! `'`, `` ` ``, `,`, `,@` as well as their syntax-object analogues `#'`,
//! `` #` ``, `#,`, `#,@` used by meta-programs.
//!
//! # Example
//!
//! ```
//! use pgmp_reader::read_str;
//! let forms = read_str("(+ 1 2) 'x", "example.scm")?;
//! assert_eq!(forms.len(), 2);
//! assert_eq!(forms[0].to_datum().to_string(), "(+ 1 2)");
//! assert_eq!(forms[1].to_datum().to_string(), "(quote x)");
//! # Ok::<(), pgmp_reader::ReadError>(())
//! ```

mod lexer;
mod reader;

pub use lexer::{LexError, Lexer, Token, TokenKind};
pub use reader::{read_datums, read_str, ReadError, Reader};
