//! Tokenizer for the object language.

use pgmp_syntax::Datum;
use std::fmt;

/// Kinds of lexical tokens.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// `(` or `[`.
    LParen,
    /// `)` or `]` — must match the opener's shape.
    RParen(char),
    /// `#(` — vector opener.
    VecOpen,
    /// `'`.
    Quote,
    /// `` ` ``.
    Quasiquote,
    /// `,`.
    Unquote,
    /// `,@`.
    UnquoteSplicing,
    /// `#'` — `syntax`.
    SyntaxQuote,
    /// `` #` `` — `quasisyntax`.
    Quasisyntax,
    /// `#,` — `unsyntax`.
    Unsyntax,
    /// `#,@` — `unsyntax-splicing`.
    UnsyntaxSplicing,
    /// `.` in a dotted pair position.
    Dot,
    /// `#;` — comments out the following datum.
    DatumComment,
    /// A self-evaluating or symbol atom.
    Atom(Datum),
}

/// A token with its byte span in the input.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Start byte offset.
    pub start: u32,
    /// End byte offset (exclusive).
    pub end: u32,
}

/// Lexical error with position information.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the problem was noticed.
    pub at: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for LexError {}

/// A streaming tokenizer over source text.
///
/// # Example
///
/// ```
/// use pgmp_reader::{Lexer, TokenKind};
/// let mut lx = Lexer::new("(a)");
/// assert_eq!(lx.next_token().unwrap().unwrap().kind, TokenKind::LParen);
/// ```
#[derive(Debug)]
pub struct Lexer<'src> {
    src: &'src str,
    bytes: &'src [u8],
    pos: usize,
}

fn is_delimiter(b: u8) -> bool {
    matches!(b, b'(' | b')' | b'[' | b']' | b'"' | b';') || b.is_ascii_whitespace()
}

fn is_symbol_char(b: u8) -> bool {
    !is_delimiter(b) && b != b'\'' && b != b'`' && b != b','
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'src str) -> Lexer<'src> {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_atmosphere(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b';') => {
                    while let Some(b) = self.peek() {
                        self.pos += 1;
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'#') if self.peek2() == Some(b'|') => {
                    let start = self.pos as u32;
                    self.pos += 2;
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(), self.peek2()) {
                            (Some(b'|'), Some(b'#')) => {
                                depth -= 1;
                                self.pos += 2;
                            }
                            (Some(b'#'), Some(b'|')) => {
                                depth += 1;
                                self.pos += 2;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(LexError {
                                    message: "unterminated block comment".into(),
                                    at: start,
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_string(&mut self, start: usize) -> Result<Token, LexError> {
        // Opening quote already consumed.
        let mut out = String::new();
        loop {
            match self.bump() {
                None => {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        at: start as u32,
                    })
                }
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'0') => out.push('\0'),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(other) => {
                        return Err(LexError {
                            message: format!("unknown string escape \\{}", other as char),
                            at: (self.pos - 1) as u32,
                        })
                    }
                    None => {
                        return Err(LexError {
                            message: "unterminated string escape".into(),
                            at: self.pos as u32,
                        })
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Re-decode the UTF-8 character starting one byte back.
                    let s = &self.src[self.pos - 1..];
                    let c = s.chars().next().expect("valid utf8");
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
        Ok(Token {
            kind: TokenKind::Atom(Datum::string(&out)),
            start: start as u32,
            end: self.pos as u32,
        })
    }

    fn lex_char(&mut self, start: usize) -> Result<Token, LexError> {
        // `#\` already consumed. A character literal is either a single char
        // or a name made of symbol characters.
        let rest = &self.src[self.pos..];
        let first = rest.chars().next().ok_or(LexError {
            message: "unterminated character literal".into(),
            at: start as u32,
        })?;
        self.pos += first.len_utf8();
        // Collect any following symbol characters to support names.
        let name_start = self.pos;
        if first.is_ascii_alphabetic() {
            while let Some(b) = self.peek() {
                if is_symbol_char(b) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let c = if self.pos > name_start {
            let name: String =
                std::iter::once(first).chain(self.src[name_start..self.pos].chars()).collect();
            match name.as_str() {
                "space" => ' ',
                "newline" | "linefeed" => '\n',
                "tab" => '\t',
                "return" => '\r',
                "nul" | "null" => '\0',
                other => {
                    return Err(LexError {
                        message: format!("unknown character name #\\{other}"),
                        at: start as u32,
                    })
                }
            }
        } else {
            first
        };
        Ok(Token {
            kind: TokenKind::Atom(Datum::Char(c)),
            start: start as u32,
            end: self.pos as u32,
        })
    }

    fn lex_symbol_or_number(&mut self, start: usize) -> Token {
        while let Some(b) = self.peek() {
            if is_symbol_char(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        let kind = parse_atom(text);
        Token {
            kind,
            start: start as u32,
            end: self.pos as u32,
        }
    }

    /// Lexes the next token, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns a [`LexError`] for unterminated strings/comments, bad escapes,
    /// and unknown `#` syntax.
    pub fn next_token(&mut self) -> Result<Option<Token>, LexError> {
        self.skip_atmosphere()?;
        let start = self.pos;
        let Some(b) = self.peek() else {
            return Ok(None);
        };
        let tok = |kind: TokenKind, end: usize| Token {
            kind,
            start: start as u32,
            end: end as u32,
        };
        match b {
            b'(' | b'[' => {
                self.pos += 1;
                Ok(Some(tok(TokenKind::LParen, self.pos)))
            }
            b')' => {
                self.pos += 1;
                Ok(Some(tok(TokenKind::RParen(')'), self.pos)))
            }
            b']' => {
                self.pos += 1;
                Ok(Some(tok(TokenKind::RParen(']'), self.pos)))
            }
            b'\'' => {
                self.pos += 1;
                Ok(Some(tok(TokenKind::Quote, self.pos)))
            }
            b'`' => {
                self.pos += 1;
                Ok(Some(tok(TokenKind::Quasiquote, self.pos)))
            }
            b',' => {
                self.pos += 1;
                if self.peek() == Some(b'@') {
                    self.pos += 1;
                    Ok(Some(tok(TokenKind::UnquoteSplicing, self.pos)))
                } else {
                    Ok(Some(tok(TokenKind::Unquote, self.pos)))
                }
            }
            b'"' => {
                self.pos += 1;
                self.lex_string(start).map(Some)
            }
            b'#' => {
                match self.peek2() {
                    Some(b'(') => {
                        self.pos += 2;
                        Ok(Some(tok(TokenKind::VecOpen, self.pos)))
                    }
                    Some(b'\'') => {
                        self.pos += 2;
                        Ok(Some(tok(TokenKind::SyntaxQuote, self.pos)))
                    }
                    Some(b'`') => {
                        self.pos += 2;
                        Ok(Some(tok(TokenKind::Quasisyntax, self.pos)))
                    }
                    Some(b',') => {
                        self.pos += 2;
                        if self.peek() == Some(b'@') {
                            self.pos += 1;
                            Ok(Some(tok(TokenKind::UnsyntaxSplicing, self.pos)))
                        } else {
                            Ok(Some(tok(TokenKind::Unsyntax, self.pos)))
                        }
                    }
                    Some(b';') => {
                        self.pos += 2;
                        Ok(Some(tok(TokenKind::DatumComment, self.pos)))
                    }
                    Some(b'\\') => {
                        self.pos += 2;
                        self.lex_char(start).map(Some)
                    }
                    Some(b't') => {
                        self.pos += 2;
                        Ok(Some(tok(TokenKind::Atom(Datum::Bool(true)), self.pos)))
                    }
                    Some(b'f') => {
                        self.pos += 2;
                        Ok(Some(tok(TokenKind::Atom(Datum::Bool(false)), self.pos)))
                    }
                    other => Err(LexError {
                        message: format!(
                            "unknown # syntax: #{}",
                            other.map(|c| c as char).unwrap_or(' ')
                        ),
                        at: start as u32,
                    }),
                }
            }
            _ => Ok(Some(self.lex_symbol_or_number(start))),
        }
    }

    /// Lexes the whole input to a vector of tokens.
    ///
    /// # Errors
    ///
    /// Propagates the first [`LexError`] encountered.
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        while let Some(t) = self.next_token()? {
            out.push(t);
        }
        Ok(out)
    }
}

/// Classifies bare atom text as a number, `.`, or symbol.
fn parse_atom(text: &str) -> TokenKind {
    if text == "." {
        return TokenKind::Dot;
    }
    if let Ok(n) = text.parse::<i64>() {
        return TokenKind::Atom(Datum::Int(n));
    }
    match text {
        "+inf.0" => return TokenKind::Atom(Datum::Float(f64::INFINITY)),
        "-inf.0" => return TokenKind::Atom(Datum::Float(f64::NEG_INFINITY)),
        "+nan.0" => return TokenKind::Atom(Datum::Float(f64::NAN)),
        _ => {}
    }
    // Only treat as a float when it looks like a number, so symbols like
    // `1+` or `...` stay symbols.
    let looks_numeric = text
        .strip_prefix(['+', '-'])
        .unwrap_or(text)
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '.');
    if looks_numeric {
        if let Ok(x) = text.parse::<f64>() {
            return TokenKind::Atom(Datum::Float(x));
        }
    }
    TokenKind::Atom(Datum::sym(text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_parens_and_atoms() {
        assert_eq!(
            kinds("(+ 1 2)"),
            vec![
                TokenKind::LParen,
                TokenKind::Atom(Datum::sym("+")),
                TokenKind::Atom(Datum::Int(1)),
                TokenKind::Atom(Datum::Int(2)),
                TokenKind::RParen(')'),
            ]
        );
    }

    #[test]
    fn lexes_brackets() {
        assert_eq!(
            kinds("[x]"),
            vec![
                TokenKind::LParen,
                TokenKind::Atom(Datum::sym("x")),
                TokenKind::RParen(']'),
            ]
        );
    }

    #[test]
    fn lexes_quotes() {
        assert_eq!(
            kinds("'a `b ,c ,@d"),
            vec![
                TokenKind::Quote,
                TokenKind::Atom(Datum::sym("a")),
                TokenKind::Quasiquote,
                TokenKind::Atom(Datum::sym("b")),
                TokenKind::Unquote,
                TokenKind::Atom(Datum::sym("c")),
                TokenKind::UnquoteSplicing,
                TokenKind::Atom(Datum::sym("d")),
            ]
        );
    }

    #[test]
    fn lexes_syntax_quotes() {
        assert_eq!(
            kinds("#'a #`b #,c #,@d"),
            vec![
                TokenKind::SyntaxQuote,
                TokenKind::Atom(Datum::sym("a")),
                TokenKind::Quasisyntax,
                TokenKind::Atom(Datum::sym("b")),
                TokenKind::Unsyntax,
                TokenKind::Atom(Datum::sym("c")),
                TokenKind::UnsyntaxSplicing,
                TokenKind::Atom(Datum::sym("d")),
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42"), vec![TokenKind::Atom(Datum::Int(42))]);
        assert_eq!(kinds("-7"), vec![TokenKind::Atom(Datum::Int(-7))]);
        assert_eq!(kinds("1.5"), vec![TokenKind::Atom(Datum::Float(1.5))]);
        assert_eq!(kinds("-0.25"), vec![TokenKind::Atom(Datum::Float(-0.25))]);
        assert_eq!(kinds("1/2"), vec![TokenKind::Atom(Datum::sym("1/2"))]);
    }

    #[test]
    fn symbols_with_tricky_names() {
        for s in ["...", "->", "1+", "set!", "list->vector", "equal?"] {
            assert_eq!(kinds(s), vec![TokenKind::Atom(Datum::sym(s))]);
        }
    }

    #[test]
    fn lexes_characters() {
        assert_eq!(kinds(r"#\a"), vec![TokenKind::Atom(Datum::Char('a'))]);
        assert_eq!(kinds(r"#\space"), vec![TokenKind::Atom(Datum::Char(' '))]);
        assert_eq!(kinds(r"#\newline"), vec![TokenKind::Atom(Datum::Char('\n'))]);
        assert_eq!(kinds(r"#\("), vec![TokenKind::Atom(Datum::Char('('))]);
        assert_eq!(kinds(r"#\)"), vec![TokenKind::Atom(Datum::Char(')'))]);
    }

    #[test]
    fn lexes_strings() {
        assert_eq!(
            kinds(r#""hi\n""#),
            vec![TokenKind::Atom(Datum::string("hi\n"))]
        );
        assert!(Lexer::new("\"unterminated").tokenize().is_err());
    }

    #[test]
    fn comments_are_atmosphere() {
        assert_eq!(kinds("; hello\n1"), vec![TokenKind::Atom(Datum::Int(1))]);
        assert_eq!(kinds("#| multi \n line |# 2"), vec![TokenKind::Atom(Datum::Int(2))]);
        assert_eq!(
            kinds("#| nested #| inner |# outer |# 3"),
            vec![TokenKind::Atom(Datum::Int(3))]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = Lexer::new("(abc 12)").tokenize().unwrap();
        assert_eq!((toks[1].start, toks[1].end), (1, 4));
        assert_eq!((toks[2].start, toks[2].end), (5, 7));
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(Lexer::new("#| never closed").tokenize().is_err());
    }

    #[test]
    fn unknown_hash_errors() {
        assert!(Lexer::new("#z").tokenize().is_err());
    }
}
