//! Parsing token streams into syntax objects.

use crate::lexer::{LexError, Lexer, Token, TokenKind};
use pgmp_syntax::{Datum, SourceObject, Syntax, SyntaxBody};
use std::fmt;
use std::rc::Rc;

/// Error produced while reading source text.
#[derive(Clone, Debug, PartialEq)]
pub struct ReadError {
    /// Human-readable description.
    pub message: String,
    /// File the error occurred in.
    pub file: String,
    /// Byte offset where the problem was noticed.
    pub at: u32,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "read error: {} ({}:{})", self.message, self.file, self.at)
    }
}

impl std::error::Error for ReadError {}

impl ReadError {
    fn new(message: impl Into<String>, file: &str, at: u32) -> ReadError {
        ReadError {
            message: message.into(),
            file: file.to_owned(),
            at,
        }
    }
}

impl From<(LexError, &str)> for ReadError {
    fn from((e, file): (LexError, &str)) -> ReadError {
        ReadError::new(e.message, file, e.at)
    }
}

/// A reader over a token stream for one file.
///
/// # Example
///
/// ```
/// use pgmp_reader::Reader;
/// let mut r = Reader::new("(a . b)", "f.scm")?;
/// let stx = r.read()?.expect("one datum");
/// assert_eq!(stx.to_datum().to_string(), "(a . b)");
/// # Ok::<(), pgmp_reader::ReadError>(())
/// ```
#[derive(Debug)]
pub struct Reader {
    tokens: Vec<Token>,
    pos: usize,
    file: String,
}

impl Reader {
    /// Tokenizes `src` (attributed to `file`) and prepares to read.
    ///
    /// # Errors
    ///
    /// Returns a [`ReadError`] if tokenization fails.
    pub fn new(src: &str, file: &str) -> Result<Reader, ReadError> {
        let tokens = Lexer::new(src).tokenize().map_err(|e| (e, file).into())
            as Result<Vec<Token>, ReadError>;
        Ok(Reader {
            tokens: tokens?,
            pos: 0,
            file: file.to_owned(),
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn src_obj(&self, start: u32, end: u32) -> SourceObject {
        SourceObject::new(&self.file, start, end)
    }

    fn err(&self, msg: impl Into<String>, at: u32) -> ReadError {
        ReadError::new(msg, &self.file, at)
    }

    /// Reads the next datum, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns a [`ReadError`] on unbalanced parens, misplaced dots, and
    /// datum comments with no following datum.
    pub fn read(&mut self) -> Result<Option<Rc<Syntax>>, ReadError> {
        let Some(tok) = self.bump() else {
            return Ok(None);
        };
        self.read_after(tok).map(Some)
    }

    fn read_required(&mut self, why: &str, at: u32) -> Result<Rc<Syntax>, ReadError> {
        match self.read()? {
            Some(stx) => Ok(stx),
            None => Err(self.err(format!("unexpected end of input: {why}"), at)),
        }
    }

    fn wrap_quotation(
        &mut self,
        keyword: &str,
        start: u32,
    ) -> Result<Rc<Syntax>, ReadError> {
        let inner = self.read_required(&format!("{keyword} needs a datum"), start)?;
        let end = inner.source.map(|s| s.efp).unwrap_or(start);
        let src = self.src_obj(start, end);
        let kw = Rc::new(Syntax::ident(keyword, Some(src)));
        Ok(Rc::new(Syntax::list(vec![kw, inner], Some(src))))
    }

    fn read_after(&mut self, tok: Token) -> Result<Rc<Syntax>, ReadError> {
        match tok.kind {
            TokenKind::Atom(d) => Ok(Rc::new(Syntax::atom(
                d,
                Some(self.src_obj(tok.start, tok.end)),
            ))),
            TokenKind::Quote => self.wrap_quotation("quote", tok.start),
            TokenKind::Quasiquote => self.wrap_quotation("quasiquote", tok.start),
            TokenKind::Unquote => self.wrap_quotation("unquote", tok.start),
            TokenKind::UnquoteSplicing => self.wrap_quotation("unquote-splicing", tok.start),
            TokenKind::SyntaxQuote => self.wrap_quotation("syntax", tok.start),
            TokenKind::Quasisyntax => self.wrap_quotation("quasisyntax", tok.start),
            TokenKind::Unsyntax => self.wrap_quotation("unsyntax", tok.start),
            TokenKind::UnsyntaxSplicing => self.wrap_quotation("unsyntax-splicing", tok.start),
            TokenKind::DatumComment => {
                self.read_required("#; needs a datum to skip", tok.start)?;
                self.read_required("#; consumed the only datum", tok.start)
            }
            TokenKind::LParen => self.read_list(tok.start),
            TokenKind::VecOpen => self.read_vector(tok.start),
            TokenKind::RParen(_) => Err(self.err("unexpected closing paren", tok.start)),
            TokenKind::Dot => Err(self.err("unexpected `.` outside a list", tok.start)),
        }
    }

    fn read_list(&mut self, start: u32) -> Result<Rc<Syntax>, ReadError> {
        let mut elems: Vec<Rc<Syntax>> = Vec::new();
        loop {
            let Some(tok) = self.peek().cloned() else {
                return Err(self.err("unterminated list", start));
            };
            match tok.kind {
                TokenKind::RParen(_) => {
                    self.pos += 1;
                    let src = self.src_obj(start, tok.end);
                    return Ok(Rc::new(Syntax::new(SyntaxBody::List(elems), Some(src))));
                }
                TokenKind::Dot => {
                    self.pos += 1;
                    if elems.is_empty() {
                        return Err(self.err("`.` at start of list", tok.start));
                    }
                    let tail = self.read_required("dotted tail", tok.start)?;
                    let Some(close) = self.bump() else {
                        return Err(self.err("unterminated dotted list", start));
                    };
                    if !matches!(close.kind, TokenKind::RParen(_)) {
                        return Err(self.err("expected `)` after dotted tail", close.start));
                    }
                    let src = self.src_obj(start, close.end);
                    // A dotted tail that is itself a list splices flat, so
                    // `(a . (b c))` reads as `(a b c)` — standard Scheme.
                    match &tail.body {
                        SyntaxBody::List(tail_elems) => {
                            elems.extend(tail_elems.iter().cloned());
                            return Ok(Rc::new(Syntax::new(SyntaxBody::List(elems), Some(src))));
                        }
                        SyntaxBody::Improper(tail_elems, tail_tail) => {
                            elems.extend(tail_elems.iter().cloned());
                            return Ok(Rc::new(Syntax::new(
                                SyntaxBody::Improper(elems, tail_tail.clone()),
                                Some(src),
                            )));
                        }
                        _ => {
                            return Ok(Rc::new(Syntax::new(
                                SyntaxBody::Improper(elems, tail),
                                Some(src),
                            )))
                        }
                    }
                }
                _ => {
                    let tok = self.bump().expect("peeked");
                    elems.push(self.read_after(tok)?);
                }
            }
        }
    }

    fn read_vector(&mut self, start: u32) -> Result<Rc<Syntax>, ReadError> {
        let mut elems: Vec<Rc<Syntax>> = Vec::new();
        loop {
            let Some(tok) = self.peek().cloned() else {
                return Err(self.err("unterminated vector", start));
            };
            match tok.kind {
                TokenKind::RParen(_) => {
                    self.pos += 1;
                    let src = self.src_obj(start, tok.end);
                    return Ok(Rc::new(Syntax::new(SyntaxBody::Vector(elems), Some(src))));
                }
                TokenKind::Dot => return Err(self.err("`.` not allowed in vector", tok.start)),
                _ => {
                    let tok = self.bump().expect("peeked");
                    elems.push(self.read_after(tok)?);
                }
            }
        }
    }

    /// Reads all remaining datums.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ReadError`].
    pub fn read_all(&mut self) -> Result<Vec<Rc<Syntax>>, ReadError> {
        let mut out = Vec::new();
        while let Some(stx) = self.read()? {
            out.push(stx);
        }
        Ok(out)
    }
}

/// Reads every datum in `src`, attributing source objects to `file`.
///
/// # Errors
///
/// Returns a [`ReadError`] describing the first lexical or structural
/// problem.
///
/// # Example
///
/// ```
/// use pgmp_reader::read_str;
/// let forms = read_str("#(1 2) (x . y)", "v.scm")?;
/// assert_eq!(forms[0].to_datum().to_string(), "#(1 2)");
/// assert_eq!(forms[1].to_datum().to_string(), "(x . y)");
/// # Ok::<(), pgmp_reader::ReadError>(())
/// ```
pub fn read_str(src: &str, file: &str) -> Result<Vec<Rc<Syntax>>, ReadError> {
    Reader::new(src, file)?.read_all()
}

/// Reads every datum in `src` directly as plain [`Datum`]s, skipping
/// syntax-object construction entirely: no per-node [`SourceObject`], no
/// `Rc<Syntax>` allocation, no second `to_datum` pass.
///
/// Use this for machine-written s-expression files — stored profiles,
/// persisted sessions, epoch snapshots — where source attribution is
/// meaningless and parse latency is on the process-start path. For program
/// source, use [`read_str`]: profile points *are* source objects there.
///
/// # Errors
///
/// The same [`ReadError`]s as [`read_str`], with `file` set to `errfile`.
///
/// # Example
///
/// ```
/// use pgmp_reader::read_datums;
/// let data = read_datums("(a 1 2.5 \"s\") #(x)", "<mem>")?;
/// assert_eq!(data[0].to_string(), "(a 1 2.5 \"s\")");
/// assert_eq!(data[1].to_string(), "#(x)");
/// # Ok::<(), pgmp_reader::ReadError>(())
/// ```
pub fn read_datums(src: &str, errfile: &str) -> Result<Vec<Datum>, ReadError> {
    let mut r = DatumReader {
        lexer: Lexer::new(src),
        file: errfile,
    };
    let mut out = Vec::new();
    while let Some(d) = r.read()? {
        out.push(d);
    }
    Ok(out)
}

/// Streams tokens straight out of the lexer — no token buffer, no clones;
/// the grammar is LL(1) by token kind so no lookahead is needed.
struct DatumReader<'a> {
    lexer: Lexer<'a>,
    file: &'a str,
}

impl DatumReader<'_> {
    fn err(&self, msg: impl Into<String>, at: u32) -> ReadError {
        ReadError::new(msg, self.file, at)
    }

    fn next(&mut self) -> Result<Option<Token>, ReadError> {
        self.lexer
            .next_token()
            .map_err(|e| ReadError::from((e, self.file)))
    }

    fn read(&mut self) -> Result<Option<Datum>, ReadError> {
        let Some(tok) = self.next()? else {
            return Ok(None);
        };
        self.read_after(tok).map(Some)
    }

    fn read_required(&mut self, why: &str, at: u32) -> Result<Datum, ReadError> {
        match self.read()? {
            Some(d) => Ok(d),
            None => Err(self.err(format!("unexpected end of input: {why}"), at)),
        }
    }

    fn wrap(&mut self, keyword: &str, start: u32) -> Result<Datum, ReadError> {
        let inner = self.read_required(&format!("{keyword} needs a datum"), start)?;
        Ok(Datum::list(vec![Datum::sym(keyword), inner]))
    }

    fn read_after(&mut self, tok: Token) -> Result<Datum, ReadError> {
        match tok.kind {
            TokenKind::Atom(d) => Ok(d),
            TokenKind::Quote => self.wrap("quote", tok.start),
            TokenKind::Quasiquote => self.wrap("quasiquote", tok.start),
            TokenKind::Unquote => self.wrap("unquote", tok.start),
            TokenKind::UnquoteSplicing => self.wrap("unquote-splicing", tok.start),
            TokenKind::SyntaxQuote => self.wrap("syntax", tok.start),
            TokenKind::Quasisyntax => self.wrap("quasisyntax", tok.start),
            TokenKind::Unsyntax => self.wrap("unsyntax", tok.start),
            TokenKind::UnsyntaxSplicing => self.wrap("unsyntax-splicing", tok.start),
            TokenKind::DatumComment => {
                self.read_required("#; needs a datum to skip", tok.start)?;
                self.read_required("#; consumed the only datum", tok.start)
            }
            TokenKind::LParen => self.read_list(tok.start),
            TokenKind::VecOpen => self.read_vector(tok.start),
            TokenKind::RParen(_) => Err(self.err("unexpected closing paren", tok.start)),
            TokenKind::Dot => Err(self.err("unexpected `.` outside a list", tok.start)),
        }
    }

    fn read_list(&mut self, start: u32) -> Result<Datum, ReadError> {
        let mut elems: Vec<Datum> = Vec::new();
        loop {
            let Some(tok) = self.next()? else {
                return Err(self.err("unterminated list", start));
            };
            match tok.kind {
                TokenKind::RParen(_) => return Ok(Datum::list(elems)),
                TokenKind::Dot => {
                    if elems.is_empty() {
                        return Err(self.err("`.` at start of list", tok.start));
                    }
                    let tail = self.read_required("dotted tail", tok.start)?;
                    let Some(close) = self.next()? else {
                        return Err(self.err("unterminated dotted list", start));
                    };
                    if !matches!(close.kind, TokenKind::RParen(_)) {
                        return Err(self.err("expected `)` after dotted tail", close.start));
                    }
                    return Ok(Datum::improper_list(elems, tail));
                }
                _ => elems.push(self.read_after(tok)?),
            }
        }
    }

    fn read_vector(&mut self, start: u32) -> Result<Datum, ReadError> {
        let mut elems: Vec<Datum> = Vec::new();
        loop {
            let Some(tok) = self.next()? else {
                return Err(self.err("unterminated vector", start));
            };
            match tok.kind {
                TokenKind::RParen(_) => return Ok(Datum::Vector(elems.into())),
                TokenKind::Dot => return Err(self.err("`.` not allowed in vector", tok.start)),
                _ => elems.push(self.read_after(tok)?),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Rc<Syntax> {
        let forms = read_str(src, "t.scm").unwrap();
        assert_eq!(forms.len(), 1, "expected one form in {src:?}");
        forms.into_iter().next().unwrap()
    }

    #[test]
    fn reads_nested_lists() {
        assert_eq!(one("(a (b c) d)").to_datum().to_string(), "(a (b c) d)");
    }

    #[test]
    fn reads_dotted_pairs() {
        assert_eq!(one("(a . b)").to_datum().to_string(), "(a . b)");
        assert_eq!(one("(a b . c)").to_datum().to_string(), "(a b . c)");
        assert_eq!(one("(a . (b c))").to_datum().to_string(), "(a b c)");
        assert_eq!(one("(a . (b . c))").to_datum().to_string(), "(a b . c)");
    }

    #[test]
    fn reads_quote_forms() {
        assert_eq!(one("'x").to_datum().to_string(), "(quote x)");
        assert_eq!(one("`(a ,b ,@c)").to_datum().to_string(),
            "(quasiquote (a (unquote b) (unquote-splicing c)))");
        assert_eq!(one("#'(if a b)").to_datum().to_string(), "(syntax (if a b))");
        assert_eq!(one("#`(f #,x #,@ys)").to_datum().to_string(),
            "(quasisyntax (f (unsyntax x) (unsyntax-splicing ys)))");
    }

    #[test]
    fn reads_vectors() {
        assert_eq!(one("#(1 x \"s\")").to_datum().to_string(), "#(1 x \"s\")");
    }

    #[test]
    fn datum_comment_skips() {
        assert_eq!(one("#;(ignored stuff) 42").to_datum().to_string(), "42");
        let forms = read_str("(a #;b c)", "t.scm").unwrap();
        assert_eq!(forms[0].to_datum().to_string(), "(a c)");
    }

    #[test]
    fn source_objects_cover_exact_spans() {
        let stx = one("(foo bar)");
        let src = stx.source.unwrap();
        assert_eq!((src.bfp, src.efp), (0, 9));
        assert_eq!(src.file.as_str(), "t.scm");
        let elems = stx.as_list().unwrap();
        assert_eq!(
            (elems[0].source.unwrap().bfp, elems[0].source.unwrap().efp),
            (1, 4)
        );
        assert_eq!(
            (elems[1].source.unwrap().bfp, elems[1].source.unwrap().efp),
            (5, 8)
        );
    }

    #[test]
    fn every_node_has_a_source_object() {
        fn check(stx: &Syntax) {
            assert!(stx.source.is_some());
            match &stx.body {
                SyntaxBody::List(es) | SyntaxBody::Vector(es) => es.iter().for_each(|e| check(e)),
                SyntaxBody::Improper(es, t) => {
                    es.iter().for_each(|e| check(e));
                    check(t);
                }
                SyntaxBody::Atom(_) => {}
            }
        }
        check(&one("(a (b #(c)) . d)"));
    }

    #[test]
    fn errors_on_unbalanced_input() {
        assert!(read_str("(a b", "t.scm").is_err());
        assert!(read_str(")", "t.scm").is_err());
        assert!(read_str("(. x)", "t.scm").is_err());
        assert!(read_str("(a . b c)", "t.scm").is_err());
        assert!(read_str("#(1 . 2)", "t.scm").is_err());
        assert!(read_str("'", "t.scm").is_err());
        assert!(read_str("#;", "t.scm").is_err());
    }

    #[test]
    fn reads_multiple_top_level_forms() {
        let forms = read_str("1 2 (3)", "t.scm").unwrap();
        assert_eq!(forms.len(), 3);
    }

    #[test]
    fn distinct_occurrences_have_distinct_profile_points() {
        // §3.1: "flag and email appear multiple times, but each occurrence is
        // associated with a different profile point."
        let stx = one("(f (flag email) (flag email))");
        let elems = stx.as_list().unwrap();
        let a = elems[1].source.unwrap();
        let b = elems[2].source.unwrap();
        assert_ne!(a, b);
    }
}
