//! The typed trace events and their versioned JSONL encoding.
//!
//! Every event serializes to one JSON object per line with a fixed field
//! order: `v` (schema version, currently [`SCHEMA_VERSION`]), `seq`
//! (monotone per recording), `t_us` (microseconds since the recording
//! started), `inst` (the process instance id), then — only when present
//! — `span` and `parent` (the span-hierarchy ids), `type` (the kind
//! tag), and the kind-specific fields in declaration order. The encoding
//! is fixture-pinned by `tests/schema.rs`: changing any field name,
//! order, or number formatting is a schema break and must bump
//! [`SCHEMA_VERSION`].
//!
//! The reader accepts every version from [`MIN_SCHEMA_VERSION`] up:
//! v1 lines (no `inst`/`span`/`parent`) decode with `inst = 0` and no
//! span links, so pre-v2 traces keep working everywhere.

use crate::json::Json;

/// Version stamped into every event line as `"v"`.
///
/// v2 (this version) added cross-process correlation: the `inst`
/// process instance id on every event, optional `span`/`parent` span
/// hierarchy ids, the fleet correlation events (`publish_delta`,
/// `fleet_hello`, `fleet_connect`, `fleet_apply`), and the
/// `peer_inst` join key on `ingest_batch`.
pub const SCHEMA_VERSION: u64 = 2;

/// Oldest schema version [`TraceEvent::from_json`] still decodes.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// One recorded event: bus-assigned sequencing plus the typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotone sequence number within one recording (gaps mean the ring
    /// buffer dropped events).
    pub seq: u64,
    /// Microseconds since the recording started.
    pub t_us: u64,
    /// Process instance id of the emitting process (see
    /// `pgmp_observe::instance_id`); `0` in v1 traces, where it was not
    /// recorded. `(inst, seq)` identifies an event across merged traces.
    pub inst: u64,
    /// Span id for span-like events (assigned by the bus when the span
    /// opened); `None` for point events and v1 traces.
    pub span: Option<u64>,
    /// Span id of the enclosing span on the emitting thread; `None` at
    /// top level and in v1 traces.
    pub parent: Option<u64>,
    pub kind: EventKind,
}

impl TraceEvent {
    /// A bare event with no instance id or span links — the shape every
    /// v1 trace decodes to, and the natural constructor for tests.
    pub fn new(seq: u64, t_us: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            t_us,
            inst: 0,
            span: None,
            parent: None,
            kind,
        }
    }
}

/// One alternative considered by a profile-guided decision: a printable
/// label (usually the clause/arm datum) and the weight consulted for it,
/// `None` when no profile data covered it.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionAlt {
    pub label: String,
    pub weight: Option<f64>,
}

/// The typed event payloads. Span-like events carry their own
/// `duration_us`; they are emitted at close.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The expander finished one toplevel form (a per-form expansion span).
    ExpandForm {
        /// Source file of the form (or `<none>` for synthetic forms).
        file: String,
        /// Toplevel index of the form within this expansion run.
        index: u32,
        duration_us: u64,
    },
    /// A meta-program called `profile-query` (the Figure 4 API).
    ProfileQuery {
        /// The profile point, printed as `file:bfp-efp`.
        point: String,
        /// The weight returned, `None` when the profile had no entry.
        weight: Option<f64>,
        /// Whether any profile dataset was loaded at query time.
        available: bool,
    },
    /// A meta-program called `profile-count` (raw, volatile counts).
    ProfileCount { point: String, count: Option<f64> },
    /// A meta-program called `profile-data-available?`.
    AvailabilityCheck { available: bool },
    /// The incremental cache served a form without re-expansion.
    CacheHit { form: u32 },
    /// The incremental cache re-expanded a form; `reason` says why (see
    /// `docs/OBSERVABILITY.md` for the vocabulary: `first-compile`,
    /// `source-changed`, `drifted-point:<p>`, `availability-flip`,
    /// `whole-profile`, `volatile-reads`, `meta-dirty`,
    /// `factory-mismatch`).
    CacheMiss { form: u32, reason: String },
    /// One full `IncrementalEngine::compile` pass (span).
    IncrementalCompile {
        forms: u32,
        reused: u32,
        reexpanded: u32,
        duration_us: u64,
    },
    /// One adaptive epoch (span over drain + absorb + drift decision).
    Epoch {
        epoch: u64,
        /// Counter hits drained this epoch.
        hits: u64,
        /// Drift score vs the last-optimized baseline.
        drift: f64,
        /// Whether the raw drift threshold was exceeded.
        fired: bool,
        /// Whether re-optimization actually ran (post-hysteresis).
        reoptimized: bool,
        /// Program generation after this epoch.
        generation: u64,
        /// Consecutive over-threshold epochs (hysteresis state).
        streak: u32,
        /// Epochs of cooldown remaining (hysteresis state).
        cooldown: u32,
        /// Coalescing-writer flushes observed this epoch.
        flush_writes: u64,
        /// Writes merged by coalescing before reaching shared counters.
        flush_merged: u64,
        duration_us: u64,
    },
    /// One adaptive re-optimization (span): recompile plus program swap.
    Reoptimize {
        generation: u64,
        reused: u32,
        reexpanded: u32,
        duration_us: u64,
        /// Time spent holding the program lock to swap in the new
        /// program (the reader-visible stall).
        swap_us: u64,
    },
    /// One engine run of a program (span).
    Run {
        file: String,
        /// Instrumentation mode: `none`, `every-expression`, `calls-only`.
        mode: String,
        duration_us: u64,
    },
    /// Eager profile-point slot resolution before a run (span).
    SlotResolve { resolved: u32, duration_us: u64 },
    /// One VM `run_chunk` call (span).
    VmRun {
        chunk: u32,
        /// Basic blocks executed during this call.
        blocks: u64,
        duration_us: u64,
    },
    /// One chunk lowered to a flat op stream for direct-threaded
    /// dispatch (span).
    VmLower {
        chunk: u32,
        /// Ops in the lowered stream.
        ops: u64,
        /// Superinstructions emitted by profile-guided fusion.
        fused: u32,
        duration_us: u64,
    },
    /// Drift-driven re-layout: live chunks re-laid-out with current
    /// block counters after an adaptive reoptimization (span).
    LayoutReoptimize {
        generation: u64,
        /// Chunks whose block order was recomputed.
        chunks: u32,
        duration_us: u64,
    },
    /// The persistence layer wrote a file (profile, session, snapshot).
    StoreWrite {
        path: String,
        /// Payload kind: `profile-v1`, `profile-v2`, `session`, `snapshot`,
        /// `trace`, `metrics`.
        kind: String,
        bytes: u64,
        duration_us: u64,
    },
    /// The persistence layer read a file.
    StoreRead {
        path: String,
        kind: String,
        bytes: u64,
        duration_us: u64,
    },
    /// The profile daemon absorbed one delta frame from a publisher.
    IngestBatch {
        /// Daemon-assigned dataset id of the publishing connection.
        dataset: u32,
        /// The publisher's epoch counter at flush time.
        epoch: u64,
        /// Distinct slots carried by the frame.
        slots: u32,
        /// Total hits carried by the frame (sum of counts).
        hits: u64,
        /// Instance id of the publishing process (0 when the publisher
        /// spoke wire v1 and never declared one). With `epoch` this is
        /// the join key back to the publisher's `publish_delta` event.
        peer_inst: u64,
    },
    /// The profile daemon merged every dataset into the canonical
    /// profile (span over snapshot + §3.2 merge + atomic write).
    Merge {
        /// Daemon merge epoch (monotone).
        epoch: u64,
        /// Datasets participating in the merge.
        datasets: u32,
        /// Profile points in the merged result.
        points: u32,
        /// L1 drift of the merged weights vs the previous merge.
        l1: f64,
        /// Total-variation drift vs the previous merge.
        tv: f64,
        duration_us: u64,
    },
    /// The profile daemon pushed an epoch update to its subscribers.
    Broadcast {
        /// Daemon merge epoch being broadcast.
        epoch: u64,
        /// Subscribers the frame was written to.
        subscribers: u32,
        /// Encoded frame size in bytes.
        bytes: u64,
    },
    /// A bounded channel was full and payload was dropped instead of
    /// blocking the producer. `channel` names the channel (`trace`,
    /// `publish`); `dropped` counts the items lost in this instance.
    BackpressureDrop { channel: String, dropped: u64 },
    /// Optimization-decision provenance: a profile-guided macro chose
    /// among alternatives. `alternatives` lists every option in source
    /// order with the weight consulted; `chosen` lists labels in the
    /// order the macro emitted them; `rank` is the source-order position
    /// of `chosen[0]` (0-based), so `rank > 0` means the profile
    /// reordered the code.
    Decision {
        /// Which decision site: `exclusive-cond`, `case`,
        /// `receiver-prediction`, `datastructure`.
        site: String,
        /// Source span of the form the decision applies to.
        decision_point: String,
        alternatives: Vec<DecisionAlt>,
        chosen: Vec<String>,
        rank: u32,
    },
    /// Sampling-profiler summary, emitted once when a sampler stops (the
    /// tick path itself never touches the event bus). `ticks = hits +
    /// missed`: `hits` tallied a published position, `missed` found the
    /// beacon idle.
    SamplerTick {
        /// Configured tick rate (0 when driven manually).
        hz: u32,
        ticks: u64,
        hits: u64,
        missed: u64,
    },
    /// Stale-profile rebasing re-anchored (or killed) one profile point
    /// (`pgmp-profile rebase`; see `docs/REBASE.md`).
    ProfileRebase {
        /// The point in the old profile, printed as `file:bfp-efp`.
        point: String,
        /// Where it re-anchored in the edited source; `None` when dead.
        new_point: Option<String>,
        /// Matcher tier: `exact`, `shifted`, `structural`, `dead`.
        tier: String,
        /// Match confidence of this rebase step (1.0 exact/shifted,
        /// 0.0 dead).
        confidence: f64,
        old_weight: f64,
        /// `old_weight × confidence` — never larger than `old_weight`.
        new_weight: f64,
    },
    /// A fleet publisher flushed one delta frame to the daemon (the
    /// success-path twin of `backpressure_drop`). `(inst, epoch)` of
    /// this event joins to the daemon's `ingest_batch`
    /// `(peer_inst, epoch)`.
    PublishDelta {
        /// The publisher's own epoch counter for this flush.
        epoch: u64,
        /// Distinct slots carried by the frame.
        slots: u32,
        /// Total hits carried by the frame (sum of counts).
        hits: u64,
    },
    /// The daemon completed a handshake (`Hello`/`Ack`) with a peer.
    /// Happens-before the peer's matching `fleet_connect`.
    FleetHello {
        /// Peer role as declared in `Hello`: `publisher`, `subscriber`.
        role: String,
        /// Instance id the peer declared (0 for wire-v1 peers).
        peer_inst: u64,
        /// Dataset id assigned to a publisher; 0 for subscribers.
        dataset: u32,
    },
    /// A client (publisher or subscriber) received the daemon's `Ack`.
    /// Happens-after the daemon's matching `fleet_hello`.
    FleetConnect {
        /// This client's role: `publisher`, `subscriber`.
        role: String,
        /// The daemon's instance id from `Ack` (0 for wire-v1 daemons).
        daemon_inst: u64,
        /// Dataset id the daemon assigned; 0 for subscribers.
        dataset: u32,
    },
    /// A subscriber applied a fleet epoch to its adaptive engine.
    /// Happens-after the daemon's `merge` with the same
    /// `(daemon_inst, epoch)`; the subscriber's `reoptimize` (if drift
    /// fired) follows in the same trace.
    FleetApply {
        /// Instance id of the daemon that merged this epoch (0 when
        /// unknown, e.g. a wire-v1 daemon).
        daemon_inst: u64,
        /// The daemon's merge epoch being applied.
        epoch: u64,
        /// Fleet drift vs the engine's last-optimized baseline.
        drift: f64,
        /// Whether the drift threshold fired a reoptimization.
        reoptimized: bool,
    },
}

impl EventKind {
    /// The `"type"` tag used on the wire.
    pub fn type_tag(&self) -> &'static str {
        match self {
            EventKind::ExpandForm { .. } => "expand_form",
            EventKind::ProfileQuery { .. } => "profile_query",
            EventKind::ProfileCount { .. } => "profile_count",
            EventKind::AvailabilityCheck { .. } => "availability",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::IncrementalCompile { .. } => "incremental_compile",
            EventKind::Epoch { .. } => "epoch",
            EventKind::Reoptimize { .. } => "reoptimize",
            EventKind::Run { .. } => "run",
            EventKind::SlotResolve { .. } => "slot_resolve",
            EventKind::VmRun { .. } => "vm_run",
            EventKind::VmLower { .. } => "vm_lower",
            EventKind::LayoutReoptimize { .. } => "layout_reoptimize",
            EventKind::StoreWrite { .. } => "store_write",
            EventKind::StoreRead { .. } => "store_read",
            EventKind::IngestBatch { .. } => "ingest_batch",
            EventKind::Merge { .. } => "merge",
            EventKind::Broadcast { .. } => "broadcast",
            EventKind::BackpressureDrop { .. } => "backpressure_drop",
            EventKind::Decision { .. } => "decision",
            EventKind::SamplerTick { .. } => "sampler_tick",
            EventKind::ProfileRebase { .. } => "profile_rebase",
            EventKind::PublishDelta { .. } => "publish_delta",
            EventKind::FleetHello { .. } => "fleet_hello",
            EventKind::FleetConnect { .. } => "fleet_connect",
            EventKind::FleetApply { .. } => "fleet_apply",
        }
    }

    /// The span duration for span-like events, `None` for point events.
    pub fn duration_us(&self) -> Option<u64> {
        match self {
            EventKind::ExpandForm { duration_us, .. }
            | EventKind::IncrementalCompile { duration_us, .. }
            | EventKind::Epoch { duration_us, .. }
            | EventKind::Reoptimize { duration_us, .. }
            | EventKind::Run { duration_us, .. }
            | EventKind::SlotResolve { duration_us, .. }
            | EventKind::VmRun { duration_us, .. }
            | EventKind::VmLower { duration_us, .. }
            | EventKind::LayoutReoptimize { duration_us, .. }
            | EventKind::StoreWrite { duration_us, .. }
            | EventKind::StoreRead { duration_us, .. }
            | EventKind::Merge { duration_us, .. } => Some(*duration_us),
            _ => None,
        }
    }
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn opt_f64(v: Option<f64>) -> Json {
    match v {
        Some(x) => Json::Num(x),
        None => Json::Null,
    }
}

impl TraceEvent {
    /// Encodes the event as its canonical single-line JSON form (no
    /// trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut fields: Vec<(String, Json)> = vec![
            ("v".into(), num(SCHEMA_VERSION)),
            ("seq".into(), num(self.seq)),
            ("t_us".into(), num(self.t_us)),
            ("inst".into(), num(self.inst)),
        ];
        if let Some(span) = self.span {
            fields.push(("span".into(), num(span)));
        }
        if let Some(parent) = self.parent {
            fields.push(("parent".into(), num(parent)));
        }
        fields.push(("type".into(), Json::Str(self.kind.type_tag().into())));
        let mut push = |k: &str, v: Json| fields.push((k.into(), v));
        match &self.kind {
            EventKind::ExpandForm {
                file,
                index,
                duration_us,
            } => {
                push("file", Json::Str(file.clone()));
                push("index", num(*index as u64));
                push("duration_us", num(*duration_us));
            }
            EventKind::ProfileQuery {
                point,
                weight,
                available,
            } => {
                push("point", Json::Str(point.clone()));
                push("weight", opt_f64(*weight));
                push("available", Json::Bool(*available));
            }
            EventKind::ProfileCount { point, count } => {
                push("point", Json::Str(point.clone()));
                push("count", opt_f64(*count));
            }
            EventKind::AvailabilityCheck { available } => {
                push("available", Json::Bool(*available));
            }
            EventKind::CacheHit { form } => push("form", num(*form as u64)),
            EventKind::CacheMiss { form, reason } => {
                push("form", num(*form as u64));
                push("reason", Json::Str(reason.clone()));
            }
            EventKind::IncrementalCompile {
                forms,
                reused,
                reexpanded,
                duration_us,
            } => {
                push("forms", num(*forms as u64));
                push("reused", num(*reused as u64));
                push("reexpanded", num(*reexpanded as u64));
                push("duration_us", num(*duration_us));
            }
            EventKind::Epoch {
                epoch,
                hits,
                drift,
                fired,
                reoptimized,
                generation,
                streak,
                cooldown,
                flush_writes,
                flush_merged,
                duration_us,
            } => {
                push("epoch", num(*epoch));
                push("hits", num(*hits));
                push("drift", Json::Num(*drift));
                push("fired", Json::Bool(*fired));
                push("reoptimized", Json::Bool(*reoptimized));
                push("generation", num(*generation));
                push("streak", num(*streak as u64));
                push("cooldown", num(*cooldown as u64));
                push("flush_writes", num(*flush_writes));
                push("flush_merged", num(*flush_merged));
                push("duration_us", num(*duration_us));
            }
            EventKind::Reoptimize {
                generation,
                reused,
                reexpanded,
                duration_us,
                swap_us,
            } => {
                push("generation", num(*generation));
                push("reused", num(*reused as u64));
                push("reexpanded", num(*reexpanded as u64));
                push("duration_us", num(*duration_us));
                push("swap_us", num(*swap_us));
            }
            EventKind::Run {
                file,
                mode,
                duration_us,
            } => {
                push("file", Json::Str(file.clone()));
                push("mode", Json::Str(mode.clone()));
                push("duration_us", num(*duration_us));
            }
            EventKind::SlotResolve {
                resolved,
                duration_us,
            } => {
                push("resolved", num(*resolved as u64));
                push("duration_us", num(*duration_us));
            }
            EventKind::VmRun {
                chunk,
                blocks,
                duration_us,
            } => {
                push("chunk", num(*chunk as u64));
                push("blocks", num(*blocks));
                push("duration_us", num(*duration_us));
            }
            EventKind::VmLower {
                chunk,
                ops,
                fused,
                duration_us,
            } => {
                push("chunk", num(*chunk as u64));
                push("ops", num(*ops));
                push("fused", num(*fused as u64));
                push("duration_us", num(*duration_us));
            }
            EventKind::LayoutReoptimize {
                generation,
                chunks,
                duration_us,
            } => {
                push("generation", num(*generation));
                push("chunks", num(*chunks as u64));
                push("duration_us", num(*duration_us));
            }
            EventKind::StoreWrite {
                path,
                kind,
                bytes,
                duration_us,
            }
            | EventKind::StoreRead {
                path,
                kind,
                bytes,
                duration_us,
            } => {
                push("path", Json::Str(path.clone()));
                push("kind", Json::Str(kind.clone()));
                push("bytes", num(*bytes));
                push("duration_us", num(*duration_us));
            }
            EventKind::IngestBatch {
                dataset,
                epoch,
                slots,
                hits,
                peer_inst,
            } => {
                push("dataset", num(*dataset as u64));
                push("epoch", num(*epoch));
                push("slots", num(*slots as u64));
                push("hits", num(*hits));
                push("peer_inst", num(*peer_inst));
            }
            EventKind::Merge {
                epoch,
                datasets,
                points,
                l1,
                tv,
                duration_us,
            } => {
                push("epoch", num(*epoch));
                push("datasets", num(*datasets as u64));
                push("points", num(*points as u64));
                push("l1", Json::Num(*l1));
                push("tv", Json::Num(*tv));
                push("duration_us", num(*duration_us));
            }
            EventKind::Broadcast {
                epoch,
                subscribers,
                bytes,
            } => {
                push("epoch", num(*epoch));
                push("subscribers", num(*subscribers as u64));
                push("bytes", num(*bytes));
            }
            EventKind::BackpressureDrop { channel, dropped } => {
                push("channel", Json::Str(channel.clone()));
                push("dropped", num(*dropped));
            }
            EventKind::Decision {
                site,
                decision_point,
                alternatives,
                chosen,
                rank,
            } => {
                push("site", Json::Str(site.clone()));
                push("decision_point", Json::Str(decision_point.clone()));
                push(
                    "alternatives",
                    Json::Arr(
                        alternatives
                            .iter()
                            .map(|a| {
                                Json::Obj(vec![
                                    ("label".into(), Json::Str(a.label.clone())),
                                    ("weight".into(), opt_f64(a.weight)),
                                ])
                            })
                            .collect(),
                    ),
                );
                push(
                    "chosen",
                    Json::Arr(chosen.iter().map(|c| Json::Str(c.clone())).collect()),
                );
                push("rank", num(*rank as u64));
            }
            EventKind::SamplerTick {
                hz,
                ticks,
                hits,
                missed,
            } => {
                push("hz", num(*hz as u64));
                push("ticks", num(*ticks));
                push("hits", num(*hits));
                push("missed", num(*missed));
            }
            EventKind::ProfileRebase {
                point,
                new_point,
                tier,
                confidence,
                old_weight,
                new_weight,
            } => {
                push("point", Json::Str(point.clone()));
                push(
                    "new_point",
                    match new_point {
                        Some(p) => Json::Str(p.clone()),
                        None => Json::Null,
                    },
                );
                push("tier", Json::Str(tier.clone()));
                push("confidence", Json::Num(*confidence));
                push("old_weight", Json::Num(*old_weight));
                push("new_weight", Json::Num(*new_weight));
            }
            EventKind::PublishDelta { epoch, slots, hits } => {
                push("epoch", num(*epoch));
                push("slots", num(*slots as u64));
                push("hits", num(*hits));
            }
            EventKind::FleetHello {
                role,
                peer_inst,
                dataset,
            } => {
                push("role", Json::Str(role.clone()));
                push("peer_inst", num(*peer_inst));
                push("dataset", num(*dataset as u64));
            }
            EventKind::FleetConnect {
                role,
                daemon_inst,
                dataset,
            } => {
                push("role", Json::Str(role.clone()));
                push("daemon_inst", num(*daemon_inst));
                push("dataset", num(*dataset as u64));
            }
            EventKind::FleetApply {
                daemon_inst,
                epoch,
                drift,
                reoptimized,
            } => {
                push("daemon_inst", num(*daemon_inst));
                push("epoch", num(*epoch));
                push("drift", Json::Num(*drift));
                push("reoptimized", Json::Bool(*reoptimized));
            }
        }
        Json::Obj(fields).to_string()
    }
}

/// A field-level decode failure (wrapped with line context by the reader).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// `"v"` was missing or not a supported version.
    BadVersion(String),
    /// A required field was absent.
    MissingField(&'static str),
    /// A field was present with the wrong JSON type or an invalid value.
    BadField(&'static str),
    /// The `"type"` tag named no known event kind.
    UnknownType(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadVersion(v) => write!(f, "unsupported schema version {v}"),
            DecodeError::MissingField(name) => write!(f, "missing field `{name}`"),
            DecodeError::BadField(name) => write!(f, "malformed field `{name}`"),
            DecodeError::UnknownType(t) => write!(f, "unknown event type `{t}`"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn get_u64(obj: &Json, name: &'static str) -> Result<u64, DecodeError> {
    obj.get(name)
        .ok_or(DecodeError::MissingField(name))?
        .as_u64()
        .ok_or(DecodeError::BadField(name))
}

fn get_u32(obj: &Json, name: &'static str) -> Result<u32, DecodeError> {
    u32::try_from(get_u64(obj, name)?).map_err(|_| DecodeError::BadField(name))
}

/// An optional numeric field with a default: absent decodes to `default`
/// (how v1 lines, which predate the field, read), present-but-malformed
/// is still a typed error.
fn get_u64_or(obj: &Json, name: &'static str, default: u64) -> Result<u64, DecodeError> {
    match obj.get(name) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or(DecodeError::BadField(name)),
    }
}

/// An optional numeric field: absent or `null` decodes to `None`.
fn get_opt_u64(obj: &Json, name: &'static str) -> Result<Option<u64>, DecodeError> {
    match obj.get(name) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or(DecodeError::BadField(name)),
    }
}

fn get_f64(obj: &Json, name: &'static str) -> Result<f64, DecodeError> {
    obj.get(name)
        .ok_or(DecodeError::MissingField(name))?
        .as_f64()
        .ok_or(DecodeError::BadField(name))
}

fn get_opt_f64(obj: &Json, name: &'static str) -> Result<Option<f64>, DecodeError> {
    match obj.get(name) {
        None => Err(DecodeError::MissingField(name)),
        Some(Json::Null) => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or(DecodeError::BadField(name)),
    }
}

fn get_str(obj: &Json, name: &'static str) -> Result<String, DecodeError> {
    obj.get(name)
        .ok_or(DecodeError::MissingField(name))?
        .as_str()
        .map(str::to_string)
        .ok_or(DecodeError::BadField(name))
}

fn get_bool(obj: &Json, name: &'static str) -> Result<bool, DecodeError> {
    obj.get(name)
        .ok_or(DecodeError::MissingField(name))?
        .as_bool()
        .ok_or(DecodeError::BadField(name))
}

impl TraceEvent {
    /// Decodes one parsed JSON object into a typed event. Accepts every
    /// schema version in `MIN_SCHEMA_VERSION..=SCHEMA_VERSION`: v1 lines
    /// decode with `inst = 0` and no span links.
    pub fn from_json(obj: &Json) -> Result<TraceEvent, DecodeError> {
        match obj.get("v") {
            Some(v)
                if v.as_u64()
                    .is_some_and(|v| (MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&v)) => {}
            Some(v) => return Err(DecodeError::BadVersion(v.to_string())),
            None => return Err(DecodeError::BadVersion("<missing>".into())),
        }
        let seq = get_u64(obj, "seq")?;
        let t_us = get_u64(obj, "t_us")?;
        let inst = get_u64_or(obj, "inst", 0)?;
        let span = get_opt_u64(obj, "span")?;
        let parent = get_opt_u64(obj, "parent")?;
        let ty = get_str(obj, "type")?;
        let kind = match ty.as_str() {
            "expand_form" => EventKind::ExpandForm {
                file: get_str(obj, "file")?,
                index: get_u32(obj, "index")?,
                duration_us: get_u64(obj, "duration_us")?,
            },
            "profile_query" => EventKind::ProfileQuery {
                point: get_str(obj, "point")?,
                weight: get_opt_f64(obj, "weight")?,
                available: get_bool(obj, "available")?,
            },
            "profile_count" => EventKind::ProfileCount {
                point: get_str(obj, "point")?,
                count: get_opt_f64(obj, "count")?,
            },
            "availability" => EventKind::AvailabilityCheck {
                available: get_bool(obj, "available")?,
            },
            "cache_hit" => EventKind::CacheHit {
                form: get_u32(obj, "form")?,
            },
            "cache_miss" => EventKind::CacheMiss {
                form: get_u32(obj, "form")?,
                reason: get_str(obj, "reason")?,
            },
            "incremental_compile" => EventKind::IncrementalCompile {
                forms: get_u32(obj, "forms")?,
                reused: get_u32(obj, "reused")?,
                reexpanded: get_u32(obj, "reexpanded")?,
                duration_us: get_u64(obj, "duration_us")?,
            },
            "epoch" => EventKind::Epoch {
                epoch: get_u64(obj, "epoch")?,
                hits: get_u64(obj, "hits")?,
                drift: get_f64(obj, "drift")?,
                fired: get_bool(obj, "fired")?,
                reoptimized: get_bool(obj, "reoptimized")?,
                generation: get_u64(obj, "generation")?,
                streak: get_u32(obj, "streak")?,
                cooldown: get_u32(obj, "cooldown")?,
                flush_writes: get_u64(obj, "flush_writes")?,
                flush_merged: get_u64(obj, "flush_merged")?,
                duration_us: get_u64(obj, "duration_us")?,
            },
            "reoptimize" => EventKind::Reoptimize {
                generation: get_u64(obj, "generation")?,
                reused: get_u32(obj, "reused")?,
                reexpanded: get_u32(obj, "reexpanded")?,
                duration_us: get_u64(obj, "duration_us")?,
                swap_us: get_u64(obj, "swap_us")?,
            },
            "run" => EventKind::Run {
                file: get_str(obj, "file")?,
                mode: get_str(obj, "mode")?,
                duration_us: get_u64(obj, "duration_us")?,
            },
            "slot_resolve" => EventKind::SlotResolve {
                resolved: get_u32(obj, "resolved")?,
                duration_us: get_u64(obj, "duration_us")?,
            },
            "vm_run" => EventKind::VmRun {
                chunk: get_u32(obj, "chunk")?,
                blocks: get_u64(obj, "blocks")?,
                duration_us: get_u64(obj, "duration_us")?,
            },
            "vm_lower" => EventKind::VmLower {
                chunk: get_u32(obj, "chunk")?,
                ops: get_u64(obj, "ops")?,
                fused: get_u32(obj, "fused")?,
                duration_us: get_u64(obj, "duration_us")?,
            },
            "layout_reoptimize" => EventKind::LayoutReoptimize {
                generation: get_u64(obj, "generation")?,
                chunks: get_u32(obj, "chunks")?,
                duration_us: get_u64(obj, "duration_us")?,
            },
            "store_write" => EventKind::StoreWrite {
                path: get_str(obj, "path")?,
                kind: get_str(obj, "kind")?,
                bytes: get_u64(obj, "bytes")?,
                duration_us: get_u64(obj, "duration_us")?,
            },
            "store_read" => EventKind::StoreRead {
                path: get_str(obj, "path")?,
                kind: get_str(obj, "kind")?,
                bytes: get_u64(obj, "bytes")?,
                duration_us: get_u64(obj, "duration_us")?,
            },
            "ingest_batch" => EventKind::IngestBatch {
                dataset: get_u32(obj, "dataset")?,
                epoch: get_u64(obj, "epoch")?,
                slots: get_u32(obj, "slots")?,
                hits: get_u64(obj, "hits")?,
                peer_inst: get_u64_or(obj, "peer_inst", 0)?,
            },
            "merge" => EventKind::Merge {
                epoch: get_u64(obj, "epoch")?,
                datasets: get_u32(obj, "datasets")?,
                points: get_u32(obj, "points")?,
                l1: get_f64(obj, "l1")?,
                tv: get_f64(obj, "tv")?,
                duration_us: get_u64(obj, "duration_us")?,
            },
            "broadcast" => EventKind::Broadcast {
                epoch: get_u64(obj, "epoch")?,
                subscribers: get_u32(obj, "subscribers")?,
                bytes: get_u64(obj, "bytes")?,
            },
            "backpressure_drop" => EventKind::BackpressureDrop {
                channel: get_str(obj, "channel")?,
                dropped: get_u64(obj, "dropped")?,
            },
            "decision" => {
                let alts = obj
                    .get("alternatives")
                    .ok_or(DecodeError::MissingField("alternatives"))?
                    .as_arr()
                    .ok_or(DecodeError::BadField("alternatives"))?
                    .iter()
                    .map(|a| {
                        Ok(DecisionAlt {
                            label: get_str(a, "label")?,
                            weight: get_opt_f64(a, "weight")?,
                        })
                    })
                    .collect::<Result<Vec<_>, DecodeError>>()?;
                let chosen = obj
                    .get("chosen")
                    .ok_or(DecodeError::MissingField("chosen"))?
                    .as_arr()
                    .ok_or(DecodeError::BadField("chosen"))?
                    .iter()
                    .map(|c| {
                        c.as_str()
                            .map(str::to_string)
                            .ok_or(DecodeError::BadField("chosen"))
                    })
                    .collect::<Result<Vec<_>, DecodeError>>()?;
                EventKind::Decision {
                    site: get_str(obj, "site")?,
                    decision_point: get_str(obj, "decision_point")?,
                    alternatives: alts,
                    chosen,
                    rank: get_u32(obj, "rank")?,
                }
            }
            "sampler_tick" => EventKind::SamplerTick {
                hz: get_u32(obj, "hz")?,
                ticks: get_u64(obj, "ticks")?,
                hits: get_u64(obj, "hits")?,
                missed: get_u64(obj, "missed")?,
            },
            "profile_rebase" => EventKind::ProfileRebase {
                point: get_str(obj, "point")?,
                new_point: match obj.get("new_point") {
                    None => return Err(DecodeError::MissingField("new_point")),
                    Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_str()
                            .map(str::to_string)
                            .ok_or(DecodeError::BadField("new_point"))?,
                    ),
                },
                tier: get_str(obj, "tier")?,
                confidence: get_f64(obj, "confidence")?,
                old_weight: get_f64(obj, "old_weight")?,
                new_weight: get_f64(obj, "new_weight")?,
            },
            "publish_delta" => EventKind::PublishDelta {
                epoch: get_u64(obj, "epoch")?,
                slots: get_u32(obj, "slots")?,
                hits: get_u64(obj, "hits")?,
            },
            "fleet_hello" => EventKind::FleetHello {
                role: get_str(obj, "role")?,
                peer_inst: get_u64(obj, "peer_inst")?,
                dataset: get_u32(obj, "dataset")?,
            },
            "fleet_connect" => EventKind::FleetConnect {
                role: get_str(obj, "role")?,
                daemon_inst: get_u64(obj, "daemon_inst")?,
                dataset: get_u32(obj, "dataset")?,
            },
            "fleet_apply" => EventKind::FleetApply {
                daemon_inst: get_u64(obj, "daemon_inst")?,
                epoch: get_u64(obj, "epoch")?,
                drift: get_f64(obj, "drift")?,
                reoptimized: get_bool(obj, "reoptimized")?,
            },
            other => return Err(DecodeError::UnknownType(other.to_string())),
        };
        Ok(TraceEvent {
            seq,
            t_us,
            inst,
            span,
            parent,
            kind,
        })
    }
}
