//! Bounded background writing: a producer-side `try_send` that never
//! blocks, a dedicated writer thread that drains, and exact drop
//! accounting when the channel is full.
//!
//! This is the one bounded-channel pattern the workspace shares: the
//! trace bus uses it to stream events to the sink *during* recording
//! (instead of buffering the whole ring and writing at [`crate::stop`]),
//! and the fleet daemon's client publisher uses it to ship delta frames
//! to `pgmp-profiled` without ever blocking the interpreter. The
//! contract in both places is the same: the hot path pays one
//! `try_send`; when the consumer can't keep up, payload is dropped and
//! **counted**, never silently lost and never allowed to stall the
//! producer.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A background writer over a bounded channel of byte buffers.
///
/// [`BoundedWriter::try_write`] enqueues without blocking; a full (or
/// dead) channel drops the buffer and bumps the drop counter. The writer
/// thread drains greedily and flushes whenever the channel runs empty,
/// so latency is bounded by one in-flight batch. [`BoundedWriter::close`]
/// joins the thread and reports the bytes actually written.
///
/// # Example
///
/// ```
/// use pgmp_observe::BoundedWriter;
/// let w = BoundedWriter::spawn(Vec::new(), 8);
/// assert!(w.try_write(b"hello\n".to_vec()));
/// let stats = w.close().unwrap();
/// assert_eq!(stats.bytes, 6);
/// assert_eq!(stats.written, 1);
/// assert_eq!(stats.dropped, 0);
/// ```
#[derive(Debug)]
pub struct BoundedWriter {
    tx: Option<SyncSender<Vec<u8>>>,
    handle: Option<JoinHandle<std::io::Result<u64>>>,
    written: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

/// Final accounting of one [`BoundedWriter`]'s lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriterStats {
    /// Buffers accepted by the channel and written out.
    pub written: u64,
    /// Bytes written to the underlying sink.
    pub bytes: u64,
    /// Buffers rejected because the channel was full (or the writer
    /// thread had already failed). Exact: every `try_write` is counted
    /// either here or in `written`.
    pub dropped: u64,
}

impl BoundedWriter {
    /// Spawns the writer thread draining a channel of `capacity` buffers
    /// (minimum 1) into `sink`.
    pub fn spawn<W: Write + Send + 'static>(mut sink: W, capacity: usize) -> BoundedWriter {
        let (tx, rx) = sync_channel::<Vec<u8>>(capacity.max(1));
        let written = Arc::new(AtomicU64::new(0));
        let thread_written = written.clone();
        let handle = std::thread::Builder::new()
            .name("pgmp-bounded-writer".into())
            .spawn(move || {
                let mut bytes = 0u64;
                while let Ok(first) = rx.recv() {
                    // Drain everything already queued before flushing, so
                    // a burst costs one flush, not one per buffer.
                    let mut batch = vec![first];
                    while let Ok(more) = rx.try_recv() {
                        batch.push(more);
                    }
                    for buf in &batch {
                        sink.write_all(buf)?;
                        bytes += buf.len() as u64;
                    }
                    thread_written.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    sink.flush()?;
                }
                sink.flush()?;
                Ok(bytes)
            })
            .expect("spawn bounded writer thread");
        BoundedWriter {
            tx: Some(tx),
            handle: Some(handle),
            written,
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Enqueues `buf` without blocking. Returns `false` — and counts the
    /// drop — when the channel is full or the writer thread has died.
    pub fn try_write(&self, buf: Vec<u8>) -> bool {
        let Some(tx) = self.tx.as_ref() else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        match tx.try_send(buf) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Buffers dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Buffers accepted and written so far (may trail `try_write`
    /// successes by the in-flight batch).
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Closes the channel, joins the writer thread, and returns the
    /// final accounting (or the thread's first I/O error).
    pub fn close(mut self) -> std::io::Result<WriterStats> {
        self.tx = None;
        let bytes = match self.handle.take() {
            Some(h) => h
                .join()
                .unwrap_or_else(|_| Err(std::io::Error::other("writer thread panicked")))?,
            None => 0,
        };
        Ok(WriterStats {
            written: self.written.load(Ordering::Relaxed),
            bytes,
            dropped: self.dropped.load(Ordering::Relaxed),
        })
    }
}

impl Drop for BoundedWriter {
    fn drop(&mut self) {
        // Disconnect and let the thread drain what was accepted; join so
        // process exit can't truncate an accepted buffer.
        self.tx = None;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    #[test]
    fn writes_everything_accepted() {
        let w = BoundedWriter::spawn(Vec::new(), 4);
        let mut rejected_tries = 0u64;
        for i in 0..100u32 {
            while !w.try_write(format!("{i}\n").into_bytes()) {
                rejected_tries += 1;
                std::thread::yield_now();
            }
        }
        let stats = w.close().unwrap();
        assert_eq!(stats.written, 100, "every accepted buffer is written");
        assert_eq!(stats.dropped, rejected_tries, "each rejected try counted once");
    }

    #[test]
    fn full_channel_drops_are_counted_exactly() {
        // A sink that blocks until released: the channel must fill and
        // every overflowing try_write must be counted as dropped.
        struct Gate(std::sync::mpsc::Receiver<()>);
        impl Write for Gate {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let _ = self.0.recv();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (release, gate) = channel();
        let w = BoundedWriter::spawn(Gate(gate), 2);
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for _ in 0..50 {
            if w.try_write(b"x".to_vec()) {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "channel of 2 must overflow under 50 sends");
        assert_eq!(w.dropped(), rejected);
        for _ in 0..accepted + 1 {
            let _ = release.send(());
        }
        drop(release);
        let stats = w.close().unwrap();
        assert_eq!(stats.written, accepted);
        assert_eq!(stats.dropped, rejected);
        assert_eq!(stats.written + stats.dropped, 50, "no send unaccounted");
    }

    #[test]
    fn close_surfaces_sink_errors() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let w = BoundedWriter::spawn(Broken, 2);
        w.try_write(b"x".to_vec());
        let err = w.close().expect_err("sink error must surface");
        assert_eq!(err.to_string(), "disk gone");
    }
}
