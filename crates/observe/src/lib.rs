//! # pgmp-observe — tracing, metrics, and decision provenance
//!
//! The engine makes layered, profile-driven decisions: which `case` arm
//! goes first, which forms the incremental cache re-expands, when the
//! adaptive loop swaps a program. This crate makes those decisions
//! observable without slowing down the paths that don't care:
//!
//! - a process-global **event bus** ([`start`], [`emit`], [`stop`]) whose
//!   disabled fast path is a single relaxed atomic load ([`enabled`]) —
//!   bench E15 holds the every-expression interpreter loop to ≤ 1%
//!   overhead with tracing off;
//! - **typed events** ([`TraceEvent`], [`EventKind`]) covering every
//!   layer: per-form expansion spans, Figure-4 `profile-query` calls,
//!   incremental cache hit/miss (with the invalidation *reason*),
//!   adaptive epochs and swap latency, engine/VM run spans, and
//!   persistence byte counts — plus [`EventKind::Decision`], the
//!   optimization-decision provenance each profile-guided macro records
//!   ("this arm went first because its weight was 0.93");
//! - an in-memory **ring buffer** drained to a **JSONL sink** written
//!   with the workspace's [`write_atomic`] discipline (schema pinned at
//!   [`SCHEMA_VERSION`], see `docs/OBSERVABILITY.md`);
//! - a **metrics registry** ([`metrics`]) of counters, gauges, and
//!   log2-bucket histograms, fed automatically from emitted events and
//!   directly by boundary code (the adaptive epoch loop), exported as a
//!   JSON snapshot via `pgmp-run --metrics`;
//! - a strict/lenient **trace reader** ([`read_trace`],
//!   [`read_trace_lenient`]) with typed errors — corrupt traces never
//!   panic — backing the `pgmp-trace` CLI (`summary`, `decisions`,
//!   `explain`, `compare`).
//!
//! ## Example
//!
//! ```
//! use pgmp_observe as observe;
//! let _guard = observe::exclusive(); // serialize bus access across tests
//! observe::start(observe::TraceConfig::default()).unwrap();
//! observe::emit(observe::EventKind::CacheHit { form: 3 });
//! let events = observe::stop();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].kind, observe::EventKind::CacheHit { form: 3 });
//! ```

mod event;
mod explain;
pub mod expose;
pub mod json;
pub mod merge;
mod metrics;
mod reader;
mod sink;
mod stream;

pub use event::{
    DecisionAlt, DecodeError, EventKind, TraceEvent, MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
pub use explain::{explain_query, matches_query};
pub use expose::{render_prometheus, MetricsServer};
pub use merge::{collapse_stacks, dedupe_events, merge_traces, MergeError, Merged};
pub use metrics::{metrics, Histogram, MetricsSnapshot, Registry};
pub use reader::{
    parse_trace, parse_trace_lenient, read_trace, read_trace_lenient, TraceError,
};
pub use sink::{to_jsonl, write_atomic, write_trace};
pub use stream::{BoundedWriter, WriterStats};

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// The one flag every instrumentation site checks before doing any work.
/// Relaxed is sufficient: recording start/stop does not need to order
/// against event payload reads, only to eventually flip the gate.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Span-id allocator: process-global and monotone, so span ids stay
/// unique across recordings. Cross-process uniqueness comes from
/// qualifying with [`instance_id`] — `(inst, span)` is the global key.
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Bumped by every recording start so a span stack left over from a
/// previous recording (a `timer` whose `finish` never ran) can't become
/// the parent of events in the next one.
static RECORDING_EPOCH: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Open span ids on this thread, innermost last, tagged with the
    /// recording epoch they belong to.
    static SPAN_STACK: RefCell<(u64, Vec<u64>)> = const { RefCell::new((0, Vec::new())) };
}

fn with_span_stack<R>(f: impl FnOnce(&mut Vec<u64>) -> R) -> R {
    let epoch = RECORDING_EPOCH.load(Ordering::Relaxed);
    SPAN_STACK.with(|s| {
        let mut st = s.borrow_mut();
        if st.0 != epoch {
            st.0 = epoch;
            st.1.clear();
        }
        f(&mut st.1)
    })
}

/// This process's stable instance id: nonzero, unique-enough across a
/// fleet (48 bits of pid × start-time hash, so it also survives an f64
/// metrics-gauge round-trip exactly), and constant for the process
/// lifetime. Stamped on every emitted event and exchanged on the fleet
/// wire, it is the join key that lets `pgmp-trace merge` correlate
/// traces from different processes. Set `PGMP_INSTANCE_ID` (a nonzero
/// integer) to pin it for deterministic tests.
pub fn instance_id() -> u64 {
    static INSTANCE: OnceLock<u64> = OnceLock::new();
    *INSTANCE.get_or_init(|| {
        if let Some(id) = std::env::var("PGMP_INSTANCE_ID")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .filter(|&id| id != 0)
        {
            return id;
        }
        let pid = std::process::id() as u64;
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        // splitmix64 finalizer over (pid, wall nanos), truncated to 48
        // bits so the id is exactly representable as an f64 gauge.
        let mut x = pid.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ t;
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x & 0xFFFF_FFFF_FFFF).max(1)
    })
}

struct Recording {
    start: Instant,
    next_seq: u64,
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    /// When set, events stream to this writer as they are emitted (the
    /// ring stays empty); `None` is the classic buffer-then-write mode.
    stream: Option<BoundedWriter>,
    /// Events accepted by the stream writer.
    streamed: u64,
}

fn bus() -> &'static Mutex<Option<Recording>> {
    static BUS: OnceLock<Mutex<Option<Recording>>> = OnceLock::new();
    BUS.get_or_init(|| Mutex::new(None))
}

fn lock_bus() -> MutexGuard<'static, Option<Recording>> {
    bus().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Configuration for one recording.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Ring-buffer capacity in events; once full, the oldest events are
    /// dropped (and counted — `summary` reports the gap).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig { capacity: 1 << 16 }
    }
}

/// Starting a recording failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObserveError {
    /// A recording is already active; stop it first. The bus is
    /// process-global, so two concurrent tenants would interleave.
    AlreadyRecording,
    /// The streaming sink could not be opened.
    Io(String),
}

impl std::fmt::Display for ObserveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObserveError::AlreadyRecording => f.write_str("a trace recording is already active"),
            ObserveError::Io(e) => write!(f, "trace sink i/o error: {e}"),
        }
    }
}

impl std::error::Error for ObserveError {}

/// True while a recording is active. This is the disabled-path cost of
/// every instrumentation site: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Begins a recording. Fails if one is already active.
pub fn start(config: TraceConfig) -> Result<(), ObserveError> {
    start_with(config, None)
}

/// Begins a recording that streams events to `path` as they are emitted,
/// through a [`BoundedWriter`] thread bounded at `config.capacity`
/// in-flight events — constant memory however long the recording runs,
/// where [`start`] buffers the whole ring and writes at [`stop`]. When
/// the writer thread falls behind, events are dropped and counted
/// ([`dropped`]), never allowed to block the emitting thread. The sink
/// file is written incrementally (no [`write_atomic`] rename): a crash
/// leaves a valid prefix, which the lenient reader accepts.
pub fn start_streaming(
    path: impl AsRef<std::path::Path>,
    config: TraceConfig,
) -> Result<(), ObserveError> {
    let file = std::fs::File::create(path.as_ref())
        .map_err(|e| ObserveError::Io(e.to_string()))?;
    let writer = BoundedWriter::spawn(std::io::BufWriter::new(file), config.capacity.max(1));
    start_with(config, Some(writer))
}

fn start_with(config: TraceConfig, stream: Option<BoundedWriter>) -> Result<(), ObserveError> {
    let mut g = lock_bus();
    if g.is_some() {
        return Err(ObserveError::AlreadyRecording);
    }
    RECORDING_EPOCH.fetch_add(1, Ordering::Relaxed);
    let ring_capacity = if stream.is_some() { 0 } else { config.capacity.min(1 << 20) };
    *g = Some(Recording {
        start: Instant::now(),
        next_seq: 0,
        ring: VecDeque::with_capacity(ring_capacity),
        capacity: config.capacity.max(1),
        dropped: 0,
        stream,
        streamed: 0,
    });
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Records one point event (no-op when no recording is active). The bus
/// stamps the sequence number, relative timestamp, [`instance_id`], and
/// the enclosing span (the top of this thread's span stack) as `parent`,
/// appends to the ring buffer, and mirrors the event into the metrics
/// registry (`events.<type>` counter; `span.<type>_us` histogram for
/// spans).
pub fn emit(kind: EventKind) {
    if !enabled() {
        return;
    }
    let parent = with_span_stack(|s| s.last().copied());
    emit_spanned(None, parent, kind);
}

fn emit_spanned(span: Option<u64>, parent: Option<u64>, kind: EventKind) {
    if !enabled() {
        return;
    }
    let reg = metrics();
    reg.counter_add(&format!("events.{}", kind.type_tag()), 1);
    if let Some(us) = kind.duration_us() {
        reg.record(&format!("span.{}_us", kind.type_tag()), us);
    }
    let mut g = lock_bus();
    let Some(rec) = g.as_mut() else { return };
    let ev = TraceEvent {
        seq: rec.next_seq,
        t_us: rec.start.elapsed().as_micros() as u64,
        inst: instance_id(),
        span,
        parent,
        kind,
    };
    rec.next_seq += 1;
    if let Some(w) = &rec.stream {
        let mut line = ev.to_json_line().into_bytes();
        line.push(b'\n');
        // The writer counts rejected buffers itself; `dropped()` folds
        // its count in, so every emit lands in exactly one tally.
        if w.try_write(line) {
            rec.streamed += 1;
        }
        return;
    }
    if rec.ring.len() == rec.capacity {
        rec.ring.pop_front();
        rec.dropped += 1;
    }
    rec.ring.push_back(ev);
}

/// An open span: the clock started by [`timer`] plus the span id pushed
/// onto this thread's span stack. Close it with [`finish`], on the same
/// thread, to emit the span event with its `span`/`parent` links.
#[derive(Debug)]
pub struct SpanTimer {
    start: Instant,
    id: u64,
}

impl SpanTimer {
    /// The bus-assigned span id (stamped as `span` on the close event
    /// and as `parent` on everything emitted inside the span).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Microseconds elapsed since the span opened.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

/// Opens a span: `Some(SpanTimer)` while recording, `None` (free)
/// otherwise. The span id goes onto this thread's span stack, so events
/// emitted before the matching [`finish`] — including nested spans —
/// record it as their `parent`. Pair with [`finish`]; a span that is
/// never finished is simply absent from the trace (its children then
/// name a parent id no event carries, which readers treat as a root).
#[inline]
pub fn timer() -> Option<SpanTimer> {
    if !enabled() {
        return None;
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    with_span_stack(|s| s.push(id));
    Some(SpanTimer {
        start: Instant::now(),
        id,
    })
}

/// Closes a span started with [`timer`]: pops it off the span stack
/// (discarding any nested spans that never finished), builds the event
/// from the elapsed microseconds, and emits it with `span` = its id and
/// `parent` = the enclosing span. Free when the timer was `None`.
pub fn finish(timer: Option<SpanTimer>, make: impl FnOnce(u64) -> EventKind) {
    let Some(t) = timer else { return };
    let duration_us = t.start.elapsed().as_micros() as u64;
    let parent = with_span_stack(|s| {
        if let Some(pos) = s.iter().rposition(|&id| id == t.id) {
            s.truncate(pos);
        }
        s.last().copied()
    });
    emit_spanned(Some(t.id), parent, make(duration_us));
}

/// Events dropped so far in the active recording — by the ring buffer
/// (buffered mode) or by the bounded stream writer (streaming mode).
pub fn dropped() -> u64 {
    lock_bus().as_ref().map_or(0, |r| {
        r.dropped + r.stream.as_ref().map_or(0, BoundedWriter::dropped)
    })
}

/// Copies out the events recorded so far without ending the recording.
pub fn snapshot_events() -> Vec<TraceEvent> {
    lock_bus()
        .as_ref()
        .map_or_else(Vec::new, |r| r.ring.iter().cloned().collect())
}

/// Ends the recording and returns every buffered event (oldest first).
/// Returns an empty vec when no recording was active. For a streaming
/// recording this closes the sink (best-effort) and returns an empty
/// vec — use [`stop_streaming`] to observe the sink accounting.
pub fn stop() -> Vec<TraceEvent> {
    ENABLED.store(false, Ordering::Relaxed);
    let mut g = lock_bus();
    g.take().map_or_else(Vec::new, |mut r| {
        if let Some(w) = r.stream.take() {
            let _ = w.close();
        }
        r.ring.into()
    })
}

/// Accounting of one streaming recording, returned by [`stop_streaming`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Events accepted by the writer and durably written.
    pub events: u64,
    /// Bytes written to the sink.
    pub bytes: u64,
    /// Events dropped because the writer thread was behind.
    pub dropped: u64,
}

/// Ends a streaming recording started with [`start_streaming`]: closes
/// the sink, joins the writer thread, and returns the exact accounting.
/// Also accepts a buffered recording (`events`/`bytes` are then 0) so
/// callers need not track which mode they started.
pub fn stop_streaming() -> std::io::Result<StreamSummary> {
    ENABLED.store(false, Ordering::Relaxed);
    let rec = lock_bus().take();
    let Some(mut rec) = rec else {
        return Ok(StreamSummary::default());
    };
    let Some(w) = rec.stream.take() else {
        return Ok(StreamSummary {
            events: 0,
            bytes: 0,
            dropped: rec.dropped,
        });
    };
    let stats = w.close()?;
    Ok(StreamSummary {
        events: stats.written,
        bytes: stats.bytes,
        dropped: rec.dropped + stats.dropped,
    })
}

/// Ends the recording and writes the events to `path` as JSONL via
/// [`write_atomic`]. Returns `(event_count, bytes_written)`.
pub fn stop_and_write(path: impl AsRef<std::path::Path>) -> std::io::Result<(usize, u64)> {
    let events = stop();
    let bytes = write_trace(path, &events)?;
    Ok((events.len(), bytes))
}

/// Serializes tenants of the process-global bus. Tests (and any driver
/// embedding several engines) hold this guard around
/// [`start`]`..`[`stop`] so parallel test threads don't interleave
/// recordings. Poisoning is ignored: a panicking test must not take the
/// whole suite down with it.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest() {
        let _g = exclusive();
        start(TraceConfig { capacity: 2 }).unwrap();
        emit(EventKind::CacheHit { form: 0 });
        emit(EventKind::CacheHit { form: 1 });
        emit(EventKind::CacheHit { form: 2 });
        assert_eq!(dropped(), 1);
        let events = stop();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::CacheHit { form: 1 });
        assert_eq!(events[1].seq, 2);
    }

    #[test]
    fn emit_without_recording_is_noop() {
        let _g = exclusive();
        assert!(!enabled());
        emit(EventKind::CacheHit { form: 9 });
        assert!(stop().is_empty());
    }

    #[test]
    fn double_start_rejected() {
        let _g = exclusive();
        start(TraceConfig::default()).unwrap();
        assert_eq!(
            start(TraceConfig::default()),
            Err(ObserveError::AlreadyRecording)
        );
        stop();
    }

    #[test]
    fn streaming_writes_during_recording() {
        let _g = exclusive();
        let dir = std::env::temp_dir().join(format!("pgmp-obs-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live.jsonl");
        start_streaming(&path, TraceConfig { capacity: 1 << 10 }).unwrap();
        for form in 0..200 {
            emit(EventKind::CacheHit { form });
        }
        let summary = stop_streaming().unwrap();
        assert_eq!(summary.events + summary.dropped, 200);
        let events = read_trace(&path).unwrap();
        assert_eq!(events.len() as u64, summary.events);
        assert_eq!(events[0].kind, EventKind::CacheHit { form: 0 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stop_streaming_on_buffered_recording_reports_ring_drops() {
        let _g = exclusive();
        start(TraceConfig { capacity: 1 }).unwrap();
        emit(EventKind::CacheHit { form: 0 });
        emit(EventKind::CacheHit { form: 1 });
        let summary = stop_streaming().unwrap();
        assert_eq!(summary.dropped, 1);
        assert_eq!(summary.events, 0);
    }

    #[test]
    fn spans_nest_via_thread_local_stack() {
        let _g = exclusive();
        start(TraceConfig::default()).unwrap();
        let outer = timer();
        let outer_id = outer.as_ref().unwrap().id();
        emit(EventKind::CacheHit { form: 1 });
        let inner = timer();
        let inner_id = inner.as_ref().unwrap().id();
        finish(inner, |duration_us| EventKind::SlotResolve {
            resolved: 1,
            duration_us,
        });
        finish(outer, |duration_us| EventKind::Run {
            file: "x.scm".into(),
            mode: "none".into(),
            duration_us,
        });
        let events = stop();
        assert_eq!(events.len(), 3);
        // The point event inside the outer span is parented to it.
        assert_eq!(events[0].span, None);
        assert_eq!(events[0].parent, Some(outer_id));
        // The inner span closes first and names the outer as parent.
        assert_eq!(events[1].span, Some(inner_id));
        assert_eq!(events[1].parent, Some(outer_id));
        // The outer span is a root.
        assert_eq!(events[2].span, Some(outer_id));
        assert_eq!(events[2].parent, None);
        assert!(events.iter().all(|e| e.inst == instance_id()));
        assert_ne!(instance_id(), 0);
    }

    #[test]
    fn unfinished_nested_span_does_not_leak_into_siblings() {
        let _g = exclusive();
        start(TraceConfig::default()).unwrap();
        let outer = timer();
        let outer_id = outer.as_ref().unwrap().id();
        let leaked = timer(); // never finished
        drop(leaked);
        finish(outer, |duration_us| EventKind::SlotResolve {
            resolved: 0,
            duration_us,
        });
        // Closing the outer span discarded the leaked child, so the next
        // top-level event is a root again.
        emit(EventKind::CacheHit { form: 2 });
        let events = stop();
        assert_eq!(events[0].span, Some(outer_id));
        assert_eq!(events[1].parent, None);
    }

    #[test]
    fn events_feed_metrics() {
        let _g = exclusive();
        metrics().reset();
        start(TraceConfig::default()).unwrap();
        emit(EventKind::Run {
            file: "x.scm".into(),
            mode: "none".into(),
            duration_us: 42,
        });
        stop();
        assert_eq!(metrics().counter("events.run"), 1);
        let snap = metrics().snapshot();
        assert_eq!(snap.histograms["span.run_us"].sum(), 42);
    }
}
