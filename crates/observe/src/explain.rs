//! Provenance queries over recorded traces: which events consulted a
//! given profile point, decision site, or cached form?
//!
//! This is the engine behind `pgmp-trace explain`, exposed as a library
//! so other tools can reuse it — `pgmp-profile diff --explain` walks a
//! diff's top movers through [`explain_query`] to show, for each point
//! whose weight moved, every optimization decision that consulted it.

use crate::{EventKind, TraceEvent};
use std::fmt::Write as _;

/// True when `query` names this event: a substring of its point/site/file
/// labels, or (for cache events) an exact form index.
pub fn matches_query(kind: &EventKind, query: &str) -> bool {
    let form_query: Option<u32> = query.parse().ok();
    match kind {
        EventKind::Decision {
            site,
            decision_point,
            ..
        } => site.contains(query) || decision_point.contains(query),
        EventKind::ProfileQuery { point, .. } | EventKind::ProfileCount { point, .. } => {
            point.contains(query)
        }
        EventKind::CacheHit { form } | EventKind::CacheMiss { form, .. } => {
            Some(*form) == form_query
        }
        EventKind::ProfileRebase {
            point, new_point, ..
        } => {
            point.contains(query)
                || new_point.as_ref().is_some_and(|p| p.contains(query))
        }
        _ => false,
    }
}

fn fmt_weight(w: Option<f64>) -> String {
    match w {
        Some(x) => format!("{x:.4}"),
        None => "-".to_string(),
    }
}

/// Renders provenance for every event matching `query`, one block per
/// event, and returns the rendered text with the match count. The text
/// ends with a newline when non-empty; zero matches render as empty.
pub fn explain_query(events: &[TraceEvent], query: &str) -> (String, usize) {
    let mut out = String::new();
    let mut n = 0;
    for e in events {
        if !matches_query(&e.kind, query) {
            continue;
        }
        n += 1;
        match &e.kind {
            EventKind::Decision {
                site,
                decision_point,
                alternatives,
                chosen,
                rank,
            } => {
                let _ = writeln!(out, "[{}] decision `{site}` at {decision_point}", e.seq);
                for (i, a) in alternatives.iter().enumerate() {
                    let pos = chosen.iter().position(|c| c == &a.label);
                    let placed = match pos {
                        Some(p) => format!("emitted at position {p}"),
                        None => "not emitted".to_string(),
                    };
                    let _ = writeln!(
                        out,
                        "    alt {i}: {} weight {} -> {placed}",
                        a.label,
                        fmt_weight(a.weight)
                    );
                }
                let _ = writeln!(
                    out,
                    "    chosen order: [{}] — source-order rank of winner: {rank}{}",
                    chosen.join(" "),
                    if *rank > 0 {
                        " (profile data reordered this form)"
                    } else {
                        " (source order kept)"
                    }
                );
            }
            EventKind::ProfileQuery {
                point,
                weight,
                available,
            } => {
                let _ = writeln!(
                    out,
                    "[{}] profile-query {point} -> weight {} (profile {})",
                    e.seq,
                    fmt_weight(*weight),
                    if *available { "available" } else { "absent" },
                );
            }
            EventKind::ProfileCount { point, count } => {
                let _ = writeln!(
                    out,
                    "[{}] profile-count {point} -> {}",
                    e.seq,
                    fmt_weight(*count)
                );
            }
            EventKind::CacheHit { form } => {
                let _ = writeln!(out, "[{}] form {form}: cache hit", e.seq);
            }
            EventKind::CacheMiss { form, reason } => {
                let _ = writeln!(out, "[{}] form {form}: re-expanded ({reason})", e.seq);
            }
            EventKind::ProfileRebase {
                point,
                new_point,
                tier,
                confidence,
                old_weight,
                new_weight,
            } => {
                let dest = match new_point {
                    Some(p) => format!("-> {p}"),
                    None => "dropped".to_string(),
                };
                let _ = writeln!(
                    out,
                    "[{}] rebase {point} {dest} ({tier}, confidence {confidence:.4}, \
                     weight {old_weight:.4} -> {new_weight:.4})",
                    e.seq,
                );
            }
            _ => {}
        }
    }
    (out, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecisionAlt;

    fn ev(seq: u64, kind: EventKind) -> TraceEvent {
        TraceEvent::new(seq, 0, kind)
    }

    #[test]
    fn decisions_match_by_site_and_point_substring() {
        let events = vec![
            ev(
                1,
                EventKind::Decision {
                    site: "exclusive-cond".into(),
                    decision_point: "prog.scm:10-25".into(),
                    alternatives: vec![DecisionAlt {
                        label: "a".into(),
                        weight: Some(0.5),
                    }],
                    chosen: vec!["a".into()],
                    rank: 1,
                },
            ),
            ev(
                2,
                EventKind::ProfileQuery {
                    point: "prog.scm:10-25".into(),
                    weight: Some(0.5),
                    available: true,
                },
            ),
            ev(3, EventKind::CacheHit { form: 7 }),
        ];
        let (text, n) = explain_query(&events, "prog.scm:10-25");
        assert_eq!(n, 2);
        assert!(text.contains("decision `exclusive-cond`"));
        assert!(text.contains("profile-query prog.scm:10-25"));
        assert!(text.contains("(profile data reordered this form)"));

        let (_, by_form) = explain_query(&events, "7");
        assert_eq!(by_form, 1);

        let (empty, none) = explain_query(&events, "no-such-point");
        assert_eq!(none, 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn rebase_events_match_by_old_and_new_point() {
        let events = vec![
            ev(
                1,
                EventKind::ProfileRebase {
                    point: "m.scm:10-20".into(),
                    new_point: Some("m.scm:30-40".into()),
                    tier: "shifted".into(),
                    confidence: 1.0,
                    old_weight: 0.5,
                    new_weight: 0.5,
                },
            ),
            ev(
                2,
                EventKind::ProfileRebase {
                    point: "m.scm:50-60".into(),
                    new_point: None,
                    tier: "dead".into(),
                    confidence: 0.0,
                    old_weight: 0.25,
                    new_weight: 0.0,
                },
            ),
        ];
        let (text, n) = explain_query(&events, "m.scm:30-40");
        assert_eq!(n, 1, "new-point substring matches");
        assert!(text.contains("rebase m.scm:10-20 -> m.scm:30-40"));
        assert!(text.contains("(shifted, confidence 1.0000"));

        let (text, n) = explain_query(&events, "m.scm:50-60");
        assert_eq!(n, 1);
        assert!(text.contains("rebase m.scm:50-60 dropped (dead"));
    }
}
