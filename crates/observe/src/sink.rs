//! Durable output: atomic file writes and the JSONL trace sink.

use crate::event::TraceEvent;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-unique suffix for temp file names, so concurrent writers in one
/// process never collide on the same scratch path.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `contents` to `path` atomically: the bytes land in a temp file in
/// the same directory, are fsynced, and the temp file is renamed over the
/// destination. Readers either see the old file or the complete new one —
/// never a torn mix — and a crash mid-write leaves the destination intact.
///
/// This is the canonical implementation of the store discipline shared by
/// every format the workspace persists (profiles, sessions, adaptive
/// snapshots, traces, metrics snapshots); `pgmp_profiler::store` re-exports
/// it under its historical path.
///
/// # Errors
///
/// Returns the underlying I/O error; the temp file is removed on failure.
pub fn write_atomic(path: impl AsRef<Path>, contents: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let base = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "profile".to_string());
    let tmp = dir.join(format!(
        ".{base}.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let write = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return write;
    }
    // Durability of the rename itself needs the directory entry flushed;
    // best-effort — the data is already safe either way.
    #[cfg(unix)]
    if let Ok(d) = std::fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Renders `events` as JSONL (one canonical line per event, trailing
/// newline after each).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json_line());
        out.push('\n');
    }
    out
}

/// Writes `events` to `path` as JSONL with the [`write_atomic`]
/// discipline. Returns the byte count written.
pub fn write_trace(path: impl AsRef<Path>, events: &[TraceEvent]) -> std::io::Result<u64> {
    let text = to_jsonl(events);
    write_atomic(path, &text)?;
    Ok(text.len() as u64)
}
