//! Reading traces back: strict and lenient JSONL readers with typed
//! errors. Corrupt input — truncated tail lines, interleaved garbage,
//! version skew — produces a [`TraceError`], never a panic, matching the
//! workspace's store discipline.

use crate::event::{DecodeError, TraceEvent};
use crate::json;
use std::fmt;
use std::path::{Path, PathBuf};

/// Why a trace could not be (fully) read.
#[derive(Debug)]
pub enum TraceError {
    /// The file could not be opened or read.
    Io { path: PathBuf, source: std::io::Error },
    /// A line was not valid JSON (truncation lands here).
    Json { line: usize, source: json::JsonError },
    /// A line parsed as JSON but was not a valid versioned event.
    Event { line: usize, source: DecodeError },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { path, source } => {
                write!(f, "cannot read trace {}: {source}", path.display())
            }
            TraceError::Json { line, source } => {
                write!(f, "trace line {line}: invalid JSON ({source})")
            }
            TraceError::Event { line, source } => {
                write!(f, "trace line {line}: {source}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io { source, .. } => Some(source),
            TraceError::Json { source, .. } => Some(source),
            TraceError::Event { source, .. } => Some(source),
        }
    }
}

impl TraceError {
    /// The 1-based line number the error is about, if line-scoped.
    pub fn line(&self) -> Option<usize> {
        match self {
            TraceError::Io { .. } => None,
            TraceError::Json { line, .. } | TraceError::Event { line, .. } => Some(*line),
        }
    }
}

/// Parses trace text strictly: every non-empty line must be a valid
/// versioned event. Returns the first error encountered.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, TraceError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|source| TraceError::Json { line: lineno, source })?;
        let ev = TraceEvent::from_json(&v)
            .map_err(|source| TraceError::Event { line: lineno, source })?;
        events.push(ev);
    }
    Ok(events)
}

/// Parses trace text leniently: bad lines become errors in the second
/// return slot and parsing continues. Useful for inspecting a trace whose
/// tail was truncated by a crash.
pub fn parse_trace_lenient(text: &str) -> (Vec<TraceEvent>, Vec<TraceError>) {
    let mut events = Vec::new();
    let mut errors = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        match json::parse(line) {
            Err(source) => errors.push(TraceError::Json { line: lineno, source }),
            Ok(v) => match TraceEvent::from_json(&v) {
                Err(source) => errors.push(TraceError::Event { line: lineno, source }),
                Ok(ev) => events.push(ev),
            },
        }
    }
    (events, errors)
}

fn read_file(path: &Path) -> Result<String, TraceError> {
    std::fs::read_to_string(path).map_err(|source| TraceError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Reads and strictly parses a trace file.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Vec<TraceEvent>, TraceError> {
    parse_trace(&read_file(path.as_ref())?)
}

/// Reads a trace file leniently; see [`parse_trace_lenient`].
pub fn read_trace_lenient(
    path: impl AsRef<Path>,
) -> Result<(Vec<TraceEvent>, Vec<TraceError>), TraceError> {
    Ok(parse_trace_lenient(&read_file(path.as_ref())?))
}
