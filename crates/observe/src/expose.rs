//! Live metrics exposition: a std-only, bounded, single-threaded HTTP
//! listener serving the process-global metrics registry.
//!
//! Long-lived processes (`pgmp-profiled`, `pgmp-run --adaptive`) bind it
//! with `--metrics-listen 127.0.0.1:0` and scrapers poll:
//!
//! - `GET /metrics` — Prometheus text format ([`render_prometheus`]),
//!   every name prefixed `pgmp_` with dots mapped to underscores, in
//!   deterministic (sorted) order;
//! - `GET /metrics.json` — the same snapshot as the
//!   [`MetricsSnapshot::to_json`] document `pgmp-run --metrics` prints.
//!
//! The listener is deliberately minimal: one thread, one connection at a
//! time, a 4 KiB request cap, a read timeout, `Connection: close` on
//! every response. Serving a scrape takes one registry snapshot (a
//! mutex hold and three map clones) — **no instrumentation is added to
//! any hot path**; the cost is entirely on the scraper's schedule.

use crate::metrics::{metrics, MetricsSnapshot};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Turns a metric name into a valid Prometheus identifier: `pgmp_`
/// prefix, every character outside `[A-Za-z0-9_]` replaced by `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("pgmp_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Renders a snapshot as Prometheus text exposition format (version
/// 0.0.4): counters, then gauges, then histograms, each sorted by name,
/// so equal snapshots render byte-identically (the output is
/// golden-pinned by `tests/expose.rs`). Histograms expose the registry's
/// log2 buckets cumulatively: bucket `[2^(i-1), 2^i)` renders as
/// `le="2^i"` (its exclusive upper bound), zeros as `le="0"`, plus the
/// standard `+Inf`/`_sum`/`_count` series.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cum = 0u64;
        for (lo, count) in h.nonzero_buckets() {
            cum += count;
            let le = if lo == 0 { 0 } else { lo * 2 };
            out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
        out.push_str(&format!("{n}_sum {}\n", h.sum()));
        out.push_str(&format!("{n}_count {}\n", h.count()));
    }
    out
}

/// The live exposition listener. Binding spawns one serving thread;
/// dropping the server stops it and joins the thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an OS-assigned port) and
    /// starts serving the process-global registry.
    pub fn bind(addr: &str) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("pgmp-metrics".into())
            .spawn(move || serve_loop(listener, &stop2))?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_loop(listener: TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One connection at a time, bounded reads, best-effort
                // writes: a slow or hostile scraper can stall this
                // thread for at most the read timeout, never the
                // process being observed.
                let _ = handle_conn(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(25));
            }
            Err(_) => thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn handle_conn(mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    // Read until the header terminator or the cap; the request line is
    // all we route on.
    loop {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") || len == buf.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => {
                metrics().counter_add("observe.scrapes", 1);
                (
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    render_prometheus(&metrics().snapshot()),
                )
            }
            "/metrics.json" => {
                metrics().counter_add("observe.scrapes", 1);
                (
                    "200 OK",
                    "application/json",
                    format!("{}\n", metrics().snapshot().to_json()),
                )
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found (try /metrics or /metrics.json)\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;
    use std::collections::BTreeMap;

    #[test]
    fn renderer_is_deterministic_and_prefixed() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(3);
        h.record(3);
        let snap = MetricsSnapshot {
            counters: [("events.run".to_string(), 2u64)].into_iter().collect(),
            gauges: [("adaptive.fleet_drift".to_string(), 0.25f64)]
                .into_iter()
                .collect(),
            histograms: [("span.run_us".to_string(), h)].into_iter().collect(),
        };
        let text = render_prometheus(&snap);
        assert_eq!(
            text,
            "# TYPE pgmp_events_run counter\n\
             pgmp_events_run 2\n\
             # TYPE pgmp_adaptive_fleet_drift gauge\n\
             pgmp_adaptive_fleet_drift 0.25\n\
             # TYPE pgmp_span_run_us histogram\n\
             pgmp_span_run_us_bucket{le=\"0\"} 1\n\
             pgmp_span_run_us_bucket{le=\"4\"} 3\n\
             pgmp_span_run_us_bucket{le=\"+Inf\"} 3\n\
             pgmp_span_run_us_sum 6\n\
             pgmp_span_run_us_count 3\n"
        );
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let snap = MetricsSnapshot {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        assert_eq!(render_prometheus(&snap), "");
    }
}
