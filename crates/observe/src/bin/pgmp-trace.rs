//! `pgmp-trace` — inspect JSONL traces recorded by `pgmp-run --trace`.
//!
//! ```text
//! pgmp-trace summary <trace.jsonl>             per-type counts, span time, drops
//! pgmp-trace decisions <trace.jsonl>           every optimization decision, one per line
//! pgmp-trace explain <trace.jsonl> <query>     provenance for a form index or point/site substring
//! pgmp-trace compare <a.jsonl> <b.jsonl>       decisions whose outcome differs between two traces
//! pgmp-trace merge <t.jsonl>... [-o out]       interleave N process traces into one causal timeline
//! pgmp-trace flame <t.jsonl>...                collapsed flamegraph stacks from span trees
//! ```
//!
//! Traces are read leniently: corrupt lines (a truncated tail, interleaved
//! garbage) are reported on stderr and skipped, so a crash mid-write never
//! hides the events that did land.

use pgmp_observe::{
    collapse_stacks, dedupe_events, explain_query, merge_traces, read_trace_lenient, to_jsonl,
    DecisionAlt, EventKind, TraceEvent,
};
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "usage: pgmp-trace <command> ...
  summary <trace.jsonl>            event counts, span time by type, ring-buffer drops
  decisions <trace.jsonl>          optimization decisions with chosen order and rank
  explain <trace.jsonl> <query>    provenance for a decision point, profile point, or form index
  compare <a.jsonl> <b.jsonl>      decisions whose chosen order differs between two traces
  merge <trace.jsonl>... [-o out]  interleave per-process traces into one causal timeline
                                   (happens-before from fleet frames, no clock trust)
  flame <trace.jsonl>...           collapsed stacks (flamegraph.pl format) from span trees
                                   and sampler estimates; merges multiple traces first";

/// Appends a line to the output buffer (infallible — `String` sink).
macro_rules! outln {
    ($out:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($out, $($arg)*);
    }};
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let mut out = String::new();
    let result = match strs.as_slice() {
        ["summary", path] => load(path).map(|t| summary(&mut out, &t)),
        ["decisions", path] => load(path).map(|t| decisions(&mut out, &t)),
        ["explain", path, query] => load(path).map(|t| explain(&mut out, &t, query)),
        ["compare", a, b] => match (load(a), load(b)) {
            (Ok(ta), Ok(tb)) => {
                compare(&mut out, &ta, &tb);
                Ok(())
            }
            (Err(e), _) | (_, Err(e)) => Err(e),
        },
        ["merge", rest @ ..] if !rest.is_empty() => merge_cmd(&mut out, rest),
        ["flame", paths @ ..] if !paths.is_empty() => flame_cmd(&mut out, paths),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    // One buffered write; a closed pipe (`pgmp-trace ... | head`) is not
    // an error worth dying loudly over.
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(out.as_bytes());
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pgmp-trace: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Reads a trace leniently, reporting (but surviving) corrupt lines.
fn load(path: &str) -> Result<Vec<TraceEvent>, String> {
    let (events, errors) = read_trace_lenient(path).map_err(|e| e.to_string())?;
    for e in &errors {
        eprintln!("pgmp-trace: warning: {e} (line skipped)");
    }
    Ok(events)
}

/// `merge <trace>... [-o out.jsonl]`: one causal timeline from N
/// per-process traces, ordered by happens-before edges derived from the
/// fleet correlation events — never by cross-host timestamps.
fn merge_cmd(out: &mut String, args: &[&str]) -> Result<(), String> {
    let mut paths: Vec<&str> = Vec::new();
    let mut out_path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if *a == "-o" {
            out_path = Some(it.next().ok_or("-o needs a path")?);
        } else {
            paths.push(a);
        }
    }
    if paths.is_empty() {
        return Err("merge needs at least one trace".into());
    }
    let traces = paths
        .iter()
        .map(|p| load(p))
        .collect::<Result<Vec<_>, _>>()?;
    let merged = merge_traces(&traces).map_err(|e| e.to_string())?;
    eprintln!(
        "pgmp-trace: merged {} trace(s): {} event(s), {} cross-process edge(s), {} duplicate(s) dropped",
        paths.len(),
        merged.events.len(),
        merged.cross_edges,
        merged.deduped
    );
    let text = to_jsonl(&merged.events);
    match out_path {
        Some(p) => std::fs::write(p, text).map_err(|e| format!("{p}: {e}"))?,
        None => out.push_str(&text),
    }
    Ok(())
}

/// `flame <trace>...`: collapsed stacks, one `frame;frame count` line
/// per unique stack — pipe into `flamegraph.pl`. Multiple traces are
/// causally merged first so one flame graph spans the whole fleet.
fn flame_cmd(out: &mut String, paths: &[&str]) -> Result<(), String> {
    let traces = paths
        .iter()
        .map(|p| load(p))
        .collect::<Result<Vec<_>, _>>()?;
    let events = if traces.len() == 1 {
        traces.into_iter().next().unwrap()
    } else {
        merge_traces(&traces).map_err(|e| e.to_string())?.events
    };
    let stacks = collapse_stacks(&events);
    if stacks.is_empty() {
        eprintln!("pgmp-trace: no spans or sampler estimates in trace");
    }
    out.push_str(&stacks);
    Ok(())
}

/// Sequence-number gaps mean the ring buffer dropped events mid-recording.
fn seq_gaps(events: &[TraceEvent]) -> u64 {
    let mut gaps = 0;
    for w in events.windows(2) {
        gaps += w[1].seq.saturating_sub(w[0].seq + 1);
    }
    gaps
}

fn summary(out: &mut String, events: &[TraceEvent]) {
    if events.is_empty() {
        outln!(out, "empty trace");
        return;
    }
    let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut span_us: BTreeMap<&str, u64> = BTreeMap::new();
    let mut miss_reasons: BTreeMap<String, u64> = BTreeMap::new();
    for e in events {
        *counts.entry(e.kind.type_tag()).or_insert(0) += 1;
        if let Some(us) = e.kind.duration_us() {
            *span_us.entry(e.kind.type_tag()).or_insert(0) += us;
        }
        if let EventKind::CacheMiss { reason, .. } = &e.kind {
            // Normalize `drifted-point:<p>` so the table groups by cause.
            let key = reason.split_once(':').map_or(reason.as_str(), |(h, _)| h);
            *miss_reasons.entry(key.to_string()).or_insert(0) += 1;
        }
    }
    let wall = events.last().map_or(0, |e| e.t_us) - events.first().map_or(0, |e| e.t_us);
    outln!(
        out,
        "{} events over {:.3} ms (seq {}..{})",
        events.len(),
        wall as f64 / 1000.0,
        events.first().unwrap().seq,
        events.last().unwrap().seq,
    );
    let gaps = seq_gaps(events);
    if gaps > 0 {
        outln!(
            out,
            "WARNING: {gaps} events dropped by the ring buffer (sequence gaps)"
        );
    }
    outln!(out, "{:<22} {:>8} {:>14}", "type", "count", "span total");
    for (tag, n) in &counts {
        match span_us.get(tag) {
            Some(us) => outln!(out, "{tag:<22} {n:>8} {:>11.3} ms", *us as f64 / 1000.0),
            None => outln!(out, "{tag:<22} {n:>8} {:>14}", "-"),
        }
    }
    if !miss_reasons.is_empty() {
        outln!(out, "cache-miss reasons:");
        for (reason, n) in &miss_reasons {
            outln!(out, "  {reason:<20} {n}");
        }
    }
    let n_decisions = counts.get("decision").copied().unwrap_or(0);
    if n_decisions > 0 {
        outln!(
            out,
            "{n_decisions} optimization decisions (see `pgmp-trace decisions`)"
        );
    }
}

fn fmt_weight(w: Option<f64>) -> String {
    match w {
        Some(x) => format!("{x:.4}"),
        None => "-".to_string(),
    }
}

fn fmt_alts(alts: &[DecisionAlt]) -> String {
    alts.iter()
        .map(|a| format!("{}={}", a.label, fmt_weight(a.weight)))
        .collect::<Vec<_>>()
        .join(" ")
}

fn decisions(out: &mut String, events: &[TraceEvent]) {
    let mut n = 0;
    for e in events {
        if let EventKind::Decision {
            site,
            decision_point,
            alternatives,
            chosen,
            rank,
        } = &e.kind
        {
            n += 1;
            outln!(
                out,
                "[{}] {site} at {decision_point}: chose [{}] rank {rank}{} | weights: {}",
                e.seq,
                chosen.join(" "),
                if *rank > 0 { " (reordered)" } else { "" },
                fmt_alts(alternatives),
            );
        }
    }
    if n == 0 {
        outln!(out, "no decision events in trace");
    }
}

/// Provenance rendering lives in the library (`pgmp_observe::explain_query`)
/// so `pgmp-profile diff --explain` shares it byte for byte.
///
/// The trace may be a `pgmp-trace merge` output whose inputs overlapped
/// (the same daemon trace merged twice, a re-merged merge): events are
/// first deduplicated by `(inst, seq)` so no decision or counter is
/// explained twice.
fn explain(out: &mut String, events: &[TraceEvent], query: &str) {
    let events = dedupe_events(events.to_vec());
    let (text, n) = explain_query(&events, query);
    out.push_str(&text);
    if n == 0 {
        outln!(
            out,
            "nothing in trace matches `{query}` (try a decision site, point, or form index)"
        );
    }
}

/// The last decision per (site, decision_point) — the outcome that stuck.
fn final_decisions(events: &[TraceEvent]) -> BTreeMap<(String, String), (Vec<String>, u32)> {
    let mut map = BTreeMap::new();
    for e in events {
        if let EventKind::Decision {
            site,
            decision_point,
            chosen,
            rank,
            ..
        } = &e.kind
        {
            map.insert(
                (site.clone(), decision_point.clone()),
                (chosen.clone(), *rank),
            );
        }
    }
    map
}

fn compare(out: &mut String, a: &[TraceEvent], b: &[TraceEvent]) {
    let da = final_decisions(a);
    let db = final_decisions(b);
    let mut flips = 0;
    let mut same = 0;
    for (key, (chosen_a, rank_a)) in &da {
        match db.get(key) {
            None => outln!(
                out,
                "only in first:  {} at {} chose [{}]",
                key.0,
                key.1,
                chosen_a.join(" ")
            ),
            Some((chosen_b, rank_b)) if chosen_a != chosen_b => {
                flips += 1;
                outln!(
                    out,
                    "FLIP: {} at {}: [{}] (rank {rank_a}) -> [{}] (rank {rank_b})",
                    key.0,
                    key.1,
                    chosen_a.join(" "),
                    chosen_b.join(" "),
                );
            }
            Some(_) => same += 1,
        }
    }
    for (key, (chosen_b, _)) in &db {
        if !da.contains_key(key) {
            outln!(
                out,
                "only in second: {} at {} chose [{}]",
                key.0,
                key.1,
                chosen_b.join(" ")
            );
        }
    }
    outln!(out, "{flips} decision(s) flipped, {same} unchanged");
}
