//! A minimal JSON value model with a writer and a parser.
//!
//! The trace format (JSONL, one event object per line) and the metrics
//! snapshot both need JSON, and this workspace builds offline with no
//! third-party dependencies, so we carry a small, strict implementation:
//! objects preserve insertion order (the schema fixture test pins exact
//! bytes), numbers are `f64` (every field in the schema fits in the 53-bit
//! mantissa), and parse errors carry a byte offset instead of panicking.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object as an ordered list of pairs; duplicate keys keep the first.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{it}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// JSON has no NaN/Infinity; we clamp them to null so the writer can
/// never produce an unparseable line.
fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if n.is_finite() {
        // `{}` on f64 is Rust's shortest-roundtrip formatting, which is
        // stable across versions and what the schema fixture pins.
        write!(f, "{n}")
    } else {
        f.write_str("null")
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

use std::fmt::Write as _;

/// A parse failure: byte offset into the input plus a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if !pairs.iter().any(|(k, _)| *k == key) {
                pairs.push((key, val));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte sequence is valid).
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let s = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Str("x\"y\n".into())),
            ("c".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\":}", "tru", "1.2.3", "{}x"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert!(parse("\"\\ud83d\"").is_err());
    }
}
