//! Causal merging of per-process traces and collapsed-stack export.
//!
//! A fleet session produces one JSONL trace per process — the daemon,
//! each publisher, each subscriber. Wall-clock timestamps cannot order
//! them (`t_us` is relative to each recording's start, and fleet hosts
//! share no clock), but the wire protocol gives us real happens-before
//! edges:
//!
//! - a publisher's `publish_delta` `(inst, epoch)` precedes the daemon's
//!   `ingest_batch` with the same `(peer_inst, epoch)`;
//! - the daemon's `fleet_hello` for a peer precedes that peer's
//!   `fleet_connect` (the peer only emits it after reading `Ack`);
//! - the daemon's `merge` `(inst, epoch)` precedes every subscriber's
//!   `fleet_apply` with the same `(daemon_inst, epoch)`.
//!
//! [`merge_traces`] combines those cross-process edges with each trace's
//! own total order (its `seq` chain) and emits a deterministic
//! topological order — one causal timeline. [`collapse_stacks`] renders
//! the v2 span hierarchy (`span`/`parent` ids, qualified by `inst`) as
//! flamegraph-compatible collapsed-stack text.

use crate::{EventKind, TraceEvent};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};

/// Merging failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The happens-before graph has a cycle — the inputs disagree about
    /// causality (corrupt traces, or two recordings mislabeled with the
    /// same instance id). Names one event on the cycle.
    Cycle {
        /// Index of the input trace holding the event.
        trace: usize,
        /// The event's sequence number within that trace.
        seq: u64,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Cycle { trace, seq } => write!(
                f,
                "happens-before cycle through trace {trace} seq {seq} \
                 (inputs disagree about causality)"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// The result of [`merge_traces`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Merged {
    /// Every input event, deduplicated, in one causal order.
    pub events: Vec<TraceEvent>,
    /// Cross-process happens-before edges that were matched.
    pub cross_edges: usize,
    /// Duplicate events dropped by `(inst, seq)` identity.
    pub deduped: usize,
}

/// Drops events already seen under the same `(inst, seq)` identity,
/// keeping the first occurrence. This makes re-merging overlapping
/// inputs (say, a daemon trace plus a previous merge that already
/// contains it) idempotent, and keeps `pgmp-trace explain` from
/// double-counting a decision present in two files. Events with
/// `inst == 0` (v1 traces never recorded an instance id) carry no
/// cross-trace identity and are always kept. Assumes each process
/// contributed at most one recording — `seq` restarts at 0 per
/// recording, so two recordings from one process would collide.
pub fn dedupe_events(events: Vec<TraceEvent>) -> Vec<TraceEvent> {
    let mut seen = HashSet::new();
    events
        .into_iter()
        .filter(|e| e.inst == 0 || seen.insert((e.inst, e.seq)))
        .collect()
}

/// Join keys extracted per event: where it can be the source or the
/// sink of a cross-process edge.
fn publish_key(e: &TraceEvent) -> Option<(u64, u64)> {
    match &e.kind {
        EventKind::PublishDelta { epoch, .. } if e.inst != 0 => Some((e.inst, *epoch)),
        _ => None,
    }
}

fn merge_key(e: &TraceEvent) -> Option<(u64, u64)> {
    match &e.kind {
        EventKind::Merge { epoch, .. } if e.inst != 0 => Some((e.inst, *epoch)),
        _ => None,
    }
}

/// `(daemon_inst, peer_inst, role, dataset)` for handshake events, from
/// either side of the wire.
fn hello_key(e: &TraceEvent) -> Option<(u64, u64, String, u32)> {
    match &e.kind {
        EventKind::FleetHello {
            role,
            peer_inst,
            dataset,
        } if e.inst != 0 && *peer_inst != 0 => {
            Some((e.inst, *peer_inst, role.clone(), *dataset))
        }
        _ => None,
    }
}

fn connect_key(e: &TraceEvent) -> Option<(u64, u64, String, u32)> {
    match &e.kind {
        EventKind::FleetConnect {
            role,
            daemon_inst,
            dataset,
        } if e.inst != 0 && *daemon_inst != 0 => {
            Some((*daemon_inst, e.inst, role.clone(), *dataset))
        }
        _ => None,
    }
}

/// Interleaves N per-process traces into one causal timeline: a
/// topological order of the union of every trace's internal `seq` order
/// and the cross-process happens-before edges described in the module
/// docs. The order is deterministic — among causally unordered events,
/// the lowest `(input index, position)` goes first — and never consults
/// timestamps, because fleet hosts share no clock. Events keep their
/// original `seq`/`inst`/span ids, so the merged file still joins.
pub fn merge_traces(traces: &[Vec<TraceEvent>]) -> Result<Merged, MergeError> {
    // Dedupe across inputs first (same event in two files), tracking how
    // many we dropped. Within each trace the original order is kept.
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    let mut deduped = 0usize;
    let traces: Vec<Vec<&TraceEvent>> = traces
        .iter()
        .map(|t| {
            t.iter()
                .filter(|e| {
                    let keep = e.inst == 0 || seen.insert((e.inst, e.seq));
                    if !keep {
                        deduped += 1;
                    }
                    keep
                })
                .collect()
        })
        .collect();

    let base: Vec<usize> = traces
        .iter()
        .scan(0usize, |acc, t| {
            let b = *acc;
            *acc += t.len();
            Some(b)
        })
        .collect();
    let total: usize = traces.iter().map(Vec::len).sum();
    let node = |trace: usize, pos: usize| base[trace] + pos;

    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); total];
    let mut indegree: Vec<u32> = vec![0; total];
    let add_edge = |succs: &mut Vec<Vec<usize>>, indegree: &mut Vec<u32>, a: usize, b: usize| {
        if a != b {
            succs[a].push(b);
            indegree[b] += 1;
        }
    };

    // Each trace's own total order: one chain of edges.
    for (ti, t) in traces.iter().enumerate() {
        for pos in 1..t.len() {
            add_edge(&mut succs, &mut indegree, node(ti, pos - 1), node(ti, pos));
        }
    }

    // Cross-process edges. Sources first …
    let mut publishes: HashMap<(u64, u64), usize> = HashMap::new();
    let mut merges: HashMap<(u64, u64), usize> = HashMap::new();
    let mut hellos: HashMap<(u64, u64, String, u32), Vec<usize>> = HashMap::new();
    for (ti, t) in traces.iter().enumerate() {
        for (pos, e) in t.iter().enumerate() {
            if let Some(k) = publish_key(e) {
                publishes.entry(k).or_insert_with(|| node(ti, pos));
            }
            if let Some(k) = merge_key(e) {
                merges.entry(k).or_insert_with(|| node(ti, pos));
            }
            if let Some(k) = hello_key(e) {
                hellos.entry(k).or_default().push(node(ti, pos));
            }
        }
    }
    // … then sinks. Handshakes match nth `fleet_hello` to nth
    // `fleet_connect` under the same key (one process may reconnect).
    let mut cross_edges = 0usize;
    let mut hello_cursor: HashMap<(u64, u64, String, u32), usize> = HashMap::new();
    for (ti, t) in traces.iter().enumerate() {
        for (pos, e) in t.iter().enumerate() {
            let sink = node(ti, pos);
            let source = match &e.kind {
                EventKind::IngestBatch {
                    epoch, peer_inst, ..
                } if *peer_inst != 0 => publishes.get(&(*peer_inst, *epoch)).copied(),
                EventKind::FleetApply {
                    daemon_inst, epoch, ..
                } if *daemon_inst != 0 => merges.get(&(*daemon_inst, *epoch)).copied(),
                EventKind::FleetConnect { .. } => connect_key(e).and_then(|k| {
                    let cursor = hello_cursor.entry(k.clone()).or_insert(0);
                    let src = hellos.get(&k).and_then(|v| v.get(*cursor)).copied();
                    *cursor += 1;
                    src
                }),
                _ => None,
            };
            if let Some(src) = source {
                if src != sink {
                    cross_edges += 1;
                    add_edge(&mut succs, &mut indegree, src, sink);
                }
            }
        }
    }

    // Kahn's algorithm with a deterministic tie-break: among ready
    // nodes, the lowest (trace index, position) pops first.
    let mut ready: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
    for (ti, t) in traces.iter().enumerate() {
        for pos in 0..t.len() {
            if indegree[node(ti, pos)] == 0 {
                ready.push(Reverse((ti, pos)));
            }
        }
    }
    let pos_of = |n: usize| {
        let ti = base
            .iter()
            .rposition(|&b| b <= n)
            .expect("node below first base");
        (ti, n - base[ti])
    };
    let mut events = Vec::with_capacity(total);
    while let Some(Reverse((ti, pos))) = ready.pop() {
        events.push(traces[ti][pos].clone());
        for &s in &succs[node(ti, pos)] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready.push(Reverse(pos_of(s)));
            }
        }
    }
    if events.len() < total {
        let stuck = indegree
            .iter()
            .position(|&d| d > 0)
            .expect("missing events imply a positive indegree");
        let (trace, pos) = pos_of(stuck);
        return Err(MergeError::Cycle {
            trace,
            seq: traces[trace][pos].seq,
        });
    }
    Ok(Merged {
        events,
        cross_edges,
        deduped,
    })
}

/// A frame label for the collapsed stack: the span's type plus the
/// discriminator worth aggregating by. Counters that vary per instance
/// (epoch numbers, generations) are dropped so repeated spans fold.
fn span_label(kind: &EventKind) -> String {
    let label = match kind {
        EventKind::ExpandForm { file, index, .. } => format!("expand_form({file}#{index})"),
        EventKind::Run { file, .. } => format!("run({file})"),
        EventKind::VmRun { chunk, .. } => format!("vm_run(chunk{chunk})"),
        EventKind::VmLower { chunk, .. } => format!("vm_lower(chunk{chunk})"),
        EventKind::StoreWrite { kind, .. } => format!("store_write({kind})"),
        EventKind::StoreRead { kind, .. } => format!("store_read({kind})"),
        other => other.type_tag().to_string(),
    };
    label
        .chars()
        .map(|c| if c == ';' || c.is_whitespace() { '_' } else { c })
        .collect()
}

/// Exports the span hierarchy as collapsed-stack text (one
/// `frame;frame;frame value` line per unique stack, flamegraph
/// compatible). Values are **self** microseconds: a span's duration
/// minus its children's, so the flame graph's widths add up correctly.
/// Spans are grouped under a `process:<inst>` root frame when the trace
/// carries instance ids (a merged trace mixes processes). When the
/// trace holds `sampler_tick` summaries, each contributes
/// `sampler(<hz>hz);{hits,idle}` lines scaled by the tick period — the
/// sampled estimate of where the mutator was. Output lines are sorted;
/// identical stacks are summed.
pub fn collapse_stacks(events: &[TraceEvent]) -> String {
    struct Span {
        label: String,
        parent: Option<(u64, u64)>,
        duration: u64,
        child_us: u64,
    }
    let mut spans: BTreeMap<(u64, u64), Span> = BTreeMap::new();
    for e in events {
        if let Some(id) = e.span {
            spans.insert(
                (e.inst, id),
                Span {
                    label: span_label(&e.kind),
                    parent: e.parent.map(|p| (e.inst, p)),
                    duration: e.kind.duration_us().unwrap_or(0),
                    child_us: 0,
                },
            );
        }
    }
    let keys: Vec<(u64, u64)> = spans.keys().copied().collect();
    for k in &keys {
        let (parent, duration) = {
            let s = &spans[k];
            (s.parent, s.duration)
        };
        if let Some(p) = parent {
            if let Some(ps) = spans.get_mut(&p) {
                ps.child_us = ps.child_us.saturating_add(duration);
            }
        }
    }
    let mut lines: BTreeMap<String, u64> = BTreeMap::new();
    for k in &keys {
        // Walk the parent chain to the root; a bounded walk guards
        // against malformed parent cycles in hand-edited traces.
        let mut stack = Vec::new();
        let mut cur = Some(*k);
        let mut hops = 0;
        while let (Some(key), true) = (cur, hops < 128) {
            match spans.get(&key) {
                Some(s) => {
                    stack.push(s.label.clone());
                    cur = s.parent;
                }
                // Parent never emitted (unfinished span): root here.
                None => break,
            }
            hops += 1;
        }
        if k.0 != 0 {
            stack.push(format!("process:{}", k.0));
        }
        stack.reverse();
        let s = &spans[k];
        let self_us = s.duration.saturating_sub(s.child_us);
        *lines.entry(stack.join(";")).or_insert(0) += self_us;
    }
    for e in events {
        if let EventKind::SamplerTick {
            hz, hits, missed, ..
        } = &e.kind
        {
            if *hz == 0 {
                continue;
            }
            let period_us = 1_000_000u64 / u64::from(*hz);
            let root = if e.inst != 0 {
                format!("process:{};sampler({hz}hz)", e.inst)
            } else {
                format!("sampler({hz}hz)")
            };
            *lines.entry(format!("{root};hits")).or_insert(0) += hits.saturating_mul(period_us);
            *lines.entry(format!("{root};idle")).or_insert(0) +=
                missed.saturating_mul(period_us);
        }
    }
    let mut out = String::new();
    for (stack, us) in &lines {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(inst: u64, seq: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            inst,
            ..TraceEvent::new(seq, seq, kind)
        }
    }

    #[test]
    fn dedupe_drops_second_occurrence_only() {
        let e = ev(7, 1, EventKind::CacheHit { form: 1 });
        let v1 = ev(0, 1, EventKind::CacheHit { form: 2 });
        let out = dedupe_events(vec![e.clone(), v1.clone(), e.clone(), v1.clone()]);
        assert_eq!(out, vec![e, v1.clone(), v1]);
    }

    #[test]
    fn merge_orders_publish_before_ingest_before_merge_before_apply() {
        const P: u64 = 10;
        const D: u64 = 20;
        const S: u64 = 30;
        let daemon = vec![
            ev(
                D,
                0,
                EventKind::IngestBatch {
                    dataset: 0,
                    epoch: 3,
                    slots: 2,
                    hits: 9,
                    peer_inst: P,
                },
            ),
            ev(
                D,
                1,
                EventKind::Merge {
                    epoch: 1,
                    datasets: 1,
                    points: 2,
                    l1: 0.0,
                    tv: 0.0,
                    duration_us: 5,
                },
            ),
        ];
        let publisher = vec![ev(
            P,
            0,
            EventKind::PublishDelta {
                epoch: 3,
                slots: 2,
                hits: 9,
            },
        )];
        let subscriber = vec![ev(
            S,
            0,
            EventKind::FleetApply {
                daemon_inst: D,
                epoch: 1,
                drift: 0.4,
                reoptimized: true,
            },
        )];
        // Input order is adversarial: the daemon (which must interleave
        // *after* the publisher's delta) comes first.
        let m = merge_traces(&[daemon, publisher, subscriber]).unwrap();
        assert_eq!(m.cross_edges, 2);
        let pos = |inst: u64, seq: u64| {
            m.events
                .iter()
                .position(|e| e.inst == inst && e.seq == seq)
                .unwrap()
        };
        assert!(pos(P, 0) < pos(D, 0), "publish before ingest");
        assert!(pos(D, 1) < pos(S, 0), "merge before apply");
    }

    #[test]
    fn merge_is_idempotent_over_overlapping_inputs() {
        let t = vec![
            ev(5, 0, EventKind::CacheHit { form: 1 }),
            ev(5, 1, EventKind::CacheHit { form: 2 }),
        ];
        let m = merge_traces(&[t.clone(), t.clone()]).unwrap();
        assert_eq!(m.events.len(), 2);
        assert_eq!(m.deduped, 2);
    }

    #[test]
    fn contradictory_inputs_are_a_typed_cycle() {
        const P: u64 = 1;
        const D: u64 = 2;
        // One file says the publisher's delta came *after* it ingested
        // it (impossible): publish_delta and ingest_batch cross-block.
        let a = vec![
            ev(
                D,
                0,
                EventKind::IngestBatch {
                    dataset: 0,
                    epoch: 1,
                    slots: 1,
                    hits: 1,
                    peer_inst: P,
                },
            ),
            ev(
                D,
                1,
                EventKind::PublishDelta {
                    epoch: 9,
                    slots: 1,
                    hits: 1,
                },
            ),
        ];
        let b = vec![
            ev(
                P,
                0,
                EventKind::IngestBatch {
                    dataset: 0,
                    epoch: 9,
                    slots: 1,
                    hits: 1,
                    peer_inst: D,
                },
            ),
            ev(
                P,
                1,
                EventKind::PublishDelta {
                    epoch: 1,
                    slots: 1,
                    hits: 1,
                },
            ),
        ];
        assert!(matches!(
            merge_traces(&[a, b]),
            Err(MergeError::Cycle { .. })
        ));
    }

    #[test]
    fn collapse_stacks_nests_and_sums_self_time() {
        let mut run = ev(
            4,
            0,
            EventKind::Run {
                file: "m.scm".into(),
                mode: "none".into(),
                duration_us: 100,
            },
        );
        run.span = Some(1);
        let mut child = ev(
            4,
            1,
            EventKind::ExpandForm {
                file: "m.scm".into(),
                index: 0,
                duration_us: 30,
            },
        );
        child.span = Some(2);
        child.parent = Some(1);
        let text = collapse_stacks(&[run, child]);
        assert_eq!(
            text,
            "process:4;run(m.scm) 70\nprocess:4;run(m.scm);expand_form(m.scm#0) 30\n"
        );
    }

    #[test]
    fn sampler_estimates_become_stacks() {
        let tick = ev(
            0,
            0,
            EventKind::SamplerTick {
                hz: 1000,
                ticks: 10,
                hits: 6,
                missed: 4,
            },
        );
        let text = collapse_stacks(&[tick]);
        assert_eq!(text, "sampler(1000hz);hits 6000\nsampler(1000hz);idle 4000\n");
    }
}
