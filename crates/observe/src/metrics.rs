//! The lightweight metrics registry: counters, gauges, and log2-bucket
//! histograms behind one process-global mutex.
//!
//! Unlike the trace bus, the registry is always live — updating a metric
//! does not require an active recording. Call sites pay one mutex lock
//! plus a `BTreeMap` lookup per update, so metrics belong at *boundary*
//! frequencies (per run, per epoch, per compile), never inside the
//! interpreter's per-expression loop; the per-expression path is gated by
//! the trace bus's relaxed-atomic check instead (and bench E15 holds that
//! path to ≤ 1% overhead when disabled).

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// A log2-bucketed histogram: bucket `i` counts values in
/// `[2^(i-1), 2^i)`, with bucket 0 reserved for zero.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    pub(crate) fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, *c))
            .collect()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The process-global metrics registry. Obtain it via [`metrics`].
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

/// An immutable copy of the registry state, taken under one lock hold so
/// the three maps are mutually consistent.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    fn lock(&self) -> MutexGuard<'_, RegistryInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds `n` to the counter `name` (created at 0), saturating.
    pub fn counter_add(&self, name: &str, n: u64) {
        let mut g = self.lock();
        let c = g.counters.entry(name.to_string()).or_insert(0);
        *c = c.saturating_add(n);
    }

    /// Reads a counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Reads a gauge, `None` when absent.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Records `value` into the log2 histogram `name`.
    pub fn record(&self, name: &str, value: u64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Takes a consistent snapshot of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.lock();
        MetricsSnapshot {
            counters: g.counters.clone(),
            gauges: g.gauges.clone(),
            histograms: g.histograms.clone(),
        }
    }

    /// Clears all metrics (used by tests and by `pgmp-run` between
    /// configurations so snapshots describe one run only).
    pub fn reset(&self) {
        let mut g = self.lock();
        g.counters.clear();
        g.gauges.clear();
        g.histograms.clear();
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as a single JSON object, versioned in step
    /// with the trace schema:
    /// `{"v":2,"counters":{...},"gauges":{...},"histograms":{"n":{"count":..,"sum":..,"mean":..,"buckets":[[lo,count],...]}}}`.
    pub fn to_json(&self) -> String {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::Num(h.count() as f64)),
                            ("sum".into(), Json::Num(h.sum() as f64)),
                            ("mean".into(), Json::Num(h.mean())),
                            (
                                "buckets".into(),
                                Json::Arr(
                                    h.nonzero_buckets()
                                        .into_iter()
                                        .map(|(lo, c)| {
                                            Json::Arr(vec![
                                                Json::Num(lo as f64),
                                                Json::Num(c as f64),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            ("v".into(), Json::Num(crate::event::SCHEMA_VERSION as f64)),
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
        ])
        .to_string()
    }
}

/// The process-global registry.
pub fn metrics() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        inner: Mutex::new(RegistryInner::default()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        // 0 → bucket 0; 1 → [1,2); 2,3 → [2,4); 4 → [4,8); 1000 → [512,1024)
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (2, 2), (4, 1), (512, 1)]
        );
    }

    #[test]
    fn snapshot_json_parses() {
        let snap = MetricsSnapshot {
            counters: [("a.b".to_string(), 3u64)].into_iter().collect(),
            gauges: [("g".to_string(), 0.5f64)].into_iter().collect(),
            histograms: {
                let mut h = Histogram::default();
                h.record(7);
                [("h".to_string(), h)].into_iter().collect()
            },
        };
        let text = snap.to_json();
        let v = crate::json::parse(&text).expect("snapshot must be valid JSON");
        assert_eq!(v.get("counters").and_then(|c| c.get("a.b")).and_then(Json::as_u64), Some(3));
    }
}
