//! Property tests for the trace reader: hostile input is a typed error,
//! never a panic, and well-formed traces round-trip exactly.
//!
//! Mirrors the persistence discipline pinned by the profile store's
//! `store_roundtrip` suite: truncation (a crash mid-write), interleaved
//! garbage (a corrupted file), and arbitrary bytes all degrade to
//! [`TraceError`] values, and the lenient reader recovers every intact
//! line around them.

use pgmp_observe::{
    parse_trace, parse_trace_lenient, to_jsonl, DecisionAlt, EventKind, TraceEvent,
};
use proptest::prelude::*;

/// Printable-ASCII labels (including `"` and `\`, exercising escaping);
/// ASCII-only keeps every byte index a char boundary for truncation.
const LABEL: &str = "[ -~]{0,12}";

/// Optional weights on a dyadic grid, exact in binary so the shortest
/// round-trip float encoding is the identity.
fn arb_weight() -> BoxedStrategy<Option<f64>> {
    prop_oneof![
        Just(None),
        (0u32..1024).prop_map(|n| Some(f64::from(n) / 8.0)),
    ]
    .boxed()
}

fn arb_alt() -> impl Strategy<Value = DecisionAlt> {
    (LABEL, arb_weight()).prop_map(|(label, weight)| DecisionAlt { label, weight })
}

fn arb_kind() -> BoxedStrategy<EventKind> {
    prop_oneof![
        (LABEL, 0u32..100, 0u64..100_000).prop_map(|(file, index, duration_us)| {
            EventKind::ExpandForm {
                file,
                index,
                duration_us,
            }
        }),
        (LABEL, arb_weight(), any::<bool>()).prop_map(|(point, weight, available)| {
            EventKind::ProfileQuery {
                point,
                weight,
                available,
            }
        }),
        (0u32..1000).prop_map(|form| EventKind::CacheHit { form }),
        (0u32..1000, LABEL)
            .prop_map(|(form, reason)| EventKind::CacheMiss { form, reason }),
        (0u64..50, 0u64..1_000_000, 0u32..10, 0u64..100_000).prop_map(
            |(epoch, hits, streak, duration_us)| EventKind::Epoch {
                epoch,
                hits,
                drift: f64::from(streak) / 4.0,
                fired: streak > 2,
                reoptimized: streak > 4,
                generation: epoch / 2,
                streak,
                cooldown: 10 - streak,
                flush_writes: hits / 7,
                flush_merged: hits / 3,
                duration_us,
            }
        ),
        (LABEL, LABEL, 0u64..1_000_000, 0u64..4096).prop_map(
            |(path, kind, duration_us, bytes)| EventKind::StoreWrite {
                path,
                kind,
                bytes,
                duration_us,
            }
        ),
        (
            "[a-z-]{1,16}",
            LABEL,
            proptest::collection::vec(arb_alt(), 0..5),
            0u32..5
        )
            .prop_map(|(site, decision_point, alternatives, rank)| {
                let chosen = alternatives.iter().map(|a| a.label.clone()).collect();
                EventKind::Decision {
                    site,
                    decision_point,
                    alternatives,
                    chosen,
                    rank,
                }
            }),
    ]
    .boxed()
}

/// Optional span ids: `None` (point events / v1) or a small id.
fn arb_span() -> BoxedStrategy<Option<u64>> {
    prop_oneof![Just(None), (1u64..1000).prop_map(Some)].boxed()
}

fn arb_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec(
        (
            0u64..10_000,
            0u64..1_000_000,
            0u64..500,
            arb_span(),
            arb_span(),
            arb_kind(),
        ),
        0..12,
    )
    .prop_map(|tuples| {
        tuples
            .into_iter()
            .map(|(seq, t_us, inst, span, parent, kind)| TraceEvent {
                seq,
                t_us,
                inst,
                span,
                parent,
                kind,
            })
            .collect()
    })
}

/// Garbage lines: never empty, never whitespace-only (those are silently
/// skipped by design), and never a JSON object (no `{`), so each one must
/// surface as exactly one error.
fn arb_garbage() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z!#%&*+,:;<=>?@^_|~-]{1,12}", 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn well_formed_traces_round_trip(events in arb_events()) {
        let text = to_jsonl(&events);
        let back = parse_trace(&text);
        prop_assert!(back.is_ok(), "strict parse failed: {:?}", back.err());
        prop_assert_eq!(back.unwrap(), events);
    }

    #[test]
    fn truncation_is_a_typed_error_and_lenient_recovers_the_prefix(
        events in arb_events(),
        cut_permille in 0u32..1000,
    ) {
        let text = to_jsonl(&events);
        let cut = (text.len() * cut_permille as usize) / 1000;
        let truncated = &text[..cut];
        let (recovered, errors) = parse_trace_lenient(truncated);
        // Everything before the last newline is intact. A non-empty tail
        // after it is the torn line — except when the cut removed only
        // the trailing newline itself, which leaves a complete event.
        let intact_end = truncated.rfind('\n').map_or(0, |i| i + 1);
        let intact_lines = truncated[..intact_end].lines().count();
        let tail = intact_end < truncated.len();
        let tail_complete = tail && text.as_bytes().get(cut) == Some(&b'\n');
        let expect = intact_lines + usize::from(tail_complete);
        prop_assert_eq!(&recovered[..], &events[..expect]);
        let torn = tail && !tail_complete;
        prop_assert_eq!(errors.len(), usize::from(torn));
        if torn {
            prop_assert_eq!(errors[0].line(), Some(intact_lines + 1));
            // And the strict reader refuses the whole file.
            prop_assert!(parse_trace(truncated).is_err());
        }
    }

    #[test]
    fn interleaved_garbage_yields_one_error_per_line_and_loses_no_event(
        events in arb_events(),
        garbage in arb_garbage(),
    ) {
        let mut lines: Vec<String> = to_jsonl(&events).lines().map(str::to_owned).collect();
        // Splice garbage between event lines at deterministic offsets.
        for (i, g) in garbage.iter().enumerate() {
            let at = (i * 2 + 1).min(lines.len());
            lines.insert(at, g.clone());
        }
        let text = lines.join("\n");
        let (recovered, errors) = parse_trace_lenient(&text);
        prop_assert_eq!(recovered, events);
        prop_assert_eq!(errors.len(), garbage.len());
        if !garbage.is_empty() {
            prop_assert!(parse_trace(&text).is_err());
        }
    }

    #[test]
    fn v2_reader_accepts_v1_lines(events in arb_events()) {
        // A v1 line is a v2 line minus the v2 header fields: strip
        // `inst` (after zeroing the v2-only data, which v1 could not
        // express) and rewrite the version tag. The first occurrence is
        // always the header — payload strings encode `"` escaped, so
        // the pattern cannot appear in one earlier.
        let events: Vec<TraceEvent> = events
            .into_iter()
            .map(|mut e| {
                e.inst = 0;
                e.span = None;
                e.parent = None;
                e
            })
            .collect();
        let v1_text: String = to_jsonl(&events)
            .lines()
            .map(|l| {
                let l = l.replacen("{\"v\":2,", "{\"v\":1,", 1);
                format!("{}\n", l.replacen("\"inst\":0,", "", 1))
            })
            .collect();
        let back = parse_trace(&v1_text);
        prop_assert!(back.is_ok(), "v1 lines must decode: {:?}", back.err());
        prop_assert_eq!(back.unwrap(), events);
    }

    #[test]
    fn arbitrary_text_never_panics(s in "[ -~\n]{0,64}") {
        // Whatever comes back, it came back — no panic, no abort.
        let _ = parse_trace(&s);
        let (_events, _errors) = parse_trace_lenient(&s);
    }
}
