//! Property tests for causal trace merging: the merged timeline is a
//! valid topological order of the happens-before relation, regardless of
//! how many processes participated, how their traces interleave, or what
//! their (untrusted, mutually meaningless) timestamps say.
//!
//! The generator builds a *true* global fleet history — handshakes, then
//! per-epoch publish → ingest → merge → apply rounds with noise events
//! sprinkled in — and splits it into per-process traces exactly the way
//! real recordings form. Timestamps are assigned adversarially from an
//! unrelated stream, so any ordering the merge gets right, it got right
//! from the happens-before edges alone.

use pgmp_observe::{merge_traces, EventKind, TraceEvent};
use proptest::prelude::*;
use std::collections::HashMap;

const DAEMON: u64 = 0xDAE;

/// One process's trace from its slice of the global history: `seq` is
/// the per-process position (as the ring buffer numbers events) and
/// `t_us` comes from the adversarial stream.
fn split(history: &[(u64, EventKind)], t_us: &[u64]) -> Vec<Vec<TraceEvent>> {
    let mut traces: HashMap<u64, Vec<TraceEvent>> = HashMap::new();
    for (i, (inst, kind)) in history.iter().enumerate() {
        let trace = traces.entry(*inst).or_default();
        let seq = trace.len() as u64;
        let stamp = t_us[i % t_us.len().max(1)];
        trace.push(TraceEvent {
            inst: *inst,
            ..TraceEvent::new(seq, stamp, kind.clone())
        });
    }
    // Deterministic trace order (by instance id); the caller rotates it.
    let mut keys: Vec<u64> = traces.keys().copied().collect();
    keys.sort_unstable();
    keys.into_iter().map(|k| traces.remove(&k).unwrap()).collect()
}

/// A causally valid global history for `publishers` publishers,
/// `subscribers` subscribers, and `epochs` merge rounds.
fn fleet_history(publishers: u64, subscribers: u64, epochs: u64, noise: &[u8]) -> Vec<(u64, EventKind)> {
    let mut h: Vec<(u64, EventKind)> = Vec::new();
    let mut noise_at = 0usize;
    let mut noisy = |h: &mut Vec<(u64, EventKind)>, inst: u64| {
        let n = noise.get(noise_at % noise.len().max(1)).copied().unwrap_or(0);
        noise_at += 1;
        for form in 0..u32::from(n) {
            h.push((inst, EventKind::CacheHit { form }));
        }
    };
    // Handshakes: the daemon's `fleet_hello` (it sent the Ack) precedes
    // the peer's `fleet_connect` (emitted after reading it).
    for p in 0..publishers {
        let inst = 1 + p;
        h.push((
            DAEMON,
            EventKind::FleetHello {
                role: "publisher".into(),
                peer_inst: inst,
                dataset: p as u32,
            },
        ));
        h.push((
            inst,
            EventKind::FleetConnect {
                role: "publisher".into(),
                daemon_inst: DAEMON,
                dataset: p as u32,
            },
        ));
    }
    for s in 0..subscribers {
        let inst = 0x2000 + s;
        h.push((
            DAEMON,
            EventKind::FleetHello {
                role: "subscriber".into(),
                peer_inst: inst,
                dataset: 0,
            },
        ));
        h.push((
            inst,
            EventKind::FleetConnect {
                role: "subscriber".into(),
                daemon_inst: DAEMON,
                dataset: 0,
            },
        ));
    }
    for epoch in 1..=epochs {
        for p in 0..publishers {
            let inst = 1 + p;
            noisy(&mut h, inst);
            h.push((
                inst,
                EventKind::PublishDelta {
                    epoch,
                    slots: 1,
                    hits: epoch,
                },
            ));
        }
        for p in 0..publishers {
            h.push((
                DAEMON,
                EventKind::IngestBatch {
                    dataset: p as u32,
                    epoch,
                    slots: 1,
                    hits: epoch,
                    peer_inst: 1 + p,
                },
            ));
        }
        noisy(&mut h, DAEMON);
        h.push((
            DAEMON,
            EventKind::Merge {
                epoch,
                datasets: publishers as u32,
                points: 1,
                l1: 0.0,
                tv: 0.0,
                duration_us: 1,
            },
        ));
        for s in 0..subscribers {
            h.push((
                0x2000 + s,
                EventKind::FleetApply {
                    daemon_inst: DAEMON,
                    epoch,
                    drift: 0.25,
                    reoptimized: epoch % 2 == 0,
                },
            ));
        }
    }
    h
}

/// Position of each `(inst, seq)` in the merged output.
fn positions(merged: &[TraceEvent]) -> HashMap<(u64, u64), usize> {
    merged
        .iter()
        .enumerate()
        .map(|(i, e)| ((e.inst, e.seq), i))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_a_topological_order_of_happens_before(
        (publishers, subscribers) in (1u64..4, 0u64..3),
        epochs in 1u64..5,
        noise in proptest::collection::vec(0u8..3, 1..8),
        t_us in proptest::collection::vec(0u64..1_000_000, 1..8),
        rotate in 0usize..4,
    ) {
        let history = fleet_history(publishers, subscribers, epochs, &noise);
        let mut traces = split(&history, &t_us);
        // Adversarial input order: the daemon's trace need not come first.
        let r = rotate % traces.len();
        traces.rotate_left(r);

        let merged = merge_traces(&traces).unwrap();
        prop_assert_eq!(merged.events.len(), history.len(), "no event lost or invented");
        prop_assert_eq!(merged.deduped, 0);
        // Every edge source exists, so every sink matched: one edge per
        // handshake, one per publish->ingest, one per merge->apply.
        let expected_edges = (publishers + subscribers) * (1 + epochs);
        prop_assert_eq!(merged.cross_edges as u64, expected_edges);

        let pos = positions(&merged.events);

        // Each process's own order survives: seq strictly increases.
        let mut last: HashMap<u64, (u64, usize)> = HashMap::new();
        for (i, e) in merged.events.iter().enumerate() {
            if let Some((prev_seq, prev_pos)) = last.get(&e.inst) {
                prop_assert!(
                    *prev_seq < e.seq && *prev_pos < i,
                    "per-process order violated for inst {}",
                    e.inst
                );
            }
            last.insert(e.inst, (e.seq, i));
        }

        // Every cross-process edge is respected in the output order.
        let find = |pred: &dyn Fn(&TraceEvent) -> bool| {
            merged
                .events
                .iter()
                .find(|e| pred(e))
                .map(|e| pos[&(e.inst, e.seq)])
        };
        for e in &merged.events {
            let sink = pos[&(e.inst, e.seq)];
            let source = match &e.kind {
                EventKind::IngestBatch { epoch, peer_inst, .. } => {
                    let (p, ep) = (*peer_inst, *epoch);
                    find(&move |s: &TraceEvent| {
                        s.inst == p
                            && matches!(&s.kind, EventKind::PublishDelta { epoch, .. } if *epoch == ep)
                    })
                }
                EventKind::FleetApply { daemon_inst, epoch, .. } => {
                    let (d, ep) = (*daemon_inst, *epoch);
                    find(&move |s: &TraceEvent| {
                        s.inst == d
                            && matches!(&s.kind, EventKind::Merge { epoch, .. } if *epoch == ep)
                    })
                }
                EventKind::FleetConnect { role, daemon_inst, dataset } => {
                    let (d, r, ds, peer) = (*daemon_inst, role.clone(), *dataset, e.inst);
                    find(&move |s: &TraceEvent| {
                        s.inst == d
                            && matches!(
                                &s.kind,
                                EventKind::FleetHello { role, peer_inst, dataset }
                                    if *role == r && *peer_inst == peer && *dataset == ds
                            )
                    })
                }
                _ => None,
            };
            if let Some(src) = source {
                prop_assert!(
                    src < sink,
                    "edge violated: source at {src} not before sink at {sink}"
                );
            }
        }

        // Deterministic: the same inputs merge to the same timeline.
        let again = merge_traces(&traces).unwrap();
        prop_assert_eq!(again, merged.clone());

        // Idempotent under overlap: re-merging the output with one of the
        // original traces adds nothing (every event deduplicates).
        let overlap = merge_traces(&[merged.events.clone(), traces[0].clone()]).unwrap();
        prop_assert_eq!(overlap.events, merged.events);
        prop_assert_eq!(overlap.deduped, traces[0].len());
    }
}
