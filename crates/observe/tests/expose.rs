//! Exposition-format tests: the Prometheus rendering is golden-pinned
//! (scrape configs and dashboards parse it; silent drift breaks them),
//! and the live listener is exercised end to end over a real TCP socket
//! with a raw `TcpStream` client — no curl, no HTTP crate.
//!
//! `tests/fixtures/expose.prom` is the normative rendering of one
//! exemplar snapshot. If the pin fails, the exposition format changed:
//! either revert, or regenerate with
//! `UPDATE_EXPOSE_FIXTURE=1 cargo test -p pgmp-observe --test expose`
//! and document the change in `docs/OBSERVABILITY.md`.

use pgmp_observe::{metrics, render_prometheus, MetricsServer, MetricsSnapshot};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Once;

const FIXTURE: &str = include_str!("fixtures/expose.prom");

/// A deterministic snapshot exercising every series shape: counters,
/// integer and fractional gauges, and a histogram with a zero bucket.
/// The histogram is recorded through the global registry (construction
/// is crate-private) under a name only this function touches, exactly
/// once per process, then grafted into a literal snapshot so parallel
/// tests in this binary cannot perturb the fixture.
fn exemplar_snapshot() -> MetricsSnapshot {
    static RECORD: Once = Once::new();
    RECORD.call_once(|| {
        for v in [0, 3, 3, 17] {
            metrics().record("expose.fixture_span_us", v);
        }
    });
    let hist = metrics()
        .snapshot()
        .histograms
        .get("expose.fixture_span_us")
        .cloned()
        .expect("recorded above");
    MetricsSnapshot {
        counters: [
            ("events.run".to_string(), 2u64),
            ("observe.scrapes".to_string(), 41u64),
            ("profiled.mixed_provenance_merges".to_string(), 1u64),
        ]
        .into_iter()
        .collect(),
        gauges: [
            ("adaptive.fleet_drift".to_string(), 0.25f64),
            ("profiled.inst".to_string(), 123_456_789.0f64),
            ("profiler.sample_rate_hz".to_string(), 997.0f64),
        ]
        .into_iter()
        .collect(),
        histograms: [("span.run_us".to_string(), hist)].into_iter().collect(),
    }
}

#[test]
fn prometheus_rendering_matches_pinned_fixture() {
    let actual = render_prometheus(&exemplar_snapshot());
    if std::env::var_os("UPDATE_EXPOSE_FIXTURE").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/expose.prom");
        std::fs::write(path, &actual).expect("write fixture");
    }
    assert_eq!(
        actual, FIXTURE,
        "Prometheus exposition format drifted from tests/fixtures/expose.prom; \
         scrape configs parse this — revert, or rebless with UPDATE_EXPOSE_FIXTURE=1 \
         and note the change in docs/OBSERVABILITY.md"
    );
}

/// Minimal HTTP/1.1 GET over a raw socket; returns `(status line and
/// headers, body)`. The server closes the connection after one response,
/// so read-to-end terminates.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    http_request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn http_request(addr: SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics listener");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    (head.to_string(), body.to_string())
}

#[test]
fn live_listener_serves_prometheus_text_and_json() {
    let server = MetricsServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    metrics().gauge_set("expose.live_gauge", 42.0);
    metrics().counter_add("expose.live_counter", 7);

    let (head, body) = http_get(server.addr(), "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "head: {head}");
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "Prometheus scrapers key on the 0.0.4 content type: {head}"
    );
    assert!(head.contains("Connection: close"), "head: {head}");
    assert!(
        body.contains("# TYPE pgmp_expose_live_gauge gauge\npgmp_expose_live_gauge 42\n"),
        "gauge missing from scrape:\n{body}"
    );
    assert!(
        body.contains("# TYPE pgmp_expose_live_counter counter\npgmp_expose_live_counter 7\n"),
        "counter missing from scrape:\n{body}"
    );
    // The scrape itself is counted (at least once — parallel tests in
    // this binary may also have scraped).
    assert!(body.contains("pgmp_observe_scrapes "), "scrape counter:\n{body}");

    let (head, body) = http_get(server.addr(), "/metrics.json");
    assert!(head.contains("Content-Type: application/json"), "head: {head}");
    assert!(body.starts_with("{\"v\":2,"), "snapshot is versioned: {body}");
    assert!(
        body.contains("\"expose.live_counter\":7"),
        "counter missing from JSON snapshot: {body}"
    );
    assert!(
        body.contains("\"expose.live_gauge\":42"),
        "gauge missing from JSON snapshot: {body}"
    );
}

#[test]
fn unknown_paths_and_methods_are_refused_politely() {
    let server = MetricsServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let (head, body) = http_get(server.addr(), "/debug/pprof");
    assert!(head.starts_with("HTTP/1.1 404"), "head: {head}");
    assert!(body.contains("/metrics"), "404 should point at the real paths");

    let (head, _) = http_request(
        server.addr(),
        "POST /metrics HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    assert!(head.starts_with("HTTP/1.1 405"), "head: {head}");
}

#[test]
fn dropping_the_server_releases_the_port() {
    let server = MetricsServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();
    let (head, _) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"));
    drop(server);
    // The listener thread has joined, so the socket is closed and the
    // exact address can be bound again immediately.
    let rebound = MetricsServer::bind(&addr.to_string())
        .expect("address must be rebindable after drop");
    assert_eq!(rebound.addr(), addr);
}
