//! Fixture-pinned JSONL schema tests.
//!
//! `tests/fixtures/schema_v2.jsonl` is the normative encoding of one
//! exemplar event per kind, committed to the repository. If the
//! encoding test fails, the wire format changed: either revert the
//! change, or bump `SCHEMA_VERSION`, regenerate the fixture with
//! `UPDATE_SCHEMA_FIXTURE=1 cargo test -p pgmp-observe --test schema`,
//! and document the break in `docs/OBSERVABILITY.md`.
//!
//! `tests/fixtures/schema_v1.jsonl` is the frozen v1 fixture — the
//! encoder no longer produces it (it writes v2), but every v1 trace in
//! the wild must keep decoding, so that file must stay byte-for-byte
//! unchanged and parse strictly forever.

use pgmp_observe::{parse_trace, to_jsonl, DecisionAlt, EventKind, TraceEvent};

const FIXTURE_V1: &str = include_str!("fixtures/schema_v1.jsonl");
const FIXTURE_V2: &str = include_str!("fixtures/schema_v2.jsonl");

/// The exemplar kinds shared by both schema versions, exercising the
/// interesting encodings: `null` for absent weights, shortest-roundtrip
/// floats, escaped strings, empty and non-empty lists. `peer_inst` is
/// the v2 addition to `ingest_batch`: the frozen v1 fixture predates it
/// and decodes it as 0.
fn base_kinds(peer_inst: u64) -> Vec<EventKind> {
    vec![
        EventKind::ExpandForm {
            file: "prog.scm".into(),
            index: 3,
            duration_us: 120,
        },
        EventKind::ProfileQuery {
            point: "prog.scm:10-25".into(),
            weight: Some(0.25),
            available: true,
        },
        EventKind::ProfileQuery {
            point: "lib/\"quoted\".scm:0-1".into(),
            weight: None,
            available: false,
        },
        EventKind::ProfileCount {
            point: "prog.scm:10-25".into(),
            count: Some(17.0),
        },
        EventKind::AvailabilityCheck { available: true },
        EventKind::CacheHit { form: 7 },
        EventKind::CacheMiss {
            form: 8,
            reason: "drifted-point:prog.scm:10-25".into(),
        },
        EventKind::IncrementalCompile {
            forms: 12,
            reused: 10,
            reexpanded: 2,
            duration_us: 4510,
        },
        EventKind::Epoch {
            epoch: 4,
            hits: 9000,
            drift: 0.375,
            fired: true,
            reoptimized: false,
            generation: 2,
            streak: 1,
            cooldown: 0,
            flush_writes: 6,
            flush_merged: 8994,
            duration_us: 310,
        },
        EventKind::Reoptimize {
            generation: 3,
            reused: 11,
            reexpanded: 1,
            duration_us: 2750,
            swap_us: 12,
        },
        EventKind::Run {
            file: "prog.scm".into(),
            mode: "every-expression".into(),
            duration_us: 88000,
        },
        EventKind::SlotResolve {
            resolved: 42,
            duration_us: 95,
        },
        EventKind::VmRun {
            chunk: 1,
            blocks: 64,
            duration_us: 510,
        },
        EventKind::VmLower {
            chunk: 1,
            ops: 128,
            fused: 9,
            duration_us: 35,
        },
        EventKind::LayoutReoptimize {
            generation: 2,
            chunks: 4,
            duration_us: 220,
        },
        EventKind::StoreWrite {
            path: "out/p.pgmp".into(),
            kind: "profile-v2".into(),
            bytes: 2048,
            duration_us: 140,
        },
        EventKind::StoreRead {
            path: "out/p.pgmp".into(),
            kind: "profile-v2".into(),
            bytes: 2048,
            duration_us: 60,
        },
        EventKind::IngestBatch {
            dataset: 2,
            epoch: 5,
            slots: 40,
            hits: 12345,
            peer_inst,
        },
        EventKind::Merge {
            epoch: 6,
            datasets: 3,
            points: 57,
            l1: 123.5,
            tv: 0.125,
            duration_us: 420,
        },
        EventKind::Broadcast {
            epoch: 6,
            subscribers: 2,
            bytes: 4096,
        },
        EventKind::BackpressureDrop {
            channel: "publish".into(),
            dropped: 3,
        },
        EventKind::Decision {
            site: "exclusive-cond".into(),
            decision_point: "prog.scm:23-113".into(),
            alternatives: vec![
                DecisionAlt {
                    label: "(< n 10)".into(),
                    weight: Some(0.0625),
                },
                DecisionAlt {
                    label: "(else)".into(),
                    weight: None,
                },
            ],
            chosen: vec!["(< n 10)".into(), "(else)".into()],
            rank: 0,
        },
        EventKind::Decision {
            site: "datastructure".into(),
            decision_point: "prog.scm:200-260".into(),
            alternatives: vec![],
            chosen: vec![],
            rank: 0,
        },
        EventKind::SamplerTick {
            hz: 997,
            ticks: 10000,
            hits: 9400,
            missed: 600,
        },
        EventKind::ProfileRebase {
            point: "prog.scm:10-25".into(),
            new_point: Some("prog.scm:40-55".into()),
            tier: "structural".into(),
            confidence: 0.75,
            old_weight: 0.5,
            new_weight: 0.375,
        },
        EventKind::ProfileRebase {
            point: "prog.scm:60-70".into(),
            new_point: None,
            tier: "dead".into(),
            confidence: 0.0,
            old_weight: 0.25,
            new_weight: 0.0,
        },
    ]
}

/// What the frozen v1 fixture decodes to: the base kinds with no
/// instance id, no span links, and `peer_inst = 0`.
fn exemplar_events_v1() -> Vec<TraceEvent> {
    base_kinds(0)
        .into_iter()
        .enumerate()
        .map(|(i, kind)| TraceEvent::new(i as u64, (i as u64) * 100, kind))
        .collect()
}

/// One exemplar per event kind under schema v2: the base kinds (with a
/// nonzero `peer_inst` on `ingest_batch`) plus the v2 fleet correlation
/// kinds, all stamped with an instance id, and with `span`/`parent`
/// links exercised on the first two events (a `run` span containing an
/// `expand_form` child).
fn exemplar_events_v2() -> Vec<TraceEvent> {
    let mut kinds = base_kinds(6001);
    kinds.extend([
        EventKind::PublishDelta {
            epoch: 7,
            slots: 40,
            hits: 12345,
        },
        EventKind::FleetHello {
            role: "publisher".into(),
            peer_inst: 6001,
            dataset: 2,
        },
        EventKind::FleetConnect {
            role: "publisher".into(),
            daemon_inst: 7002,
            dataset: 2,
        },
        EventKind::FleetApply {
            daemon_inst: 7002,
            epoch: 6,
            drift: 0.375,
            reoptimized: true,
        },
    ]);
    let mut events: Vec<TraceEvent> = kinds
        .into_iter()
        .enumerate()
        .map(|(i, kind)| TraceEvent {
            inst: 7001,
            ..TraceEvent::new(i as u64, (i as u64) * 100, kind)
        })
        .collect();
    // Span hierarchy exemplar: the expand_form at index 0 is a child of
    // the run span at index 10 (children close, and are emitted, first).
    events[0].span = Some(11);
    events[0].parent = Some(10);
    events[10].span = Some(10);
    events
}

#[test]
fn encoding_matches_pinned_v2_fixture() {
    let actual = to_jsonl(&exemplar_events_v2());
    if std::env::var_os("UPDATE_SCHEMA_FIXTURE").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/schema_v2.jsonl");
        std::fs::write(path, &actual).expect("write fixture");
    }
    assert_eq!(
        actual, FIXTURE_V2,
        "trace wire format drifted from tests/fixtures/schema_v2.jsonl; \
         this is a schema break — bump SCHEMA_VERSION or revert"
    );
}

#[test]
fn pinned_v2_fixture_decodes_to_the_exemplars() {
    // A trace written by any past build of this schema version must keep
    // reading back, field for field.
    let decoded = parse_trace(FIXTURE_V2).expect("fixture must parse strictly");
    assert_eq!(decoded, exemplar_events_v2());
}

#[test]
fn frozen_v1_fixture_still_decodes() {
    // The v1 fixture file predates `inst`/`span`/`parent`/`peer_inst`;
    // it is frozen byte-for-byte and must keep decoding leniently-shaped
    // (zeros and Nones for the v2 fields) under the strict parser.
    let decoded = parse_trace(FIXTURE_V1).expect("v1 fixture must keep parsing strictly");
    assert_eq!(decoded, exemplar_events_v1());
    assert!(
        FIXTURE_V1.lines().all(|l| l.starts_with("{\"v\":1,")),
        "the v1 fixture must stay a v1 fixture"
    );
}

#[test]
fn every_kind_is_covered_by_the_fixture() {
    // If a new EventKind variant is added, its wire form must be pinned
    // here too. Count distinct "type" tags in the fixture against the
    // exemplars (which the compiler forces through the match in
    // to_json_line).
    let tags: std::collections::BTreeSet<&'static str> = exemplar_events_v2()
        .iter()
        .map(|e| e.kind.type_tag())
        .collect();
    assert_eq!(tags.len(), 27, "fixture must exemplify every event kind");
}

#[test]
fn future_schema_version_is_a_typed_error() {
    let line = FIXTURE_V2.lines().next().expect("fixture non-empty");
    let bumped = line.replacen("{\"v\":2,", "{\"v\":3,", 1);
    let err = parse_trace(&bumped).expect_err("version skew must not decode");
    assert!(
        err.to_string().contains("unsupported schema version"),
        "unexpected error: {err}"
    );
}
