//! Cross-checks: VM results must agree with the tree-walking interpreter.

use pgmp_bytecode::{
    canonical_form, compile_chunk, optimize_layout, BlockCounters, DispatchMode, FusionPlan, Vm,
};
use pgmp_eval::{install_primitives, Interp, Value};
use pgmp_expander::{install_expander_support, Expander};
use pgmp_reader::read_str;

fn fresh_interp() -> Interp {
    let mut interp = Interp::new();
    install_primitives(&mut interp);
    install_expander_support(&mut interp);
    interp
}

fn run_tree(src: &str) -> String {
    let forms = read_str(src, "t.scm").unwrap();
    let mut exp = Expander::new();
    let program = exp.expand_program(&forms).unwrap();
    let mut interp = fresh_interp();
    let mut last = Value::Unspecified;
    for form in &program {
        last = interp.eval(form, &None).unwrap();
    }
    last.write_string()
}

fn run_vm_with(src: &str, dispatch: DispatchMode, fusion: FusionPlan) -> String {
    let forms = read_str(src, "t.scm").unwrap();
    let mut exp = Expander::new();
    let program = exp.expand_program(&forms).unwrap();
    let mut interp = fresh_interp();
    let mut vm = Vm::new();
    vm.dispatch = dispatch;
    vm.set_fusion(fusion);
    let mut last = Value::Unspecified;
    for form in &program {
        last = vm.run_core(&mut interp, form).unwrap();
    }
    last.write_string()
}

fn run_vm(src: &str) -> String {
    run_vm_with(src, DispatchMode::Flat, FusionPlan::none())
}

fn assert_agree(src: &str) {
    let tree = run_tree(src);
    for (dispatch, fusion) in [
        (DispatchMode::Match, FusionPlan::none()),
        (DispatchMode::Flat, FusionPlan::none()),
        (DispatchMode::Flat, FusionPlan::all()),
    ] {
        let vm = run_vm_with(src, dispatch, fusion.clone());
        assert_eq!(
            tree, vm,
            "tree-walker and {}-VM (fusion {:?}) disagree on {src}",
            dispatch.label(),
            fusion.labels(),
        );
    }
}

#[test]
fn vm_agrees_on_basics() {
    for src in [
        "42",
        "(+ 1 2 3)",
        "(if #f 1 2)",
        "(let ([x 1] [y 2]) (+ x y))",
        "(let* ([x 1] [y (+ x 1)]) (* 10 y))",
        "'(a b (c))",
        "(begin 1 2 3)",
        "(define x 5) (set! x (+ x 1)) x",
        "((lambda (a . rest) (cons a rest)) 1 2 3)",
        "(cond [#f 1] [(= 1 1) 'yes] [else 'no])",
        "(case 3 [(1 2) 'low] [(3 4) 'mid] [else 'hi])",
        "(and 1 2 (or #f 3))",
    ] {
        assert_agree(src);
    }
}

#[test]
fn vm_agrees_on_closures_and_recursion() {
    for src in [
        "(define (fact n) (if (zero? n) 1 (* n (fact (sub1 n))))) (fact 12)",
        "(define (make-adder n) (lambda (m) (+ n m))) ((make-adder 3) 4)",
        "(letrec ([ev? (lambda (n) (if (zero? n) #t (od? (- n 1))))] \
                  [od? (lambda (n) (if (zero? n) #f (ev? (- n 1))))]) (od? 101))",
        "(define (counter) (let ([n 0]) (lambda () (set! n (add1 n)) n))) \
         (define c (counter)) (c) (c) (c)",
    ] {
        assert_agree(src);
    }
}

#[test]
fn vm_agrees_on_higher_order_natives() {
    // map/sort apply closures via the tree-walker from inside the VM —
    // mixed-mode execution.
    for src in [
        "(map (lambda (x) (* x x)) '(1 2 3))",
        "(sort '(3 1 2) <)",
        "(filter odd? '(1 2 3 4 5))",
        "(fold-left + 0 '(1 2 3 4))",
        "(apply + 1 '(2 3))",
    ] {
        assert_agree(src);
    }
}

#[test]
fn vm_agrees_on_macros() {
    assert_agree(
        "(define-syntax (swap! stx)
           (syntax-case stx ()
             [(_ a b) #'(let ([tmp a]) (set! a b) (set! b tmp))]))
         (define x 1) (define y 2) (swap! x y) (list x y)",
    );
}

#[test]
fn vm_tail_calls_do_not_grow_activations() {
    // One million iterations through a tail loop in a letrec frame.
    assert_eq!(
        run_vm("(let loop ([i 0]) (if (= i 1000000) 'done (loop (add1 i))))"),
        "done"
    );
}

#[test]
fn vm_errors_match_tree_walker() {
    let forms = read_str("(car 5)", "t.scm").unwrap();
    let mut exp = Expander::new();
    let program = exp.expand_program(&forms).unwrap();
    let mut interp = fresh_interp();
    let tree_err = interp.eval(&program[0], &None).unwrap_err();
    let mut interp2 = fresh_interp();
    let mut vm = Vm::new();
    let vm_err = vm.run_core(&mut interp2, &program[0]).unwrap_err();
    assert_eq!(tree_err.kind, vm_err.kind);
}

#[test]
fn vm_unbound_variable_errors() {
    let forms = read_str("zzz-unbound", "t.scm").unwrap();
    let mut exp = Expander::new();
    let program = exp.expand_program(&forms).unwrap();
    let mut interp = fresh_interp();
    let mut vm = Vm::new();
    assert!(vm.run_core(&mut interp, &program[0]).is_err());
}

#[test]
fn block_profiling_counts_hot_path() {
    let src = "(define (classify n) (if (< n 10) 'small 'big))
               (let loop ([i 0])
                 (if (= i 100) 'done (begin (classify 5) (loop (add1 i)))))";
    let forms = read_str(src, "t.scm").unwrap();
    let mut exp = Expander::new();
    let program = exp.expand_program(&forms).unwrap();
    let mut interp = fresh_interp();
    let mut vm = Vm::new();
    let counters = BlockCounters::new();
    vm.set_block_profiling(counters.clone());
    for form in &program {
        vm.run_core(&mut interp, form).unwrap();
    }
    assert!(!counters.is_empty());
    // classify's chunk: the 'small branch ran 100 times, 'big never — some
    // chunk must have both a block executed >= 100 times and a block never
    // executed at all.
    let chunks = vm.compiled_chunks();
    let has_biased_chunk = chunks.iter().any(|c| {
        let counts: Vec<u64> = (0..c.block_count() as u32)
            .map(|b| counters.count(c.id, b))
            .collect();
        counts.iter().any(|&x| x >= 100) && counts.contains(&0)
    });
    assert!(has_biased_chunk, "expected a chunk with hot and never-run blocks");
}

#[test]
fn layout_optimization_improves_fallthrough_on_biased_branch() {
    // A branch that almost always goes to the else-side: after layout,
    // the hot path should fall through more often.
    let src = "(define (step n) (if (= n 0) 'rare 'common))
               (let loop ([i 0])
                 (if (= i 2000) 'done (begin (step i) (loop (add1 i)))))";
    let forms = read_str(src, "t.scm").unwrap();
    let mut exp = Expander::new();
    let program = exp.expand_program(&forms).unwrap();

    // Pass 1: profile blocks.
    let mut interp = fresh_interp();
    let mut vm = Vm::new();
    let counters = BlockCounters::new();
    vm.set_block_profiling(counters.clone());
    for form in &program {
        vm.run_core(&mut interp, form).unwrap();
    }

    // Pass 2: relayout cached lambda chunks and re-run, measuring.
    let before_chunks: Vec<String> =
        vm.compiled_chunks().iter().map(|c| canonical_form(c)).collect();
    vm.relayout_cached(&counters);
    let after_chunks: Vec<String> =
        vm.compiled_chunks().iter().map(|c| canonical_form(c)).collect();
    assert_eq!(before_chunks, after_chunks, "layout must preserve the CFG");

    vm.block_counters = None;
    vm.metrics = Default::default();
    // Re-invoke the loop through the (now re-laid-out) cached chunks.
    let call = read_str(
        "(let loop ([i 0]) (if (= i 2000) 'done (begin (step i) (loop (add1 i)))))",
        "t.scm",
    )
    .unwrap();
    let mut exp2 = Expander::new();
    // Note: `step` stays resident in the interp's globals.
    let call_core = exp2.expand_program(&call).unwrap();
    for form in &call_core {
        vm.run_core(&mut interp, form).unwrap();
    }
    let optimized = vm.metrics;
    assert!(optimized.fallthrough_ratio() > 0.0);
}

#[test]
fn optimize_layout_preserves_cfg_and_is_stable_unprofiled() {
    let forms = read_str("(if (= 1 2) 'a 'b)", "t.scm").unwrap();
    let mut exp = Expander::new();
    let core = exp.expand_program(&forms).unwrap().remove(0);
    let chunk = compile_chunk(&core);
    // With a hot else-branch the layout moves it forward, but the CFG
    // stays the same function.
    let counters = BlockCounters::new();
    counters.increment(chunk.id, 2);
    let hot = optimize_layout(&chunk, &counters);
    assert_eq!(canonical_form(&chunk), canonical_form(&hot));
    // With no profile at all, layout is idempotent: counts of an empty
    // profile are position-independent.
    let empty = BlockCounters::new();
    let once = optimize_layout(&chunk, &empty);
    let twice = optimize_layout(&once, &empty);
    assert_eq!(once.blocks, twice.blocks);
}

#[test]
fn metrics_count_calls() {
    let src = "(define (f x) x) (f 1) (f 2)";
    let forms = read_str(src, "t.scm").unwrap();
    let mut exp = Expander::new();
    let program = exp.expand_program(&forms).unwrap();
    let mut interp = fresh_interp();
    let mut vm = Vm::new();
    for form in &program {
        vm.run_core(&mut interp, form).unwrap();
    }
    assert!(vm.metrics.calls >= 2);
    assert!(vm.metrics.blocks_executed > 0);
}

#[test]
fn vm_step_budget() {
    let forms = read_str("(let loop ([i 0]) (loop (add1 i)))", "t.scm").unwrap();
    let mut exp = Expander::new();
    let program = exp.expand_program(&forms).unwrap();
    let mut interp = fresh_interp();
    let mut vm = Vm::new();
    vm.max_steps = Some(10_000);
    assert!(vm.run_core(&mut interp, &program[0]).is_err());
    let mut vm = Vm::new();
    vm.dispatch = DispatchMode::Match;
    vm.max_steps = Some(10_000);
    let mut interp = fresh_interp();
    assert!(vm.run_core(&mut interp, &program[0]).is_err());
}
