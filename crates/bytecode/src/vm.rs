//! The stack VM executing basic-block bytecode.
//!
//! Two dispatch engines over the same semantics:
//!
//! - [`DispatchMode::Flat`] (the default): chunks are lowered once to
//!   contiguous [`FlatChunk`] op streams ([`crate::flat`]) and executed by
//!   index — one small `Copy` op per step, constants pre-converted into a
//!   side pool, profile-chosen superinstructions ([`crate::fuse`]) fusing
//!   hot adjacent pairs into single dispatches.
//! - [`DispatchMode::Match`]: the original block/`Terminator` walker, kept
//!   as the semantic reference and the honest baseline for bench E17.
//!
//! Both engines bump the same [`VmMetrics`] and block counters at the same
//! program points, so profiles and the layout cost model are dispatch-mode
//! independent — the differential oracle in `tests/proptests.rs` holds the
//! engines to that bit-for-bit.

use crate::chunk::{BlockId, Chunk, Instr, Terminator};
use crate::compile::compile_chunk;
use crate::counters::{BlockCounters, NO_BASE};
use crate::flat::{self, FlatChunk, JumpTarget, Op};
use crate::fuse::FusionPlan;
use pgmp_eval::{Closure, Core, EvalError, EvalErrorKind, Frame, Interp, LambdaDef, QuickOp, Value};
use pgmp_observe as observe;
use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

/// Sentinel for an unresolved entry in a chunk's global-slot cache.
const UNRESOLVED: u32 = u32::MAX;

/// How the VM executes chunks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// Lower to flat op streams and execute by index (fast path).
    #[default]
    Flat,
    /// Walk the block/`Terminator` form directly (reference engine).
    Match,
}

impl DispatchMode {
    /// Parses a CLI spelling (`flat` / `match`).
    pub fn parse(s: &str) -> Option<DispatchMode> {
        match s {
            "flat" => Some(DispatchMode::Flat),
            "match" => Some(DispatchMode::Match),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            DispatchMode::Flat => "flat",
            DispatchMode::Match => "match",
        }
    }
}

/// Execution statistics: the cost model block-level PGO optimizes.
///
/// A `Jump`/`Branch` to the block laid out immediately after the current
/// one counts as a fall-through; any other target is a taken jump. Layout
/// optimization ([`crate::optimize_layout`]) raises the fall-through ratio
/// on hot paths. `blocks_executed`, `fallthroughs`, `taken_jumps`, and
/// `calls` are identical across dispatch modes; `dispatches` and
/// `fused_dispatches` describe the flat stream (fusion makes `dispatches`
/// smaller, which is the point).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmMetrics {
    /// Basic blocks entered.
    pub blocks_executed: u64,
    /// Control transfers to the next block in layout order.
    pub fallthroughs: u64,
    /// Control transfers anywhere else.
    pub taken_jumps: u64,
    /// Procedure calls (including tail calls).
    pub calls: u64,
    /// Ops dispatched (loop iterations, both engines).
    pub dispatches: u64,
    /// Dispatches that executed a fused superinstruction.
    pub fused_dispatches: u64,
}

impl VmMetrics {
    /// Fraction of intra-chunk control transfers that fell through.
    pub fn fallthrough_ratio(&self) -> f64 {
        let total = self.fallthroughs + self.taken_jumps;
        if total == 0 {
            return 1.0;
        }
        self.fallthroughs as f64 / total as f64
    }

    /// Fraction of dispatches that were fused superinstructions.
    pub fn fused_share(&self) -> f64 {
        if self.dispatches == 0 {
            return 0.0;
        }
        self.fused_dispatches as f64 / self.dispatches as f64
    }
}

struct Activation {
    chunk: Rc<Chunk>,
    block: BlockId,
    ip: usize,
    frame: Option<Rc<Frame>>,
    /// Base of this chunk's dense block-counter range, resolved once per
    /// activation ([`NO_BASE`] when profiling is off or hash-keyed), so
    /// block entry bumps a vector slot instead of hashing `(chunk, block)`.
    counter_base: u32,
    /// Chunk-local global-slot cache: `GlobalRef`'s `cache` operand indexes
    /// here; each cell memoizes the interpreter's global slot
    /// ([`UNRESOLVED`] until first execution).
    globals: Rc<[Cell<u32>]>,
}

/// Sentinel `def_key` for activations not entered through a lambda (the
/// toplevel chunk). `LambdaDef`s live behind `Rc`, so no real key is 0.
const NO_DEF: usize = 0;

struct FlatActivation {
    code: Rc<FlatChunk>,
    pc: u32,
    frame: Option<Rc<Frame>>,
    counter_base: u32,
    globals: Rc<[Cell<u32>]>,
    /// Identity (`Rc` pointer) of the `LambdaDef` this code was lowered
    /// from, letting a tail self-call re-enter `code` without touching
    /// the lowering cache. [`NO_DEF`] for toplevel chunks.
    def_key: usize,
}

/// A flat lowering bundled with its chunk's global-slot cache, so entering
/// an activation costs one cache lookup, not two. The globals `Rc` aliases
/// the entry in `Vm::global_caches` (keyed by chunk id), which is what
/// keeps resolved slots alive across re-lowerings.
#[derive(Clone)]
struct FlatEntry {
    code: Rc<FlatChunk>,
    globals: Rc<[Cell<u32>]>,
}

/// The bytecode virtual machine.
///
/// Owns its chunk/lowering caches and borrows an [`Interp`] per run for
/// globals, natives, and (tree-walked) closure application inside
/// higher-order natives. See the crate-level example.
#[derive(Default)]
pub struct Vm {
    chunk_cache: HashMap<usize, Rc<Chunk>>,
    /// Flat lowerings of lambda chunks, keyed like `chunk_cache` by the
    /// `LambdaDef` pointer; invalidated by `set_fusion`/`relayout_cached`.
    flat_lambda_cache: HashMap<usize, FlatEntry>,
    /// One-entry inline cache in front of `flat_lambda_cache`: calls in a
    /// loop are overwhelmingly monomorphic, so the common closure call
    /// skips the hash lookup entirely.
    last_flat: Option<(usize, FlatEntry)>,
    /// Flat lowerings of toplevel chunks passed to [`Vm::run_chunk`],
    /// keyed by chunk id and revalidated against [`flat::layout_sig`]
    /// (callers may re-lay-out a chunk without changing its id).
    flat_cache: HashMap<u32, FlatEntry>,
    /// Per-chunk global-slot caches, keyed by chunk id.
    global_caches: HashMap<u32, Rc<[Cell<u32>]>>,
    /// Block-level profile counters, when enabled.
    pub block_counters: Option<BlockCounters>,
    /// Execution statistics for the current/most recent run.
    pub metrics: VmMetrics,
    /// Optional instruction budget.
    pub max_steps: Option<u64>,
    /// Which execution engine runs chunks.
    pub dispatch: DispatchMode,
    fusion: FusionPlan,
}

impl Vm {
    /// Creates a VM (flat dispatch, no fusion, no profiling).
    pub fn new() -> Vm {
        Vm::default()
    }

    /// Enables block-level profiling into `counters`.
    pub fn set_block_profiling(&mut self, counters: BlockCounters) {
        self.block_counters = Some(counters);
    }

    /// Sets the superinstruction plan for subsequent lowerings and drops
    /// stale ones (lowering is lazy, so the next execution re-lowers).
    pub fn set_fusion(&mut self, plan: FusionPlan) {
        if plan != self.fusion {
            self.fusion = plan;
            self.flat_lambda_cache.clear();
            self.last_flat = None;
            self.flat_cache.clear();
        }
    }

    /// The active superinstruction plan.
    pub fn fusion(&self) -> &FusionPlan {
        &self.fusion
    }

    /// Compiles `core` and runs it.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`]s exactly as the tree-walker would.
    pub fn run_core(&mut self, interp: &mut Interp, core: &Rc<Core>) -> Result<Value, EvalError> {
        let chunk = compile_chunk(core);
        self.run_chunk(interp, &chunk)
    }

    /// Runs an already-compiled chunk.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`]s from primitives and the program itself.
    pub fn run_chunk(&mut self, interp: &mut Interp, chunk: &Chunk) -> Result<Value, EvalError> {
        let t = observe::timer();
        let blocks_before = self.metrics.blocks_executed;
        let fused_before = self.metrics.fused_dispatches;
        let out = match self.dispatch {
            DispatchMode::Flat => {
                let code = self.flat_for_toplevel(chunk);
                self.exec_flat(interp, code)
            }
            DispatchMode::Match => self.exec(interp, Rc::new(chunk.clone())),
        };
        // The run is over: park the sampling beacon (no-op on exact
        // registries) so samples taken between runs attribute nothing.
        if let Some(counters) = &self.block_counters {
            counters.park();
        }
        let m = observe::metrics();
        m.gauge_set("vm.fallthrough_ratio", self.metrics.fallthrough_ratio());
        let fused_delta = self.metrics.fused_dispatches - fused_before;
        if fused_delta > 0 {
            m.counter_add("vm.fused_dispatches", fused_delta);
        }
        if t.is_some() {
            let blocks = self.metrics.blocks_executed - blocks_before;
            observe::finish(t, |duration_us| observe::EventKind::VmRun {
                chunk: chunk.id,
                blocks,
                duration_us,
            });
        }
        out
    }

    /// The chunks compiled so far for lambdas called through the VM,
    /// lazily populated; used by the three-pass driver to apply layout
    /// optimization and check CFG stability.
    pub fn compiled_chunks(&self) -> Vec<Rc<Chunk>> {
        let mut chunks: Vec<Rc<Chunk>> = self.chunk_cache.values().cloned().collect();
        chunks.sort_by_key(|c| c.id);
        chunks
    }

    /// Re-lays-out every cached lambda chunk using `counters` and drops
    /// their flat lowerings (re-lowered lazily from the new layout).
    pub fn relayout_cached(&mut self, counters: &BlockCounters) {
        for chunk in self.chunk_cache.values_mut() {
            *chunk = Rc::new(crate::layout::optimize_layout(chunk, counters));
        }
        self.flat_lambda_cache.clear();
        self.last_flat = None;
    }

    fn chunk_for(&mut self, def: &Rc<LambdaDef>) -> Rc<Chunk> {
        let key = Rc::as_ptr(def) as usize;
        if let Some(c) = self.chunk_cache.get(&key) {
            return c.clone();
        }
        let chunk = Rc::new(compile_chunk(&def.body));
        self.chunk_cache.insert(key, chunk.clone());
        chunk
    }

    /// The flat lowering of a lambda's chunk (with its global-slot cache),
    /// cached by def pointer behind a one-entry inline cache. Also
    /// populates `chunk_cache`, so layout/CFG consumers see the same
    /// chunks regardless of dispatch mode.
    fn flat_for(&mut self, def: &Rc<LambdaDef>) -> FlatEntry {
        let key = Rc::as_ptr(def) as usize;
        if let Some((k, entry)) = &self.last_flat {
            if *k == key {
                return entry.clone();
            }
        }
        let entry = match self.flat_lambda_cache.get(&key) {
            Some(e) => e.clone(),
            None => {
                let chunk = self.chunk_for(def);
                let code = Rc::new(self.lower(&chunk));
                let globals = self.global_cache_for(code.id, code.global_refs);
                let entry = FlatEntry { code, globals };
                self.flat_lambda_cache.insert(key, entry.clone());
                entry
            }
        };
        self.last_flat = Some((key, entry.clone()));
        entry
    }

    /// The flat lowering of a toplevel chunk, cached by id and
    /// revalidated by layout signature: a caller that re-lays-out a chunk
    /// (same id, new block order) gets a fresh lowering, not stale code.
    fn flat_for_toplevel(&mut self, chunk: &Chunk) -> FlatEntry {
        let sig = flat::layout_sig(chunk);
        if let Some(e) = self.flat_cache.get(&chunk.id) {
            if e.code.layout_sig == sig {
                return e.clone();
            }
        }
        let code = Rc::new(self.lower(chunk));
        let globals = self.global_cache_for(code.id, code.global_refs);
        let entry = FlatEntry { code, globals };
        self.flat_cache.insert(chunk.id, entry.clone());
        entry
    }

    /// Lowers `chunk` under the active fusion plan, tracing the lowering
    /// as a `vm_lower` span when observability is armed.
    fn lower(&self, chunk: &Chunk) -> FlatChunk {
        let t = observe::timer();
        let code = flat::lower_chunk(chunk, &self.fusion);
        if t.is_some() {
            let (ops, fused) = (code.ops.len() as u64, code.fused);
            observe::finish(t, |duration_us| observe::EventKind::VmLower {
                chunk: chunk.id,
                ops,
                fused,
                duration_us,
            });
        }
        code
    }

    /// The global-slot cache for chunk `id`, created on first use. Keyed
    /// by chunk id, so re-laid-out chunks (same id, same instructions)
    /// keep their resolved slots.
    fn global_cache_for(&mut self, id: u32, global_refs: u32) -> Rc<[Cell<u32>]> {
        if let Some(c) = self.global_caches.get(&id) {
            if c.len() >= global_refs as usize {
                return c.clone();
            }
        }
        let cache: Rc<[Cell<u32>]> = (0..global_refs).map(|_| Cell::new(UNRESOLVED)).collect();
        self.global_caches.insert(id, cache.clone());
        cache
    }

    /// Resolves a chunk's block-counter base once per activation — the
    /// per-call cost that buys hash-free block entries.
    fn counter_base(&self, id: u32, blocks: u32) -> u32 {
        match &self.block_counters {
            Some(c) => c.register_chunk(id, blocks),
            None => NO_BASE,
        }
    }

    /// Builds an activation for `chunk` (match engine).
    fn activation(&mut self, chunk: Rc<Chunk>, frame: Option<Rc<Frame>>) -> Activation {
        let counter_base = self.counter_base(chunk.id, chunk.block_count() as u32);
        let globals = self.global_cache_for(chunk.id, chunk.global_refs);
        Activation {
            block: chunk.entry,
            ip: 0,
            chunk,
            frame,
            counter_base,
            globals,
        }
    }

    /// Builds an activation for a flat entry (flat engine). The global
    /// cache rides in the entry, so this touches no `Vm` map when
    /// profiling is off.
    fn flat_activation(
        &mut self,
        entry: FlatEntry,
        def_key: usize,
        frame: Option<Rc<Frame>>,
    ) -> FlatActivation {
        let FlatEntry { code, globals } = entry;
        let counter_base = self.counter_base(code.id, code.block_count);
        FlatActivation {
            pc: code.entry_pc,
            code,
            frame,
            counter_base,
            globals,
            def_key,
        }
    }

    /// Records entry into a block: the one counter both engines bump at
    /// identical program points (activation entry and every taken
    /// `Jump`/`Branch` edge; never on return into a block's middle).
    #[inline]
    fn enter_block(&mut self, base: u32, chunk_id: u32, block: BlockId) {
        self.metrics.blocks_executed += 1;
        if let Some(counters) = &self.block_counters {
            if base != NO_BASE {
                counters.increment_at(base, block);
            } else {
                counters.increment(chunk_id, block);
            }
        }
    }

    #[inline]
    fn transfer(&mut self, from: BlockId, to: BlockId) {
        if to == from + 1 {
            self.metrics.fallthroughs += 1;
        } else {
            self.metrics.taken_jumps += 1;
        }
    }

    /// The reference engine: walks the block/`Terminator` form. The step
    /// budget is a pre-resolved fuel countdown and instructions are
    /// matched by reference (payloads cloned only in the arms that keep
    /// them), so the E17 baseline carries no avoidable per-step cost.
    fn exec(&mut self, interp: &mut Interp, chunk: Rc<Chunk>) -> Result<Value, EvalError> {
        let mut stack: Vec<Value> = Vec::with_capacity(64);
        let mut saved: Vec<Activation> = Vec::with_capacity(16);
        let mut fuel: u64 = self.max_steps.unwrap_or(u64::MAX);
        let mut cur = self.activation(chunk, None);
        self.enter_block(cur.counter_base, cur.chunk.id, cur.block);
        loop {
            if fuel == 0 {
                return Err(EvalError::new(EvalErrorKind::Fuel, "vm step budget exhausted"));
            }
            fuel -= 1;
            self.metrics.dispatches += 1;
            let block = &cur.chunk.blocks[cur.block as usize];
            if cur.ip < block.instrs.len() {
                let instr = &block.instrs[cur.ip];
                cur.ip += 1;
                match instr {
                    Instr::Const(d) => stack.push(Value::from_datum(d)),
                    Instr::SyntaxConst(s) => stack.push(Value::Syntax(s.clone())),
                    Instr::Unspecified => stack.push(Value::Unspecified),
                    Instr::LocalRef { depth, index } => {
                        let frame = cur.frame.as_ref().expect("local ref without frame");
                        stack.push(frame.get(*depth, *index));
                    }
                    Instr::GlobalRef { name, cache } => {
                        let cell = &cur.globals[*cache as usize];
                        let mut slot = cell.get();
                        if slot == UNRESOLVED {
                            slot = interp.global_slot_or_reserve(*name);
                            cell.set(slot);
                        }
                        match interp.global_by_slot(slot) {
                            Some(v) => stack.push(v.clone()),
                            None => {
                                return Err(EvalError::new(
                                    EvalErrorKind::Unbound,
                                    format!("unbound variable `{name}`"),
                                ))
                            }
                        }
                    }
                    Instr::SetLocal { depth, index } => {
                        let v = stack.pop().expect("stack underflow");
                        cur.frame
                            .as_ref()
                            .expect("local set without frame")
                            .set(*depth, *index, v);
                    }
                    Instr::SetGlobal(name) => {
                        if interp.global(*name).is_none() {
                            return Err(EvalError::new(
                                EvalErrorKind::Unbound,
                                format!("set!: unbound variable `{name}`"),
                            ));
                        }
                        let v = stack.pop().expect("stack underflow");
                        interp.define_global(*name, v);
                    }
                    Instr::DefineGlobal(name) => {
                        let v = stack.pop().expect("stack underflow");
                        interp.define_global(*name, v);
                    }
                    Instr::PushFrame(n) => {
                        let slots = stack.split_off(stack.len() - *n as usize);
                        cur.frame = Some(Frame::new(slots, cur.frame.take()));
                    }
                    Instr::PushFrameUnspec(n) => {
                        cur.frame = Some(Frame::new(
                            vec![Value::Unspecified; *n as usize],
                            cur.frame.take(),
                        ));
                    }
                    Instr::PopFrame => {
                        let frame = cur.frame.take().expect("pop without frame");
                        cur.frame = frame.parent().cloned();
                    }
                    Instr::MakeClosure(def) => {
                        stack.push(Value::Closure(Rc::new(Closure {
                            def: def.clone(),
                            env: cur.frame.clone(),
                        })));
                    }
                    Instr::Call { argc, src } => {
                        let (argc, src) = (*argc, *src);
                        self.metrics.calls += 1;
                        let args = stack.split_off(stack.len() - argc as usize);
                        let callee = stack.pop().expect("stack underflow");
                        match callee {
                            Value::Native(_) => {
                                let v = interp
                                    .apply(&callee, args)
                                    .map_err(|e| e.with_src(src))?;
                                stack.push(v);
                            }
                            Value::Closure(c) => {
                                let frame =
                                    bind_closure_frame(&c, args).map_err(|e| e.with_src(src))?;
                                let chunk = self.chunk_for(&c.def);
                                let next = self.activation(chunk, Some(frame));
                                saved.push(std::mem::replace(&mut cur, next));
                                self.enter_block(cur.counter_base, cur.chunk.id, cur.block);
                            }
                            other => {
                                return Err(
                                    EvalError::type_error("procedure", &other).with_src(src)
                                )
                            }
                        }
                    }
                    Instr::Pop => {
                        stack.pop().expect("stack underflow");
                    }
                }
                continue;
            }
            // Terminator.
            match &block.term {
                Terminator::Jump(t) => {
                    let t = *t;
                    self.transfer(cur.block, t);
                    cur.block = t;
                    cur.ip = 0;
                    self.enter_block(cur.counter_base, cur.chunk.id, t);
                }
                Terminator::Branch(t, e) => {
                    let (t, e) = (*t, *e);
                    let cond = stack.pop().expect("stack underflow");
                    let target = if cond.is_truthy() { t } else { e };
                    self.transfer(cur.block, target);
                    cur.block = target;
                    cur.ip = 0;
                    self.enter_block(cur.counter_base, cur.chunk.id, target);
                }
                Terminator::Return => {
                    let v = stack.pop().expect("stack underflow");
                    match saved.pop() {
                        None => return Ok(v),
                        Some(prev) => {
                            cur = prev;
                            stack.push(v);
                        }
                    }
                }
                Terminator::TailCall { argc, src } => {
                    let (argc, src) = (*argc, *src);
                    self.metrics.calls += 1;
                    let args = stack.split_off(stack.len() - argc as usize);
                    let callee = stack.pop().expect("stack underflow");
                    match callee {
                        Value::Native(_) => {
                            let v = interp
                                .apply(&callee, args)
                                .map_err(|e| e.with_src(src))?;
                            match saved.pop() {
                                None => return Ok(v),
                                Some(prev) => {
                                    cur = prev;
                                    stack.push(v);
                                }
                            }
                        }
                        Value::Closure(c) => {
                            let frame =
                                bind_closure_frame(&c, args).map_err(|e| e.with_src(src))?;
                            let chunk = self.chunk_for(&c.def);
                            cur = self.activation(chunk, Some(frame));
                            self.enter_block(cur.counter_base, cur.chunk.id, cur.block);
                        }
                        other => {
                            return Err(EvalError::type_error("procedure", &other).with_src(src))
                        }
                    }
                }
            }
        }
    }

    /// The fast engine: executes a flat op stream by index. Every op is a
    /// small `Copy` read out of one contiguous `Vec`; constants come
    /// pre-converted from the pool; superinstructions collapse hot pairs
    /// into one dispatch. The loop runs against a local `VmMetrics` and a
    /// local counters handle (this wrapper writes the metrics back on
    /// every exit path), so per-step bookkeeping stays in registers
    /// instead of round-tripping through `self`.
    fn exec_flat(&mut self, interp: &mut Interp, entry: FlatEntry) -> Result<Value, EvalError> {
        let mut m = self.metrics;
        let counters = self.block_counters.clone();
        let out = self.exec_flat_inner(interp, entry, &mut m, &counters);
        self.metrics = m;
        out
    }

    fn exec_flat_inner(
        &mut self,
        interp: &mut Interp,
        entry: FlatEntry,
        m: &mut VmMetrics,
        counters: &Option<BlockCounters>,
    ) -> Result<Value, EvalError> {
        let mut stack: Vec<Value> = Vec::with_capacity(64);
        let mut saved: Vec<FlatActivation> = Vec::with_capacity(16);
        // The dispatch counter doubles as the step budget: one counter to
        // bump, one register compare per op.
        let limit: u64 = match self.max_steps {
            Some(n) => m.dispatches.saturating_add(n),
            None => u64::MAX,
        };
        let mut cur = self.flat_activation(entry, NO_DEF, None);
        enter_block_at(counters, m, cur.counter_base, cur.code.id, cur.code.entry_block);
        loop {
            if m.dispatches >= limit {
                return Err(EvalError::new(EvalErrorKind::Fuel, "vm step budget exhausted"));
            }
            m.dispatches += 1;
            let op = cur.code.ops[cur.pc as usize];
            cur.pc += 1;
            match op {
                Op::Imm { pool } => stack.push(cur.code.imms[pool as usize].clone()),
                Op::DatumConst { pool } => {
                    stack.push(Value::from_datum(&cur.code.datums[pool as usize]))
                }
                Op::SyntaxConst { pool } => {
                    stack.push(Value::Syntax(cur.code.syntaxes[pool as usize].clone()))
                }
                Op::Unspecified => stack.push(Value::Unspecified),
                Op::LocalRef { depth, index } => {
                    let frame = cur.frame.as_ref().expect("local ref without frame");
                    stack.push(frame.get(depth, index));
                }
                Op::GlobalRef { name, cache } => {
                    let cell = &cur.globals[cache as usize];
                    let mut slot = cell.get();
                    if slot == UNRESOLVED {
                        slot = interp.global_slot_or_reserve(name);
                        cell.set(slot);
                    }
                    match interp.global_by_slot(slot) {
                        Some(v) => stack.push(v.clone()),
                        None => {
                            return Err(EvalError::new(
                                EvalErrorKind::Unbound,
                                format!("unbound variable `{name}`"),
                            ))
                        }
                    }
                }
                Op::SetLocal { depth, index } => {
                    let v = stack.pop().expect("stack underflow");
                    cur.frame
                        .as_ref()
                        .expect("local set without frame")
                        .set(depth, index, v);
                }
                Op::SetGlobal { name } => {
                    if interp.global(name).is_none() {
                        return Err(EvalError::new(
                            EvalErrorKind::Unbound,
                            format!("set!: unbound variable `{name}`"),
                        ));
                    }
                    let v = stack.pop().expect("stack underflow");
                    interp.define_global(name, v);
                }
                Op::DefineGlobal { name } => {
                    let v = stack.pop().expect("stack underflow");
                    interp.define_global(name, v);
                }
                Op::PushFrame { n } => {
                    let slots = stack.split_off(stack.len() - n as usize);
                    cur.frame = Some(Frame::new(slots, cur.frame.take()));
                }
                Op::PushFrameUnspec { n } => {
                    cur.frame = Some(Frame::new(
                        vec![Value::Unspecified; n as usize],
                        cur.frame.take(),
                    ));
                }
                Op::PopFrame => {
                    let frame = cur.frame.take().expect("pop without frame");
                    cur.frame = frame.parent().cloned();
                }
                Op::MakeClosure { pool } => {
                    stack.push(Value::Closure(Rc::new(Closure {
                        def: cur.code.lambdas[pool as usize].clone(),
                        env: cur.frame.clone(),
                    })));
                }
                Op::Call { argc, src } => {
                    if let Some(v) = quick_call(&mut stack, argc) {
                        m.calls += 1;
                        stack.push(v);
                        continue;
                    }
                    let args = stack.split_off(stack.len() - argc as usize);
                    let callee = stack.pop().expect("stack underflow");
                    let src = cur.code.srcs[src as usize];
                    self.call_value(
                        interp, callee, args, src, &mut stack, &mut saved, &mut cur, m, counters,
                    )?;
                }
                Op::Pop => {
                    stack.pop().expect("stack underflow");
                }
                Op::Jump { target } => {
                    transfer_to(m, target);
                    cur.pc = target.pc;
                    enter_block_at(counters, m, cur.counter_base, cur.code.id, target.block());
                }
                Op::Branch { then_, else_ } => {
                    let cond = stack.pop().expect("stack underflow");
                    let target = if cond.is_truthy() { then_ } else { else_ };
                    transfer_to(m, target);
                    cur.pc = target.pc;
                    enter_block_at(counters, m, cur.counter_base, cur.code.id, target.block());
                }
                Op::Return => {
                    let v = stack.pop().expect("stack underflow");
                    match saved.pop() {
                        None => return Ok(v),
                        Some(prev) => {
                            cur = prev;
                            stack.push(v);
                        }
                    }
                }
                Op::TailCall { argc, src } => {
                    let flow = match quick_call(&mut stack, argc) {
                        Some(v) => {
                            m.calls += 1;
                            Some(v)
                        }
                        None if tail_frame_is_reusable(&stack, &cur.frame, argc) => {
                            m.calls += 1;
                            let frame = cur.frame.as_ref().expect("reuse without frame");
                            frame.refill_from_stack(&mut stack);
                            let Value::Closure(c) = stack.pop().expect("stack underflow")
                            else {
                                unreachable!("reuse check admitted a non-closure")
                            };
                            // A self-call re-enters the code already in
                            // hand; only a different callee needs the
                            // lowering cache.
                            let key = Rc::as_ptr(&c.def) as usize;
                            if key != cur.def_key {
                                let entry = self.flat_for(&c.def);
                                cur.counter_base =
                                    self.counter_base(entry.code.id, entry.code.block_count);
                                cur.globals = entry.globals;
                                cur.code = entry.code;
                                cur.def_key = key;
                            }
                            cur.pc = cur.code.entry_pc;
                            enter_block_at(
                                counters,
                                m,
                                cur.counter_base,
                                cur.code.id,
                                cur.code.entry_block,
                            );
                            None
                        }
                        None => {
                            let args = stack.split_off(stack.len() - argc as usize);
                            let callee = stack.pop().expect("stack underflow");
                            let src = cur.code.srcs[src as usize];
                            self.tail_call_value(interp, callee, args, src, &mut cur, m, counters)?
                        }
                    };
                    if let Some(v) = flow {
                        match saved.pop() {
                            None => return Ok(v),
                            Some(prev) => {
                                cur = prev;
                                stack.push(v);
                            }
                        }
                    }
                }

                // --- Superinstructions ---------------------------------
                Op::LocalLocal {
                    depth0,
                    index0,
                    depth1,
                    index1,
                } => {
                    m.fused_dispatches += 1;
                    let frame = cur.frame.as_ref().expect("local ref without frame");
                    let a = frame.get(depth0, index0);
                    let b = frame.get(depth1, index1);
                    stack.push(a);
                    stack.push(b);
                }
                Op::LocalCall {
                    depth,
                    index,
                    argc,
                    src,
                } => {
                    m.fused_dispatches += 1;
                    let local = cur
                        .frame
                        .as_ref()
                        .expect("local ref without frame")
                        .get(depth, index);
                    // Re-materialize the push the fusion elided, then take
                    // the common call path (incl. the quickened fast path).
                    stack.push(local);
                    if let Some(v) = quick_call(&mut stack, argc) {
                        m.calls += 1;
                        stack.push(v);
                        continue;
                    }
                    let args = stack.split_off(stack.len() - argc as usize);
                    let callee = stack.pop().expect("stack underflow");
                    let src = cur.code.srcs[src as usize];
                    self.call_value(
                        interp, callee, args, src, &mut stack, &mut saved, &mut cur, m, counters,
                    )?;
                }
                Op::ImmCall { pool, argc, src } => {
                    m.fused_dispatches += 1;
                    let imm = cur.code.imms[pool as usize].clone();
                    stack.push(imm);
                    if let Some(v) = quick_call(&mut stack, argc) {
                        m.calls += 1;
                        stack.push(v);
                        continue;
                    }
                    let args = stack.split_off(stack.len() - argc as usize);
                    let callee = stack.pop().expect("stack underflow");
                    let src = cur.code.srcs[src as usize];
                    self.call_value(
                        interp, callee, args, src, &mut stack, &mut saved, &mut cur, m, counters,
                    )?;
                }
                Op::ImmBranch { target } => {
                    m.fused_dispatches += 1;
                    transfer_to(m, target);
                    cur.pc = target.pc;
                    enter_block_at(counters, m, cur.counter_base, cur.code.id, target.block());
                }
                Op::LocalReturn { depth, index } => {
                    m.fused_dispatches += 1;
                    let v = cur
                        .frame
                        .as_ref()
                        .expect("local ref without frame")
                        .get(depth, index);
                    match saved.pop() {
                        None => return Ok(v),
                        Some(prev) => {
                            cur = prev;
                            stack.push(v);
                        }
                    }
                }
            }
        }
    }

    /// Non-tail call dispatch for the flat engine: natives apply inline,
    /// closures push the current activation and enter their flat code.
    #[allow(clippy::too_many_arguments)]
    fn call_value(
        &mut self,
        interp: &mut Interp,
        callee: Value,
        args: Vec<Value>,
        src: Option<pgmp_syntax::SourceObject>,
        stack: &mut Vec<Value>,
        saved: &mut Vec<FlatActivation>,
        cur: &mut FlatActivation,
        m: &mut VmMetrics,
        counters: &Option<BlockCounters>,
    ) -> Result<(), EvalError> {
        m.calls += 1;
        match callee {
            Value::Native(_) => {
                let v = interp.apply(&callee, args).map_err(|e| e.with_src(src))?;
                stack.push(v);
            }
            Value::Closure(c) => {
                let frame = bind_closure_frame(&c, args).map_err(|e| e.with_src(src))?;
                let key = Rc::as_ptr(&c.def) as usize;
                let entry = self.flat_for(&c.def);
                let next = self.flat_activation(entry, key, Some(frame));
                saved.push(std::mem::replace(cur, next));
                enter_block_at(counters, m, cur.counter_base, cur.code.id, cur.code.entry_block);
            }
            other => return Err(EvalError::type_error("procedure", &other).with_src(src)),
        }
        Ok(())
    }

    /// Tail call dispatch for the flat engine. Returns `Some(v)` when the
    /// callee was a native (the value must flow to the caller's saved
    /// activation or out of the run); `None` when a closure replaced the
    /// current activation.
    #[allow(clippy::too_many_arguments)]
    fn tail_call_value(
        &mut self,
        interp: &mut Interp,
        callee: Value,
        args: Vec<Value>,
        src: Option<pgmp_syntax::SourceObject>,
        cur: &mut FlatActivation,
        m: &mut VmMetrics,
        counters: &Option<BlockCounters>,
    ) -> Result<Option<Value>, EvalError> {
        m.calls += 1;
        match callee {
            Value::Native(_) => {
                let v = interp.apply(&callee, args).map_err(|e| e.with_src(src))?;
                Ok(Some(v))
            }
            Value::Closure(c) => {
                let frame = bind_closure_frame(&c, args).map_err(|e| e.with_src(src))?;
                let key = Rc::as_ptr(&c.def) as usize;
                let entry = self.flat_for(&c.def);
                *cur = self.flat_activation(entry, key, Some(frame));
                enter_block_at(counters, m, cur.counter_base, cur.code.id, cur.code.entry_block);
                Ok(None)
            }
            other => Err(EvalError::type_error("procedure", &other).with_src(src)),
        }
    }
}

/// Block-entry bookkeeping against a local metrics/counters pair (the flat
/// engine's register-resident equivalent of [`Vm::enter_block`]).
#[inline]
fn enter_block_at(
    counters: &Option<BlockCounters>,
    m: &mut VmMetrics,
    base: u32,
    chunk_id: u32,
    block: BlockId,
) {
    m.blocks_executed += 1;
    if let Some(c) = counters {
        if base != NO_BASE {
            c.increment_at(base, block);
        } else {
            c.increment(chunk_id, block);
        }
    }
}

/// Fall-through/taken classification against a local metrics struct.
#[inline]
fn transfer_to(m: &mut VmMetrics, t: JumpTarget) {
    if t.fallthrough() {
        m.fallthroughs += 1;
    } else {
        m.taken_jumps += 1;
    }
}

/// Whether a closure tail call may overwrite the current activation's
/// frame in place instead of allocating a fresh one: the callee (sitting
/// below `argc` arguments on the stack) must be a non-variadic closure of
/// exactly `argc` params whose environment is the frame's parent, and the
/// frame itself must be unshared (`Rc` count 1 — no closure captured it,
/// no other activation holds it) with exactly `argc` slots. Under those
/// conditions the fresh frame the generic path would build is
/// indistinguishable from the refilled one, so reuse only skips the two
/// allocations (argument `Vec` + frame `Rc`) of the hot self-call.
#[inline]
fn tail_frame_is_reusable(stack: &[Value], frame: &Option<Rc<Frame>>, argc: u16) -> bool {
    let Some(f) = frame else { return false };
    let Value::Closure(c) = &stack[stack.len() - 1 - argc as usize] else {
        return false;
    };
    !c.def.variadic
        && c.def.params as usize == argc as usize
        && Rc::strong_count(f) == 1
        && f.len() == argc as usize
        && match (f.parent(), &c.env) {
            (None, None) => true,
            (Some(p), Some(e)) => Rc::ptr_eq(p, e),
            _ => false,
        }
}

/// The quickened call fast path: with `[callee, args…]` on top of `stack`,
/// executes prelude fixnum primitives inline — no argument `Vec`, no boxed
/// call. Returns the result after popping the operands, or `None` with the
/// stack untouched whenever anything is off-pattern (no `quick` tag,
/// non-`Int` operand, overflow), so the generic path keeps full
/// number-tower and error semantics. Callers count the call on success,
/// keeping `VmMetrics::calls` identical to the unquickened engines.
#[inline]
fn quick_call(stack: &mut Vec<Value>, argc: u16) -> Option<Value> {
    let n = stack.len();
    let result = match argc {
        2 => {
            let [Value::Native(nat), Value::Int(a), Value::Int(b)] = &stack[n - 3..] else {
                return None;
            };
            let (a, b) = (*a, *b);
            match nat.quick? {
                QuickOp::Add => Value::Int(a.checked_add(b)?),
                QuickOp::Sub => Value::Int(a.checked_sub(b)?),
                QuickOp::Mul => Value::Int(a.checked_mul(b)?),
                QuickOp::Lt => Value::Bool(a < b),
                QuickOp::Gt => Value::Bool(a > b),
                QuickOp::Le => Value::Bool(a <= b),
                QuickOp::Ge => Value::Bool(a >= b),
                QuickOp::NumEq => Value::Bool(a == b),
                QuickOp::Add1 | QuickOp::Sub1 => return None,
            }
        }
        1 => {
            let [Value::Native(nat), Value::Int(a)] = &stack[n - 2..] else {
                return None;
            };
            let a = *a;
            match nat.quick? {
                QuickOp::Add1 => Value::Int(a.checked_add(1)?),
                QuickOp::Sub1 => Value::Int(a.checked_sub(1)?),
                QuickOp::Sub => Value::Int(a.checked_neg()?),
                _ => return None,
            }
        }
        _ => return None,
    };
    stack.truncate(n - (argc as usize + 1));
    Some(result)
}

fn bind_closure_frame(c: &Closure, mut args: Vec<Value>) -> Result<Rc<Frame>, EvalError> {
    let required = c.def.params as usize;
    let name = c.def.name.map(|n| n.as_str()).unwrap_or("#<procedure>");
    if c.def.variadic {
        if args.len() < required {
            return Err(EvalError::arity(
                name,
                &format!("at least {required}"),
                args.len(),
            ));
        }
        let rest = Value::list(args.split_off(required));
        args.push(rest);
    } else if args.len() != required {
        return Err(EvalError::arity(name, &required.to_string(), args.len()));
    }
    Ok(Frame::new(args, c.env.clone()))
}
