//! The stack VM executing basic-block bytecode.

use crate::chunk::{BlockId, Chunk, Instr, Terminator};
use crate::compile::compile_chunk;
use crate::counters::{BlockCounters, NO_BASE};
use pgmp_eval::{Closure, Core, EvalError, EvalErrorKind, Frame, Interp, LambdaDef, Value};
use pgmp_observe as observe;
use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

/// Sentinel for an unresolved entry in a chunk's global-slot cache.
const UNRESOLVED: u32 = u32::MAX;

/// Execution statistics: the cost model block-level PGO optimizes.
///
/// A `Jump`/`Branch` to the block laid out immediately after the current
/// one counts as a fall-through; any other target is a taken jump. Layout
/// optimization ([`crate::optimize_layout`]) raises the fall-through ratio
/// on hot paths.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmMetrics {
    /// Basic blocks entered.
    pub blocks_executed: u64,
    /// Control transfers to the next block in layout order.
    pub fallthroughs: u64,
    /// Control transfers anywhere else.
    pub taken_jumps: u64,
    /// Procedure calls (including tail calls).
    pub calls: u64,
}

impl VmMetrics {
    /// Fraction of intra-chunk control transfers that fell through.
    pub fn fallthrough_ratio(&self) -> f64 {
        let total = self.fallthroughs + self.taken_jumps;
        if total == 0 {
            return 1.0;
        }
        self.fallthroughs as f64 / total as f64
    }
}

struct Activation {
    chunk: Rc<Chunk>,
    block: BlockId,
    ip: usize,
    frame: Option<Rc<Frame>>,
    /// Base of this chunk's dense block-counter range, resolved once per
    /// activation ([`NO_BASE`] when profiling is off or hash-keyed), so
    /// block entry bumps a vector slot instead of hashing `(chunk, block)`.
    counter_base: u32,
    /// Chunk-local global-slot cache: `GlobalRef`'s `cache` operand indexes
    /// here; each cell memoizes the interpreter's global slot
    /// ([`UNRESOLVED`] until first execution).
    globals: Rc<[Cell<u32>]>,
}

/// The bytecode virtual machine.
///
/// Borrows an [`Interp`] for globals, natives, and (tree-walked) closure
/// application inside higher-order natives. See the crate-level example.
pub struct Vm<'a> {
    /// The shared interpreter (globals + natives).
    pub interp: &'a mut Interp,
    chunk_cache: HashMap<usize, Rc<Chunk>>,
    /// Per-chunk global-slot caches, keyed by chunk id.
    global_caches: HashMap<u32, Rc<[Cell<u32>]>>,
    /// Block-level profile counters, when enabled.
    pub block_counters: Option<BlockCounters>,
    /// Execution statistics for the current/most recent run.
    pub metrics: VmMetrics,
    /// Optional instruction budget.
    pub max_steps: Option<u64>,
}

impl<'a> Vm<'a> {
    /// Creates a VM over `interp`.
    pub fn new(interp: &'a mut Interp) -> Vm<'a> {
        Vm {
            interp,
            chunk_cache: HashMap::new(),
            global_caches: HashMap::new(),
            block_counters: None,
            metrics: VmMetrics::default(),
            max_steps: None,
        }
    }

    /// Enables block-level profiling into `counters`.
    pub fn set_block_profiling(&mut self, counters: BlockCounters) {
        self.block_counters = Some(counters);
    }

    /// Compiles `core` and runs it.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`]s exactly as the tree-walker would.
    pub fn run_core(&mut self, core: &Rc<Core>) -> Result<Value, EvalError> {
        let chunk = compile_chunk(core);
        self.run_chunk(&chunk)
    }

    /// Runs an already-compiled chunk.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`]s from primitives and the program itself.
    pub fn run_chunk(&mut self, chunk: &Chunk) -> Result<Value, EvalError> {
        let t = observe::timer();
        let blocks_before = self.metrics.blocks_executed;
        let out = self.exec(Rc::new(chunk.clone()));
        if t.is_some() {
            let blocks = self.metrics.blocks_executed - blocks_before;
            observe::finish(t, |duration_us| observe::EventKind::VmRun {
                chunk: chunk.id,
                blocks,
                duration_us,
            });
        }
        out
    }

    /// The chunks compiled so far for lambdas called through the VM,
    /// lazily populated; used by the three-pass driver to apply layout
    /// optimization and check CFG stability.
    pub fn compiled_chunks(&self) -> Vec<Rc<Chunk>> {
        let mut chunks: Vec<Rc<Chunk>> = self.chunk_cache.values().cloned().collect();
        chunks.sort_by_key(|c| c.id);
        chunks
    }

    /// Re-lays-out every cached lambda chunk using `counters`.
    pub fn relayout_cached(&mut self, counters: &BlockCounters) {
        for chunk in self.chunk_cache.values_mut() {
            *chunk = Rc::new(crate::layout::optimize_layout(chunk, counters));
        }
    }

    fn chunk_for(&mut self, def: &Rc<LambdaDef>) -> Rc<Chunk> {
        let key = Rc::as_ptr(def) as usize;
        if let Some(c) = self.chunk_cache.get(&key) {
            return c.clone();
        }
        let chunk = Rc::new(compile_chunk(&def.body));
        self.chunk_cache.insert(key, chunk.clone());
        chunk
    }

    /// The global-slot cache for `chunk`, created on first use. Keyed by
    /// chunk id, so re-laid-out chunks (same id, same instructions) keep
    /// their resolved slots.
    fn global_cache_for(&mut self, chunk: &Chunk) -> Rc<[Cell<u32>]> {
        if let Some(c) = self.global_caches.get(&chunk.id) {
            if c.len() >= chunk.global_refs as usize {
                return c.clone();
            }
        }
        let cache: Rc<[Cell<u32>]> = (0..chunk.global_refs)
            .map(|_| Cell::new(UNRESOLVED))
            .collect();
        self.global_caches.insert(chunk.id, cache.clone());
        cache
    }

    /// Builds an activation for `chunk`, resolving its block-counter base
    /// and global-slot cache once — the per-call cost that buys hash-free
    /// block entries and global reads.
    fn activation(&mut self, chunk: Rc<Chunk>, frame: Option<Rc<Frame>>) -> Activation {
        let counter_base = match &self.block_counters {
            Some(c) => c.register_chunk(chunk.id, chunk.block_count() as u32),
            None => NO_BASE,
        };
        let globals = self.global_cache_for(&chunk);
        Activation {
            block: chunk.entry,
            ip: 0,
            chunk,
            frame,
            counter_base,
            globals,
        }
    }

    fn transfer(&mut self, from: BlockId, to: BlockId) {
        if to == from + 1 {
            self.metrics.fallthroughs += 1;
        } else {
            self.metrics.taken_jumps += 1;
        }
    }

    fn exec(&mut self, chunk: Rc<Chunk>) -> Result<Value, EvalError> {
        let mut stack: Vec<Value> = Vec::new();
        let mut saved: Vec<Activation> = Vec::new();
        let mut cur = self.activation(chunk, None);
        let mut entering = true;
        let mut steps: u64 = 0;
        loop {
            if entering {
                self.metrics.blocks_executed += 1;
                if let Some(counters) = &self.block_counters {
                    if cur.counter_base != NO_BASE {
                        counters.increment_at(cur.counter_base, cur.block);
                    } else {
                        counters.increment(cur.chunk.id, cur.block);
                    }
                }
                entering = false;
            }
            if let Some(max) = self.max_steps {
                steps += 1;
                if steps > max {
                    return Err(EvalError::new(EvalErrorKind::Fuel, "vm step budget exhausted"));
                }
            }
            let block = &cur.chunk.blocks[cur.block as usize];
            if cur.ip < block.instrs.len() {
                let instr = block.instrs[cur.ip].clone();
                cur.ip += 1;
                match instr {
                    Instr::Const(d) => stack.push(Value::from_datum(&d)),
                    Instr::SyntaxConst(s) => stack.push(Value::Syntax(s)),
                    Instr::Unspecified => stack.push(Value::Unspecified),
                    Instr::LocalRef { depth, index } => {
                        let frame = cur.frame.as_ref().expect("local ref without frame");
                        stack.push(frame.get(depth, index));
                    }
                    Instr::GlobalRef { name, cache } => {
                        let cell = &cur.globals[cache as usize];
                        let mut slot = cell.get();
                        if slot == UNRESOLVED {
                            slot = self.interp.global_slot_or_reserve(name);
                            cell.set(slot);
                        }
                        match self.interp.global_by_slot(slot) {
                            Some(v) => stack.push(v.clone()),
                            None => {
                                return Err(EvalError::new(
                                    EvalErrorKind::Unbound,
                                    format!("unbound variable `{name}`"),
                                ))
                            }
                        }
                    }
                    Instr::SetLocal { depth, index } => {
                        let v = stack.pop().expect("stack underflow");
                        cur.frame
                            .as_ref()
                            .expect("local set without frame")
                            .set(depth, index, v);
                    }
                    Instr::SetGlobal(name) => {
                        if self.interp.global(name).is_none() {
                            return Err(EvalError::new(
                                EvalErrorKind::Unbound,
                                format!("set!: unbound variable `{name}`"),
                            ));
                        }
                        let v = stack.pop().expect("stack underflow");
                        self.interp.define_global(name, v);
                    }
                    Instr::DefineGlobal(name) => {
                        let v = stack.pop().expect("stack underflow");
                        self.interp.define_global(name, v);
                    }
                    Instr::PushFrame(n) => {
                        let slots = stack.split_off(stack.len() - n as usize);
                        cur.frame = Some(Frame::new(slots, cur.frame.take()));
                    }
                    Instr::PushFrameUnspec(n) => {
                        cur.frame = Some(Frame::new(
                            vec![Value::Unspecified; n as usize],
                            cur.frame.take(),
                        ));
                    }
                    Instr::PopFrame => {
                        let frame = cur.frame.take().expect("pop without frame");
                        cur.frame = frame.parent().cloned();
                    }
                    Instr::MakeClosure(def) => {
                        stack.push(Value::Closure(Rc::new(Closure {
                            def,
                            env: cur.frame.clone(),
                        })));
                    }
                    Instr::Call { argc, src } => {
                        self.metrics.calls += 1;
                        let args = stack.split_off(stack.len() - argc as usize);
                        let callee = stack.pop().expect("stack underflow");
                        match callee {
                            Value::Native(_) => {
                                let v = self
                                    .interp
                                    .apply(&callee, args)
                                    .map_err(|e| e.with_src(src))?;
                                stack.push(v);
                            }
                            Value::Closure(c) => {
                                let frame =
                                    bind_closure_frame(&c, args).map_err(|e| e.with_src(src))?;
                                let chunk = self.chunk_for(&c.def);
                                let next = self.activation(chunk, Some(frame));
                                saved.push(std::mem::replace(&mut cur, next));
                                entering = true;
                            }
                            other => {
                                return Err(
                                    EvalError::type_error("procedure", &other).with_src(src)
                                )
                            }
                        }
                    }
                    Instr::Pop => {
                        stack.pop().expect("stack underflow");
                    }
                }
                continue;
            }
            // Terminator.
            match block.term.clone() {
                Terminator::Jump(t) => {
                    self.transfer(cur.block, t);
                    cur.block = t;
                    cur.ip = 0;
                    entering = true;
                }
                Terminator::Branch(t, e) => {
                    let cond = stack.pop().expect("stack underflow");
                    let target = if cond.is_truthy() { t } else { e };
                    self.transfer(cur.block, target);
                    cur.block = target;
                    cur.ip = 0;
                    entering = true;
                }
                Terminator::Return => {
                    let v = stack.pop().expect("stack underflow");
                    match saved.pop() {
                        None => return Ok(v),
                        Some(prev) => {
                            cur = prev;
                            stack.push(v);
                        }
                    }
                }
                Terminator::TailCall { argc, src } => {
                    self.metrics.calls += 1;
                    let args = stack.split_off(stack.len() - argc as usize);
                    let callee = stack.pop().expect("stack underflow");
                    match callee {
                        Value::Native(_) => {
                            let v = self
                                .interp
                                .apply(&callee, args)
                                .map_err(|e| e.with_src(src))?;
                            match saved.pop() {
                                None => return Ok(v),
                                Some(prev) => {
                                    cur = prev;
                                    stack.push(v);
                                }
                            }
                        }
                        Value::Closure(c) => {
                            let frame =
                                bind_closure_frame(&c, args).map_err(|e| e.with_src(src))?;
                            let chunk = self.chunk_for(&c.def);
                            cur = self.activation(chunk, Some(frame));
                            entering = true;
                        }
                        other => {
                            return Err(EvalError::type_error("procedure", &other).with_src(src))
                        }
                    }
                }
            }
        }
    }
}

fn bind_closure_frame(c: &Closure, mut args: Vec<Value>) -> Result<Rc<Frame>, EvalError> {
    let required = c.def.params as usize;
    let name = c.def.name.map(|n| n.as_str()).unwrap_or("#<procedure>");
    if c.def.variadic {
        if args.len() < required {
            return Err(EvalError::arity(
                name,
                &format!("at least {required}"),
                args.len(),
            ));
        }
        let rest = Value::list(args.split_off(required));
        args.push(rest);
    } else if args.len() != required {
        return Err(EvalError::arity(name, &required.to_string(), args.len()));
    }
    Ok(Frame::new(args, c.env.clone()))
}
