//! Block-level profile counters.
//!
//! Like the source-level [`pgmp_profiler::Counters`], the registry has
//! several representations. The default **dense** backend assigns each
//! registered chunk a contiguous base in one `Vec<Cell<u64>>` — the VM
//! resolves the base once per activation and block entry becomes a vector
//! bump. The legacy **hash** backend (one `(chunk, block)` hash per entry)
//! survives behind [`CounterImpl::Hash`] as the e7 baseline and for
//! interop. The **sampling** backend reuses the dense base assignment but
//! block entry only publishes a current-position beacon (one relaxed
//! store); a decoupled [`pgmp_profiler::Sampler`] thread turns periodic
//! beacon reads into estimated counts (see `pgmp_profiler::sampling`).

use pgmp_profiler::{CounterImpl, Sampler, SamplingShared, DEFAULT_SAMPLE_HZ};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// Base index returned by [`BlockCounters::register_chunk`] when the
/// registry is hash-keyed (or registration otherwise has no dense base);
/// callers seeing this fall back to keyed increments.
pub const NO_BASE: u32 = u32::MAX;

#[derive(Debug)]
enum Backend {
    Dense {
        /// chunk id → (base, block count) in `counts`.
        bases: RefCell<HashMap<u32, (u32, u32)>>,
        counts: RefCell<Vec<Cell<u64>>>,
        /// Counts for `(chunk, block)` hits outside any registered range —
        /// keyed increments to chunks nobody registered (tests, ad-hoc
        /// tooling) still land somewhere.
        overflow: RefCell<HashMap<(u32, u32), u64>>,
    },
    Hash {
        counts: RefCell<HashMap<(u32, u32), u64>>,
    },
    Sampling {
        /// chunk id → (base, block count), exactly like the dense layout;
        /// the *tallies* live in `shared` instead of a `Cell` vector.
        bases: RefCell<HashMap<u32, (u32, u32)>>,
        /// Next free dense index (the sampling analogue of `counts.len()`).
        next: Cell<u32>,
        /// Beacon + estimated tallies, shared with the sampler.
        shared: Arc<SamplingShared>,
        /// Owns the sampler thread; `None` in manual (test) mode. Dropping
        /// the last clone of the registry stops and joins the thread.
        sampler: Option<Sampler>,
        /// Configured tick rate (0 in manual mode).
        hz: u32,
    },
}

/// Execution counts per `(chunk, block)` — the block-level analogue of the
/// source-level [`pgmp_profiler::Counters`].
///
/// # Example
///
/// ```
/// use pgmp_bytecode::BlockCounters;
/// let c = BlockCounters::new();
/// c.increment(0, 2);
/// c.increment(0, 2);
/// assert_eq!(c.count(0, 2), 2);
/// ```
#[derive(Clone, Debug)]
pub struct BlockCounters {
    backend: Rc<Backend>,
}

impl Default for BlockCounters {
    fn default() -> BlockCounters {
        BlockCounters::new()
    }
}

impl BlockCounters {
    /// Creates an empty dense registry.
    pub fn new() -> BlockCounters {
        BlockCounters::with_impl(CounterImpl::Dense)
    }

    /// Creates an empty registry with an explicit representation. A
    /// sampling registry spawns its sampler thread at
    /// [`DEFAULT_SAMPLE_HZ`]; use [`BlockCounters::with_sampling`] to pick
    /// the rate.
    pub fn with_impl(kind: CounterImpl) -> BlockCounters {
        match kind {
            CounterImpl::Dense => BlockCounters {
                backend: Rc::new(Backend::Dense {
                    bases: RefCell::new(HashMap::new()),
                    counts: RefCell::new(Vec::new()),
                    overflow: RefCell::new(HashMap::new()),
                }),
            },
            CounterImpl::Hash => BlockCounters {
                backend: Rc::new(Backend::Hash {
                    counts: RefCell::new(HashMap::new()),
                }),
            },
            CounterImpl::Sampling => BlockCounters::with_sampling(DEFAULT_SAMPLE_HZ),
        }
    }

    /// Creates an empty sampling registry with a sampler thread ticking at
    /// `hz`.
    pub fn with_sampling(hz: u32) -> BlockCounters {
        BlockCounters::sampling_with(hz, true)
    }

    /// Creates a sampling registry with *no* sampler thread; tests and
    /// benchmarks drive it deterministically via
    /// [`BlockCounters::sample_now`].
    pub fn sampling_manual() -> BlockCounters {
        BlockCounters::sampling_with(0, false)
    }

    fn sampling_with(hz: u32, spawn: bool) -> BlockCounters {
        let shared = Arc::new(SamplingShared::new());
        let sampler = spawn.then(|| Sampler::spawn(shared.clone(), hz));
        BlockCounters {
            backend: Rc::new(Backend::Sampling {
                bases: RefCell::new(HashMap::new()),
                next: Cell::new(0),
                shared,
                sampler,
                hz,
            }),
        }
    }

    /// The representation behind this registry.
    pub fn impl_kind(&self) -> CounterImpl {
        match &*self.backend {
            Backend::Dense { .. } => CounterImpl::Dense,
            Backend::Hash { .. } => CounterImpl::Hash,
            Backend::Sampling { .. } => CounterImpl::Sampling,
        }
    }

    /// The configured sampler rate, when this is a sampling registry
    /// (0 in manual mode; `None` on exact registries).
    pub fn sample_hz(&self) -> Option<u32> {
        match &*self.backend {
            Backend::Sampling { hz, .. } => Some(*hz),
            _ => None,
        }
    }

    /// True when a wall-clock sampler thread is attached to this registry
    /// (always false for exact registries and manually driven sampling
    /// registries).
    pub fn has_sampler_thread(&self) -> bool {
        matches!(
            &*self.backend,
            Backend::Sampling {
                sampler: Some(_),
                ..
            }
        )
    }

    /// The shared sampling state, when this is a sampling registry.
    pub fn sampling_shared(&self) -> Option<Arc<SamplingShared>> {
        match &*self.backend {
            Backend::Sampling { shared, .. } => Some(shared.clone()),
            _ => None,
        }
    }

    /// Takes one sample immediately (test/benchmark hook); no-op on exact
    /// registries.
    pub fn sample_now(&self) {
        if let Backend::Sampling { shared, .. } = &*self.backend {
            shared.sample_now();
        }
    }

    /// Parks the sampling beacon so samples taken while no profiled code
    /// runs (VM run exited, blocking native) attribute nothing; no-op on
    /// exact registries.
    #[inline]
    pub fn park(&self) {
        if let Backend::Sampling { shared, .. } = &*self.backend {
            shared.park();
        }
    }

    /// Registers chunk `chunk` with `blocks` basic blocks and returns the
    /// base index of its counter range; idempotent (re-registration returns
    /// the existing base). The VM registers once per activation, after
    /// which each block entry is [`BlockCounters::increment_at`] — a vector
    /// bump, no hashing. Returns [`NO_BASE`] on a hash-keyed registry.
    pub fn register_chunk(&self, chunk: u32, blocks: u32) -> u32 {
        match &*self.backend {
            Backend::Dense { bases, counts, .. } => {
                let mut bases = bases.borrow_mut();
                if let Some((base, n)) = bases.get(&chunk) {
                    if blocks <= *n {
                        return *base;
                    }
                }
                let mut counts = counts.borrow_mut();
                let base = counts.len() as u32;
                let new_len = counts.len() + blocks as usize;
                counts.resize(new_len, Cell::new(0));
                bases.insert(chunk, (base, blocks));
                base
            }
            Backend::Hash { .. } => NO_BASE,
            Backend::Sampling { bases, next, .. } => {
                let mut bases = bases.borrow_mut();
                if let Some((base, n)) = bases.get(&chunk) {
                    if blocks <= *n {
                        return *base;
                    }
                }
                let base = next.get();
                next.set(base + blocks);
                bases.insert(chunk, (base, blocks));
                base
            }
        }
    }

    /// Records entry into the block at `base + block`: a saturating counter
    /// bump on a dense registry, one relaxed beacon store on a sampling
    /// registry. Only valid with a `base` returned by
    /// [`BlockCounters::register_chunk`] on this registry and `block`
    /// within the registered block count.
    ///
    /// # Panics
    ///
    /// Panics on a hash-keyed registry, or (dense only) an out-of-range
    /// index.
    #[inline]
    pub fn increment_at(&self, base: u32, block: u32) {
        match &*self.backend {
            Backend::Dense { counts, .. } => {
                let counts = counts.borrow();
                let c = &counts[(base + block) as usize];
                c.set(c.get().saturating_add(1));
            }
            Backend::Hash { .. } => {
                panic!("BlockCounters::increment_at on a hash-keyed registry")
            }
            Backend::Sampling { shared, .. } => shared.publish(0, base + block),
        }
    }

    /// Adds one to block `block` of chunk `chunk` (keyed interop path).
    pub fn increment(&self, chunk: u32, block: u32) {
        match &*self.backend {
            Backend::Dense {
                bases,
                counts,
                overflow,
            } => {
                let in_range = bases
                    .borrow()
                    .get(&chunk)
                    .filter(|(_, n)| block < *n)
                    .map(|(base, _)| base + block);
                match in_range {
                    Some(idx) => {
                        let counts = counts.borrow();
                        let c = &counts[idx as usize];
                        c.set(c.get().saturating_add(1));
                    }
                    None => {
                        let mut overflow = overflow.borrow_mut();
                        let c = overflow.entry((chunk, block)).or_insert(0);
                        *c = c.saturating_add(1);
                    }
                }
            }
            Backend::Hash { counts } => {
                let mut counts = counts.borrow_mut();
                let c = counts.entry((chunk, block)).or_insert(0);
                *c = c.saturating_add(1);
            }
            Backend::Sampling { shared, .. } => {
                // Keyed entries publish the beacon too; a chunk nobody
                // registered gets a dense range lazily so the sample has a
                // slot to land in (a sampling registry has no keyed
                // overflow — estimates only exist per dense slot).
                let base = self.register_chunk(chunk, block + 1);
                shared.publish(chunk, base + block);
            }
        }
    }

    /// Execution count of a block (0 if never executed).
    pub fn count(&self, chunk: u32, block: u32) -> u64 {
        match &*self.backend {
            Backend::Dense {
                bases,
                counts,
                overflow,
            } => {
                if let Some(idx) = bases
                    .borrow()
                    .get(&chunk)
                    .filter(|(_, n)| block < *n)
                    .map(|(base, _)| base + block)
                {
                    counts.borrow()[idx as usize].get()
                } else {
                    overflow
                        .borrow()
                        .get(&(chunk, block))
                        .copied()
                        .unwrap_or(0)
                }
            }
            Backend::Hash { counts } => counts
                .borrow()
                .get(&(chunk, block))
                .copied()
                .unwrap_or(0),
            Backend::Sampling { bases, shared, .. } => bases
                .borrow()
                .get(&chunk)
                .filter(|(_, n)| block < *n)
                .map(|(base, _)| shared.tallies().get(base + block))
                .unwrap_or(0),
        }
    }

    /// Number of blocks with a nonzero count (estimated count, on a
    /// sampling registry).
    pub fn len(&self) -> usize {
        match &*self.backend {
            Backend::Dense {
                counts, overflow, ..
            } => {
                counts.borrow().iter().filter(|c| c.get() > 0).count()
                    + overflow.borrow().values().filter(|c| **c > 0).count()
            }
            Backend::Hash { counts } => {
                counts.borrow().values().filter(|c| **c > 0).count()
            }
            Backend::Sampling { next, shared, .. } => (0..next.get())
                .filter(|i| shared.tallies().get(*i) > 0)
                .count(),
        }
    }

    /// True if no blocks were counted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zeroes every counter. On a dense registry chunk registrations (and
    /// therefore activation-cached bases) stay valid.
    pub fn clear(&self) {
        match &*self.backend {
            Backend::Dense {
                counts, overflow, ..
            } => {
                for c in counts.borrow().iter() {
                    c.set(0);
                }
                overflow.borrow_mut().clear();
            }
            Backend::Hash { counts } => counts.borrow_mut().clear(),
            Backend::Sampling { shared, .. } => shared.tallies().clear(),
        }
    }

    /// Re-keys every counter of chunk `old` under chunk id `new`,
    /// registration included. Chunk ids are process-local, so block counts
    /// collected against a chunk from a *saved* session must be carried
    /// over to the id the warm-started process minted for the same chunk —
    /// `pgmp::WarmStart::chunk_map` supplies exactly these `(old, new)`
    /// pairs.
    ///
    /// If `new` already has counts of its own, the remapped counts are
    /// added to them (old's dense range, if any, is folded into keyed
    /// overflow entries). No-op when `old == new` or `old` was never seen.
    pub fn remap_chunk(&self, old: u32, new: u32) {
        if old == new {
            return;
        }
        match &*self.backend {
            Backend::Dense {
                bases,
                counts,
                overflow,
            } => {
                let mut bases = bases.borrow_mut();
                if let Some(entry) = bases.remove(&old) {
                    use std::collections::hash_map::Entry;
                    match bases.entry(new) {
                        Entry::Vacant(v) => {
                            v.insert(entry);
                        }
                        Entry::Occupied(o) => {
                            // `new` has its own dense range; add old's
                            // counts into it (in-range blocks must live in
                            // the dense slots — `count` never consults
                            // overflow for them) and abandon the old range.
                            let (new_base, new_n) = *o.get();
                            let counts = counts.borrow();
                            let (base, n) = entry;
                            let mut ov = overflow.borrow_mut();
                            for b in 0..n {
                                let cell = &counts[(base + b) as usize];
                                let c = cell.get();
                                if c > 0 {
                                    if b < new_n {
                                        let dst = &counts[(new_base + b) as usize];
                                        dst.set(dst.get().saturating_add(c));
                                    } else {
                                        let e = ov.entry((new, b)).or_insert(0);
                                        *e = e.saturating_add(c);
                                    }
                                }
                                cell.set(0);
                            }
                        }
                    }
                }
                let new_reg = bases.get(&new).copied();
                let mut ov = overflow.borrow_mut();
                let moved: Vec<(u32, u64)> = ov
                    .iter()
                    .filter(|((c, _), _)| *c == old)
                    .map(|((_, b), v)| (*b, *v))
                    .collect();
                ov.retain(|(c, _), _| *c != old);
                for (b, v) in moved {
                    match new_reg {
                        Some((nb, nn)) if b < nn => {
                            let counts = counts.borrow();
                            let dst = &counts[(nb + b) as usize];
                            dst.set(dst.get().saturating_add(v));
                        }
                        _ => {
                            let e = ov.entry((new, b)).or_insert(0);
                            *e = e.saturating_add(v);
                        }
                    }
                }
            }
            Backend::Hash { counts } => {
                let mut counts = counts.borrow_mut();
                let moved: Vec<(u32, u64)> = counts
                    .iter()
                    .filter(|((c, _), _)| *c == old)
                    .map(|((_, b), v)| (*b, *v))
                    .collect();
                counts.retain(|(c, _), _| *c != old);
                for (b, v) in moved {
                    let e = counts.entry((new, b)).or_insert(0);
                    *e = e.saturating_add(v);
                }
            }
            Backend::Sampling { bases, shared, .. } => {
                let mut bases = bases.borrow_mut();
                if let Some(entry) = bases.remove(&old) {
                    use std::collections::hash_map::Entry;
                    match bases.entry(new) {
                        Entry::Vacant(v) => {
                            v.insert(entry);
                        }
                        Entry::Occupied(o) => {
                            // Fold old's estimated tallies into new's dense
                            // range; blocks beyond new's range have no slot
                            // on a sampling registry (no keyed overflow) and
                            // their estimates are dropped.
                            let (new_base, new_n) = *o.get();
                            let (base, n) = entry;
                            let tallies = shared.tallies();
                            for b in 0..n.min(new_n) {
                                let c = tallies.take(base + b);
                                if c > 0 {
                                    tallies.add(new_base + b, c);
                                }
                            }
                            for b in new_n..n {
                                tallies.take(base + b);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Snapshot of all nonzero counts.
    pub fn snapshot(&self) -> HashMap<(u32, u32), u64> {
        match &*self.backend {
            Backend::Dense {
                bases,
                counts,
                overflow,
            } => {
                let counts = counts.borrow();
                let mut out: HashMap<(u32, u32), u64> = overflow
                    .borrow()
                    .iter()
                    .filter(|(_, c)| **c > 0)
                    .map(|(k, c)| (*k, *c))
                    .collect();
                for (chunk, (base, n)) in bases.borrow().iter() {
                    for b in 0..*n {
                        let c = counts[(base + b) as usize].get();
                        if c > 0 {
                            out.insert((*chunk, b), c);
                        }
                    }
                }
                out
            }
            Backend::Hash { counts } => counts
                .borrow()
                .iter()
                .filter(|(_, c)| **c > 0)
                .map(|(k, c)| (*k, *c))
                .collect(),
            Backend::Sampling { bases, shared, .. } => {
                let tallies = shared.tallies();
                let mut out = HashMap::new();
                for (chunk, (base, n)) in bases.borrow().iter() {
                    for b in 0..*n {
                        let c = tallies.get(base + b);
                        if c > 0 {
                            out.insert((*chunk, b), c);
                        }
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [BlockCounters; 2] {
        [
            BlockCounters::with_impl(CounterImpl::Dense),
            BlockCounters::with_impl(CounterImpl::Hash),
        ]
    }

    #[test]
    fn clones_share_state() {
        for a in both() {
            let b = a.clone();
            b.increment(1, 2);
            assert_eq!(a.count(1, 2), 1);
            assert_eq!(a.len(), 1);
        }
    }

    #[test]
    fn clear_resets() {
        for a in both() {
            a.increment(0, 0);
            a.clear();
            assert!(a.is_empty());
            assert_eq!(a.count(0, 0), 0);
        }
    }

    #[test]
    fn registered_chunks_count_densely() {
        let c = BlockCounters::new();
        let base = c.register_chunk(7, 3);
        assert_eq!(c.register_chunk(7, 3), base, "registration is idempotent");
        c.increment_at(base, 0);
        c.increment_at(base, 2);
        c.increment_at(base, 2);
        assert_eq!(c.count(7, 0), 1);
        assert_eq!(c.count(7, 1), 0);
        assert_eq!(c.count(7, 2), 2);
        // Keyed increments to a registered chunk land in the same slots.
        c.increment(7, 0);
        assert_eq!(c.count(7, 0), 2);
    }

    #[test]
    fn registration_survives_clear() {
        let c = BlockCounters::new();
        let base = c.register_chunk(3, 2);
        c.increment_at(base, 1);
        c.clear();
        assert_eq!(c.count(3, 1), 0);
        assert_eq!(c.register_chunk(3, 2), base);
    }

    #[test]
    fn hash_registry_reports_no_base() {
        let c = BlockCounters::with_impl(CounterImpl::Hash);
        assert_eq!(c.register_chunk(0, 4), NO_BASE);
        c.increment(0, 1);
        assert_eq!(c.count(0, 1), 1);
    }

    #[test]
    fn remap_carries_counts_to_the_new_id() {
        for c in both() {
            c.register_chunk(4, 2);
            c.increment(4, 0);
            c.increment(4, 1);
            c.increment(4, 1);
            c.increment(4, 9); // overflow on dense, keyed on hash
            c.remap_chunk(4, 40);
            assert_eq!(c.count(4, 0), 0, "old id is empty");
            assert_eq!(c.count(40, 0), 1);
            assert_eq!(c.count(40, 1), 2);
            assert_eq!(c.count(40, 9), 1);
        }
    }

    #[test]
    fn remap_merges_into_existing_counts() {
        for c in both() {
            c.register_chunk(1, 2);
            c.register_chunk(2, 2);
            c.increment(1, 0);
            c.increment(2, 0);
            c.increment(2, 1);
            c.remap_chunk(1, 2);
            assert_eq!(c.count(2, 0), 2, "counts are summed");
            assert_eq!(c.count(2, 1), 1);
            assert_eq!(c.count(1, 0), 0);
        }
    }

    #[test]
    fn remap_of_unknown_or_identical_ids_is_a_noop() {
        for c in both() {
            c.increment(5, 0);
            c.remap_chunk(9, 10);
            c.remap_chunk(5, 5);
            assert_eq!(c.count(5, 0), 1);
        }
    }

    #[test]
    fn sampling_registry_estimates_from_beacon_samples() {
        let c = BlockCounters::sampling_manual();
        assert_eq!(c.impl_kind(), CounterImpl::Sampling);
        assert_eq!(c.sample_hz(), Some(0));
        assert!(!c.has_sampler_thread(), "manual mode has no sampler thread");
        let base = c.register_chunk(2, 4);
        c.increment_at(base, 1);
        assert_eq!(c.count(2, 1), 0, "publishing alone tallies nothing");
        c.sample_now();
        c.sample_now();
        assert_eq!(c.count(2, 1), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.snapshot(), HashMap::from([((2, 1), 2)]));
        c.park();
        c.sample_now();
        assert_eq!(c.count(2, 1), 2, "parked beacon attributes nothing");
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.register_chunk(2, 4), base, "registration survives clear");
    }

    #[test]
    fn sampling_keyed_increment_lazily_registers() {
        let c = BlockCounters::sampling_manual();
        c.increment(9, 3);
        c.sample_now();
        assert_eq!(c.count(9, 3), 1);
        // Keyed entries to the now-registered chunk land in the same slots.
        c.increment(9, 3);
        c.sample_now();
        assert_eq!(c.count(9, 3), 2);
    }

    #[test]
    fn sampling_remap_moves_and_merges_estimates() {
        let c = BlockCounters::sampling_manual();
        let base = c.register_chunk(4, 2);
        c.increment_at(base, 1);
        c.sample_now();
        c.remap_chunk(4, 40);
        assert_eq!(c.count(4, 1), 0, "old id is empty");
        assert_eq!(c.count(40, 1), 1);
        // Remapping onto a chunk with counts of its own sums them.
        let other = c.register_chunk(5, 2);
        c.increment_at(other, 1);
        c.sample_now();
        c.remap_chunk(5, 40);
        assert_eq!(c.count(40, 1), 2);
    }

    #[test]
    fn sampling_with_thread_reports_rate() {
        let c = BlockCounters::with_sampling(499);
        assert_eq!(c.sample_hz(), Some(499));
        assert!(c.has_sampler_thread());
        assert!(c.sampling_shared().is_some());
    }

    #[test]
    fn dense_and_hash_snapshot_identically() {
        let [dense, hash] = both();
        dense.register_chunk(1, 4);
        for (chunk, block) in [(1, 0), (1, 3), (2, 5), (1, 0)] {
            dense.increment(chunk, block);
            hash.increment(chunk, block);
        }
        assert_eq!(dense.snapshot(), hash.snapshot());
    }
}
