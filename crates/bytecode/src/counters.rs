//! Block-level profile counters.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Execution counts per `(chunk, block)` — the block-level analogue of the
/// source-level [`pgmp_profiler::Counters`].
///
/// # Example
///
/// ```
/// use pgmp_bytecode::BlockCounters;
/// let c = BlockCounters::new();
/// c.increment(0, 2);
/// c.increment(0, 2);
/// assert_eq!(c.count(0, 2), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BlockCounters {
    counts: Rc<RefCell<HashMap<(u32, u32), u64>>>,
}

impl BlockCounters {
    /// Creates an empty registry.
    pub fn new() -> BlockCounters {
        BlockCounters::default()
    }

    /// Adds one to block `block` of chunk `chunk`.
    pub fn increment(&self, chunk: u32, block: u32) {
        *self.counts.borrow_mut().entry((chunk, block)).or_insert(0) += 1;
    }

    /// Execution count of a block (0 if never executed).
    pub fn count(&self, chunk: u32, block: u32) -> u64 {
        self.counts.borrow().get(&(chunk, block)).copied().unwrap_or(0)
    }

    /// Number of blocks observed.
    pub fn len(&self) -> usize {
        self.counts.borrow().len()
    }

    /// True if no blocks were counted.
    pub fn is_empty(&self) -> bool {
        self.counts.borrow().is_empty()
    }

    /// Zeroes every counter.
    pub fn clear(&self) {
        self.counts.borrow_mut().clear();
    }

    /// Snapshot of all counts.
    pub fn snapshot(&self) -> HashMap<(u32, u32), u64> {
        self.counts.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = BlockCounters::new();
        let b = a.clone();
        b.increment(1, 2);
        assert_eq!(a.count(1, 2), 1);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let a = BlockCounters::new();
        a.increment(0, 0);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.count(0, 0), 0);
    }
}
