//! Block-level PGO: profile-guided code layout.
//!
//! The classic block-level use of profile data is code positioning: place
//! each hot block's hottest successor immediately after it so control
//! mostly *falls through* instead of jumping (Pettis–Hansen style chains).
//! [`optimize_layout`] implements the greedy variant; [`VmMetrics`]
//! measures the effect as the fall-through ratio.
//!
//! [`VmMetrics`]: crate::VmMetrics

use crate::chunk::{BlockId, Chunk, Terminator};
use crate::counters::BlockCounters;
use std::collections::HashMap;

/// Reorders `chunk`'s blocks into hot traces using the block profile, and
/// returns the re-laid-out chunk (semantically identical; entry first).
///
/// Greedy trace formation: starting from the entry, repeatedly append the
/// current block's most frequently executed unplaced successor; when the
/// trace dies out, restart from the hottest unplaced block.
pub fn optimize_layout(chunk: &Chunk, counters: &BlockCounters) -> Chunk {
    let n = chunk.blocks.len();
    let hotness = |b: BlockId| counters.count(chunk.id, b);
    let mut placed = vec![false; n];
    let mut order: Vec<BlockId> = Vec::with_capacity(n);

    let mut trace_head = Some(chunk.entry);
    while let Some(mut cur) = trace_head {
        // Grow one trace.
        loop {
            placed[cur as usize] = true;
            order.push(cur);
            // Pick the hottest unplaced successor; ties prefer the first
            // (then-) successor so unprofiled chunks keep a stable layout.
            let mut next: Option<BlockId> = None;
            let mut best = 0u64;
            for s in chunk.successors(cur) {
                if placed[s as usize] {
                    continue;
                }
                let h = hotness(s);
                if next.is_none() || h > best {
                    next = Some(s);
                    best = h;
                }
            }
            match next {
                Some(s) => cur = s,
                None => break,
            }
        }
        // Restart from the hottest unplaced block (deterministic tie-break
        // on id).
        trace_head = (0..n as BlockId)
            .filter(|b| !placed[*b as usize])
            .max_by(|a, b| hotness(*a).cmp(&hotness(*b)).then(b.cmp(a)));
    }

    let mut remap: HashMap<BlockId, BlockId> = HashMap::with_capacity(n);
    for (new_id, old_id) in order.iter().enumerate() {
        remap.insert(*old_id, new_id as BlockId);
    }
    let mut blocks = Vec::with_capacity(n);
    for old_id in &order {
        let mut block = chunk.blocks[*old_id as usize].clone();
        block.term = match block.term {
            Terminator::Jump(t) => Terminator::Jump(remap[&t]),
            Terminator::Branch(t, e) => Terminator::Branch(remap[&t], remap[&e]),
            other => other,
        };
        blocks.push(block);
    }
    Chunk {
        id: chunk.id,
        blocks,
        entry: remap[&chunk.entry],
        global_refs: chunk.global_refs,
    }
}

/// A canonical printout of a chunk's CFG, independent of block numbering
/// (blocks are renumbered in DFS order from the entry, taking `then` before
/// `else`). Two chunks with equal canonical forms compute the same
/// function via the same CFG — the §4.3 stability check compares these
/// across compilation passes.
pub fn canonical_form(chunk: &Chunk) -> String {
    let mut order: Vec<BlockId> = Vec::new();
    let mut seen = vec![false; chunk.blocks.len()];
    let mut stack = vec![chunk.entry];
    while let Some(b) = stack.pop() {
        if seen[b as usize] {
            continue;
        }
        seen[b as usize] = true;
        order.push(b);
        // Push in reverse so the first successor is visited first.
        for s in chunk.successors(b).into_iter().rev() {
            stack.push(s);
        }
    }
    let mut remap: HashMap<BlockId, usize> = HashMap::new();
    for (i, b) in order.iter().enumerate() {
        remap.insert(*b, i);
    }
    let mut out = String::new();
    for (i, b) in order.iter().enumerate() {
        let block = &chunk.blocks[*b as usize];
        out.push_str(&format!("B{i}:\n"));
        for instr in &block.instrs {
            out.push_str(&format!("  {instr:?}\n"));
        }
        let term = match &block.term {
            Terminator::Jump(t) => format!("jump B{}", remap[t]),
            Terminator::Branch(t, e) => format!("branch B{} B{}", remap[t], remap[e]),
            Terminator::Return => "return".to_owned(),
            Terminator::TailCall { argc, .. } => format!("tailcall {argc}"),
        };
        out.push_str(&format!("  {term}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{fresh_chunk_id_for_tests, Block, Instr};
    use pgmp_syntax::Datum;

    fn konst_block(n: i64, term: Terminator) -> Block {
        Block {
            instrs: vec![Instr::Const(Datum::Int(n))],
            term,
        }
    }

    fn diamond() -> Chunk {
        // 0 -> branch 1 / 2; 1 -> 3; 2 -> 3; 3 return.
        Chunk {
            id: fresh_chunk_id_for_tests(),
            entry: 0,
            global_refs: 0,
            blocks: vec![
                konst_block(0, Terminator::Branch(1, 2)),
                konst_block(1, Terminator::Jump(3)),
                konst_block(2, Terminator::Jump(3)),
                konst_block(3, Terminator::Return),
            ],
        }
    }

    #[test]
    fn layout_places_hot_successor_next() {
        let chunk = diamond();
        let counters = BlockCounters::new();
        // Block 2 (the else branch) is hot.
        for _ in 0..100 {
            counters.increment(chunk.id, 2);
        }
        counters.increment(chunk.id, 1);
        let opt = optimize_layout(&chunk, &counters);
        // Entry first, then the hot else-block as fall-through.
        assert_eq!(opt.entry, 0);
        assert_eq!(opt.blocks[0].instrs, chunk.blocks[0].instrs);
        assert_eq!(opt.blocks[1].instrs, chunk.blocks[2].instrs);
    }

    #[test]
    fn layout_preserves_canonical_form() {
        let chunk = diamond();
        let counters = BlockCounters::new();
        counters.increment(chunk.id, 2);
        let opt = optimize_layout(&chunk, &counters);
        assert_eq!(canonical_form(&chunk), canonical_form(&opt));
    }

    #[test]
    fn layout_keeps_all_blocks() {
        let chunk = diamond();
        let opt = optimize_layout(&chunk, &BlockCounters::new());
        assert_eq!(opt.block_count(), chunk.block_count());
    }

    #[test]
    fn canonical_form_distinguishes_different_cfgs() {
        let a = diamond();
        let mut b = diamond();
        b.blocks[1] = konst_block(99, Terminator::Jump(3));
        assert_ne!(canonical_form(&a), canonical_form(&b));
    }
}
