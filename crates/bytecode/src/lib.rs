//! Basic-block bytecode: the "low-level" compiler of the reproduction.
//!
//! Chez Scheme performs block-level profile-guided optimization beneath the
//! source-level meta-programming the paper adds; §4.3 describes a
//! three-pass protocol keeping the two consistent. This crate supplies the
//! analogous low level for our system:
//!
//! - [`compile_chunk`] lowers a [`pgmp_eval::Core`] expression to a control
//!   flow graph of basic blocks ([`Chunk`]);
//! - [`Vm`] executes chunks on a stack machine (sharing values, globals,
//!   and natives with the tree-walking interpreter — closures created by
//!   the VM are compiled lazily, closures applied inside higher-order
//!   natives fall back to the tree walker, as in real mixed-mode systems);
//! - [`BlockCounters`] counts block executions (the block-level profile);
//! - [`optimize_layout`] is the block-level PGO: a greedy hottest-successor
//!   trace layout that maximizes fall-through on hot paths, measured by
//!   [`VmMetrics`] (taken jumps vs. fall-throughs);
//! - [`lower_chunk`] flattens a chunk (in its current layout order) into a
//!   contiguous stream of fixed-size decoded ops ([`FlatChunk`]) that the
//!   VM executes by index in its default [`DispatchMode::Flat`], optionally
//!   fusing the profile-hottest adjacent pairs into superinstructions
//!   chosen by [`FusionPlan::mine`].
//!
//! # Example
//!
//! ```
//! use pgmp_bytecode::{compile_chunk, Vm};
//! use pgmp_eval::{install_primitives, Interp};
//! use pgmp_expander::{install_expander_support, Expander};
//! use pgmp_reader::read_str;
//!
//! let forms = read_str("(+ 40 2)", "demo.scm").unwrap();
//! let mut exp = Expander::new();
//! let core = exp.expand_program(&forms).unwrap().remove(0);
//! let chunk = compile_chunk(&core);
//!
//! let mut interp = Interp::new();
//! install_primitives(&mut interp);
//! install_expander_support(&mut interp);
//! let mut vm = Vm::new();
//! let v = vm.run_chunk(&mut interp, &chunk).unwrap();
//! assert_eq!(v.to_string(), "42");
//! ```

mod chunk;
mod compile;
mod counters;
mod flat;
mod fuse;
mod layout;
mod vm;

pub use chunk::{Block, BlockId, Chunk, Instr, Terminator};
pub use compile::compile_chunk;
pub use counters::{BlockCounters, NO_BASE};
pub use flat::{layout_sig, lower_chunk, FlatChunk, JumpTarget, Op};
pub use fuse::{Fused, FusionPlan, FUSED_CANDIDATES};
pub use layout::{canonical_form, optimize_layout};
pub use vm::{DispatchMode, Vm, VmMetrics};
