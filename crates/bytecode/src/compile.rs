//! Lowering `Core` expressions to basic-block bytecode.

use crate::chunk::{fresh_chunk_id, Block, BlockId, Chunk, Instr, Terminator};
use pgmp_eval::{Core, CoreKind};
use std::rc::Rc;

struct Builder {
    blocks: Vec<Block>,
    current: BlockId,
    /// Next chunk-local `GlobalRef` cache index.
    global_refs: u32,
}

impl Builder {
    fn new() -> Builder {
        Builder {
            blocks: vec![Block {
                instrs: Vec::new(),
                term: Terminator::Return, // patched as we go
            }],
            current: 0,
            global_refs: 0,
        }
    }

    fn emit(&mut self, i: Instr) {
        self.blocks[self.current as usize].instrs.push(i);
    }

    fn new_block(&mut self) -> BlockId {
        let id = self.blocks.len() as BlockId;
        self.blocks.push(Block {
            instrs: Vec::new(),
            term: Terminator::Return,
        });
        id
    }

    fn terminate(&mut self, t: Terminator) {
        self.blocks[self.current as usize].term = t;
    }

    fn switch_to(&mut self, b: BlockId) {
        self.current = b;
    }
}

/// Compiles one toplevel `Core` expression to a [`Chunk`].
///
/// # Example
///
/// See the crate-level example.
pub fn compile_chunk(core: &Rc<Core>) -> Chunk {
    let mut b = Builder::new();
    compile_expr(&mut b, core, true);
    Chunk {
        id: fresh_chunk_id(),
        blocks: b.blocks,
        entry: 0,
        global_refs: b.global_refs,
    }
}

/// Compiles `core`, leaving its value on the stack. When `tail` is true the
/// expression is in tail position: calls become `TailCall` and the block is
/// terminated by `Return` after the value is produced.
fn compile_expr(b: &mut Builder, core: &Rc<Core>, tail: bool) {
    match &core.kind {
        CoreKind::Const(d) => {
            b.emit(Instr::Const(d.clone()));
            if tail {
                b.terminate(Terminator::Return);
            }
        }
        CoreKind::SyntaxConst(s) => {
            b.emit(Instr::SyntaxConst(s.clone()));
            if tail {
                b.terminate(Terminator::Return);
            }
        }
        CoreKind::LocalRef { depth, index } => {
            b.emit(Instr::LocalRef {
                depth: *depth,
                index: *index,
            });
            if tail {
                b.terminate(Terminator::Return);
            }
        }
        CoreKind::GlobalRef(name) => {
            let cache = b.global_refs;
            b.global_refs += 1;
            b.emit(Instr::GlobalRef { name: *name, cache });
            if tail {
                b.terminate(Terminator::Return);
            }
        }
        CoreKind::SetLocal {
            depth,
            index,
            value,
        } => {
            compile_expr(b, value, false);
            b.emit(Instr::SetLocal {
                depth: *depth,
                index: *index,
            });
            b.emit(Instr::Unspecified);
            if tail {
                b.terminate(Terminator::Return);
            }
        }
        CoreKind::SetGlobal(name, value) => {
            compile_expr(b, value, false);
            b.emit(Instr::SetGlobal(*name));
            b.emit(Instr::Unspecified);
            if tail {
                b.terminate(Terminator::Return);
            }
        }
        CoreKind::DefineGlobal(name, value) => {
            compile_expr(b, value, false);
            b.emit(Instr::DefineGlobal(*name));
            b.emit(Instr::Unspecified);
            if tail {
                b.terminate(Terminator::Return);
            }
        }
        CoreKind::If(c, t, e) => {
            compile_expr(b, c, false);
            let then_blk = b.new_block();
            let else_blk = b.new_block();
            b.terminate(Terminator::Branch(then_blk, else_blk));
            if tail {
                b.switch_to(then_blk);
                compile_expr(b, t, true);
                b.switch_to(else_blk);
                compile_expr(b, e, true);
            } else {
                let join = b.new_block();
                b.switch_to(then_blk);
                compile_expr(b, t, false);
                b.terminate(Terminator::Jump(join));
                b.switch_to(else_blk);
                compile_expr(b, e, false);
                b.terminate(Terminator::Jump(join));
                b.switch_to(join);
            }
        }
        CoreKind::Lambda(def) => {
            b.emit(Instr::MakeClosure(def.clone()));
            if tail {
                b.terminate(Terminator::Return);
            }
        }
        CoreKind::Seq(es) => match es.split_last() {
            None => {
                b.emit(Instr::Unspecified);
                if tail {
                    b.terminate(Terminator::Return);
                }
            }
            Some((last, init)) => {
                for e in init {
                    compile_expr(b, e, false);
                    b.emit(Instr::Pop);
                }
                compile_expr(b, last, tail);
            }
        },
        CoreKind::Let { inits, body } => {
            for init in inits {
                compile_expr(b, init, false);
            }
            b.emit(Instr::PushFrame(inits.len() as u16));
            // In tail position the activation (and its frame register) is
            // discarded on return, so no PopFrame is needed and the body
            // keeps proper tail calls.
            compile_expr(b, body, tail);
            if !tail {
                b.emit(Instr::PopFrame);
            }
        }
        CoreKind::LetRec { inits, body } => {
            b.emit(Instr::PushFrameUnspec(inits.len() as u16));
            for (i, init) in inits.iter().enumerate() {
                compile_expr(b, init, false);
                b.emit(Instr::SetLocal {
                    depth: 0,
                    index: i as u16,
                });
            }
            compile_expr(b, body, tail);
            if !tail {
                b.emit(Instr::PopFrame);
            }
        }
        CoreKind::Call { func, args } => {
            compile_expr(b, func, false);
            for a in args {
                compile_expr(b, a, false);
            }
            if tail {
                b.terminate(Terminator::TailCall {
                    argc: args.len() as u16,
                    src: core.src,
                });
            } else {
                b.emit(Instr::Call {
                    argc: args.len() as u16,
                    src: core.src,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmp_syntax::Datum;

    fn konst(n: i64) -> Rc<Core> {
        Core::rc(CoreKind::Const(Datum::Int(n)), None)
    }

    #[test]
    fn straight_line_is_one_block() {
        let chunk = compile_chunk(&konst(1));
        assert_eq!(chunk.block_count(), 1);
        assert_eq!(chunk.blocks[0].term, Terminator::Return);
    }

    #[test]
    fn if_in_tail_position_has_no_join() {
        let e = Core::rc(CoreKind::If(konst(1), konst(2), konst(3)), None);
        let chunk = compile_chunk(&e);
        // entry + then + else.
        assert_eq!(chunk.block_count(), 3);
        assert_eq!(chunk.blocks[0].term, Terminator::Branch(1, 2));
        assert_eq!(chunk.blocks[1].term, Terminator::Return);
        assert_eq!(chunk.blocks[2].term, Terminator::Return);
    }

    #[test]
    fn nested_if_in_non_tail_position_joins() {
        // (begin (if 1 2 3) 4) — if result discarded, join block needed.
        let iff = Core::rc(CoreKind::If(konst(1), konst(2), konst(3)), None);
        let e = Core::rc(CoreKind::Seq(vec![iff, konst(4)]), None);
        let chunk = compile_chunk(&e);
        assert_eq!(chunk.block_count(), 4);
        assert_eq!(chunk.blocks[1].term, Terminator::Jump(3));
        assert_eq!(chunk.blocks[2].term, Terminator::Jump(3));
    }

    #[test]
    fn tail_calls_compile_to_tailcall_terminator() {
        let call = Core::rc(
            CoreKind::Call {
                func: Core::rc(CoreKind::GlobalRef(pgmp_syntax::Symbol::intern("f")), None),
                args: vec![konst(1)],
            },
            None,
        );
        let chunk = compile_chunk(&call);
        assert!(matches!(
            chunk.blocks[0].term,
            Terminator::TailCall { argc: 1, .. }
        ));
    }

    #[test]
    fn compilation_is_deterministic_modulo_id() {
        let e = Core::rc(CoreKind::If(konst(1), konst(2), konst(3)), None);
        let c1 = compile_chunk(&e);
        let c2 = compile_chunk(&e);
        assert_ne!(c1.id, c2.id);
        assert_eq!(c1.blocks, c2.blocks);
    }
}
