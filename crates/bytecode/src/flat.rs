//! Flat code streams: the direct-threaded execution form of a [`Chunk`].
//!
//! The block/`Terminator` graph is the *profiling and layout IR* — block
//! counters, [`crate::optimize_layout`], and [`crate::canonical_form`] all
//! operate on it. Execution wants something else entirely: one contiguous
//! `Vec` of fixed-size, fully decoded [`Op`]s that the VM walks by index,
//! with every heap payload (constants, lambda defs, syntax objects) hoisted
//! into side pools at lowering time. The hot loop then copies one small
//! `Copy` op per step — no `Instr::clone()`, no `Datum` re-conversion for
//! immutable constants, no `Option`-checked step budget.
//!
//! [`lower_chunk`] converts a chunk (in its current block layout order)
//! into a [`FlatChunk`]. Jump ops carry the resolved target `pc` *and* the
//! target block id plus a precomputed fall-through flag, so block-counter
//! bumps and [`crate::VmMetrics`] are bit-identical with the match-loop VM.
//! Superinstruction fusion (see [`crate::fuse`]) happens here, guided by a
//! [`FusionPlan`]; it never crosses a block boundary, so the lowering is
//! sound whenever the source chunk is.
//!
//! Rust has no computed goto, so "direct-threaded" here means the next
//! best thing the language allows: a dense `Copy` enum matched in one
//! tight loop, which LLVM compiles to a single indirect jump through a
//! table — one dispatch per decoded op.

use crate::chunk::{BlockId, Chunk, Instr, Terminator};
use crate::fuse::{candidate_instr, candidate_term, imm_datum, FusionPlan};
use pgmp_eval::{LambdaDef, Value};
use pgmp_syntax::{Datum, SourceObject, Symbol, Syntax};
use std::rc::Rc;

/// A resolved control transfer: where to continue (`pc`), which block that
/// is (for counter bumps), and whether the transfer is a fall-through in
/// the chunk's layout order (for [`crate::VmMetrics`]). Packed to 8 bytes
/// so the two-target [`Op::Branch`] stays small: the fall-through flag
/// rides in the block word's top bit (block ids are interned `u32`s that
/// never approach 2³¹).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JumpTarget {
    /// Index of the target block's first op in [`FlatChunk::ops`].
    pub pc: u32,
    packed: u32,
}

impl JumpTarget {
    const FALLTHROUGH: u32 = 1 << 31;

    /// Builds a target for `block`, flagged as layout fall-through or not.
    pub fn new(pc: u32, block: BlockId, fallthrough: bool) -> JumpTarget {
        debug_assert!(block < Self::FALLTHROUGH, "block id overflows packing");
        JumpTarget {
            pc,
            packed: block | if fallthrough { Self::FALLTHROUGH } else { 0 },
        }
    }

    /// Target block id (in the lowered chunk's layout order).
    #[inline]
    pub fn block(self) -> BlockId {
        self.packed & !Self::FALLTHROUGH
    }

    /// True when the target is the next block in layout order.
    #[inline]
    pub fn fallthrough(self) -> bool {
        self.packed & Self::FALLTHROUGH != 0
    }
}

/// One decoded, fixed-size VM operation. `Copy`: all heap payloads live in
/// the owning [`FlatChunk`]'s pools and are referenced by index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// Push a clone of the pre-converted immutable constant
    /// [`FlatChunk::imms`]`[pool]`.
    Imm { pool: u32 },
    /// Push a fresh [`Value`] converted from [`FlatChunk::datums`]`[pool]`.
    /// String/pair/vector literals are mutable, so each execution must
    /// allocate anew — exactly what [`Instr::Const`] does.
    DatumConst { pool: u32 },
    /// Push the syntax object [`FlatChunk::syntaxes`]`[pool]`.
    SyntaxConst { pool: u32 },
    /// Push the unspecified value.
    Unspecified,
    /// Push a local variable.
    LocalRef { depth: u16, index: u16 },
    /// Push a global variable (error if unbound); `cache` indexes the
    /// chunk's global-slot cache exactly as in [`Instr::GlobalRef`].
    GlobalRef { name: Symbol, cache: u32 },
    /// Pop a value into a local slot.
    SetLocal { depth: u16, index: u16 },
    /// Pop a value into a global (which must exist).
    SetGlobal { name: Symbol },
    /// Pop a value, defining a global.
    DefineGlobal { name: Symbol },
    /// Pop `n` values into a fresh frame.
    PushFrame { n: u16 },
    /// Push a fresh frame of `n` unspecified slots.
    PushFrameUnspec { n: u16 },
    /// Pop the current frame.
    PopFrame,
    /// Push a closure over the current frame from
    /// [`FlatChunk::lambdas`]`[pool]`.
    MakeClosure { pool: u32 },
    /// Pop `argc` arguments and a callee; push the result. `src` indexes
    /// [`FlatChunk::srcs`] and is resolved only on the slow path (native
    /// application and errors), keeping the op at two words.
    Call { argc: u16, src: u32 },
    /// Pop and discard the top of stack.
    Pop,
    /// Unconditional transfer (a lowered [`Terminator::Jump`]).
    Jump { target: JumpTarget },
    /// Pop a value; transfer to `then_` when truthy (a lowered
    /// [`Terminator::Branch`]).
    Branch {
        then_: JumpTarget,
        else_: JumpTarget,
    },
    /// Pop the result and return from the current activation.
    Return,
    /// Pop `argc` arguments and a callee; transfer without growing the
    /// call stack.
    TailCall { argc: u16, src: u32 },

    // --- Superinstructions (profile-chosen; see `crate::fuse`) ---------
    /// Fused `LocalRef; LocalRef`.
    LocalLocal {
        depth0: u16,
        index0: u16,
        depth1: u16,
        index1: u16,
    },
    /// Fused `LocalRef; Call`: the local is the last value pushed before
    /// the call (its final argument, or the callee itself when
    /// `argc == 0`).
    LocalCall {
        depth: u16,
        index: u16,
        argc: u16,
        src: u32,
    },
    /// Fused `Const; Call` over a pooled immediate, same convention.
    ImmCall { pool: u32, argc: u16, src: u32 },
    /// Fused `Const; Branch`. A constant's truthiness is a lowering-time
    /// fact (only `#f` is falsy), so the taken side is resolved statically
    /// and the op carries a single pre-decided target — the metrics and
    /// counter bumps are exactly those the unfused pair would record.
    ImmBranch { target: JumpTarget },
    /// Fused `LocalRef; Return`.
    LocalReturn { depth: u16, index: u16 },
}

/// A chunk lowered to a flat op stream plus side pools. Produced by
/// [`lower_chunk`]; executed by [`crate::Vm`] in flat dispatch mode.
#[derive(Debug)]
pub struct FlatChunk {
    /// The source chunk's id (block counters and global caches stay keyed
    /// exactly as for the block form).
    pub id: u32,
    /// The op stream, blocks concatenated in layout order.
    pub ops: Vec<Op>,
    /// Pre-converted immutable constants ([`Op::Imm`]).
    pub imms: Vec<Value>,
    /// Mutable-literal datums, converted per execution
    /// ([`Op::DatumConst`]).
    pub datums: Vec<Datum>,
    /// Syntax constants ([`Op::SyntaxConst`]).
    pub syntaxes: Vec<Rc<Syntax>>,
    /// Lambda definitions ([`Op::MakeClosure`]).
    pub lambdas: Vec<Rc<LambdaDef>>,
    /// Call-site source objects, indexed by the `src` field of call ops.
    /// Slot 0 is always `None`, so `src == 0` means "no source recorded"
    /// without an `Option` in the op itself.
    pub srcs: Vec<Option<SourceObject>>,
    /// First-op pc of each block, indexed by block id.
    pub block_starts: Vec<u32>,
    /// Entry block id.
    pub entry_block: BlockId,
    /// Entry pc (`block_starts[entry_block]`).
    pub entry_pc: u32,
    /// Number of blocks (the counter registration width).
    pub block_count: u32,
    /// Global-slot cache width, copied from [`Chunk::global_refs`].
    pub global_refs: u32,
    /// Superinstructions emitted during lowering.
    pub fused: u32,
    /// Structural hash of the source chunk's layout (see [`layout_sig`]):
    /// lets the VM detect that a cached lowering is stale after
    /// [`crate::optimize_layout`] reordered the blocks.
    pub layout_sig: u64,
}

/// A structural hash of a chunk's *layout*: entry block, block order, per
/// block every instruction discriminant with its inline scalar operands,
/// and the terminator with its targets. Two layouts of the same chunk
/// (same id) hash equal only when their block sequences are
/// position-by-position identical — i.e. when they are the same code.
pub fn layout_sig(chunk: &Chunk) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(chunk.entry as u64);
    mix(chunk.blocks.len() as u64);
    for block in &chunk.blocks {
        mix(block.instrs.len() as u64);
        for instr in &block.instrs {
            match instr {
                Instr::Const(d) => {
                    mix(1);
                    mix(match d {
                        Datum::Nil => 0,
                        Datum::Bool(b) => 0x10 | *b as u64,
                        Datum::Int(n) => 0x100u64.wrapping_add(*n as u64),
                        Datum::Float(x) => 0x200u64.wrapping_add(x.to_bits()),
                        Datum::Char(c) => 0x300 | *c as u64,
                        Datum::Sym(s) => {
                            use std::hash::{Hash, Hasher};
                            let mut sh = std::collections::hash_map::DefaultHasher::new();
                            s.hash(&mut sh);
                            0x400u64.wrapping_add(sh.finish())
                        }
                        Datum::Str(_) => 0x500,
                        Datum::Pair(_) => 0x600,
                        Datum::Vector(_) => 0x700,
                    });
                }
                Instr::SyntaxConst(_) => mix(2),
                Instr::Unspecified => mix(3),
                Instr::LocalRef { depth, index } => {
                    mix(4);
                    mix((*depth as u64) << 16 | *index as u64);
                }
                Instr::GlobalRef { cache, .. } => {
                    mix(5);
                    mix(*cache as u64);
                }
                Instr::SetLocal { depth, index } => {
                    mix(6);
                    mix((*depth as u64) << 16 | *index as u64);
                }
                Instr::SetGlobal(_) => mix(7),
                Instr::DefineGlobal(_) => mix(8),
                Instr::PushFrame(n) => {
                    mix(9);
                    mix(*n as u64);
                }
                Instr::PushFrameUnspec(n) => {
                    mix(10);
                    mix(*n as u64);
                }
                Instr::PopFrame => mix(11),
                Instr::MakeClosure(_) => mix(12),
                Instr::Call { argc, .. } => {
                    mix(13);
                    mix(*argc as u64);
                }
                Instr::Pop => mix(14),
            }
        }
        match &block.term {
            Terminator::Jump(t) => {
                mix(20);
                mix(*t as u64);
            }
            Terminator::Branch(t, e) => {
                mix(21);
                mix((*t as u64) << 32 | *e as u64);
            }
            Terminator::Return => mix(22),
            Terminator::TailCall { argc, .. } => {
                mix(23);
                mix(*argc as u64);
            }
        }
    }
    h
}

struct Lowerer {
    ops: Vec<Op>,
    imms: Vec<Value>,
    datums: Vec<Datum>,
    syntaxes: Vec<Rc<Syntax>>,
    lambdas: Vec<Rc<LambdaDef>>,
    srcs: Vec<Option<SourceObject>>,
    fused: u32,
}

impl Lowerer {
    fn src_pool(&mut self, src: &Option<SourceObject>) -> u32 {
        if src.is_none() {
            return 0;
        }
        self.srcs.push(*src);
        (self.srcs.len() - 1) as u32
    }

    fn pool_const(&mut self, d: &Datum) -> Op {
        if imm_datum(d) {
            self.imms.push(Value::from_datum(d));
            Op::Imm {
                pool: (self.imms.len() - 1) as u32,
            }
        } else {
            self.datums.push(d.clone());
            Op::DatumConst {
                pool: (self.datums.len() - 1) as u32,
            }
        }
    }

    fn imm_pool(&mut self, d: &Datum) -> u32 {
        self.imms.push(Value::from_datum(d));
        (self.imms.len() - 1) as u32
    }

    fn single(&mut self, instr: &Instr) -> Op {
        match instr {
            Instr::Const(d) => self.pool_const(d),
            Instr::SyntaxConst(s) => {
                self.syntaxes.push(s.clone());
                Op::SyntaxConst {
                    pool: (self.syntaxes.len() - 1) as u32,
                }
            }
            Instr::Unspecified => Op::Unspecified,
            Instr::LocalRef { depth, index } => Op::LocalRef {
                depth: *depth,
                index: *index,
            },
            Instr::GlobalRef { name, cache } => Op::GlobalRef {
                name: *name,
                cache: *cache,
            },
            Instr::SetLocal { depth, index } => Op::SetLocal {
                depth: *depth,
                index: *index,
            },
            Instr::SetGlobal(name) => Op::SetGlobal { name: *name },
            Instr::DefineGlobal(name) => Op::DefineGlobal { name: *name },
            Instr::PushFrame(n) => Op::PushFrame { n: *n },
            Instr::PushFrameUnspec(n) => Op::PushFrameUnspec { n: *n },
            Instr::PopFrame => Op::PopFrame,
            Instr::MakeClosure(def) => {
                self.lambdas.push(def.clone());
                Op::MakeClosure {
                    pool: (self.lambdas.len() - 1) as u32,
                }
            }
            Instr::Call { argc, src } => Op::Call {
                argc: *argc,
                src: self.src_pool(src),
            },
            Instr::Pop => Op::Pop,
        }
    }

    /// Emits the fused form of an adjacent instruction pair. Only called
    /// for pairs [`candidate_instr`] classified, so the match is total.
    fn fused_pair(&mut self, a: &Instr, b: &Instr) -> Op {
        self.fused += 1;
        match (a, b) {
            (
                Instr::LocalRef {
                    depth: d0,
                    index: i0,
                },
                Instr::LocalRef {
                    depth: d1,
                    index: i1,
                },
            ) => Op::LocalLocal {
                depth0: *d0,
                index0: *i0,
                depth1: *d1,
                index1: *i1,
            },
            (Instr::LocalRef { depth, index }, Instr::Call { argc, src }) => Op::LocalCall {
                depth: *depth,
                index: *index,
                argc: *argc,
                src: self.src_pool(src),
            },
            (Instr::Const(d), Instr::Call { argc, src }) => Op::ImmCall {
                pool: self.imm_pool(d),
                argc: *argc,
                src: self.src_pool(src),
            },
            _ => unreachable!("fused_pair on a non-candidate pair"),
        }
    }
}

/// Placeholder target used during emission; patched to real pcs once every
/// block's start offset is known.
fn pending(block: BlockId, from: BlockId) -> JumpTarget {
    JumpTarget::new(0, block, block == from + 1)
}

/// Lowers `chunk` (in its current block layout order) to a flat op
/// stream, fusing the adjacencies `plan` enables. Pure: the chunk is not
/// consumed, and lowering the same chunk with the same plan is
/// deterministic.
pub fn lower_chunk(chunk: &Chunk, plan: &FusionPlan) -> FlatChunk {
    let n = chunk.blocks.len();
    let mut lw = Lowerer {
        ops: Vec::new(),
        imms: Vec::new(),
        datums: Vec::new(),
        syntaxes: Vec::new(),
        lambdas: Vec::new(),
        srcs: vec![None],
        fused: 0,
    };
    let mut block_starts = vec![0u32; n];
    for (b, block) in chunk.blocks.iter().enumerate() {
        let from = b as BlockId;
        block_starts[b] = lw.ops.len() as u32;
        let instrs = &block.instrs;
        let mut i = 0;
        let mut term_fused = false;
        while i < instrs.len() {
            if i + 1 < instrs.len() {
                if let Some(f) = candidate_instr(&instrs[i], &instrs[i + 1]) {
                    if plan.has(f) {
                        let op = lw.fused_pair(&instrs[i], &instrs[i + 1]);
                        lw.ops.push(op);
                        i += 2;
                        continue;
                    }
                }
            } else if let Some(f) = candidate_term(&instrs[i], &block.term) {
                if plan.has(f) {
                    lw.fused += 1;
                    let op = match (&instrs[i], &block.term) {
                        (Instr::Const(d), Terminator::Branch(t, e)) => {
                            // Only `#f` is falsy, so the branch direction
                            // is decided here, not per execution.
                            let taken = if matches!(d, Datum::Bool(false)) { e } else { t };
                            Op::ImmBranch {
                                target: pending(*taken, from),
                            }
                        }
                        (Instr::LocalRef { depth, index }, Terminator::Return) => {
                            Op::LocalReturn {
                                depth: *depth,
                                index: *index,
                            }
                        }
                        _ => unreachable!("fused terminator on a non-candidate pair"),
                    };
                    lw.ops.push(op);
                    i += 1;
                    term_fused = true;
                    continue;
                }
            }
            let op = lw.single(&instrs[i]);
            lw.ops.push(op);
            i += 1;
        }
        if !term_fused {
            let op = match &block.term {
                Terminator::Jump(t) => Op::Jump {
                    target: pending(*t, from),
                },
                Terminator::Branch(t, e) => Op::Branch {
                    then_: pending(*t, from),
                    else_: pending(*e, from),
                },
                Terminator::Return => Op::Return,
                Terminator::TailCall { argc, src } => Op::TailCall {
                    argc: *argc,
                    src: lw.src_pool(src),
                },
            };
            lw.ops.push(op);
        }
    }
    // Patch every transfer's pc now that block offsets are known.
    let patch = |t: &mut JumpTarget| t.pc = block_starts[t.block() as usize];
    for op in &mut lw.ops {
        match op {
            Op::Jump { target } | Op::ImmBranch { target } => patch(target),
            Op::Branch { then_, else_ } => {
                patch(then_);
                patch(else_);
            }
            _ => {}
        }
    }
    let entry_pc = block_starts[chunk.entry as usize];
    FlatChunk {
        id: chunk.id,
        ops: lw.ops,
        imms: lw.imms,
        datums: lw.datums,
        syntaxes: lw.syntaxes,
        lambdas: lw.lambdas,
        srcs: lw.srcs,
        block_starts,
        entry_block: chunk.entry,
        entry_pc,
        block_count: n as u32,
        global_refs: chunk.global_refs,
        fused: lw.fused,
        layout_sig: layout_sig(chunk),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{fresh_chunk_id_for_tests, Block};
    use crate::counters::BlockCounters;
    use crate::layout::optimize_layout;

    fn sample() -> Chunk {
        Chunk {
            id: fresh_chunk_id_for_tests(),
            entry: 0,
            global_refs: 0,
            blocks: vec![
                Block {
                    instrs: vec![Instr::Const(Datum::Int(1))],
                    term: Terminator::Branch(1, 2),
                },
                Block {
                    instrs: vec![
                        Instr::LocalRef { depth: 0, index: 0 },
                        Instr::LocalRef { depth: 0, index: 1 },
                    ],
                    term: Terminator::Return,
                },
                Block {
                    instrs: vec![Instr::Const(Datum::string("mut"))],
                    term: Terminator::Jump(1),
                },
            ],
        }
    }

    #[test]
    fn lowering_resolves_block_starts_and_targets() {
        let chunk = sample();
        let flat = lower_chunk(&chunk, &FusionPlan::none());
        assert_eq!(flat.block_count, 3);
        assert_eq!(flat.entry_pc, 0);
        // Ops: [Imm, Branch] [Local, Local, Return] [DatumConst, Jump]
        assert_eq!(flat.ops.len(), 7);
        assert_eq!(flat.block_starts, vec![0, 2, 5]);
        match flat.ops[1] {
            Op::Branch { then_, else_ } => {
                assert_eq!(then_, JumpTarget::new(2, 1, true));
                assert_eq!(else_, JumpTarget::new(5, 2, false));
                assert_eq!((then_.block(), then_.fallthrough()), (1, true));
                assert_eq!((else_.block(), else_.fallthrough()), (2, false));
            }
            other => panic!("expected branch, got {other:?}"),
        }
        // The mutable string literal stays a datum, not a pooled value.
        assert!(matches!(flat.ops[5], Op::DatumConst { .. }));
        assert_eq!(flat.datums.len(), 1);
        assert_eq!(flat.imms.len(), 1);
    }

    #[test]
    fn fusion_shrinks_the_stream_without_changing_blocks() {
        let chunk = sample();
        let plain = lower_chunk(&chunk, &FusionPlan::none());
        let fused = lower_chunk(&chunk, &FusionPlan::all());
        assert!(fused.fused >= 2, "imm+branch and local+local: {}", fused.fused);
        assert!(fused.ops.len() < plain.ops.len());
        assert_eq!(fused.block_count, plain.block_count);
        assert_eq!(fused.entry_block, plain.entry_block);
    }

    #[test]
    fn layout_sig_tracks_reordering() {
        let chunk = sample();
        let counters = BlockCounters::new();
        for _ in 0..10 {
            counters.increment(chunk.id, 2);
        }
        let moved = optimize_layout(&chunk, &counters);
        assert_ne!(layout_sig(&chunk), layout_sig(&moved), "reorder must re-sign");
        assert_eq!(layout_sig(&chunk), layout_sig(&chunk.clone()), "sig is stable");
    }
}
