//! Bytecode data structures.

use pgmp_eval::LambdaDef;
use pgmp_syntax::{Datum, SourceObject, Symbol, Syntax};
use std::rc::Rc;
use std::sync::atomic::{AtomicU32, Ordering};

/// Index of a basic block within its chunk.
pub type BlockId = u32;

static NEXT_CHUNK_ID: AtomicU32 = AtomicU32::new(0);

/// Allocates a process-unique chunk id (used to key block profiles).
pub(crate) fn fresh_chunk_id() -> u32 {
    NEXT_CHUNK_ID.fetch_add(1, Ordering::Relaxed)
}

/// Test-only access to fresh chunk ids from sibling modules.
#[cfg(test)]
pub(crate) fn fresh_chunk_id_for_tests() -> u32 {
    fresh_chunk_id()
}

/// A straight-line instruction. All instructions communicate through the
/// operand stack and the current frame register.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// Push a constant datum.
    Const(Datum),
    /// Push a constant syntax object.
    SyntaxConst(Rc<Syntax>),
    /// Push the unspecified value.
    Unspecified,
    /// Push a local variable.
    LocalRef {
        /// Frames up.
        depth: u16,
        /// Slot index.
        index: u16,
    },
    /// Push a global variable (error if unbound).
    GlobalRef {
        /// Variable name.
        name: Symbol,
        /// Chunk-local cache index (dense, assigned at compile time;
        /// `Chunk::global_refs` is the count). The VM memoizes the
        /// interpreter's global *slot* here on first execution, so repeat
        /// executions skip the `Symbol` hash entirely.
        cache: u32,
    },
    /// Pop a value into a local slot.
    SetLocal {
        /// Frames up.
        depth: u16,
        /// Slot index.
        index: u16,
    },
    /// Pop a value into a global (which must exist).
    SetGlobal(Symbol),
    /// Pop a value, defining a global.
    DefineGlobal(Symbol),
    /// Pop `n` values into a fresh frame pushed on the frame register.
    PushFrame(u16),
    /// Push a fresh frame of `n` unspecified slots.
    PushFrameUnspec(u16),
    /// Pop the current frame (restore its parent).
    PopFrame,
    /// Push a closure over the current frame. The closure shares the
    /// tree-walker's representation (a [`LambdaDef`] plus environment);
    /// the VM compiles its body to a chunk lazily at first call.
    MakeClosure(Rc<LambdaDef>),
    /// Pop `argc` arguments and a callee; push the result.
    Call {
        /// Argument count.
        argc: u16,
        /// Source object of the call site (for errors and, in
        /// calls-only profiling, the counter).
        src: Option<SourceObject>,
    },
    /// Pop and discard the top of stack.
    Pop,
}

/// How a basic block ends.
#[derive(Clone, Debug, PartialEq)]
pub enum Terminator {
    /// Unconditional transfer.
    Jump(BlockId),
    /// Pop a value; transfer to the first block when truthy.
    Branch(BlockId, BlockId),
    /// Pop the result and return from the current activation.
    Return,
    /// Pop `argc` arguments and a callee; transfer control without growing
    /// the call stack (proper tail call).
    TailCall {
        /// Argument count.
        argc: u16,
        /// Call-site source object.
        src: Option<SourceObject>,
    },
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Instructions, executed in order.
    pub instrs: Vec<Instr>,
    /// Exit.
    pub term: Terminator,
}

/// A compiled code unit: a CFG of basic blocks with a distinguished entry.
#[derive(Clone, Debug)]
pub struct Chunk {
    /// Process-unique id, used to key the block-level profile.
    pub id: u32,
    /// Blocks; ids index into this vector.
    pub blocks: Vec<Block>,
    /// Entry block (always 0 after compilation, may move under layout).
    pub entry: BlockId,
    /// Number of `GlobalRef` cache indices assigned in this chunk — the
    /// length of the VM's chunk-local global-slot cache.
    pub global_refs: u32,
}

impl std::fmt::Display for Chunk {
    /// Disassembles the chunk: one section per block in layout order.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "chunk {} (entry B{}):", self.id, self.entry)?;
        for (i, block) in self.blocks.iter().enumerate() {
            writeln!(f, "B{i}:")?;
            for instr in &block.instrs {
                writeln!(f, "  {instr:?}")?;
            }
            match &block.term {
                Terminator::Jump(t) => writeln!(f, "  jump B{t}")?,
                Terminator::Branch(t, e) => writeln!(f, "  branch B{t} B{e}")?,
                Terminator::Return => writeln!(f, "  return")?,
                Terminator::TailCall { argc, .. } => writeln!(f, "  tailcall {argc}")?,
            }
        }
        Ok(())
    }
}

impl Chunk {
    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Successor block ids of `b`.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        match &self.blocks[b as usize].term {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch(t, e) => vec![*t, *e],
            Terminator::Return | Terminator::TailCall { .. } => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ids_are_unique() {
        assert_ne!(fresh_chunk_id(), fresh_chunk_id());
    }

    #[test]
    fn display_disassembles_blocks() {
        let chunk = Chunk {
            id: fresh_chunk_id(),
            entry: 0,
            global_refs: 0,
            blocks: vec![Block {
                instrs: vec![Instr::Const(Datum::Int(7))],
                term: Terminator::Return,
            }],
        };
        let text = chunk.to_string();
        assert!(text.contains("B0:"));
        assert!(text.contains("Const(7)"));
        assert!(text.contains("return"));
    }

    #[test]
    fn successors_reflect_terminators() {
        let chunk = Chunk {
            id: fresh_chunk_id(),
            entry: 0,
            global_refs: 0,
            blocks: vec![
                Block {
                    instrs: vec![Instr::Const(Datum::Bool(true))],
                    term: Terminator::Branch(1, 2),
                },
                Block {
                    instrs: vec![],
                    term: Terminator::Jump(2),
                },
                Block {
                    instrs: vec![Instr::Const(Datum::Int(1))],
                    term: Terminator::Return,
                },
            ],
        };
        assert_eq!(chunk.successors(0), vec![1, 2]);
        assert_eq!(chunk.successors(1), vec![2]);
        assert!(chunk.successors(2).is_empty());
    }
}
