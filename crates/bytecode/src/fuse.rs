//! Profile-guided superinstruction selection.
//!
//! The flat lowering ([`crate::flat`]) can fuse the hottest *adjacent*
//! opcode pairs into single combined ops, cutting dispatches on hot
//! paths — a PGMP use case the paper never had: the meta-program
//! specializes the VM itself. Which pairs are worth fusing is a per-program
//! decision driven by the block-level profile: [`FusionPlan::mine`] weighs
//! every fusable adjacency by its block's execution count, enables the top
//! candidates, and records the choice as an optimization decision
//! (alternatives + weights + chosen) so `pgmp-trace decisions` can explain
//! it exactly like the case-study macros.
//!
//! Fusion is a pure dispatch-level rewrite: a fused op performs the same
//! stack/frame effects as the two ops it replaces, blocks keep their
//! boundaries, and the block/`Terminator` graph is untouched — so
//! [`crate::canonical_form`] of the source chunk is invariant and block
//! counters are bit-identical with and without fusion.

use crate::chunk::{Chunk, Instr, Terminator};
use crate::counters::BlockCounters;
use pgmp_observe as observe;
use pgmp_syntax::Datum;

/// The fusable adjacent-pair shapes the lowering knows how to emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fused {
    /// `LocalRef; LocalRef` — push two locals in one dispatch.
    LocalLocal,
    /// `LocalRef; Call` — the local is the value pushed immediately before
    /// the call (its last argument, or the callee when `argc == 0`).
    LocalCall,
    /// `Const; Call` with an immutable constant — ditto for a pooled
    /// immediate.
    ImmCall,
    /// `Const; Branch` with an immutable constant — branch on the pooled
    /// immediate's truthiness without stack traffic.
    ImmBranch,
    /// `LocalRef; Return` — return a local directly.
    LocalReturn,
}

/// All candidates, in a stable order (the decision's alternative order).
pub const FUSED_CANDIDATES: [Fused; 5] = [
    Fused::LocalLocal,
    Fused::LocalCall,
    Fused::ImmCall,
    Fused::ImmBranch,
    Fused::LocalReturn,
];

impl Fused {
    /// Stable label used in decision provenance and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            Fused::LocalLocal => "local+local",
            Fused::LocalCall => "local+call",
            Fused::ImmCall => "const+call",
            Fused::ImmBranch => "const+branch",
            Fused::LocalReturn => "local+return",
        }
    }

    fn index(self) -> usize {
        match self {
            Fused::LocalLocal => 0,
            Fused::LocalCall => 1,
            Fused::ImmCall => 2,
            Fused::ImmBranch => 3,
            Fused::LocalReturn => 4,
        }
    }
}

/// True for datum kinds whose [`pgmp_eval::Value`] form is immutable and
/// therefore poolable: pushing a clone of a pre-converted value is
/// indistinguishable from converting the datum afresh. String, pair, and
/// vector literals are *mutable* in Scheme, so they must be rebuilt per
/// execution and are never fused.
pub(crate) fn imm_datum(d: &Datum) -> bool {
    matches!(
        d,
        Datum::Nil | Datum::Bool(_) | Datum::Int(_) | Datum::Float(_) | Datum::Char(_) | Datum::Sym(_)
    )
}

/// The fusable shape of an adjacent instruction pair, if any.
pub(crate) fn candidate_instr(a: &Instr, b: &Instr) -> Option<Fused> {
    match (a, b) {
        (Instr::LocalRef { .. }, Instr::LocalRef { .. }) => Some(Fused::LocalLocal),
        (Instr::LocalRef { .. }, Instr::Call { .. }) => Some(Fused::LocalCall),
        (Instr::Const(d), Instr::Call { .. }) if imm_datum(d) => Some(Fused::ImmCall),
        _ => None,
    }
}

/// The fusable shape of a block's last instruction and its terminator.
pub(crate) fn candidate_term(a: &Instr, t: &Terminator) -> Option<Fused> {
    match (a, t) {
        (Instr::Const(d), Terminator::Branch(..)) if imm_datum(d) => Some(Fused::ImmBranch),
        (Instr::LocalRef { .. }, Terminator::Return) => Some(Fused::LocalReturn),
        _ => None,
    }
}

/// Which superinstructions the lowering may emit. The default plan fuses
/// nothing; [`FusionPlan::mine`] builds one from a block profile.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FusionPlan {
    enabled: [bool; FUSED_CANDIDATES.len()],
}

impl FusionPlan {
    /// No fusion (the default): the flat stream is a 1:1 lowering.
    pub fn none() -> FusionPlan {
        FusionPlan::default()
    }

    /// Every candidate enabled — profile-free maximal fusion, used by
    /// benches and the differential oracle.
    pub fn all() -> FusionPlan {
        FusionPlan {
            enabled: [true; FUSED_CANDIDATES.len()],
        }
    }

    /// True when the lowering may emit `f`.
    pub fn has(&self, f: Fused) -> bool {
        self.enabled[f.index()]
    }

    /// Number of enabled candidates.
    pub fn len(&self) -> usize {
        self.enabled.iter().filter(|e| **e).count()
    }

    /// True when no candidate is enabled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Labels of the enabled candidates, in candidate order.
    pub fn labels(&self) -> Vec<&'static str> {
        FUSED_CANDIDATES
            .iter()
            .filter(|f| self.has(**f))
            .map(|f| f.label())
            .collect()
    }

    /// Mines the block profile for the hottest fusable adjacencies across
    /// `chunks` and enables the top `limit` candidates with nonzero
    /// weight. Each fusable pair contributes its block's execution count;
    /// a never-profiled program therefore fuses nothing (the honest
    /// default — fusion is profile-guided, not speculative).
    ///
    /// Records the selection as a `decision` trace event (site
    /// `vm-fusion`): every candidate with its normalized weight as an
    /// alternative, the enabled labels as `chosen`, so `pgmp-trace
    /// decisions`/`compare` treat it exactly like a case-study macro's
    /// clause reordering.
    pub fn mine<'a>(
        chunks: impl IntoIterator<Item = &'a Chunk>,
        counters: &BlockCounters,
        limit: usize,
    ) -> FusionPlan {
        let mut weights = [0u64; FUSED_CANDIDATES.len()];
        let mut sites = 0u64;
        for chunk in chunks {
            for (b, block) in chunk.blocks.iter().enumerate() {
                let hits = counters.count(chunk.id, b as u32);
                let mut note = |f: Fused| {
                    sites += 1;
                    weights[f.index()] = weights[f.index()].saturating_add(hits);
                };
                for pair in block.instrs.windows(2) {
                    if let Some(f) = candidate_instr(&pair[0], &pair[1]) {
                        note(f);
                    }
                }
                if let Some(last) = block.instrs.last() {
                    if let Some(f) = candidate_term(last, &block.term) {
                        note(f);
                    }
                }
            }
        }
        let total: u64 = weights.iter().sum();
        let mut ranked: Vec<(Fused, u64)> = FUSED_CANDIDATES
            .iter()
            .map(|f| (*f, weights[f.index()]))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        let mut plan = FusionPlan::none();
        for (f, w) in ranked.iter().take(limit) {
            if *w > 0 {
                plan.enabled[f.index()] = true;
            }
        }
        if observe::enabled() && sites > 0 {
            let alternatives = FUSED_CANDIDATES
                .iter()
                .map(|f| observe::DecisionAlt {
                    label: f.label().to_owned(),
                    weight: (total > 0)
                        .then(|| weights[f.index()] as f64 / total as f64),
                })
                .collect();
            let chosen: Vec<String> =
                plan.labels().iter().map(|l| (*l).to_owned()).collect();
            let rank = ranked
                .first()
                .map(|(f, _)| f.index() as u32)
                .unwrap_or(0);
            observe::emit(observe::EventKind::Decision {
                site: "vm-fusion".to_owned(),
                decision_point: format!("superinstructions:{sites}-sites"),
                alternatives,
                chosen,
                rank,
            });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{fresh_chunk_id_for_tests, Block};

    fn local(depth: u16, index: u16) -> Instr {
        Instr::LocalRef { depth, index }
    }

    fn hot_chunk() -> Chunk {
        Chunk {
            id: fresh_chunk_id_for_tests(),
            entry: 0,
            global_refs: 0,
            blocks: vec![
                Block {
                    instrs: vec![local(0, 0), local(0, 1), Instr::Call { argc: 1, src: None }],
                    term: Terminator::Return,
                },
                Block {
                    instrs: vec![local(0, 0)],
                    term: Terminator::Return,
                },
            ],
        }
    }

    #[test]
    fn unprofiled_programs_fuse_nothing() {
        let chunk = hot_chunk();
        let plan = FusionPlan::mine([&chunk], &BlockCounters::new(), 3);
        assert!(plan.is_empty(), "no profile, no fusion: {plan:?}");
    }

    #[test]
    fn mining_enables_the_hot_pairs() {
        let chunk = hot_chunk();
        let counters = BlockCounters::new();
        for _ in 0..50 {
            counters.increment(chunk.id, 0);
        }
        counters.increment(chunk.id, 1);
        let plan = FusionPlan::mine([&chunk], &counters, 2);
        // Block 0 carries LocalLocal + LocalCall at weight 50 each; block 1
        // carries LocalReturn at weight 1 — the limit of 2 keeps the top two.
        assert!(plan.has(Fused::LocalLocal));
        assert!(plan.has(Fused::LocalCall));
        assert!(!plan.has(Fused::LocalReturn));
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn all_and_none_are_what_they_say() {
        assert_eq!(FusionPlan::all().len(), FUSED_CANDIDATES.len());
        assert!(FusionPlan::none().is_empty());
        for f in FUSED_CANDIDATES {
            assert!(FusionPlan::all().has(f));
        }
    }

    #[test]
    fn mutable_constants_are_never_candidates() {
        let call = Instr::Call { argc: 1, src: None };
        assert_eq!(
            candidate_instr(&Instr::Const(Datum::string("s")), &call),
            None
        );
        assert_eq!(
            candidate_instr(&Instr::Const(Datum::Int(1)), &call),
            Some(Fused::ImmCall)
        );
    }
}
