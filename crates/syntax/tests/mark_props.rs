//! Property tests for the hygiene-mark algebra and source-object
//! determinism — the two invariants the whole expander leans on.

use pgmp_syntax::{Datum, Mark, MarkSet, SourceFactory, SourceObject, Syntax};
use proptest::prelude::*;

fn arb_marks() -> impl Strategy<Value = Vec<Mark>> {
    proptest::collection::vec((0u32..16).prop_map(Mark), 0..12)
}

proptest! {
    #[test]
    fn toggling_is_an_involution(seq in arb_marks(), m in (0u32..16).prop_map(Mark)) {
        let mut ms = MarkSet::new();
        for mark in &seq {
            ms.toggle(*mark);
        }
        let orig = ms.clone();
        ms.toggle(m);
        ms.toggle(m);
        prop_assert_eq!(ms, orig);
    }

    #[test]
    fn toggle_order_is_irrelevant(mut seq in arb_marks()) {
        let mut forward = MarkSet::new();
        for m in &seq {
            forward.toggle(*m);
        }
        seq.reverse();
        let mut backward = MarkSet::new();
        for m in &seq {
            backward.toggle(*m);
        }
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn membership_equals_odd_occurrence_count(seq in arb_marks()) {
        let mut ms = MarkSet::new();
        for m in &seq {
            ms.toggle(*m);
        }
        for probe in 0u32..16 {
            let count = seq.iter().filter(|m| m.0 == probe).count();
            prop_assert_eq!(
                ms.contains(Mark(probe)),
                count % 2 == 1,
                "mark {} toggled {} times",
                probe,
                count
            );
        }
    }

    #[test]
    fn apply_mark_round_trips_syntax(seq in arb_marks()) {
        // Applying the same mark twice to a whole tree is the identity —
        // the mechanism behind transformer pass-through hygiene.
        let stx = Syntax::from_datum(
            &Datum::list(vec![Datum::sym("f"), Datum::Int(1), Datum::list(vec![Datum::sym("g")])]),
            Some(SourceObject::new("p.scm", 0, 9)),
        );
        let mut marked = stx.clone();
        for m in &seq {
            marked = marked.apply_mark(*m);
        }
        for m in seq.iter().rev() {
            marked = marked.apply_mark(*m);
        }
        prop_assert_eq!(marked, stx);
    }

    #[test]
    fn profile_point_generation_is_reproducible(
        bases in proptest::collection::vec(0u32..4, 1..24)
    ) {
        // Any interleaving of base files produces the same points when
        // replayed — §3.1's determinism requirement, generalized.
        let files = ["a.scm", "b.scm", "c.scm", "d.scm"];
        let mut f1 = SourceFactory::new();
        let mut f2 = SourceFactory::new();
        for &b in &bases {
            let base = SourceObject::new(files[b as usize], b, b + 1);
            prop_assert_eq!(
                f1.make_profile_point(Some(base)),
                f2.make_profile_point(Some(base))
            );
        }
        // And reset replays the same sequence.
        f1.reset();
        for &b in &bases {
            let base = SourceObject::new(files[b as usize], b, b + 1);
            let replayed = f1.make_profile_point(Some(base));
            prop_assert!(replayed.file.as_str().starts_with(files[b as usize]));
        }
    }

    #[test]
    fn generated_points_never_collide_with_reader_points(
        spans in proptest::collection::vec((0u32..1000, 1u32..50), 0..20)
    ) {
        let mut factory = SourceFactory::new();
        let base = SourceObject::new("prog.scm", 0, 10);
        let generated: Vec<SourceObject> =
            (0..10).map(|_| factory.make_profile_point(Some(base))).collect();
        for (start, len) in spans {
            let reader_point = SourceObject::new("prog.scm", start, start + len);
            prop_assert!(!generated.contains(&reader_point));
            prop_assert!(!reader_point.is_generated());
        }
        for g in &generated {
            prop_assert!(g.is_generated());
        }
    }
}
