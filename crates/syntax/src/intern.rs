//! Global symbol interning.
//!
//! Symbols are the identifiers of the object language. Interning gives `O(1)`
//! equality and hashing, which matters because the expander resolves every
//! identifier through hash maps keyed on symbols.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// A globally interned identifier.
///
/// Two `Symbol`s are equal iff they were interned from the same string (or
/// produced by the same [`Symbol::gensym`] call). Symbols are `Copy` and
/// cheap to hash.
///
/// # Example
///
/// ```
/// use pgmp_syntax::Symbol;
/// let a = Symbol::intern("lambda");
/// let b = Symbol::intern("lambda");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "lambda");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

// The table is append-only: ids are never reused and names never change,
// so lookups (`as_str`, and the fast path of `intern`) take only a read
// lock and run concurrently; the write lock is held just long enough to
// append a new name.
fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            names: Vec::new(),
        })
    })
}

static GENSYM_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Symbol {
    /// Interns `name`, returning the canonical symbol for it.
    pub fn intern(name: &str) -> Symbol {
        {
            let guard = interner().read().expect("symbol interner poisoned");
            if let Some(&id) = guard.map.get(name) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write().expect("symbol interner poisoned");
        // Re-check: another thread may have interned `name` between locks.
        if let Some(&id) = guard.map.get(name) {
            return Symbol(id);
        }
        // Leaking is fine: the set of distinct symbols in a compilation
        // session is small and lives for the whole process anyway.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = guard.names.len() as u32;
        guard.names.push(leaked);
        guard.map.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the string this symbol was interned from.
    pub fn as_str(self) -> &'static str {
        let guard = interner().read().expect("symbol interner poisoned");
        guard.names[self.0 as usize]
    }

    /// Generates a fresh symbol guaranteed not to be equal to any symbol
    /// interned before or after, with `base` as a readable prefix.
    ///
    /// Used by the expander for hygiene-safe generated binders.
    pub fn gensym(base: &str) -> Symbol {
        let n = GENSYM_COUNTER.fetch_add(1, Ordering::Relaxed);
        Symbol::intern(&format!("{base}%g{n}"))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(Symbol::intern("x"), Symbol::intern("x"));
        assert_ne!(Symbol::intern("x"), Symbol::intern("y"));
    }

    #[test]
    fn as_str_round_trips() {
        for name in ["foo", "bar-baz", "+", "...", "list->vector"] {
            assert_eq!(Symbol::intern(name).as_str(), name);
        }
    }

    #[test]
    fn gensym_is_fresh() {
        let a = Symbol::gensym("t");
        let b = Symbol::gensym("t");
        assert_ne!(a, b);
        assert!(a.as_str().starts_with('t'));
    }

    #[test]
    fn symbols_are_ordered_consistently() {
        let a = Symbol::intern("ord-a");
        let b = Symbol::intern("ord-b");
        assert_eq!(a.cmp(&b), a.cmp(&b));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Symbol::intern("display-me").to_string(), "display-me");
    }

    #[test]
    fn concurrent_intern_and_read_agree() {
        let syms: Vec<Symbol> = (0..64).map(|i| Symbol::intern(&format!("conc-{i}"))).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let syms = &syms;
                s.spawn(move || {
                    for (i, sym) in syms.iter().enumerate() {
                        assert_eq!(sym.as_str(), format!("conc-{i}"));
                        assert_eq!(Symbol::intern(&format!("conc-{i}")), *sym);
                    }
                });
            }
        });
    }
}
