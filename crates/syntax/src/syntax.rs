//! Syntax objects: the values meta-programs manipulate.
//!
//! A [`Syntax`] is S-expression structure annotated, at every node, with an
//! optional [`SourceObject`] and a hygiene [`MarkSet`]. The reader produces
//! them; `syntax-case` destructures them; templates rebuild them; and
//! `annotate-expr` re-targets their source objects to fresh profile points.

use crate::datum::Datum;
use crate::intern::Symbol;
use crate::mark::{Mark, MarkSet};
use crate::source::SourceObject;
use std::fmt;
use std::rc::Rc;

/// Structure of a syntax object node.
#[derive(Clone, Debug, PartialEq)]
pub enum SyntaxBody {
    /// A leaf: any non-compound datum (symbols included).
    Atom(Datum),
    /// A proper list.
    List(Vec<Rc<Syntax>>),
    /// An improper list `(a b . c)`; the `Vec` is non-empty.
    Improper(Vec<Rc<Syntax>>, Rc<Syntax>),
    /// A vector literal `#(…)`.
    Vector(Vec<Rc<Syntax>>),
}

/// A syntax object: datum structure plus source and hygiene information.
///
/// # Example
///
/// ```
/// use pgmp_syntax::{Datum, Syntax};
/// let stx = Syntax::from_datum(&Datum::list(vec![Datum::sym("+"), Datum::Int(1)]), None);
/// assert_eq!(stx.to_datum().to_string(), "(+ 1)");
/// assert!(stx.as_list().is_some());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Syntax {
    /// Node structure.
    pub body: SyntaxBody,
    /// Source object — also the node's profile point, when present.
    pub source: Option<SourceObject>,
    /// Hygiene marks on this node.
    pub marks: MarkSet,
}

impl Syntax {
    /// Creates a syntax node with no marks.
    pub fn new(body: SyntaxBody, source: Option<SourceObject>) -> Syntax {
        Syntax {
            body,
            source,
            marks: MarkSet::new(),
        }
    }

    /// Creates an atom node.
    pub fn atom(d: Datum, source: Option<SourceObject>) -> Syntax {
        Syntax::new(SyntaxBody::Atom(d), source)
    }

    /// Creates an identifier node for `name` with no marks.
    pub fn ident(name: &str, source: Option<SourceObject>) -> Syntax {
        Syntax::atom(Datum::sym(name), source)
    }

    /// Creates a proper-list node.
    pub fn list(elems: Vec<Rc<Syntax>>, source: Option<SourceObject>) -> Syntax {
        Syntax::new(SyntaxBody::List(elems), source)
    }

    /// Recursively wraps a datum as marked-free syntax, attaching `source`
    /// to every node (the behaviour of `datum->syntax` with respect to
    /// source information).
    pub fn from_datum(d: &Datum, source: Option<SourceObject>) -> Syntax {
        let body = match d {
            Datum::Pair(_) => {
                let mut elems = Vec::new();
                let mut cur = d;
                loop {
                    match cur {
                        Datum::Pair(p) => {
                            elems.push(Rc::new(Syntax::from_datum(&p.0, source)));
                            cur = &p.1;
                        }
                        Datum::Nil => return Syntax::new(SyntaxBody::List(elems), source),
                        other => {
                            let tail = Rc::new(Syntax::from_datum(other, source));
                            return Syntax::new(SyntaxBody::Improper(elems, tail), source);
                        }
                    }
                }
            }
            Datum::Vector(v) => SyntaxBody::Vector(
                v.iter()
                    .map(|e| Rc::new(Syntax::from_datum(e, source)))
                    .collect(),
            ),
            other => SyntaxBody::Atom(other.clone()),
        };
        Syntax::new(body, source)
    }

    /// Strips all source and hygiene annotations (`syntax->datum`).
    pub fn to_datum(&self) -> Datum {
        match &self.body {
            SyntaxBody::Atom(d) => d.clone(),
            SyntaxBody::List(elems) => Datum::list(elems.iter().map(|e| e.to_datum()).collect()),
            SyntaxBody::Improper(elems, tail) => Datum::improper_list(
                elems.iter().map(|e| e.to_datum()).collect(),
                tail.to_datum(),
            ),
            SyntaxBody::Vector(elems) => {
                Datum::Vector(elems.iter().map(|e| e.to_datum()).collect::<Vec<_>>().into())
            }
        }
    }

    /// If this node is an identifier, returns its symbol.
    pub fn as_symbol(&self) -> Option<Symbol> {
        match &self.body {
            SyntaxBody::Atom(Datum::Sym(s)) => Some(*s),
            _ => None,
        }
    }

    /// True iff this node is an identifier.
    pub fn is_identifier(&self) -> bool {
        self.as_symbol().is_some()
    }

    /// If this node is a proper list, returns its elements.
    pub fn as_list(&self) -> Option<&[Rc<Syntax>]> {
        match &self.body {
            SyntaxBody::List(elems) => Some(elems),
            _ => None,
        }
    }

    /// Recursively XOR-toggles `m` over the whole tree.
    ///
    /// Called by the expander once on a macro's input and once on its
    /// output; syntax that passed through the transformer untouched receives
    /// the mark twice, cancelling it (see [`MarkSet::toggle`]).
    pub fn apply_mark(&self, m: Mark) -> Syntax {
        let body = match &self.body {
            SyntaxBody::Atom(d) => SyntaxBody::Atom(d.clone()),
            SyntaxBody::List(elems) => {
                SyntaxBody::List(elems.iter().map(|e| Rc::new(e.apply_mark(m))).collect())
            }
            SyntaxBody::Improper(elems, tail) => SyntaxBody::Improper(
                elems.iter().map(|e| Rc::new(e.apply_mark(m))).collect(),
                Rc::new(tail.apply_mark(m)),
            ),
            SyntaxBody::Vector(elems) => {
                SyntaxBody::Vector(elems.iter().map(|e| Rc::new(e.apply_mark(m))).collect())
            }
        };
        Syntax {
            body,
            source: self.source,
            marks: self.marks.toggled(m),
        }
    }

    /// Returns a copy whose root node is associated with source object
    /// `src`, replacing any existing association.
    ///
    /// This is the primitive beneath `annotate-expr` (Figure 4): the
    /// profiler will increment `src`'s counter whenever the expression is
    /// executed.
    pub fn with_source(&self, src: SourceObject) -> Syntax {
        let mut out = self.clone();
        out.source = Some(src);
        out
    }

    /// The source object of this node, if any — i.e. its profile point.
    pub fn source_object(&self) -> Option<SourceObject> {
        self.source
    }

    /// Two identifiers are `bound-identifier=?` when they have the same
    /// name *and* the same marks: they would capture each other if one
    /// bound the other.
    pub fn bound_identifier_eq(&self, other: &Syntax) -> bool {
        match (self.as_symbol(), other.as_symbol()) {
            (Some(a), Some(b)) => a == b && self.marks == other.marks,
            _ => false,
        }
    }

    /// Finds the first node in the tree (preorder) that has a source
    /// object, which is how `profile-query` locates the profile point of a
    /// compound expression whose root annotation was lost.
    pub fn first_source(&self) -> Option<SourceObject> {
        if self.source.is_some() {
            return self.source;
        }
        match &self.body {
            SyntaxBody::Atom(_) => None,
            SyntaxBody::List(elems) | SyntaxBody::Vector(elems) => {
                elems.iter().find_map(|e| e.first_source())
            }
            SyntaxBody::Improper(elems, tail) => elems
                .iter()
                .find_map(|e| e.first_source())
                .or_else(|| tail.first_source()),
        }
    }
}

impl fmt::Display for Syntax {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_datum())
    }
}

impl From<Datum> for Syntax {
    fn from(d: Datum) -> Syntax {
        Syntax::from_datum(&d, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Syntax {
        Syntax::from_datum(
            &Datum::list(vec![Datum::sym("if"), Datum::Bool(true), Datum::Int(1)]),
            Some(SourceObject::new("t.scm", 0, 10)),
        )
    }

    #[test]
    fn datum_round_trip() {
        let stx = sample();
        assert_eq!(stx.to_datum().to_string(), "(if #t 1)");
    }

    #[test]
    fn from_datum_attaches_source_everywhere() {
        let stx = sample();
        let elems = stx.as_list().unwrap();
        for e in elems {
            assert_eq!(e.source, Some(SourceObject::new("t.scm", 0, 10)));
        }
    }

    #[test]
    fn mark_cancellation() {
        let stx = sample();
        let marked_twice = stx.apply_mark(Mark(9)).apply_mark(Mark(9));
        assert_eq!(marked_twice, stx);
    }

    #[test]
    fn mark_applies_recursively() {
        let stx = sample().apply_mark(Mark(4));
        assert!(stx.marks.contains(Mark(4)));
        for e in stx.as_list().unwrap() {
            assert!(e.marks.contains(Mark(4)));
        }
    }

    #[test]
    fn with_source_replaces_only_root() {
        let stx = sample();
        let p = SourceObject::new("gen.scm", 1, 2);
        let annotated = stx.with_source(p);
        assert_eq!(annotated.source, Some(p));
        assert_eq!(
            annotated.as_list().unwrap()[0].source,
            Some(SourceObject::new("t.scm", 0, 10))
        );
    }

    #[test]
    fn bound_identifier_eq_respects_marks() {
        let a = Syntax::ident("x", None);
        let b = Syntax::ident("x", None);
        assert!(a.bound_identifier_eq(&b));
        let marked = a.apply_mark(Mark(1));
        assert!(!marked.bound_identifier_eq(&b));
        assert!(marked.bound_identifier_eq(&b.apply_mark(Mark(1))));
    }

    #[test]
    fn first_source_searches_preorder() {
        let leaf = Rc::new(Syntax::atom(Datum::Int(1), Some(SourceObject::new("l.scm", 5, 6))));
        let parent = Syntax::list(vec![Rc::new(Syntax::ident("f", None)), leaf], None);
        assert_eq!(parent.first_source(), Some(SourceObject::new("l.scm", 5, 6)));
    }

    #[test]
    fn improper_round_trip() {
        let d = Datum::improper_list(vec![Datum::sym("a")], Datum::sym("b"));
        let stx = Syntax::from_datum(&d, None);
        assert_eq!(stx.to_datum().to_string(), "(a . b)");
    }
}
