//! Immutable S-expression data.
//!
//! A [`Datum`] is what `syntax->datum` produces: plain structured data with
//! all source and hygiene information stripped. The runtime value
//! representation (mutable pairs, closures, …) lives in `pgmp-eval`; `Datum`
//! is the static, hashable subset shared by the reader, the expander, and the
//! profile-file format.

use crate::intern::Symbol;
use std::fmt;
use std::rc::Rc;

/// An immutable S-expression.
///
/// Proper and improper lists are built from [`Datum::Pair`]; the empty list
/// is [`Datum::Nil`].
///
/// # Example
///
/// ```
/// use pgmp_syntax::Datum;
/// let d = Datum::list(vec![Datum::Int(1), Datum::Int(2)]);
/// assert_eq!(d.to_string(), "(1 2)");
/// assert_eq!(d.list_elems().unwrap().len(), 2);
/// ```
#[derive(Clone, PartialEq)]
pub enum Datum {
    /// The empty list `()`.
    Nil,
    /// `#t` / `#f`.
    Bool(bool),
    /// Exact integer.
    Int(i64),
    /// Inexact real.
    Float(f64),
    /// Character literal, e.g. `#\a`.
    Char(char),
    /// String literal.
    Str(Rc<str>),
    /// Interned symbol.
    Sym(Symbol),
    /// Cons cell.
    Pair(Rc<(Datum, Datum)>),
    /// Vector literal `#(…)`.
    Vector(Rc<[Datum]>),
}

impl Datum {
    /// Builds a proper list from `elems`.
    pub fn list(elems: Vec<Datum>) -> Datum {
        let mut acc = Datum::Nil;
        for e in elems.into_iter().rev() {
            acc = Datum::cons(e, acc);
        }
        acc
    }

    /// Builds an improper list `(e0 e1 … . tail)`.
    pub fn improper_list(elems: Vec<Datum>, tail: Datum) -> Datum {
        let mut acc = tail;
        for e in elems.into_iter().rev() {
            acc = Datum::cons(e, acc);
        }
        acc
    }

    /// Cons cell constructor.
    pub fn cons(car: Datum, cdr: Datum) -> Datum {
        Datum::Pair(Rc::new((car, cdr)))
    }

    /// Interns `name` and wraps it as a symbol datum.
    pub fn sym(name: &str) -> Datum {
        Datum::Sym(Symbol::intern(name))
    }

    /// Wraps `s` as a string datum.
    pub fn string(s: &str) -> Datum {
        Datum::Str(Rc::from(s))
    }

    /// Returns the `car` of a pair, or `None` for non-pairs.
    pub fn car(&self) -> Option<&Datum> {
        match self {
            Datum::Pair(p) => Some(&p.0),
            _ => None,
        }
    }

    /// Returns the `cdr` of a pair, or `None` for non-pairs.
    pub fn cdr(&self) -> Option<&Datum> {
        match self {
            Datum::Pair(p) => Some(&p.1),
            _ => None,
        }
    }

    /// If `self` is a proper list, returns its elements.
    pub fn list_elems(&self) -> Option<Vec<Datum>> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Datum::Nil => return Some(out),
                Datum::Pair(p) => {
                    out.push(p.0.clone());
                    cur = &p.1;
                }
                _ => return None,
            }
        }
    }

    /// True iff `self` is `Nil` or a pair chain ending in `Nil`.
    pub fn is_list(&self) -> bool {
        let mut cur = self;
        loop {
            match cur {
                Datum::Nil => return true,
                Datum::Pair(p) => cur = &p.1,
                _ => return false,
            }
        }
    }

    /// Scheme `equal?`: deep structural equality.
    ///
    /// `PartialEq` on `Datum` already is structural; this alias exists for
    /// readability at call sites implementing Scheme primitives. Note that
    /// `0.0` and `-0.0` compare equal and `NaN` compares unequal to itself,
    /// matching IEEE semantics rather than bitwise identity.
    pub fn equal(&self, other: &Datum) -> bool {
        self == other
    }
}

fn write_char(c: char, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match c {
        ' ' => write!(f, "#\\space"),
        '\n' => write!(f, "#\\newline"),
        '\t' => write!(f, "#\\tab"),
        '\r' => write!(f, "#\\return"),
        '\0' => write!(f, "#\\nul"),
        c => write!(f, "#\\{c}"),
    }
}

fn write_string(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Writes a float so that the reader will read it back as a float (always
/// includes a decimal point or exponent).
pub(crate) fn write_float(x: f64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if x.is_nan() {
        f.write_str("+nan.0")
    } else if x.is_infinite() {
        f.write_str(if x > 0.0 { "+inf.0" } else { "-inf.0" })
    } else if x == x.trunc() && x.abs() < 1e15 {
        write!(f, "{x:.1}")
    } else {
        write!(f, "{x}")
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Nil => f.write_str("()"),
            Datum::Bool(true) => f.write_str("#t"),
            Datum::Bool(false) => f.write_str("#f"),
            Datum::Int(n) => write!(f, "{n}"),
            Datum::Float(x) => write_float(*x, f),
            Datum::Char(c) => write_char(*c, f),
            Datum::Str(s) => write_string(s, f),
            Datum::Sym(s) => write!(f, "{s}"),
            Datum::Vector(v) => {
                f.write_str("#(")?;
                for (i, d) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{d}")?;
                }
                f.write_str(")")
            }
            Datum::Pair(_) => {
                f.write_str("(")?;
                let mut cur = self;
                let mut first = true;
                loop {
                    match cur {
                        Datum::Pair(p) => {
                            if !first {
                                f.write_str(" ")?;
                            }
                            write!(f, "{}", p.0)?;
                            first = false;
                            cur = &p.1;
                        }
                        Datum::Nil => break,
                        other => {
                            write!(f, " . {other}")?;
                            break;
                        }
                    }
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Debug for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<i64> for Datum {
    fn from(n: i64) -> Datum {
        Datum::Int(n)
    }
}

impl From<bool> for Datum {
    fn from(b: bool) -> Datum {
        Datum::Bool(b)
    }
}

impl From<Symbol> for Datum {
    fn from(s: Symbol) -> Datum {
        Datum::Sym(s)
    }
}

impl FromIterator<Datum> for Datum {
    fn from_iter<I: IntoIterator<Item = Datum>>(iter: I) -> Datum {
        Datum::list(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_construction_and_elems() {
        let d = Datum::list(vec![Datum::Int(1), Datum::Int(2), Datum::Int(3)]);
        assert!(d.is_list());
        assert_eq!(
            d.list_elems().unwrap(),
            vec![Datum::Int(1), Datum::Int(2), Datum::Int(3)]
        );
    }

    #[test]
    fn improper_list_display() {
        let d = Datum::improper_list(vec![Datum::Int(1), Datum::Int(2)], Datum::Int(3));
        assert_eq!(d.to_string(), "(1 2 . 3)");
        assert!(!d.is_list());
        assert!(d.list_elems().is_none());
    }

    #[test]
    fn display_atoms() {
        assert_eq!(Datum::Bool(true).to_string(), "#t");
        assert_eq!(Datum::Bool(false).to_string(), "#f");
        assert_eq!(Datum::Int(-42).to_string(), "-42");
        assert_eq!(Datum::Char('a').to_string(), "#\\a");
        assert_eq!(Datum::Char(' ').to_string(), "#\\space");
        assert_eq!(Datum::Char('\n').to_string(), "#\\newline");
        assert_eq!(Datum::string("a\"b\\c").to_string(), "\"a\\\"b\\\\c\"");
        assert_eq!(Datum::Nil.to_string(), "()");
    }

    #[test]
    fn display_floats_round_trip_shape() {
        assert_eq!(Datum::Float(1.0).to_string(), "1.0");
        assert_eq!(Datum::Float(0.5).to_string(), "0.5");
        assert_eq!(Datum::Float(f64::INFINITY).to_string(), "+inf.0");
        assert_eq!(Datum::Float(f64::NEG_INFINITY).to_string(), "-inf.0");
        assert_eq!(Datum::Float(f64::NAN).to_string(), "+nan.0");
    }

    #[test]
    fn display_vector() {
        let v = Datum::Vector(Rc::from(vec![Datum::Int(1), Datum::sym("x")]));
        assert_eq!(v.to_string(), "#(1 x)");
    }

    #[test]
    fn structural_equality() {
        let a = Datum::list(vec![Datum::sym("a"), Datum::string("s")]);
        let b = Datum::list(vec![Datum::sym("a"), Datum::string("s")]);
        assert!(a.equal(&b));
        assert_ne!(a, Datum::list(vec![Datum::sym("a")]));
    }

    #[test]
    fn from_iterator_builds_list() {
        let d: Datum = (1..=3).map(Datum::Int).collect();
        assert_eq!(d.to_string(), "(1 2 3)");
    }
}
