//! Syntax-object infrastructure for profile-guided meta-programming.
//!
//! This crate provides the data the rest of the system is built from:
//!
//! - [`Symbol`] — globally interned identifiers;
//! - [`Datum`] — immutable S-expression data (the result of `syntax->datum`);
//! - [`SourceObject`] — Chez-Scheme-style source objects: a filename plus a
//!   begin/end file position. Source objects double as **profile points**
//!   (§3.1 of the paper): each one names a unique profile counter;
//! - [`Syntax`] — syntax objects: datum structure annotated with source
//!   objects and hygiene [`MarkSet`]s, the values that meta-programs
//!   manipulate;
//! - a writer (`Display` impls) used both for error messages and for the
//!   textual profile-data format.
//!
//! # Example
//!
//! ```
//! use pgmp_syntax::{Datum, Symbol};
//! let d = Datum::list(vec![
//!     Datum::Sym(Symbol::intern("if")),
//!     Datum::Bool(true),
//!     Datum::Int(1),
//!     Datum::Int(2),
//! ]);
//! assert_eq!(d.to_string(), "(if #t 1 2)");
//! ```

mod datum;
mod intern;
mod mark;
mod source;
mod syntax;

pub use datum::Datum;
pub use intern::Symbol;
pub use mark::{Mark, MarkSet};
pub use source::{SourceFactory, SourceObject};
pub use syntax::{Syntax, SyntaxBody};
