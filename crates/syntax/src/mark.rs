//! Hygiene marks.
//!
//! We use the classic mark-toggling discipline (Kohlbecker et al., refined by
//! Dybvig–Hieb–Bruggeman): before a macro transformer runs, the expander
//! stamps a fresh [`Mark`] on the input syntax; after it returns, the same
//! mark is stamped on the output. Stamping is an XOR — applying the same mark
//! twice removes it — so syntax the transformer merely passed through ends up
//! unmarked, while syntax the transformer *introduced* carries the fresh
//! mark. Identifier resolution then compares `(symbol, mark-set)` pairs.

use std::fmt;

/// A single hygiene mark. Fresh marks are allocated by the expander, one per
/// macro invocation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Mark(pub u32);

/// A set of hygiene marks attached to a syntax object.
///
/// Stored as a sorted vector: mark sets are tiny (0–3 elements in practice,
/// one per level of macro nesting), so a sorted `Vec` beats a hash set.
///
/// # Example
///
/// ```
/// use pgmp_syntax::{Mark, MarkSet};
/// let mut ms = MarkSet::new();
/// ms.toggle(Mark(1));
/// assert!(ms.contains(Mark(1)));
/// ms.toggle(Mark(1)); // applying the same mark again cancels it
/// assert!(ms.is_empty());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct MarkSet(Vec<Mark>);

impl MarkSet {
    /// The empty mark set (syntax straight from the reader).
    pub fn new() -> MarkSet {
        MarkSet(Vec::new())
    }

    /// True iff no marks are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of marks present.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff `m` is in the set.
    pub fn contains(&self, m: Mark) -> bool {
        self.0.binary_search(&m).is_ok()
    }

    /// XOR-toggles `m`: inserts it if absent, removes it if present.
    ///
    /// This is the hygiene "anti-mark" cancellation in its simplest form.
    pub fn toggle(&mut self, m: Mark) {
        match self.0.binary_search(&m) {
            Ok(i) => {
                self.0.remove(i);
            }
            Err(i) => self.0.insert(i, m),
        }
    }

    /// Returns a copy with `m` toggled.
    pub fn toggled(&self, m: Mark) -> MarkSet {
        let mut out = self.clone();
        out.toggle(m);
        out
    }

    /// Iterates over the marks in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Mark> + '_ {
        self.0.iter().copied()
    }
}

impl fmt::Debug for MarkSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, m) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", m.0)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Mark> for MarkSet {
    fn from_iter<I: IntoIterator<Item = Mark>>(iter: I) -> MarkSet {
        let mut v: Vec<Mark> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        MarkSet(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_inserts_and_cancels() {
        let mut ms = MarkSet::new();
        assert!(ms.is_empty());
        ms.toggle(Mark(5));
        assert!(ms.contains(Mark(5)));
        assert_eq!(ms.len(), 1);
        ms.toggle(Mark(5));
        assert!(!ms.contains(Mark(5)));
        assert!(ms.is_empty());
    }

    #[test]
    fn toggle_keeps_sorted_order() {
        let mut ms = MarkSet::new();
        for m in [3, 1, 2] {
            ms.toggle(Mark(m));
        }
        let marks: Vec<u32> = ms.iter().map(|m| m.0).collect();
        assert_eq!(marks, vec![1, 2, 3]);
    }

    #[test]
    fn double_toggle_is_identity() {
        let mut ms: MarkSet = [Mark(1), Mark(2)].into_iter().collect();
        let orig = ms.clone();
        ms.toggle(Mark(7));
        ms.toggle(Mark(7));
        assert_eq!(ms, orig);
    }

    #[test]
    fn equality_is_set_equality() {
        let a: MarkSet = [Mark(1), Mark(2)].into_iter().collect();
        let b: MarkSet = [Mark(2), Mark(1)].into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn from_iterator_dedups() {
        let a: MarkSet = [Mark(1), Mark(1), Mark(2)].into_iter().collect();
        assert_eq!(a.len(), 2);
    }
}
