//! Source objects: the profile-point representation.
//!
//! Following Chez Scheme (§4.1 of the paper), a source object is a filename
//! plus starting and ending character positions. The reader attaches one to
//! every syntax object it reads. Because each source object uniquely names a
//! counter, source objects *are* the profile points of the design (§3.1).
//!
//! Meta-programs manufacture **fresh** profile points with
//! [`SourceFactory::make_profile_point`], which — exactly as the paper
//! describes — derives a fresh source object "by adding a suffix to the
//! filename of a base source object", deterministically, so that generated
//! points are stable across compilations and their profile data can be
//! looked up on the next run.

use crate::intern::Symbol;
use std::collections::HashMap;
use std::fmt;

/// A Chez-style source object: filename plus begin/end file position.
///
/// Doubles as a profile point: the profiler keys counters on `SourceObject`s.
///
/// # Example
///
/// ```
/// use pgmp_syntax::SourceObject;
/// let s = SourceObject::new("prog.scm", 10, 25);
/// assert_eq!(s.to_string(), "prog.scm:10-25");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SourceObject {
    /// Interned filename (or synthetic filename for generated points).
    pub file: Symbol,
    /// Begin file position (byte offset).
    pub bfp: u32,
    /// End file position (byte offset, exclusive).
    pub efp: u32,
}

impl SourceObject {
    /// Creates a source object covering `bfp..efp` in `file`.
    pub fn new(file: &str, bfp: u32, efp: u32) -> SourceObject {
        SourceObject {
            file: Symbol::intern(file),
            bfp,
            efp,
        }
    }

    /// True for source objects produced by [`SourceFactory::make_profile_point`]
    /// rather than by the reader.
    pub fn is_generated(&self) -> bool {
        self.file.as_str().contains("%pgmp")
    }
}

impl fmt::Display for SourceObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}-{}", self.file, self.bfp, self.efp)
    }
}

/// Deterministic generator of fresh profile points.
///
/// Freshness is per-factory and per-base: the `n`-th point generated from
/// base file `f` is always `f%pgmp<n>`, so a meta-program that generates
/// points in a deterministic order gets the *same* points in every
/// compilation of the program — the property §3.1 requires so that profile
/// data collected for generated expressions in one run can be queried in the
/// next.
///
/// # Example
///
/// ```
/// use pgmp_syntax::{SourceFactory, SourceObject};
/// let mut f1 = SourceFactory::new();
/// let mut f2 = SourceFactory::new();
/// let base = SourceObject::new("lib.scm", 0, 4);
/// // Identical generation order => identical points across compilations.
/// assert_eq!(f1.make_profile_point(Some(base)), f2.make_profile_point(Some(base)));
/// ```
/// `PartialEq` compares allocation state: two factories are equal iff they
/// would generate identical point sequences from here on. The incremental
/// recompilation cache keys per-form reuse on this (a cached expansion is
/// only valid if point generation resumes from the exact state it was
/// originally produced under).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SourceFactory {
    next_suffix: HashMap<Symbol, u32>,
}

impl SourceFactory {
    /// Creates a factory with no suffixes allocated.
    pub fn new() -> SourceFactory {
        SourceFactory::default()
    }

    /// Generates a fresh profile point.
    ///
    /// When `base` is given, the new point's filename is the base filename
    /// plus a `%pgmp<n>` suffix and the base's positions are preserved — so
    /// error messages arising from generated code still lead back to the
    /// originating source location (the "added benefit" noted in §4.1).
    /// Without a base, points are generated under the synthetic file
    /// `"<generated>"`.
    pub fn make_profile_point(&mut self, base: Option<SourceObject>) -> SourceObject {
        let (base_file, bfp, efp) = match base {
            Some(b) => (b.file, b.bfp, b.efp),
            None => (Symbol::intern("<generated>"), 0, 0),
        };
        let n = self.next_suffix.entry(base_file).or_insert(0);
        let point = SourceObject {
            file: Symbol::intern(&format!("{}%pgmp{}", base_file, *n)),
            bfp,
            efp,
        };
        *n += 1;
        point
    }

    /// Resets suffix allocation, as happens at the start of a fresh
    /// compilation: the next points generated will repeat the same sequence.
    pub fn reset(&mut self) {
        self.next_suffix.clear();
    }

    /// The allocation state as `(base file, next suffix)` pairs, sorted by
    /// file name for deterministic output. Together with
    /// [`SourceFactory::from_entries`] this is what session persistence
    /// stores, so a fresh process can resume point generation from the
    /// exact state a cached expansion was produced under.
    pub fn entries(&self) -> Vec<(Symbol, u32)> {
        let mut out: Vec<(Symbol, u32)> = self
            .next_suffix
            .iter()
            .map(|(f, n)| (*f, *n))
            .collect();
        out.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
        out
    }

    /// Reconstructs a factory from [`SourceFactory::entries`] output.
    pub fn from_entries(entries: impl IntoIterator<Item = (Symbol, u32)>) -> SourceFactory {
        SourceFactory {
            next_suffix: entries.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_across_factories() {
        let base = SourceObject::new("a.scm", 3, 9);
        let mut f1 = SourceFactory::new();
        let mut f2 = SourceFactory::new();
        for _ in 0..5 {
            assert_eq!(
                f1.make_profile_point(Some(base)),
                f2.make_profile_point(Some(base))
            );
        }
    }

    #[test]
    fn generated_points_are_distinct() {
        let base = SourceObject::new("a.scm", 3, 9);
        let mut f = SourceFactory::new();
        let p1 = f.make_profile_point(Some(base));
        let p2 = f.make_profile_point(Some(base));
        assert_ne!(p1, p2);
        assert!(p1.is_generated());
        assert!(p2.is_generated());
    }

    #[test]
    fn generated_points_preserve_positions() {
        let base = SourceObject::new("a.scm", 3, 9);
        let mut f = SourceFactory::new();
        let p = f.make_profile_point(Some(base));
        assert_eq!((p.bfp, p.efp), (3, 9));
        assert!(p.file.as_str().starts_with("a.scm%pgmp"));
    }

    #[test]
    fn reset_replays_the_sequence() {
        let base = SourceObject::new("a.scm", 0, 1);
        let mut f = SourceFactory::new();
        let first = f.make_profile_point(Some(base));
        f.make_profile_point(Some(base));
        f.reset();
        assert_eq!(f.make_profile_point(Some(base)), first);
    }

    #[test]
    fn no_base_uses_synthetic_file() {
        let mut f = SourceFactory::new();
        let p = f.make_profile_point(None);
        assert!(p.file.as_str().starts_with("<generated>"));
        assert!(p.is_generated());
    }

    #[test]
    fn reader_points_are_not_generated() {
        assert!(!SourceObject::new("a.scm", 0, 1).is_generated());
    }

    #[test]
    fn entries_round_trip_allocation_state() {
        let mut f = SourceFactory::new();
        f.make_profile_point(Some(SourceObject::new("b.scm", 0, 1)));
        f.make_profile_point(Some(SourceObject::new("a.scm", 0, 1)));
        f.make_profile_point(Some(SourceObject::new("a.scm", 2, 3)));
        let entries = f.entries();
        // Sorted by file, counts preserved.
        assert_eq!(
            entries
                .iter()
                .map(|(s, n)| (s.as_str().to_owned(), *n))
                .collect::<Vec<_>>(),
            vec![("a.scm".to_owned(), 2), ("b.scm".to_owned(), 1)]
        );
        let back = SourceFactory::from_entries(entries);
        assert_eq!(back, f, "equal factories generate equal sequences");
    }
}
