//! A lock-striped, atomic counter registry.
//!
//! This is the concurrency substrate for *online* profile collection: many
//! threads bump counters while an aggregator periodically snapshots or
//! drains them. The registry is generic over the key type so the same
//! structure serves both implementations of the design — the proc-macro
//! runtime keys counters by point name (`String`, this crate's global
//! registry) and `pgmp-adaptive` keys them by interned source object.
//!
//! Design:
//!
//! - Keys are spread over `shards` (a power of two) by an FNV-1a hash, so
//!   unrelated profile points contend on different locks.
//! - Each shard is an `RwLock<HashMap<K, AtomicU64>>`. The hot path — a hit
//!   on an already-known point — takes the shard's **read** lock, so any
//!   number of threads can count concurrently on the same shard; the write
//!   lock is only taken the first time a point is seen.
//! - Counter updates are *saturating*: a counter that reaches `u64::MAX`
//!   stays there rather than wrapping to zero, which matters for adaptive
//!   loops left running indefinitely (see `Counters` in `pgmp-profiler` for
//!   the same policy on the single-threaded side).
//!
//! Snapshots (`snapshot`) observe each shard atomically but not the whole
//! registry; `drain` moves every counter out, guaranteeing each hit lands
//! in exactly one drain — the property epoch-based aggregation needs.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// FNV-1a, as a [`Hasher`]: tiny, allocation-free, and much cheaper than
/// SipHash for the short keys profile points have. Not DoS-resistant, which
/// is fine: keys are program source locations, not attacker input.
#[derive(Clone, Copy, Debug)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> FnvHasher {
        FnvHasher(0xcbf29ce484222325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for b in bytes {
            h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
        }
        self.0 = h;
    }
}

type FnvBuild = BuildHasherDefault<FnvHasher>;

struct Shard<K> {
    map: RwLock<HashMap<K, AtomicU64, FnvBuild>>,
}

impl<K> Default for Shard<K> {
    fn default() -> Shard<K> {
        Shard {
            map: RwLock::new(HashMap::default()),
        }
    }
}

/// A sharded, thread-safe `key -> u64` counter map. See the module docs.
pub struct ShardedRegistry<K> {
    shards: Box<[Shard<K>]>,
    mask: u64,
}

impl<K: Eq + Hash> Default for ShardedRegistry<K> {
    fn default() -> ShardedRegistry<K> {
        ShardedRegistry::new()
    }
}

pub(crate) fn saturating_fetch_add(counter: &AtomicU64, n: u64) {
    // Plain fetch_add would wrap at u64::MAX; a compare-exchange loop lets
    // us saturate instead. Uncontended it costs the same one RMW.
    let mut cur = counter.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(n);
        match counter.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl<K: Eq + Hash> ShardedRegistry<K> {
    /// A registry sized for this machine: at least four shards per
    /// available core (rounded up to a power of two), so threads rarely
    /// collide on a stripe even under a skewed key distribution.
    pub fn new() -> ShardedRegistry<K> {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(8);
        ShardedRegistry::with_shards((cores * 4).next_power_of_two())
    }

    /// A registry with exactly `shards` stripes (rounded up to a power of
    /// two, minimum 1).
    pub fn with_shards(shards: usize) -> ShardedRegistry<K> {
        let n = shards.max(1).next_power_of_two();
        ShardedRegistry {
            shards: (0..n).map(|_| Shard::default()).collect(),
            mask: (n - 1) as u64,
        }
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for<Q: Hash + ?Sized>(&self, key: &Q) -> &Shard<K> {
        let mut h = FnvHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() & self.mask) as usize]
    }

    /// Adds `n` to `key`'s counter, saturating at `u64::MAX`.
    ///
    /// Borrowed-key form: a `ShardedRegistry<String>` accepts `&str`
    /// without allocating unless the key is new.
    pub fn add<Q>(&self, key: &Q, n: u64)
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ToOwned<Owned = K> + ?Sized,
    {
        let shard = self.shard_for(key);
        {
            let map = shard.map.read().expect("sharded registry poisoned");
            if let Some(counter) = map.get(key) {
                saturating_fetch_add(counter, n);
                return;
            }
        }
        let mut map = shard.map.write().expect("sharded registry poisoned");
        let counter = map.entry(key.to_owned()).or_insert_with(|| AtomicU64::new(0));
        saturating_fetch_add(counter, n);
    }

    /// Adds one to `key`'s counter.
    pub fn increment<Q>(&self, key: &Q)
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ToOwned<Owned = K> + ?Sized,
    {
        self.add(key, 1);
    }

    /// Current count for `key` (0 if never counted).
    pub fn count<Q>(&self, key: &Q) -> u64
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let map = self
            .shard_for(key)
            .map
            .read()
            .expect("sharded registry poisoned");
        map.get(key).map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.read().expect("sharded registry poisoned").len())
            .sum()
    }

    /// True iff no key has been counted.
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.map.read().expect("sharded registry poisoned").is_empty())
    }

    /// Removes every counter.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard
                .map
                .write()
                .expect("sharded registry poisoned")
                .clear();
        }
    }

    /// Copies out every `(key, count)` pair. Each shard is observed
    /// atomically; concurrent increments may land before or after their
    /// shard is visited.
    pub fn snapshot(&self) -> Vec<(K, u64)>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let map = shard.map.read().expect("sharded registry poisoned");
            out.extend(
                map.iter()
                    .map(|(k, c)| (k.clone(), c.load(Ordering::Relaxed))),
            );
        }
        out
    }

    /// Moves every counter out, leaving the registry empty. Every hit lands
    /// in exactly one drain: an increment either completes before its shard
    /// is taken (and is returned here) or lands in the fresh map (and is
    /// returned by the next drain).
    pub fn drain(&self) -> Vec<(K, u64)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let taken =
                std::mem::take(&mut *shard.map.write().expect("sharded registry poisoned"));
            out.extend(
                taken
                    .into_iter()
                    .map(|(k, c)| (k, c.load(Ordering::Relaxed))),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn add_and_count() {
        let r: ShardedRegistry<String> = ShardedRegistry::with_shards(4);
        r.increment("a");
        r.add("a", 4);
        r.increment("b");
        assert_eq!(r.count("a"), 5);
        assert_eq!(r.count("b"), 1);
        assert_eq!(r.count("missing"), 0);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let r: ShardedRegistry<String> = ShardedRegistry::with_shards(1);
        r.add("hot", u64::MAX - 1);
        r.add("hot", 5);
        assert_eq!(r.count("hot"), u64::MAX);
        r.increment("hot");
        assert_eq!(r.count("hot"), u64::MAX);
    }

    #[test]
    fn drain_empties_and_returns_everything() {
        let r: ShardedRegistry<String> = ShardedRegistry::with_shards(8);
        r.add("x", 3);
        r.add("y", 7);
        let mut drained = r.drain();
        drained.sort();
        assert_eq!(drained, vec![("x".to_owned(), 3), ("y".to_owned(), 7)]);
        assert!(r.is_empty());
        assert!(r.drain().is_empty());
    }

    #[test]
    fn no_lost_updates_across_threads() {
        let r: Arc<ShardedRegistry<String>> = Arc::new(ShardedRegistry::with_shards(8));
        let threads = 8;
        let per_thread = 10_000;
        let keys: Vec<String> = (0..16).map(|i| format!("point#{i}")).collect();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let r = r.clone();
                let keys = keys.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        r.increment(keys[(t + i) % keys.len()].as_str());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = r.snapshot().into_iter().map(|(_, c)| c).sum();
        assert_eq!(total, (threads * per_thread) as u64);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let r: ShardedRegistry<String> = ShardedRegistry::with_shards(5);
        assert_eq!(r.shard_count(), 8);
        assert!(ShardedRegistry::<String>::new().shard_count().is_power_of_two());
    }
}
