//! Dense atomic counter storage: the concurrent dual of the profiler's
//! slot-indexed `Vec<Cell<u64>>`.
//!
//! An [`AtomicSlotArray`] maps a dense `u32` slot to an `AtomicU64`
//! counter. The hot path — [`AtomicSlotArray::add`] on an existing slot —
//! is a relaxed saturating fetch-add with **no lock and no hashing**;
//! compare the lock-striped [`crate::ShardedRegistry`], whose every bump
//! hashes the key and takes a shard's read lock.
//!
//! Storage grows lock-free: slots live in power-of-two segments (1024,
//! 2048, 4096, …) that are allocated on first touch through a
//! `OnceLock`, so a slot's address never moves once allocated — writers
//! racing on a fresh segment coordinate only on the one-time
//! initialization. [`AtomicSlotArray::take`] swaps a counter to zero,
//! giving epoch aggregation its "every hit lands in exactly one drain"
//! guarantee per slot.
//!
//! For write-heavy workloads where even an uncontended atomic per hit is
//! too much, a [`CoalescingWriter`] buffers counts thread-locally and
//! flushes them in batches (at the latest at an epoch boundary), trading
//! shared-memory traffic for a bounded window of counts invisible to
//! concurrent snapshots.

use crate::sharded::saturating_fetch_add;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// log2 of the first segment's length.
const FIRST_SEGMENT_BITS: u32 = 10;
/// Segment k holds 2^(10+k) slots (1024, 2048, 4096, …); 23 segments
/// cover every possible `u32` slot.
const NUM_SEGMENTS: usize = 23;

/// Locates `slot`: (segment index, offset within it, segment length).
#[inline]
fn locate(slot: u32) -> (usize, usize, usize) {
    let idx = slot as u64 + (1 << FIRST_SEGMENT_BITS);
    let log = 63 - idx.leading_zeros();
    let seg_len = 1u64 << log;
    (
        (log - FIRST_SEGMENT_BITS) as usize,
        (idx - seg_len) as usize,
        seg_len as usize,
    )
}

/// A growable `slot -> AtomicU64` array with lock-free bumps. See the
/// module docs.
#[derive(Debug, Default)]
pub struct AtomicSlotArray {
    segments: [OnceLock<Box<[AtomicU64]>>; NUM_SEGMENTS],
}

impl AtomicSlotArray {
    /// Creates an array with no segments allocated.
    pub fn new() -> AtomicSlotArray {
        AtomicSlotArray::default()
    }

    #[inline]
    fn counter(&self, slot: u32) -> &AtomicU64 {
        let (seg, off, len) = locate(slot);
        let segment = self.segments[seg]
            .get_or_init(|| (0..len).map(|_| AtomicU64::new(0)).collect());
        &segment[off]
    }

    /// Adds `n` to `slot`'s counter with relaxed ordering, saturating at
    /// `u64::MAX`.
    #[inline]
    pub fn add(&self, slot: u32, n: u64) {
        saturating_fetch_add(self.counter(slot), n);
    }

    /// Current count of `slot` (0 if never touched).
    pub fn get(&self, slot: u32) -> u64 {
        let (seg, off, _) = locate(slot);
        match self.segments[seg].get() {
            Some(segment) => segment[off].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Atomically moves `slot`'s count out, leaving zero. Each concurrent
    /// hit lands either in this take or a later one, never both — the
    /// per-slot drain guarantee epoch aggregation builds on.
    pub fn take(&self, slot: u32) -> u64 {
        let (seg, off, _) = locate(slot);
        match self.segments[seg].get() {
            Some(segment) => segment[off].swap(0, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Zeroes every allocated counter (segments stay allocated, so slot
    /// addresses — and anything caching them — remain valid).
    pub fn clear(&self) {
        for seg in &self.segments {
            if let Some(segment) = seg.get() {
                for c in segment.iter() {
                    c.store(0, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Cumulative statistics of the [`CoalescingWriter`]s attached to one
/// [`AtomicSlotArray`] owner.
#[derive(Debug, Default)]
pub struct FlushStats {
    flushes: AtomicU64,
    flushed_slots: AtomicU64,
    buffered_hits: AtomicU64,
}

/// A point-in-time copy of [`FlushStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushStatsSnapshot {
    /// Number of buffer flushes.
    pub flushes: u64,
    /// Distinct `(flush, slot)` writes pushed to the shared array.
    pub flushed_slots: u64,
    /// Hits absorbed into local buffers (each flushed slot may carry many).
    pub buffered_hits: u64,
}

impl FlushStats {
    /// Reads the counters.
    pub fn snapshot(&self) -> FlushStatsSnapshot {
        FlushStatsSnapshot {
            flushes: self.flushes.load(Ordering::Relaxed),
            flushed_slots: self.flushed_slots.load(Ordering::Relaxed),
            buffered_hits: self.buffered_hits.load(Ordering::Relaxed),
        }
    }
}

/// A thread-local write-coalescing buffer over an [`AtomicSlotArray`].
///
/// `add` accumulates into a private dense buffer; `flush` pushes the
/// buffered counts to the shared array in one pass (one atomic RMW per
/// *distinct* slot, however many hits it absorbed). The buffer flushes
/// itself when it holds `capacity` distinct slots, and on drop — so no
/// hit is ever lost, merely delayed until the owner's next flush point
/// (the epoch boundary, in the adaptive engine).
#[derive(Debug)]
pub struct CoalescingWriter {
    array: Arc<AtomicSlotArray>,
    stats: Arc<FlushStats>,
    /// Pending count per slot (dense, grown on demand).
    pending: Vec<u64>,
    /// Slots with a nonzero pending count.
    touched: Vec<u32>,
    capacity: usize,
}

impl CoalescingWriter {
    /// Creates a writer over `array` flushing automatically at `capacity`
    /// distinct buffered slots (minimum 1).
    pub fn new(
        array: Arc<AtomicSlotArray>,
        stats: Arc<FlushStats>,
        capacity: usize,
    ) -> CoalescingWriter {
        CoalescingWriter {
            array,
            stats,
            pending: Vec::new(),
            touched: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Buffers `n` hits on `slot`, flushing if the buffer is full.
    #[inline]
    pub fn add(&mut self, slot: u32, n: u64) {
        let i = slot as usize;
        if i >= self.pending.len() {
            self.pending.resize(i + 1, 0);
        }
        if self.pending[i] == 0 {
            self.touched.push(slot);
        }
        self.pending[i] = self.pending[i].saturating_add(n);
        self.stats.buffered_hits.fetch_add(n, Ordering::Relaxed);
        if self.touched.len() >= self.capacity {
            self.flush();
        }
    }

    /// Buffers one hit on `slot`.
    #[inline]
    pub fn increment(&mut self, slot: u32) {
        self.add(slot, 1);
    }

    /// Pushes every buffered count to the shared array and empties the
    /// buffer. No-op when nothing is pending.
    pub fn flush(&mut self) {
        if self.touched.is_empty() {
            return;
        }
        for &slot in &self.touched {
            self.array.add(slot, self.pending[slot as usize]);
            self.pending[slot as usize] = 0;
        }
        self.stats
            .flushed_slots
            .fetch_add(self.touched.len() as u64, Ordering::Relaxed);
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        self.touched.clear();
    }

    /// Distinct slots currently buffered.
    pub fn pending_slots(&self) -> usize {
        self.touched.len()
    }
}

impl Drop for CoalescingWriter {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_covers_segment_boundaries() {
        assert_eq!(locate(0), (0, 0, 1024));
        assert_eq!(locate(1023), (0, 1023, 1024));
        assert_eq!(locate(1024), (1, 0, 2048));
        assert_eq!(locate(3071), (1, 2047, 2048));
        assert_eq!(locate(3072), (2, 0, 4096));
        assert_eq!(locate(u32::MAX), (22, 1023, 1 << 32));
    }

    #[test]
    fn add_get_take() {
        let a = AtomicSlotArray::new();
        a.add(0, 2);
        a.add(5000, 7);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(5000), 7);
        assert_eq!(a.get(3), 0);
        assert_eq!(a.take(5000), 7);
        assert_eq!(a.get(5000), 0);
        assert_eq!(a.take(5000), 0);
    }

    #[test]
    fn saturates_at_max() {
        let a = AtomicSlotArray::new();
        a.add(1, u64::MAX - 1);
        a.add(1, 5);
        assert_eq!(a.get(1), u64::MAX);
    }

    #[test]
    fn clear_keeps_segments_usable() {
        let a = AtomicSlotArray::new();
        a.add(9, 3);
        a.clear();
        assert_eq!(a.get(9), 0);
        a.add(9, 1);
        assert_eq!(a.get(9), 1);
    }

    #[test]
    fn concurrent_adds_are_not_lost() {
        let a = Arc::new(AtomicSlotArray::new());
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let a = a.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        a.add(((t + i) % 16) as u32, 1);
                    }
                });
            }
        });
        let total: u64 = (0..16).map(|s| a.get(s)).sum();
        assert_eq!(total, threads * per_thread);
    }

    #[test]
    fn coalescing_writer_flushes_at_capacity_and_on_drop() {
        let a = Arc::new(AtomicSlotArray::new());
        let stats = Arc::new(FlushStats::default());
        {
            let mut w = CoalescingWriter::new(a.clone(), stats.clone(), 2);
            w.increment(0);
            w.increment(0);
            assert_eq!(a.get(0), 0, "buffered, not yet visible");
            w.increment(1); // second distinct slot -> auto flush
            assert_eq!(a.get(0), 2);
            assert_eq!(a.get(1), 1);
            w.increment(4);
            // drops here -> final flush
        }
        assert_eq!(a.get(4), 1);
        let s = stats.snapshot();
        assert_eq!(s.flushes, 2);
        assert_eq!(s.flushed_slots, 3);
        assert_eq!(s.buffered_hits, 4);
    }
}
