//! The paper's case studies, packaged as loadable libraries.
//!
//! Each case study is a meta-program written in the object language
//! (under `scheme/`), exercised through the [`pgmp::Engine`]:
//!
//! - [`Lib::IfR`] — §2's running example (profile-guided `if`);
//! - [`Lib::ExclusiveCond`] + [`Lib::Case`] — §6.1 profile-guided
//!   conditional branch reordering (Figures 5–8);
//! - [`Lib::ObjectSystem`] — §6.2 receiver class prediction /
//!   polymorphic inline caching (Figures 9–12);
//! - [`Lib::ProfiledList`], [`Lib::ProfiledVector`], [`Lib::Sequence`] —
//!   §6.3 data-structure recommendations and self-specialization
//!   (Figures 13–14).
//!
//! [`two_pass`] packages the paper's basic workflow: run instrumented on a
//! training input, then recompile with the collected weights so the
//! meta-programs optimize.
//!
//! # Example
//!
//! ```
//! use pgmp_case_studies::{two_pass, Lib};
//!
//! let program = r#"
//!   (define (classify n) (if-r (= n 0) 'zero 'nonzero))
//!   (let loop ([i 0] [zeros 0])
//!     (if (= i 100)
//!         zeros
//!         (loop (add1 i) (if (eqv? (classify i) 'zero) (add1 zeros) zeros))))
//! "#;
//! let result = two_pass(&[Lib::IfR], program, "demo.scm")?;
//! // 'nonzero dominates, so if-r negated the test and swapped branches:
//! assert!(result.expansion_text.contains("(if (not (= n 0)) (quote nonzero) (quote zero))"));
//! assert_eq!(result.training_result, result.optimized_result);
//! # Ok::<(), pgmp::Error>(())
//! ```

use pgmp::{Engine, Error};
use pgmp_profiler::{ProfileInformation, ProfileMode};

/// §2 running example: `if-r`.
pub const IF_R: &str = include_str!("../scheme/if-r.scm");
/// §6.1 Figure 7: `exclusive-cond`.
pub const EXCLUSIVE_COND: &str = include_str!("../scheme/exclusive-cond.scm");
/// §6.1 Figure 6: profile-guided `case` (requires [`EXCLUSIVE_COND`]).
pub const CASE: &str = include_str!("../scheme/case.scm");
/// §6.2 Figures 9–12: object system with receiver class prediction.
pub const OBJECT_SYSTEM: &str = include_str!("../scheme/oo.scm");
/// §6.3 Figure 13: profiled list library.
pub const PROFILED_LIST: &str = include_str!("../scheme/profiled-list.scm");
/// §6.3: profiled vector library.
pub const PROFILED_VECTOR: &str = include_str!("../scheme/profiled-vector.scm");
/// §6.3 Figure 14: self-specializing sequence library.
pub const SEQUENCE: &str = include_str!("../scheme/sequence.scm");
/// Extension: profile-guided function inlining (the PGO the paper's
/// introduction motivates with Arnold et al.'s numbers).
pub const INLINE: &str = include_str!("../scheme/inline.scm");

/// The loadable case-study libraries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lib {
    /// §2 `if-r`.
    IfR,
    /// §6.1 `exclusive-cond`.
    ExclusiveCond,
    /// §6.1 profile-guided `case` (loads `exclusive-cond` implicitly).
    Case,
    /// §6.2 object system.
    ObjectSystem,
    /// §6.3 profiled list.
    ProfiledList,
    /// §6.3 profiled vector.
    ProfiledVector,
    /// §6.3 sequence.
    Sequence,
    /// Extension: profile-guided inlining.
    Inline,
}

impl Lib {
    /// Source text of this library (with implicit dependencies resolved by
    /// [`install`]).
    pub fn source(self) -> &'static str {
        match self {
            Lib::IfR => IF_R,
            Lib::ExclusiveCond => EXCLUSIVE_COND,
            Lib::Case => CASE,
            Lib::ObjectSystem => OBJECT_SYSTEM,
            Lib::ProfiledList => PROFILED_LIST,
            Lib::ProfiledVector => PROFILED_VECTOR,
            Lib::Sequence => SEQUENCE,
            Lib::Inline => INLINE,
        }
    }

    /// Filename used for source objects.
    pub fn file(self) -> &'static str {
        match self {
            Lib::IfR => "if-r.scm",
            Lib::ExclusiveCond => "exclusive-cond.scm",
            Lib::Case => "case.scm",
            Lib::ObjectSystem => "oo.scm",
            Lib::ProfiledList => "profiled-list.scm",
            Lib::ProfiledVector => "profiled-vector.scm",
            Lib::Sequence => "sequence.scm",
            Lib::Inline => "inline.scm",
        }
    }

    /// Libraries this one needs loaded first.
    pub fn deps(self) -> &'static [Lib] {
        match self {
            Lib::Case => &[Lib::ExclusiveCond],
            _ => &[],
        }
    }
}

/// Loads `lib` (and its dependencies) into `engine`.
///
/// # Errors
///
/// Propagates engine errors from loading the library sources.
pub fn install(engine: &mut Engine, lib: Lib) -> Result<(), Error> {
    for dep in lib.deps() {
        install(engine, *dep)?;
    }
    engine.load_library(lib.source(), lib.file())
}

/// Creates an engine with the given case-study libraries loaded.
///
/// # Errors
///
/// Propagates engine errors from loading the library sources.
pub fn engine_with(libs: &[Lib]) -> Result<Engine, Error> {
    let mut engine = Engine::new();
    for lib in libs {
        install(&mut engine, *lib)?;
    }
    Ok(engine)
}

/// Result of a [`two_pass`] profile-then-optimize cycle.
#[derive(Debug)]
pub struct TwoPass {
    /// `write`-printed result of the instrumented training run.
    pub training_result: String,
    /// Source-level weights collected during training.
    pub weights: ProfileInformation,
    /// The fully expanded optimized program, printed (one line per
    /// toplevel form) — compare against the paper's figures.
    pub expansion_text: String,
    /// `write`-printed result of the optimized run (must equal the
    /// training result: PGO never changes observable behaviour).
    pub optimized_result: String,
    /// Compile-time warnings produced during the *optimizing* compile
    /// (e.g. the Figure 13 representation recommendation).
    pub warnings: Vec<String>,
    /// Output printed by the optimized run.
    pub output: String,
}

/// Runs the paper's basic workflow on `program`:
///
/// 1. load `libs`, run the program instrumented (every-expression
///    counters), and compute profile weights;
/// 2. in a fresh engine with the same libraries and those weights loaded,
///    expand the program (for inspection) and run the optimized code.
///
/// # Errors
///
/// Propagates the first engine error from either pass.
pub fn two_pass(libs: &[Lib], program: &str, file: &str) -> Result<TwoPass, Error> {
    // Pass 1: profile.
    let mut e1 = engine_with(libs)?;
    e1.set_instrumentation(ProfileMode::EveryExpression);
    let training_result = e1.run_str(program, file)?.write_string();
    let weights = e1.current_weights();

    // Pass 2: optimize.
    let mut e2 = engine_with(libs)?;
    e2.set_profile(weights.clone());
    let expansion = e2.expand_str(program, file)?;
    let expansion_text = expansion
        .iter()
        .map(|s| s.to_datum().to_string())
        .collect::<Vec<_>>()
        .join("\n");
    let warnings = e2.take_warnings();
    // Replay the generated-profile-point sequence so the evaluated compile
    // sees the same points the expansion (and pass 1) saw.
    e2.reset_profile_points();
    let optimized_result = e2.run_str(program, file)?.write_string();
    let output = e2.take_output();

    Ok(TwoPass {
        training_result,
        weights,
        expansion_text,
        optimized_result,
        warnings,
        output,
    })
}

/// Line counts of each case-study implementation, counting non-blank,
/// non-comment lines — the accounting used for the paper's §6 line-count
/// claims (experiment E9).
pub fn loc_counts() -> Vec<(&'static str, usize)> {
    fn loc(src: &str) -> usize {
        src.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with(';'))
            .count()
    }
    vec![
        ("if-r (§2)", loc(IF_R)),
        ("exclusive-cond (§6.1)", loc(EXCLUSIVE_COND)),
        ("case (§6.1)", loc(CASE)),
        ("object system incl. receiver prediction (§6.2)", loc(OBJECT_SYSTEM)),
        ("profiled list (§6.3)", loc(PROFILED_LIST)),
        ("profiled vector (§6.3)", loc(PROFILED_VECTOR)),
        ("sequence (§6.3)", loc(SEQUENCE)),
        ("profile-guided inlining (extension)", loc(INLINE)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_libraries_load_cleanly() {
        let mut engine = engine_with(&[
            Lib::IfR,
            Lib::Case,
            Lib::ObjectSystem,
            Lib::ProfiledList,
            Lib::ProfiledVector,
            Lib::Sequence,
        ])
        .unwrap();
        let v = engine.run_str("(+ 1 2)", "smoke.scm").unwrap();
        assert_eq!(v.to_string(), "3");
    }

    #[test]
    fn deps_resolve_transitively() {
        // Case requires exclusive-cond; installing Case alone must work.
        let mut engine = engine_with(&[Lib::Case]).unwrap();
        let v = engine
            .run_str("(case 2 [(1) 'one] [(2) 'two] [else 'other])", "t.scm")
            .unwrap();
        assert_eq!(v.to_string(), "two");
    }

    #[test]
    fn loc_counts_are_reported_for_every_study() {
        let counts = loc_counts();
        assert_eq!(counts.len(), 8);
        for (name, n) in counts {
            assert!(n > 5, "{name} suspiciously small: {n}");
        }
    }
}
