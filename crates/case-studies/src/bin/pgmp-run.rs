//! `pgmp-run` — command-line driver for the profile-guided
//! meta-programming engine.
//!
//! ```text
//! pgmp-run [OPTIONS] <file.scm>
//!
//! OPTIONS:
//!   --instrument <every|calls>   run with source-level profiling
//!   --load <profile.pgmp>        load profile weights before compiling
//!   --merge <profile.pgmp>       merge additional weights (repeatable)
//!   --store <profile.pgmp>       store this run's weights afterwards
//!   --expand                     print the expansion instead of running
//!   --libs <names>               comma-separated case-study libraries:
//!                                if-r,case,oo,list,vector,sequence,all
//!   --wrap-lambda                use the Racket annotate-expr strategy
//!   --counter-impl <dense|hash|sampling>
//!                                counter representation for instrumented
//!                                runs: dense slot-indexed (default), the
//!                                legacy hash-keyed baseline, or statistical
//!                                sampling — each profile point costs one
//!                                relaxed beacon store and a sampler thread
//!                                estimates the weights (always-on
//!                                profiling; weights are estimates)
//!   --sample-hz <hz>             sampling: beacon reads per second
//!                                (default 997)
//!
//!   --store-format <1|2>         profile format version for --store
//!                                (2 carries the dense slot table; default 1)
//!
//!   --incremental                compile through the per-form recompilation
//!                                cache; each --merge recompiles incrementally
//!                                and reports how many forms were reused
//!   --save-state <file>          incremental: persist the per-form cache
//!                                after the last compile, so a later process
//!                                can warm-start with --load-state
//!   --load-state <file>          incremental: restore a saved session before
//!                                compiling; an unchanged program then
//!                                recompiles with zero re-expansions
//!                                (with --adaptive, --save-state/--load-state
//!                                persist the epoch snapshot — rolling profile
//!                                and drift baseline — instead)
//!
//!   --adaptive                   online mode: epochs of concurrent profile
//!                                collection, drift detection, re-optimization
//!   --epochs <n>                 adaptive: number of epochs to run (default 4)
//!   --threads <n>                adaptive: worker threads per epoch (default 2)
//!   --epoch-ms <ms>              adaptive: background epoch length (default 250)
//!   --drift-threshold <t>        adaptive: re-optimize when drift > t (default 0.15)
//!   --decay <d>                  adaptive: per-epoch profile decay in [0,1] (default 0.5)
//!   --hysteresis <n>             adaptive: consecutive drifting epochs before
//!                                re-optimizing (default 1)
//!   --cooldown <n>               adaptive: epochs to skip detection after a
//!                                re-optimization (default 0)
//!   --no-incremental             adaptive: recompile from scratch on drift
//!                                instead of using the per-form cache
//!   --coalesce <n>               adaptive: buffer worker counter merges in
//!                                thread-local coalescing writers of n
//!                                distinct points, flushed at the latest at
//!                                the epoch boundary; prints per-epoch
//!                                flush statistics (0 = off, the default)
//!
//!   --dispatch <flat|match>      VM execution engine for --incremental /
//!                                --adaptive runs: flat code streams (the
//!                                default) or the block-walking reference
//!   --fuse                       profile-guide superinstruction fusion: a
//!                                profiled pass mines the hottest adjacent
//!                                op pairs, then the program reruns fused
//!                                (adaptive: the plan is re-mined at every
//!                                drift-driven re-layout)
//!   --vm-metrics                 print VM execution metrics (dispatches,
//!                                fused share, fall-through ratio); with
//!                                --adaptive, per epoch from a serving VM
//!
//!   --publish <socket>           stream this run's counter deltas to a
//!                                `pgmp-profiled` fleet daemon over the
//!                                given Unix socket (instrumented runs,
//!                                slotted — dense or sampling — counters
//!                                only): the slot table is
//!                                exchanged at handshake and the deltas
//!                                are binary (slot, count) pairs through
//!                                a bounded never-blocking flusher
//!   --subscribe <socket>         adaptive: receive the fleet daemon's
//!                                merged profile each merge epoch and
//!                                re-optimize when fleet drift exceeds
//!                                --drift-threshold
//!
//!   --trace <out.jsonl>          record a structured trace of the whole
//!                                run (expansion spans, profile queries,
//!                                cache hits/misses, epochs, optimization
//!                                decisions) and write it as JSONL; inspect
//!                                with `pgmp-trace`
//!   --metrics                    print the metrics-registry snapshot as
//!                                JSON on stderr after the run
//!   --metrics-out <file>         write the same snapshot to a file
//!   --metrics-listen <addr>      serve the live registry over HTTP while
//!                                the run executes (`/metrics` Prometheus
//!                                text, `/metrics.json` snapshot);
//!                                `127.0.0.1:0` picks a free port, printed
//!                                to stderr as `metrics: listening on`
//! ```
//!
//! The paper's basic cycle:
//!
//! ```sh
//! pgmp-run --libs all --instrument every --store p.pgmp prog.scm   # train
//! pgmp-run --libs all --load p.pgmp prog.scm                       # optimize
//! ```
//!
//! The adaptive cycle collapses both steps into one continuously running
//! process:
//!
//! ```sh
//! pgmp-run --libs all --adaptive --epochs 6 --threads 4 prog.scm
//! ```

use pgmp_adaptive::{AdaptiveConfig, AdaptiveEngine};
use pgmp::{AnnotateStrategy, Engine, IncrementalConfig, IncrementalEngine};
use pgmp_bytecode::{optimize_layout, BlockCounters, Chunk, DispatchMode, FusionPlan, Vm, VmMetrics};
use pgmp_case_studies::{install, Lib};
use pgmp_observe as observe;
use pgmp_profiler::{CounterImpl, ProfileInformation, ProfileMode};
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    file: Option<String>,
    instrument: Option<ProfileMode>,
    load: Option<String>,
    merge: Vec<String>,
    store: Option<String>,
    expand: bool,
    libs: Vec<Lib>,
    strategy: AnnotateStrategy,
    counter_impl: CounterImpl,
    sample_hz: u32,
    store_format: u32,
    incremental: bool,
    save_state: Option<String>,
    load_state: Option<String>,
    adaptive: bool,
    epochs: u64,
    threads: usize,
    epoch_ms: u64,
    drift_threshold: f64,
    decay: f64,
    hysteresis: u32,
    cooldown: u64,
    adaptive_incremental: bool,
    coalesce: usize,
    dispatch: Option<DispatchMode>,
    fuse: bool,
    vm_metrics: bool,
    publish: Option<String>,
    subscribe: Option<String>,
    trace: Option<String>,
    metrics: bool,
    metrics_out: Option<String>,
    metrics_listen: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: pgmp-run [--instrument every|calls] [--load P] [--merge P]...\n\
         \u{20}               [--store P] [--expand] [--libs names] [--wrap-lambda]\n\
         \u{20}               [--counter-impl dense|hash|sampling] [--sample-hz HZ]\n\
         \u{20}               [--store-format 1|2]\n\
         \u{20}               [--incremental [--save-state F] [--load-state F]]\n\
         \u{20}               [--adaptive [--epochs N] [--threads N] [--epoch-ms MS]\n\
         \u{20}               [--drift-threshold T] [--decay D] [--hysteresis N]\n\
         \u{20}               [--cooldown N] [--no-incremental] [--coalesce N]]\n\
         \u{20}               [--dispatch flat|match] [--fuse] [--vm-metrics]\n\
         \u{20}               [--publish SOCKET] [--subscribe SOCKET]\n\
         \u{20}               [--trace OUT.jsonl] [--metrics] [--metrics-out F]\n\
         \u{20}               [--metrics-listen ADDR] file.scm"
    );
    std::process::exit(2)
}

fn parse_libs(spec: &str) -> Vec<Lib> {
    let mut libs = Vec::new();
    for name in spec.split(',') {
        match name.trim() {
            "if-r" => libs.push(Lib::IfR),
            "exclusive-cond" => libs.push(Lib::ExclusiveCond),
            "case" => libs.push(Lib::Case),
            "oo" => libs.push(Lib::ObjectSystem),
            "list" => libs.push(Lib::ProfiledList),
            "vector" => libs.push(Lib::ProfiledVector),
            "sequence" => libs.push(Lib::Sequence),
            "all" => libs.extend([
                Lib::IfR,
                Lib::Case,
                Lib::ObjectSystem,
                Lib::ProfiledList,
                Lib::ProfiledVector,
                Lib::Sequence,
            ]),
            other => {
                eprintln!("pgmp-run: unknown library `{other}`");
                usage();
            }
        }
    }
    libs
}

fn parse_args() -> Options {
    let mut opts = Options {
        file: None,
        instrument: None,
        load: None,
        merge: Vec::new(),
        store: None,
        expand: false,
        libs: Vec::new(),
        strategy: AnnotateStrategy::Direct,
        counter_impl: CounterImpl::Dense,
        sample_hz: pgmp_profiler::DEFAULT_SAMPLE_HZ,
        store_format: 1,
        incremental: false,
        save_state: None,
        load_state: None,
        adaptive: false,
        epochs: 4,
        threads: 2,
        epoch_ms: 250,
        drift_threshold: 0.15,
        decay: 0.5,
        hysteresis: 1,
        cooldown: 0,
        adaptive_incremental: true,
        coalesce: 0,
        dispatch: None,
        fuse: false,
        vm_metrics: false,
        publish: None,
        subscribe: None,
        trace: None,
        metrics: false,
        metrics_out: None,
        metrics_listen: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--instrument" => match args.next().as_deref() {
                Some("every") => opts.instrument = Some(ProfileMode::EveryExpression),
                Some("calls") => opts.instrument = Some(ProfileMode::CallsOnly),
                _ => usage(),
            },
            "--load" => opts.load = Some(args.next().unwrap_or_else(|| usage())),
            "--merge" => opts.merge.push(args.next().unwrap_or_else(|| usage())),
            "--store" => opts.store = Some(args.next().unwrap_or_else(|| usage())),
            "--expand" => opts.expand = true,
            "--libs" => opts.libs = parse_libs(&args.next().unwrap_or_else(|| usage())),
            "--wrap-lambda" => opts.strategy = AnnotateStrategy::WrapLambda,
            "--counter-impl" => opts.counter_impl = parse_num(args.next()),
            "--sample-hz" => opts.sample_hz = parse_num(args.next()),
            "--store-format" => match args.next().as_deref() {
                Some("1") => opts.store_format = 1,
                Some("2") => opts.store_format = 2,
                _ => usage(),
            },
            "--incremental" => opts.incremental = true,
            "--save-state" => opts.save_state = Some(args.next().unwrap_or_else(|| usage())),
            "--load-state" => opts.load_state = Some(args.next().unwrap_or_else(|| usage())),
            "--adaptive" => opts.adaptive = true,
            "--epochs" => opts.epochs = parse_num(args.next()),
            "--threads" => opts.threads = parse_num(args.next()),
            "--epoch-ms" => opts.epoch_ms = parse_num(args.next()),
            "--drift-threshold" => opts.drift_threshold = parse_num(args.next()),
            "--decay" => opts.decay = parse_num(args.next()),
            "--hysteresis" => opts.hysteresis = parse_num(args.next()),
            "--cooldown" => opts.cooldown = parse_num(args.next()),
            "--no-incremental" => opts.adaptive_incremental = false,
            "--coalesce" => opts.coalesce = parse_num(args.next()),
            "--dispatch" => {
                opts.dispatch = Some(
                    args.next()
                        .as_deref()
                        .and_then(DispatchMode::parse)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--fuse" => opts.fuse = true,
            "--vm-metrics" => opts.vm_metrics = true,
            "--publish" => opts.publish = Some(args.next().unwrap_or_else(|| usage())),
            "--subscribe" => opts.subscribe = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => opts.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics" => opts.metrics = true,
            "--metrics-out" => opts.metrics_out = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics-listen" => {
                opts.metrics_listen = Some(args.next().unwrap_or_else(|| usage()))
            }
            "--help" | "-h" => usage(),
            file if !file.starts_with('-') && opts.file.is_none() => {
                opts.file = Some(file.to_owned());
            }
            _ => usage(),
        }
    }
    opts
}

fn parse_num<T: std::str::FromStr>(arg: Option<String>) -> T {
    arg.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}

/// Applies the selected counter representation (and, for sampling, the
/// sampler rate) to an engine.
fn configure_counters(engine: &mut Engine, counter_impl: CounterImpl, sample_hz: u32) {
    if counter_impl == CounterImpl::Sampling {
        engine.set_sampling(sample_hz);
    } else {
        engine.set_counter_impl(counter_impl);
    }
}

/// One-line rendering of [`VmMetrics`] shared by the `--vm-metrics`
/// consumers (incremental summary, adaptive per-epoch lines).
fn describe_vm_metrics(m: &VmMetrics) -> String {
    format!(
        "{} dispatches ({} fused, {:.1}%), fall-through {:.3}, {} calls",
        m.dispatches,
        m.fused_dispatches,
        m.fused_share() * 100.0,
        m.fallthrough_ratio(),
        m.calls
    )
}

/// Online mode: worker threads collect profiles concurrently, each epoch is
/// aggregated with decay, and drift past the threshold re-expands and
/// recompiles the program through a fresh engine before the next epoch.
fn run_adaptive(opts: &Options, source: &str, file: &str) -> Result<(), String> {
    if !(0.0..=1.0).contains(&opts.decay) {
        return Err(format!("--decay must be in [0, 1], got {}", opts.decay));
    }
    if opts.drift_threshold < 0.0 {
        return Err(format!(
            "--drift-threshold must be nonnegative, got {}",
            opts.drift_threshold
        ));
    }
    let config = AdaptiveConfig {
        epoch: Duration::from_millis(opts.epoch_ms),
        decay: opts.decay,
        drift_threshold: opts.drift_threshold,
        incremental: opts.adaptive_incremental,
        hysteresis_epochs: opts.hysteresis,
        cooldown_epochs: opts.cooldown,
        coalesce: opts.coalesce,
        ..AdaptiveConfig::default()
    };
    let libs = opts.libs.clone();
    let counter_impl = opts.counter_impl;
    let sample_hz = opts.sample_hz;
    let mut engine = AdaptiveEngine::with_setup(source, file, config, move |e| {
        configure_counters(e, counter_impl, sample_hz);
        for lib in &libs {
            install(e, *lib)?;
        }
        Ok(())
    })
    .map_err(|e| e.to_string())?;
    if let Some(path) = &opts.load_state {
        let snap = engine.restore_snapshot(path).map_err(|e| e.to_string())?;
        eprintln!(
            "adaptive: restored epoch snapshot from {path}: {} epoch(s), {} retained point(s)",
            snap.epochs,
            snap.counts.len()
        );
    }
    let vm_serving = opts.vm_metrics || opts.fuse || opts.dispatch.is_some();
    if vm_serving {
        if !opts.adaptive_incremental {
            return Err(
                "--dispatch/--fuse/--vm-metrics with --adaptive require the incremental \
                 path (drop --no-incremental)"
                    .into(),
            );
        }
        let dispatch = opts.dispatch.unwrap_or_default();
        engine
            .enable_vm_serving(dispatch, opts.fuse)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "adaptive: VM serving on ({} dispatch{})",
            dispatch.label(),
            if opts.fuse { ", profile-guided fusion" } else { "" }
        );
    }

    let mut subscriber = match &opts.subscribe {
        Some(socket) => {
            let s = pgmp_profiled::Subscriber::connect(socket)
                .map_err(|e| format!("{socket}: {e}"))?;
            eprintln!("fleet: subscribed to {socket}");
            Some(s)
        }
        None => None,
    };

    eprintln!(
        "adaptive: serving generation 0 ({} forms), {} worker(s) x {} epoch(s)",
        engine.current_program().expansion.len(),
        opts.threads.max(1),
        opts.epochs
    );
    // The epoch loop publishes every per-epoch statistic to the metrics
    // registry (`adaptive.*`) before `tick` returns; the console lines
    // below read the printed numbers back from the registry, so the
    // `--adaptive` output and a `--metrics` snapshot cannot disagree.
    let reg = observe::metrics();
    let mut prev_reused = reg.counter("adaptive.reused_forms");
    let mut prev_reexpanded = reg.counter("adaptive.reexpanded_forms");
    for _ in 0..opts.epochs {
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..opts.threads.max(1))
                .map(|_| {
                    let h = engine.handle();
                    s.spawn(move || h.collect_run(None))
                })
                .collect();
            for w in workers {
                w.join()
                    .map_err(|_| "worker thread panicked".to_owned())?
                    .map_err(|e| e.to_string())?;
            }
            Ok::<(), String>(())
        })?;
        let report = engine.tick().map_err(|e| e.to_string())?;
        let reuse = if report.reoptimized {
            let reused = reg.counter("adaptive.reused_forms") - prev_reused;
            let reexpanded = reg.counter("adaptive.reexpanded_forms") - prev_reexpanded;
            prev_reused += reused;
            prev_reexpanded += reexpanded;
            format!(" REOPTIMIZED ({reused} reused, {reexpanded} re-expanded)")
        } else {
            String::new()
        };
        eprintln!(
            "adaptive: epoch {} hits {} drift {:.3}{} -> generation {}",
            report.epoch,
            report.hits,
            reg.gauge("adaptive.drift").unwrap_or(report.drift),
            reuse,
            reg.gauge("adaptive.generation").unwrap_or(report.generation as f64) as u64,
        );
        if opts.coalesce > 0 {
            eprintln!(
                "adaptive: epoch {} coalescing: {} flush(es) merged {} buffered hit(s)",
                report.epoch, report.flush_writes, report.flush_merged,
            );
        }
        if vm_serving {
            // One unit of VM-served traffic per epoch; the line reports
            // this epoch's window (deltas), not cumulative totals.
            let before = engine.vm_metrics().unwrap_or_default();
            engine.vm_serve_run(None).map_err(|e| e.to_string())?;
            let after = engine.vm_metrics().unwrap_or_default();
            let window = VmMetrics {
                blocks_executed: after.blocks_executed - before.blocks_executed,
                fallthroughs: after.fallthroughs - before.fallthroughs,
                taken_jumps: after.taken_jumps - before.taken_jumps,
                calls: after.calls - before.calls,
                dispatches: after.dispatches - before.dispatches,
                fused_dispatches: after.fused_dispatches - before.fused_dispatches,
            };
            eprintln!(
                "adaptive: epoch {} vm[{}]: {}",
                report.epoch,
                opts.dispatch.unwrap_or_default().label(),
                describe_vm_metrics(&window)
            );
        }
        if let Some(sub) = subscriber.as_mut() {
            apply_fleet_updates(&mut engine, sub)?;
        }
    }

    let program = engine.current_program();
    if opts.expand {
        for form in &program.expansion {
            println!("{form}");
        }
    } else {
        eprintln!(
            "adaptive: final generation {} optimized under {} profile points",
            program.generation, program.optimized_under_points
        );
    }
    if let Some(path) = &opts.save_state {
        engine.save_snapshot(path).map_err(|e| e.to_string())?;
        eprintln!("adaptive: epoch snapshot saved to {path}");
    }
    Ok(())
}

/// Drains every fleet epoch broadcast that has arrived since the last
/// local epoch and applies the newest one. Waits briefly for the first
/// update of the window so a daemon merging faster than our epochs
/// can't be missed; a timeout loses nothing (partial frames stay
/// buffered in the subscriber).
fn apply_fleet_updates(
    engine: &mut AdaptiveEngine,
    sub: &mut pgmp_profiled::Subscriber,
) -> Result<(), String> {
    use pgmp_profiled::ClientError;
    let mut newest = None;
    let mut wait = Duration::from_millis(100);
    loop {
        match sub.next_epoch(wait) {
            Ok(update) => {
                newest = Some(update);
                // Already have one; only sweep up queued stragglers.
                wait = Duration::from_millis(1);
            }
            Err(ClientError::Timeout) => break,
            Err(e) => return Err(format!("fleet subscription: {e}")),
        }
    }
    let Some(update) = newest else { return Ok(()) };
    let stored = pgmp_profiler::StoredProfile::load_from_str(&update.profile)
        .map_err(|e| format!("fleet epoch {}: {e}", update.epoch))?;
    match engine
        .apply_fleet_epoch(&stored.info, update.inst, update.epoch)
        .map_err(|e| e.to_string())?
    {
        Some(program) => eprintln!(
            "fleet: epoch {} ({} dataset(s), tv {:.3}) -> REOPTIMIZED generation {}",
            update.epoch, update.datasets, update.tv, program.generation
        ),
        None => eprintln!(
            "fleet: epoch {} ({} dataset(s), tv {:.3}) within threshold",
            update.epoch, update.datasets, update.tv
        ),
    }
    Ok(())
}

/// `--incremental`: the plain pipeline routed through the per-form
/// recompilation cache. The initial compile (under `--load` weights, if
/// any) populates the cache; every `--merge` profile then triggers an
/// incremental recompile, and the reuse statistics show how much of the
/// program each profile update actually touched.
fn run_incremental(opts: &Options, source: &str, file: &str) -> Result<(), String> {
    if opts.instrument.is_some() || opts.store.is_some() {
        return Err("--incremental does not run instrumented (drop --instrument/--store)".into());
    }
    let mut engine = Engine::with_strategy(opts.strategy);
    for lib in &opts.libs {
        install(&mut engine, *lib).map_err(|e| e.to_string())?;
    }
    let mut incr = IncrementalEngine::with_engine(engine, source, file, IncrementalConfig::default())
        .map_err(|e| e.to_string())?;
    let mut warm = false;
    if let Some(path) = &opts.load_state {
        let ws = incr.load_state(path).map_err(|e| e.to_string())?;
        warm = true;
        eprintln!(
            "incremental: warm start from {path}: {} of {} form(s) restored, {} meta form(s) replayed, {} skipped",
            ws.restored, ws.total_forms, ws.replayed_meta, ws.skipped
        );
    }
    let mut weights = match &opts.load {
        Some(path) => ProfileInformation::load_file(path).map_err(|e| e.to_string())?,
        // A warm start without --load compiles under the session's own
        // weights — the zero-re-expansion path.
        None if warm => incr.engine_mut().profile(),
        None => ProfileInformation::empty(),
    };
    let mut unit = incr.compile(&weights).map_err(|e| e.to_string())?;
    if warm {
        eprintln!(
            "incremental: initial compile reused {} of {} form(s), {} re-expanded",
            unit.stats.reused, unit.stats.total_forms, unit.stats.reexpanded
        );
    } else {
        eprintln!(
            "incremental: initial compile expanded {} form(s) under {} profile point(s)",
            unit.stats.total_forms,
            weights.len()
        );
    }
    for path in &opts.merge {
        let info = ProfileInformation::load_file(path).map_err(|e| e.to_string())?;
        weights = weights.merge(&info);
        unit = incr.compile(&weights).map_err(|e| e.to_string())?;
        eprintln!(
            "incremental: {path}: {} of {} form(s) reused, {} re-expanded",
            unit.stats.reused, unit.stats.total_forms, unit.stats.reexpanded
        );
    }
    if opts.expand {
        for form in &unit.expansion {
            println!("{form}");
        }
    } else {
        let mut vm = Vm::new();
        vm.dispatch = opts.dispatch.unwrap_or_default();
        let mut chunks = unit.chunks;
        if opts.fuse {
            // Pass 1 — profiled: collect block counters, then re-lay-out
            // the chunks and mine the superinstruction plan from them.
            // Its output is dropped; the fused pass below is the real run.
            let counters = BlockCounters::new();
            vm.set_block_profiling(counters.clone());
            for chunk in &chunks {
                vm.run_chunk(incr.engine_mut().interp_mut(), chunk)
                    .map_err(|e| e.to_string())?;
            }
            let _ = incr.engine_mut().take_output();
            chunks = chunks
                .iter()
                .map(|c| optimize_layout(c, &counters))
                .collect::<Vec<Chunk>>();
            vm.relayout_cached(&counters);
            let lambda_chunks = vm.compiled_chunks();
            let plan = FusionPlan::mine(
                chunks.iter().chain(lambda_chunks.iter().map(|c| &**c)),
                &counters,
                3,
            );
            eprintln!(
                "vm: fused {}",
                if plan.is_empty() {
                    "nothing (no hot fusable pairs)".to_owned()
                } else {
                    plan.labels().join(", ")
                }
            );
            vm.set_fusion(plan);
            vm.metrics = VmMetrics::default();
        }
        let mut result = String::from("#<void>");
        for chunk in &chunks {
            result = vm
                .run_chunk(incr.engine_mut().interp_mut(), chunk)
                .map_err(|e| e.to_string())?
                .write_string();
        }
        print!("{}", incr.engine_mut().take_output());
        println!("{result}");
        if opts.vm_metrics {
            eprintln!(
                "vm[{}]: {}",
                vm.dispatch.label(),
                describe_vm_metrics(&vm.metrics)
            );
        }
    }
    for warning in incr.engine_mut().take_warnings() {
        eprintln!("warning: {warning}");
    }
    if let Some(path) = &opts.save_state {
        let stats = incr.save_state(path).map_err(|e| e.to_string())?;
        eprintln!(
            "incremental: session saved to {path}: {} of {} form(s) persisted, {} skipped",
            stats.saved, stats.total_forms, stats.skipped
        );
    }
    Ok(())
}

/// Hands this run's counter deltas to the fleet daemon. Runs after the
/// program so the slot table is complete at handshake time — the daemon
/// only merges slots it saw in the hello.
fn publish_counters(engine: &Engine, socket: &str) -> Result<(), String> {
    let counters = engine.counters();
    let table = counters
        .slot_table()
        .ok_or("--publish requires slotted counters (drop --counter-impl hash)")?;
    let delta = counters.take_delta();
    // A sampling registry's estimates carry their rate to the daemon,
    // which records `sampled@hz` provenance on the canonical profile.
    let sampled_hz = counters.sample_hz().unwrap_or(0);
    let mut publisher =
        pgmp_profiled::Publisher::connect_with_provenance(socket, &table, 64, sampled_hz)
            .map_err(|e| format!("{socket}: {e}"))?;
    let dataset = publisher.dataset();
    publisher.publish(&delta);
    let stats = publisher
        .close()
        .map_err(|e| format!("{socket}: {e}"))?;
    eprintln!(
        "fleet: published {} hit(s) over {} slot(s) to {socket} as dataset {dataset}{}",
        stats.published_hits,
        delta.len(),
        if stats.dropped_hits > 0 {
            format!(" ({} hit(s) dropped under backpressure)", stats.dropped_hits)
        } else {
            String::new()
        }
    );
    Ok(())
}

fn run(opts: Options) -> Result<(), String> {
    let file = opts.file.clone().ok_or("no input file given")?;
    let source = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
    if (opts.save_state.is_some() || opts.load_state.is_some())
        && !opts.incremental
        && !opts.adaptive
    {
        return Err("--save-state/--load-state require --incremental or --adaptive".into());
    }
    if opts.publish.is_some() && (opts.adaptive || opts.incremental || opts.instrument.is_none()) {
        return Err("--publish requires a plain --instrument run".into());
    }
    if opts.subscribe.is_some() && !opts.adaptive {
        return Err("--subscribe requires --adaptive".into());
    }
    if (opts.dispatch.is_some() || opts.fuse || opts.vm_metrics)
        && !opts.incremental
        && !opts.adaptive
    {
        return Err(
            "--dispatch/--fuse/--vm-metrics require --incremental or --adaptive \
             (the plain path tree-walks)"
                .into(),
        );
    }
    if opts.trace.is_some() || opts.metrics || opts.metrics_out.is_some() {
        // One run per process: reset so the snapshot describes this run only.
        observe::metrics().reset();
    }
    if opts.trace.is_some() {
        observe::start(observe::TraceConfig::default()).map_err(|e| e.to_string())?;
    }
    // Bound before the run so a scraper can watch the whole execution
    // live; dropped (listener joined) after the final snapshot, so the
    // endpoint also serves the run's complete totals until exit.
    let _metrics_server = match &opts.metrics_listen {
        Some(addr) => {
            let server = observe::MetricsServer::bind(addr)
                .map_err(|e| format!("--metrics-listen {addr}: {e}"))?;
            eprintln!("metrics: listening on http://{}/metrics", server.addr());
            Some(server)
        }
        None => None,
    };
    let result = run_mode(&opts, &source, &file);
    if let Some(path) = &opts.trace {
        // Write the trace even when the run failed: a trace of a failing
        // run is exactly what you want to look at.
        let dropped = observe::dropped();
        match observe::stop_and_write(path) {
            Ok((events, bytes)) => {
                eprintln!("trace: {events} event(s), {bytes} bytes written to {path}");
                if dropped > 0 {
                    eprintln!("trace: ring buffer dropped {dropped} oldest event(s)");
                }
            }
            Err(e) => eprintln!("pgmp-run: failed to write trace to {path}: {e}"),
        }
    }
    if opts.metrics || opts.metrics_out.is_some() {
        let snapshot = observe::metrics().snapshot().to_json();
        if opts.metrics {
            eprintln!("{snapshot}");
        }
        if let Some(path) = &opts.metrics_out {
            let mut text = snapshot;
            text.push('\n');
            observe::write_atomic(path, &text).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("metrics snapshot written to {path}");
        }
    }
    result
}

fn run_mode(opts: &Options, source: &str, file: &str) -> Result<(), String> {
    if opts.adaptive {
        return run_adaptive(opts, source, file);
    }
    if opts.incremental {
        return run_incremental(opts, source, file);
    }

    let mut engine = Engine::with_strategy(opts.strategy);
    configure_counters(&mut engine, opts.counter_impl, opts.sample_hz);
    for lib in &opts.libs {
        install(&mut engine, *lib).map_err(|e| e.to_string())?;
    }
    if let Some(path) = &opts.load {
        engine.load_profile(path).map_err(|e| e.to_string())?;
    }
    for path in &opts.merge {
        let info = ProfileInformation::load_file(path).map_err(|e| e.to_string())?;
        engine.merge_profile(&info);
    }
    if let Some(mode) = opts.instrument {
        engine.set_instrumentation(mode);
    }

    if opts.expand {
        let forms = engine.expand_str(source, file).map_err(|e| e.to_string())?;
        for form in forms {
            println!("{}", form.to_datum());
        }
    } else {
        let value = engine.run_str(source, file).map_err(|e| e.to_string())?;
        print!("{}", engine.take_output());
        println!("{}", value.write_string());
    }
    for warning in engine.take_warnings() {
        eprintln!("warning: {warning}");
    }
    if let Some(socket) = &opts.publish {
        publish_counters(&engine, socket)?;
    }
    if let Some(path) = &opts.store {
        if opts.store_format == 2 {
            engine.store_profile_v2(path).map_err(|e| e.to_string())?;
        } else {
            engine.store_profile(path).map_err(|e| e.to_string())?;
        }
        eprintln!("profile stored to {path} (format v{})", opts.store_format);
    }
    Ok(())
}

fn main() -> ExitCode {
    match run(parse_args()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pgmp-run: {msg}");
            ExitCode::FAILURE
        }
    }
}
