//! `pgmp-run` — command-line driver for the profile-guided
//! meta-programming engine.
//!
//! ```text
//! pgmp-run [OPTIONS] <file.scm>
//!
//! OPTIONS:
//!   --instrument <every|calls>   run with source-level profiling
//!   --load <profile.pgmp>        load profile weights before compiling
//!   --merge <profile.pgmp>       merge additional weights (repeatable)
//!   --store <profile.pgmp>       store this run's weights afterwards
//!   --expand                     print the expansion instead of running
//!   --libs <names>               comma-separated case-study libraries:
//!                                if-r,case,oo,list,vector,sequence,all
//!   --wrap-lambda                use the Racket annotate-expr strategy
//! ```
//!
//! The paper's basic cycle:
//!
//! ```sh
//! pgmp-run --libs all --instrument every --store p.pgmp prog.scm   # train
//! pgmp-run --libs all --load p.pgmp prog.scm                       # optimize
//! ```

use pgmp::{AnnotateStrategy, Engine};
use pgmp_case_studies::{install, Lib};
use pgmp_profiler::{ProfileInformation, ProfileMode};
use std::process::ExitCode;

struct Options {
    file: Option<String>,
    instrument: Option<ProfileMode>,
    load: Option<String>,
    merge: Vec<String>,
    store: Option<String>,
    expand: bool,
    libs: Vec<Lib>,
    strategy: AnnotateStrategy,
}

fn usage() -> ! {
    eprintln!(
        "usage: pgmp-run [--instrument every|calls] [--load P] [--merge P]...\n\
         \u{20}               [--store P] [--expand] [--libs names] [--wrap-lambda] file.scm"
    );
    std::process::exit(2)
}

fn parse_libs(spec: &str) -> Vec<Lib> {
    let mut libs = Vec::new();
    for name in spec.split(',') {
        match name.trim() {
            "if-r" => libs.push(Lib::IfR),
            "exclusive-cond" => libs.push(Lib::ExclusiveCond),
            "case" => libs.push(Lib::Case),
            "oo" => libs.push(Lib::ObjectSystem),
            "list" => libs.push(Lib::ProfiledList),
            "vector" => libs.push(Lib::ProfiledVector),
            "sequence" => libs.push(Lib::Sequence),
            "all" => libs.extend([
                Lib::IfR,
                Lib::Case,
                Lib::ObjectSystem,
                Lib::ProfiledList,
                Lib::ProfiledVector,
                Lib::Sequence,
            ]),
            other => {
                eprintln!("pgmp-run: unknown library `{other}`");
                usage();
            }
        }
    }
    libs
}

fn parse_args() -> Options {
    let mut opts = Options {
        file: None,
        instrument: None,
        load: None,
        merge: Vec::new(),
        store: None,
        expand: false,
        libs: Vec::new(),
        strategy: AnnotateStrategy::Direct,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--instrument" => match args.next().as_deref() {
                Some("every") => opts.instrument = Some(ProfileMode::EveryExpression),
                Some("calls") => opts.instrument = Some(ProfileMode::CallsOnly),
                _ => usage(),
            },
            "--load" => opts.load = Some(args.next().unwrap_or_else(|| usage())),
            "--merge" => opts.merge.push(args.next().unwrap_or_else(|| usage())),
            "--store" => opts.store = Some(args.next().unwrap_or_else(|| usage())),
            "--expand" => opts.expand = true,
            "--libs" => opts.libs = parse_libs(&args.next().unwrap_or_else(|| usage())),
            "--wrap-lambda" => opts.strategy = AnnotateStrategy::WrapLambda,
            "--help" | "-h" => usage(),
            file if !file.starts_with('-') && opts.file.is_none() => {
                opts.file = Some(file.to_owned());
            }
            _ => usage(),
        }
    }
    opts
}

fn run(opts: Options) -> Result<(), String> {
    let file = opts.file.ok_or("no input file given")?;
    let source = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;

    let mut engine = Engine::with_strategy(opts.strategy);
    for lib in &opts.libs {
        install(&mut engine, *lib).map_err(|e| e.to_string())?;
    }
    if let Some(path) = &opts.load {
        engine.load_profile(path).map_err(|e| e.to_string())?;
    }
    for path in &opts.merge {
        let info = ProfileInformation::load_file(path).map_err(|e| e.to_string())?;
        engine.merge_profile(&info);
    }
    if let Some(mode) = opts.instrument {
        engine.set_instrumentation(mode);
    }

    if opts.expand {
        let forms = engine.expand_str(&source, &file).map_err(|e| e.to_string())?;
        for form in forms {
            println!("{}", form.to_datum());
        }
    } else {
        let value = engine.run_str(&source, &file).map_err(|e| e.to_string())?;
        print!("{}", engine.take_output());
        println!("{}", value.write_string());
    }
    for warning in engine.take_warnings() {
        eprintln!("warning: {warning}");
    }
    if let Some(path) = &opts.store {
        engine.store_profile(path).map_err(|e| e.to_string())?;
        eprintln!("profile stored to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run(parse_args()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pgmp-run: {msg}");
            ExitCode::FAILURE
        }
    }
}
