//! `pgmp-profile` — inspect, merge, and convert stored profile files.
//!
//! ```text
//! pgmp-profile inspect <file.pgmp>
//!     Summary: format version, provenance (exact counts or sampled
//!     estimates, with the sampler rate), dataset count, point/slot
//!     counts, and the hottest points.
//!
//! pgmp-profile merge -o <out.pgmp> <a.pgmp> <b.pgmp> [...]
//!     Merges profiles by the paper's §3.2 rule: per-point weighted
//!     average, weighted by each profile's dataset count, so a 9-dataset
//!     profile outweighs a 1-dataset profile 9:1 on disagreement. Inputs
//!     of either format version are accepted; output is v1 unless
//!     --to 2 is given. Inputs carrying v2 slot tables are validated
//!     with the same compatibility gate the fleet daemon's handshake
//!     uses (`SlotMap::check_mergeable`): tables that reorder the same
//!     points (slot order is process-local) are re-keyed by point
//!     identity with a notice, while tables sharing no point — a
//!     different program, whose slot-indexed counters could only
//!     alias — are refused with a typed error. With --to 2, the merged
//!     output carries the combined validated table. Inputs of mixed
//!     provenance (exact counts + sampled estimates) merge with a
//!     warning; a uniform provenance is carried to the output.
//!
//! pgmp-profile convert --to <1|2> -o <out.pgmp> <in.pgmp>
//!     Rewrites a profile in the requested format version. v2 → v1 drops
//!     the slot table; v1 → v2 carries weights only unless --slots is
//!     given, which synthesizes a dense slot table from the points in
//!     sorted order (a process preloading it interns nothing on the warm
//!     path).
//!
//! pgmp-profile diff [--top N] [--explain <trace.jsonl>] <a.pgmp> <b.pgmp>
//!     Compares two profiles: overall drift under both of the adaptive
//!     subsystem's metrics (L1 and total-variation — the same `drift`
//!     the online detector uses, so a diff score is directly comparable
//!     to `--drift-threshold`), plus the top N movers by absolute
//!     normalized-weight change (default 10). With --explain, each top
//!     mover is cross-referenced against a recorded trace (the same
//!     provenance engine as `pgmp-trace explain`): every optimization
//!     decision that consulted the moved point — directly, or through
//!     the profile queries it issued while ranking alternatives — is
//!     listed under it, so "this weight changed" connects directly to
//!     "these decisions would be revisited".
//!
//! pgmp-profile rebase [--min-confidence X] [--trace <out.jsonl>]
//!                     -o <out.pgmp> <old.pgmp> <old-src> <new-src>
//!     Re-anchors a stale profile onto edited source with the tiered
//!     matcher of `docs/REBASE.md`: unchanged forms keep their points
//!     bit-identically, moved-but-unchanged forms re-anchor at full
//!     confidence, edited forms re-anchor at a decayed confidence
//!     (recorded as v2 `(confidence ...)` provenance), and unmatched
//!     points die. The output is always format v2. With --trace, every
//!     per-point decision is recorded as a `profile_rebase` event so
//!     `pgmp-trace explain <point>` can answer why a point matched,
//!     decayed, or died.
//! ```
//!
//! All writes are atomic (temp file + rename); corrupt inputs fail with a
//! typed error, never a panic. See `docs/PROFILE_FORMAT.md` for the
//! normative format specification.

use pgmp_adaptive::{drift, DriftMetric};
use pgmp_observe as observe;
use pgmp_profiler::rebase::{rebase as run_rebase, RebaseConfig};
use pgmp_profiler::{ProfileInformation, Provenance, SlotCompat, SlotMap, StoredProfile};
use std::fmt::Write as _;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: pgmp-profile inspect <file.pgmp>\n\
         \u{20}      pgmp-profile merge [--to 1|2] -o <out.pgmp> <in.pgmp>...\n\
         \u{20}      pgmp-profile convert --to 1|2 [--slots] -o <out.pgmp> <in.pgmp>\n\
         \u{20}      pgmp-profile diff [--top N] [--explain <trace.jsonl>] <a.pgmp> <b.pgmp>\n\
         \u{20}      pgmp-profile rebase [--min-confidence X] [--trace <out.jsonl>] \
         -o <out.pgmp> <old.pgmp> <old-src> <new-src>"
    );
    std::process::exit(2)
}

fn load(path: &str) -> Result<StoredProfile, String> {
    StoredProfile::load_file(path).map_err(|e| format!("{path}: {e}"))
}

fn inspect(out: &mut String, args: &[String]) -> Result<(), String> {
    let [path] = args else { usage() };
    let stored = load(path)?;
    let _ = writeln!(out, "file:     {path}");
    let _ = writeln!(out, "format:   v{}", stored.version);
    let _ = writeln!(out, "source:   {}", stored.provenance);
    let _ = writeln!(out, "datasets: {}", stored.info.dataset_count());
    let _ = writeln!(out, "points:   {}", stored.info.len());
    match &stored.slots {
        Some(table) => {
            let _ = writeln!(out, "slots:    {}", table.len());
        }
        None => {
            let _ = writeln!(out, "slots:    (none)");
        }
    }
    if !stored.confidence.is_empty() {
        let min = stored.confidence.values().copied().fold(1.0, f64::min);
        let _ = writeln!(
            out,
            "rebased:  {} decayed point(s) (min confidence {min:.4})",
            stored.confidence.len()
        );
    }
    let mut points: Vec<_> = stored.info.iter().collect();
    points.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    if !points.is_empty() {
        let _ = writeln!(out, "hottest:");
        for (p, w) in points.iter().take(10) {
            let _ = writeln!(out, "  {w:<8.4} {p}");
        }
        if points.len() > 10 {
            let _ = writeln!(out, "  ... and {} more", points.len() - 10);
        }
    }
    Ok(())
}

struct WriteOpts {
    out: Option<String>,
    to: u32,
    slots: bool,
    inputs: Vec<String>,
}

fn parse_write_opts(args: &[String]) -> WriteOpts {
    let mut opts = WriteOpts {
        out: None,
        to: 1,
        slots: false,
        inputs: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--out" => opts.out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--to" => match it.next().map(String::as_str) {
                Some("1") => opts.to = 1,
                Some("2") => opts.to = 2,
                _ => usage(),
            },
            "--slots" => opts.slots = true,
            other if !other.starts_with('-') => opts.inputs.push(other.to_owned()),
            _ => usage(),
        }
    }
    opts
}

/// Builds the output profile in the requested version, synthesizing a
/// dense slot table from the sorted points when asked.
fn assemble(
    info: ProfileInformation,
    slots: Option<SlotMap>,
    to: u32,
    synthesize: bool,
) -> Result<StoredProfile, String> {
    if to == 1 {
        return Ok(StoredProfile::v1(info));
    }
    let slots = if synthesize {
        let mut points: Vec<_> = info.iter().map(|(p, _)| p).collect();
        points.sort();
        Some(
            SlotMap::from_points(points)
                .map_err(|p| format!("duplicate point {p} while synthesizing slot table"))?,
        )
    } else {
        slots
    };
    Ok(StoredProfile::v2(info, slots))
}

fn merge(args: &[String]) -> Result<(), String> {
    let opts = parse_write_opts(args);
    let out = opts.out.unwrap_or_else(|| usage());
    if opts.inputs.is_empty() {
        usage();
    }
    let mut merged = ProfileInformation::empty();
    // The combined slot table of every v2 input, validated pairwise with
    // the same `check_mergeable` gate the fleet daemon applies at
    // handshake. Slot order is process-local (dense slots are assigned
    // partly at first execution), so inputs whose tables reorder the
    // same points are re-keyed by point identity — §3.2 weights are
    // keyed by point, never by slot, so nothing can alias. Inputs whose
    // tables share no point describe a different program and are
    // refused with the typed mismatch.
    let mut table = SlotMap::new();
    // Provenance kinds seen, each with the inputs that carried it, so a
    // mixed-provenance warning can say *which* files brought estimates in.
    let mut provenances: Vec<(Provenance, Vec<String>)> = Vec::new();
    for path in &opts.inputs {
        let stored = load(path)?;
        eprintln!(
            "pgmp-profile: {path}: v{}, {}, {} dataset(s), {} point(s)",
            stored.version,
            stored.provenance,
            stored.info.dataset_count(),
            stored.info.len()
        );
        match provenances.iter_mut().find(|(p, _)| *p == stored.provenance) {
            Some((_, paths)) => paths.push(path.clone()),
            None => provenances.push((stored.provenance, vec![path.clone()])),
        }
        if let Some(slots) = &stored.slots {
            match table
                .check_mergeable(slots)
                .map_err(|mismatch| format!("{path}: {mismatch}"))?
            {
                SlotCompat::Extends => {}
                SlotCompat::Rekey(divergence) => eprintln!(
                    "pgmp-profile: {path}: slot order diverges ({divergence}); \
                     output table re-keyed by point identity"
                ),
            }
            for p in slots.points() {
                table.resolve(*p);
            }
        }
        merged = merged.merge(&stored.info);
    }
    // Mixing exact counts with sampled estimates is legal (§3.2 weights
    // never required exactness) but worth flagging: the merged weights
    // inherit the estimates' sampling error. A uniform provenance is
    // carried through to a v2 output; a mix degrades to implicit exact.
    let provenance = match provenances.as_slice() {
        [(one, _)] => *one,
        mixed => {
            eprintln!(
                "pgmp-profile: warning: merging profiles of mixed provenance ({}); \
                 merged weights inherit the estimates' sampling error",
                mixed
                    .iter()
                    .map(|(p, paths)| format!("{p}: {}", paths.join(", ")))
                    .collect::<Vec<_>>()
                    .join(" + ")
            );
            Provenance::Exact
        }
    };
    let carried = (!table.is_empty()).then_some(table);
    let stored = assemble(merged, carried, opts.to, opts.slots)?.with_provenance(provenance);
    stored.store_file(&out).map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "pgmp-profile: wrote {out}: v{}, {} dataset(s), {} point(s)",
        stored.version,
        stored.info.dataset_count(),
        stored.info.len()
    );
    Ok(())
}

fn convert(args: &[String]) -> Result<(), String> {
    let opts = parse_write_opts(args);
    let out = opts.out.unwrap_or_else(|| usage());
    let [input] = opts.inputs.as_slice() else {
        usage()
    };
    let stored = load(input)?;
    let from = stored.version;
    let converted =
        assemble(stored.info, stored.slots, opts.to, opts.slots)?.with_provenance(stored.provenance);
    converted.store_file(&out).map_err(|e| format!("{out}: {e}"))?;
    let slots = match &converted.slots {
        Some(t) => format!("{} slot(s)", t.len()),
        None => "no slot table".to_owned(),
    };
    eprintln!(
        "pgmp-profile: {input} (v{from}) -> {out} (v{}, {slots})",
        converted.version
    );
    Ok(())
}

/// `diff <a> <b>` — per-point weight deltas plus the same drift score the
/// adaptive detector computes, so "how different are these two profiles?"
/// has one answer everywhere.
fn diff(out: &mut String, args: &[String]) -> Result<(), String> {
    let mut top = 10usize;
    let mut explain_trace: Option<String> = None;
    let mut inputs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                top = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--explain" => {
                explain_trace = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            other if !other.starts_with('-') => inputs.push(other.to_owned()),
            _ => usage(),
        }
    }
    let [a_path, b_path] = inputs.as_slice() else {
        usage()
    };
    // Consultation events from the trace, for cross-referencing movers:
    // decisions match when the mover is the decided form itself, and
    // profile queries/counts match when a macro read the mover's weight
    // while deciding (the clause-body case). Read leniently: a torn tail
    // should not hide the events that landed.
    let decisions: Option<Vec<observe::TraceEvent>> = match &explain_trace {
        Some(path) => {
            let (events, errors) =
                observe::read_trace_lenient(path).map_err(|e| format!("{path}: {e}"))?;
            for e in &errors {
                eprintln!("pgmp-profile: warning: {path}: {e} (line skipped)");
            }
            Some(
                events
                    .into_iter()
                    .filter(|e| {
                        matches!(
                            e.kind,
                            observe::EventKind::Decision { .. }
                                | observe::EventKind::ProfileQuery { .. }
                                | observe::EventKind::ProfileCount { .. }
                        )
                    })
                    .collect(),
            )
        }
        None => None,
    };
    let a = load(a_path)?;
    let b = load(b_path)?;
    for (path, stored) in [(a_path, &a), (b_path, &b)] {
        let _ = writeln!(
            out,
            "{path}: v{}, {} dataset(s), {} point(s)",
            stored.version,
            stored.info.dataset_count(),
            stored.info.len()
        );
    }
    let _ = writeln!(
        out,
        "drift: {:.4} (total-variation), {:.4} (L1) — comparable to --drift-threshold",
        drift(&a.info, &b.info, DriftMetric::TotalVariation),
        drift(&a.info, &b.info, DriftMetric::L1),
    );

    // Union of points with (old, new) weights; absent points weigh 0.0.
    let mut movers: Vec<_> = a
        .info
        .iter()
        .map(|(p, _)| p)
        .chain(b.info.iter().map(|(p, _)| p))
        .collect();
    movers.sort();
    movers.dedup();
    let mut movers: Vec<_> = movers
        .into_iter()
        .map(|p| (p, a.info.weight(p), b.info.weight(p)))
        .filter(|(_, wa, wb)| wa != wb)
        .collect();
    movers.sort_by(|x, y| {
        (y.2 - y.1)
            .abs()
            .total_cmp(&(x.2 - x.1).abs())
            .then(x.0.cmp(&y.0))
    });
    if movers.is_empty() {
        let _ = writeln!(out, "no per-point weight changes");
        return Ok(());
    }
    let _ = writeln!(
        out,
        "top movers (|Δweight|, of {} changed point(s)):",
        movers.len()
    );
    for (p, wa, wb) in movers.iter().take(top) {
        let _ = writeln!(out, "  {:+.4}  {wa:.4} -> {wb:.4}  {p}", wb - wa);
        if let Some(decisions) = &decisions {
            // The same provenance engine as `pgmp-trace explain`,
            // scoped to this mover: which decisions consulted it?
            let (text, n) = observe::explain_query(decisions, &p.to_string());
            if n == 0 {
                let _ = writeln!(out, "      (no recorded decision consulted this point)");
            } else {
                for line in text.lines() {
                    let _ = writeln!(out, "      {line}");
                }
            }
        }
    }
    if movers.len() > top {
        let _ = writeln!(out, "  ... and {} more", movers.len() - top);
    }
    Ok(())
}

/// `rebase -o <out> <old.pgmp> <old-src> <new-src>` — re-anchor a stale
/// profile onto edited source (the CLI face of
/// [`pgmp_profiler::rebase::rebase`]; normative spec in `docs/REBASE.md`).
fn rebase_cmd(out: &mut String, args: &[String]) -> Result<(), String> {
    let mut out_path: Option<String> = None;
    let mut min_confidence: Option<f64> = None;
    let mut trace: Option<String> = None;
    let mut inputs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--min-confidence" => {
                min_confidence = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--trace" => trace = Some(it.next().cloned().unwrap_or_else(|| usage())),
            other if !other.starts_with('-') => inputs.push(other.to_owned()),
            _ => usage(),
        }
    }
    let out_path = out_path.unwrap_or_else(|| usage());
    let [profile_path, old_src_path, new_src_path] = inputs.as_slice() else {
        usage()
    };
    let mut cfg = RebaseConfig::default();
    if let Some(mc) = min_confidence {
        if !(0.0..=1.0).contains(&mc) {
            return Err(format!("--min-confidence {mc} outside [0,1]"));
        }
        cfg.min_confidence = mc;
    }
    let stored = load(profile_path)?;
    let old_src = std::fs::read_to_string(old_src_path)
        .map_err(|e| format!("{old_src_path}: {e}"))?;
    let new_src = std::fs::read_to_string(new_src_path)
        .map_err(|e| format!("{new_src_path}: {e}"))?;

    // The file name the profile's points carry: the most common base file
    // (generated `%pgmp` suffixes stripped) — that is the file the two
    // source texts are versions of.
    let mut by_file: Vec<(String, usize)> = Vec::new();
    for (p, _) in stored.info.iter() {
        let s = p.file.as_str();
        let base = match s.find("%pgmp") {
            Some(i) => &s[..i],
            None => s,
        };
        match by_file.iter_mut().find(|(f, _)| f == base) {
            Some((_, n)) => *n += 1,
            None => by_file.push((base.to_owned(), 1)),
        }
    }
    let file = by_file
        .iter()
        .max_by_key(|(_, n)| *n)
        .map(|(f, _)| f.clone())
        .ok_or_else(|| format!("{profile_path}: profile has no points to rebase"))?;

    if trace.is_some() {
        observe::start(observe::TraceConfig::default()).map_err(|e| e.to_string())?;
    }
    let result = run_rebase(&stored, &old_src, &new_src, &file, &cfg);
    if let Some(path) = &trace {
        match &result {
            Ok(_) => {
                let (events, bytes) =
                    observe::stop_and_write(path).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("pgmp-profile: wrote {path}: {events} event(s), {bytes} byte(s)");
            }
            Err(_) => {
                observe::stop();
            }
        }
    }
    let result = result.map_err(|e| e.to_string())?;
    result
        .profile
        .store_file(&out_path)
        .map_err(|e| format!("{out_path}: {e}"))?;

    let r = &result.report;
    let _ = writeln!(
        out,
        "rebased {file}: {} exact, {} shifted, {} structural (decayed), {} dead, \
         {} carried (other files)",
        r.exact, r.shifted, r.structural, r.dead, r.carried
    );
    let _ = writeln!(
        out,
        "retained weight: {:.1}% (total {:.4} -> {:.4}; min confidence {})",
        r.retained_weight_fraction() * 100.0,
        r.old_weight_total,
        r.retained_weight,
        cfg.min_confidence
    );
    eprintln!(
        "pgmp-profile: wrote {out_path}: v{}, {} dataset(s), {} point(s)",
        result.profile.version,
        result.profile.info.dataset_count(),
        result.profile.info.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    let result = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "inspect" => inspect(&mut out, rest),
            "merge" => merge(rest),
            "convert" => convert(rest),
            "diff" => diff(&mut out, rest),
            "rebase" => rebase_cmd(&mut out, rest),
            "--help" | "-h" => usage(),
            other => Err(format!("unknown command `{other}`")),
        },
        None => usage(),
    };
    // One buffered write; a closed pipe (`pgmp-profile ... | head`) is
    // not an error worth dying loudly over.
    {
        use std::io::Write as _;
        let _ = std::io::stdout().write_all(out.as_bytes());
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pgmp-profile: {msg}");
            ExitCode::FAILURE
        }
    }
}
