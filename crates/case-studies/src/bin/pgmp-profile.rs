//! `pgmp-profile` — inspect, merge, and convert stored profile files.
//!
//! ```text
//! pgmp-profile inspect <file.pgmp>
//!     Summary: format version, dataset count, point/slot counts, and the
//!     hottest points.
//!
//! pgmp-profile merge -o <out.pgmp> <a.pgmp> <b.pgmp> [...]
//!     Merges profiles by the paper's §3.2 rule: per-point weighted
//!     average, weighted by each profile's dataset count, so a 9-dataset
//!     profile outweighs a 1-dataset profile 9:1 on disagreement. Inputs
//!     of either format version are accepted; output is v1 unless
//!     --to 2 is given.
//!
//! pgmp-profile convert --to <1|2> -o <out.pgmp> <in.pgmp>
//!     Rewrites a profile in the requested format version. v2 → v1 drops
//!     the slot table; v1 → v2 carries weights only unless --slots is
//!     given, which synthesizes a dense slot table from the points in
//!     sorted order (a process preloading it interns nothing on the warm
//!     path).
//!
//! pgmp-profile diff [--top N] <a.pgmp> <b.pgmp>
//!     Compares two profiles: overall drift under both of the adaptive
//!     subsystem's metrics (L1 and total-variation — the same `drift`
//!     the online detector uses, so a diff score is directly comparable
//!     to `--drift-threshold`), plus the top N movers by absolute
//!     normalized-weight change (default 10).
//! ```
//!
//! All writes are atomic (temp file + rename); corrupt inputs fail with a
//! typed error, never a panic. See `docs/PROFILE_FORMAT.md` for the
//! normative format specification.

use pgmp_adaptive::{drift, DriftMetric};
use pgmp_profiler::{ProfileInformation, SlotMap, StoredProfile};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: pgmp-profile inspect <file.pgmp>\n\
         \u{20}      pgmp-profile merge [--to 1|2] -o <out.pgmp> <in.pgmp>...\n\
         \u{20}      pgmp-profile convert --to 1|2 [--slots] -o <out.pgmp> <in.pgmp>\n\
         \u{20}      pgmp-profile diff [--top N] <a.pgmp> <b.pgmp>"
    );
    std::process::exit(2)
}

fn load(path: &str) -> Result<StoredProfile, String> {
    StoredProfile::load_file(path).map_err(|e| format!("{path}: {e}"))
}

fn inspect(args: &[String]) -> Result<(), String> {
    let [path] = args else { usage() };
    let stored = load(path)?;
    println!("file:     {path}");
    println!("format:   v{}", stored.version);
    println!("datasets: {}", stored.info.dataset_count());
    println!("points:   {}", stored.info.len());
    match &stored.slots {
        Some(table) => println!("slots:    {}", table.len()),
        None => println!("slots:    (none)"),
    }
    let mut points: Vec<_> = stored.info.iter().collect();
    points.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    if !points.is_empty() {
        println!("hottest:");
        for (p, w) in points.iter().take(10) {
            println!("  {w:<8.4} {p}");
        }
        if points.len() > 10 {
            println!("  ... and {} more", points.len() - 10);
        }
    }
    Ok(())
}

struct WriteOpts {
    out: Option<String>,
    to: u32,
    slots: bool,
    inputs: Vec<String>,
}

fn parse_write_opts(args: &[String]) -> WriteOpts {
    let mut opts = WriteOpts {
        out: None,
        to: 1,
        slots: false,
        inputs: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--out" => opts.out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--to" => match it.next().map(String::as_str) {
                Some("1") => opts.to = 1,
                Some("2") => opts.to = 2,
                _ => usage(),
            },
            "--slots" => opts.slots = true,
            other if !other.starts_with('-') => opts.inputs.push(other.to_owned()),
            _ => usage(),
        }
    }
    opts
}

/// Builds the output profile in the requested version, synthesizing a
/// dense slot table from the sorted points when asked.
fn assemble(
    info: ProfileInformation,
    slots: Option<SlotMap>,
    to: u32,
    synthesize: bool,
) -> Result<StoredProfile, String> {
    if to == 1 {
        return Ok(StoredProfile::v1(info));
    }
    let slots = if synthesize {
        let mut points: Vec<_> = info.iter().map(|(p, _)| p).collect();
        points.sort();
        Some(
            SlotMap::from_points(points)
                .map_err(|p| format!("duplicate point {p} while synthesizing slot table"))?,
        )
    } else {
        slots
    };
    Ok(StoredProfile::v2(info, slots))
}

fn merge(args: &[String]) -> Result<(), String> {
    let opts = parse_write_opts(args);
    let out = opts.out.unwrap_or_else(|| usage());
    if opts.inputs.is_empty() {
        usage();
    }
    let mut merged = ProfileInformation::empty();
    for path in &opts.inputs {
        let stored = load(path)?;
        eprintln!(
            "pgmp-profile: {path}: v{}, {} dataset(s), {} point(s)",
            stored.version,
            stored.info.dataset_count(),
            stored.info.len()
        );
        merged = merged.merge(&stored.info);
    }
    let stored = assemble(merged, None, opts.to, opts.slots)?;
    stored.store_file(&out).map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "pgmp-profile: wrote {out}: v{}, {} dataset(s), {} point(s)",
        stored.version,
        stored.info.dataset_count(),
        stored.info.len()
    );
    Ok(())
}

fn convert(args: &[String]) -> Result<(), String> {
    let opts = parse_write_opts(args);
    let out = opts.out.unwrap_or_else(|| usage());
    let [input] = opts.inputs.as_slice() else {
        usage()
    };
    let stored = load(input)?;
    let from = stored.version;
    let converted = assemble(stored.info, stored.slots, opts.to, opts.slots)?;
    converted.store_file(&out).map_err(|e| format!("{out}: {e}"))?;
    let slots = match &converted.slots {
        Some(t) => format!("{} slot(s)", t.len()),
        None => "no slot table".to_owned(),
    };
    eprintln!(
        "pgmp-profile: {input} (v{from}) -> {out} (v{}, {slots})",
        converted.version
    );
    Ok(())
}

/// `diff <a> <b>` — per-point weight deltas plus the same drift score the
/// adaptive detector computes, so "how different are these two profiles?"
/// has one answer everywhere.
fn diff(args: &[String]) -> Result<(), String> {
    let mut top = 10usize;
    let mut inputs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                top = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            other if !other.starts_with('-') => inputs.push(other.to_owned()),
            _ => usage(),
        }
    }
    let [a_path, b_path] = inputs.as_slice() else {
        usage()
    };
    let a = load(a_path)?;
    let b = load(b_path)?;
    for (path, stored) in [(a_path, &a), (b_path, &b)] {
        println!(
            "{path}: v{}, {} dataset(s), {} point(s)",
            stored.version,
            stored.info.dataset_count(),
            stored.info.len()
        );
    }
    println!(
        "drift: {:.4} (total-variation), {:.4} (L1) — comparable to --drift-threshold",
        drift(&a.info, &b.info, DriftMetric::TotalVariation),
        drift(&a.info, &b.info, DriftMetric::L1),
    );

    // Union of points with (old, new) weights; absent points weigh 0.0.
    let mut movers: Vec<_> = a
        .info
        .iter()
        .map(|(p, _)| p)
        .chain(b.info.iter().map(|(p, _)| p))
        .collect();
    movers.sort();
    movers.dedup();
    let mut movers: Vec<_> = movers
        .into_iter()
        .map(|p| (p, a.info.weight(p), b.info.weight(p)))
        .filter(|(_, wa, wb)| wa != wb)
        .collect();
    movers.sort_by(|x, y| {
        (y.2 - y.1)
            .abs()
            .total_cmp(&(x.2 - x.1).abs())
            .then(x.0.cmp(&y.0))
    });
    if movers.is_empty() {
        println!("no per-point weight changes");
        return Ok(());
    }
    println!("top movers (|Δweight|, of {} changed point(s)):", movers.len());
    for (p, wa, wb) in movers.iter().take(top) {
        println!("  {:+.4}  {wa:.4} -> {wb:.4}  {p}", wb - wa);
    }
    if movers.len() > top {
        println!("  ... and {} more", movers.len() - top);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "inspect" => inspect(rest),
            "merge" => merge(rest),
            "convert" => convert(rest),
            "diff" => diff(rest),
            "--help" | "-h" => usage(),
            other => Err(format!("unknown command `{other}`")),
        },
        None => usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pgmp-profile: {msg}");
            ExitCode::FAILURE
        }
    }
}
