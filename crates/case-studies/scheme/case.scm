;; §6.1, Figure 6 — a profile-guided `case` expression.
;;
;; Shadows the built-in case: each clause's left-hand side becomes an
;; explicit membership test on the (once-evaluated) key, and the clauses
;; are handed to exclusive-cond, which reorders them by profile weight.
;; Unlike the simplified version in the paper's figure, this handles the
;; full generality of Scheme's case: an optional else clause (kept last)
;; and multi-expression clause bodies.

;; Runtime membership test for case keys.
(define (key-in? key keys)
  (if (memv key keys) #t #f))

;; Compile-time helper: rewrite one case clause into an exclusive-cond
;; clause by converting the left-hand side into a key-in? test.
(define-for-syntax (rewrite-case-clause key-ref clause)
  (syntax-case clause (else)
    [(else body ...) clause]
    [((k ...) body ...)
     ;; Take this branch if the key expression is eqv? to some element of
     ;; the list of constants.
     #`((key-in? #,key-ref '(k ...)) body ...)]))

;; Compile-time helpers for decision provenance. The weight of a case
;; clause is the weight of its first body expression — exactly what the
;; inner exclusive-cond consults after rewriting — so the order recorded
;; here is the order exclusive-cond will produce (the profiler's read log
;; de-duplicates points, so querying them twice is harmless).
(define-for-syntax (case-else-clause? clause)
  (syntax-case clause (else)
    [(else body ...) #t]
    [_ #f]))

(define-for-syntax (case-clause-label clause)
  (syntax-case clause ()
    [((k ...) body ...) #'(k ...)]))

(define-for-syntax (case-clause-weight clause)
  (syntax-case clause ()
    [((k ...) e1 e2 ...) (profile-query #'e1)]
    [_ 0.0]))

(define-syntax (case stx)
  ;; Start of code transformation.
  (syntax-case stx ()
    [(_ key-expr clause ...)
     (let* ([clauses (syntax->list #'(clause ...))]
            [ordinary (filter (lambda (c) (not (case-else-clause? c)))
                              clauses)])
       ;; Decision provenance: key sets with the weights the rewritten
       ;; clauses will carry, in the order exclusive-cond will emit them.
       (record-optimization-decision "case" stx
         (map (lambda (c) (cons (case-clause-label c) (case-clause-weight c)))
              ordinary)
         (map case-clause-label (sort-by ordinary > case-clause-weight)))
       ;; Evaluate the key-expr only once, instead of copying the entire
       ;; expression into the template.
       #`(let ([t key-expr])
           (exclusive-cond
            ;; Transform each case clause into an exclusive-cond clause.
            #,@(map (curry rewrite-case-clause #'t) clauses))))]))
