;; §6.3, Figure 14 — the self-specializing sequence datatype.
;;
;; Beyond the recommendations of the profiled list/vector libraries, the
;; sequence constructor *acts* on the profile: at compile time each
;; instance specializes to a linked-list or vector representation depending
;; on which operation class dominated the instance's previous profile.
;; Programmers opt in by writing (profiled-sequence e ...) and using the
;; generic seq-* operations; no other code changes are needed.

(define-for-syntax (instrument-call op-stx pt)
  #`(lambda args (apply #,(annotate-expr op-stx pt) args)))

;; Vector helpers shared with the profiled-vector library (re-defined here
;; so this library is independently loadable).
(define (seq-vector-first v) (vector-ref v 0))

(define (seq-vector-rest v)
  (let* ([n (vector-length v)]
         [out (make-vector (- n 1) 0)])
    (let loop ([i 1])
      (if (= i n)
          out
          (begin
            (vector-set! out (- i 1) (vector-ref v i))
            (loop (add1 i)))))))

(define (seq-vector-cons x v)
  (let* ([n (vector-length v)]
         [out (make-vector (+ n 1) 0)])
    (vector-set! out 0 x)
    (let loop ([i 0])
      (if (= i n)
          out
          (begin
            (vector-set! out (+ i 1) (vector-ref v i))
            (loop (add1 i)))))))

;; ----- runtime representation ----------------------------------------------

(define (make-seq kind ops data)
  (let ([rep (make-eq-hashtable)])
    (hashtable-set! rep 'kind kind)
    (hashtable-set! rep 'ops ops)
    (hashtable-set! rep 'data data)
    rep))

;; Which representation this instance specialized to: 'list or 'vector.
(define (seq-kind s) (hashtable-ref s 'kind #f))
(define (seq-ops s) (hashtable-ref s 'ops #f))
(define (seq-data s) (hashtable-ref s 'data #f))
(define (seq-op s name) (hashtable-ref (seq-ops s) name #f))

;; List-fast generic operations.
(define (seq-first s) ((seq-op s 'first) (seq-data s)))
(define (seq-rest s)
  (make-seq (seq-kind s) (seq-ops s) ((seq-op s 'rest) (seq-data s))))
(define (seq-cons x s)
  (make-seq (seq-kind s) (seq-ops s) ((seq-op s 'cons) x (seq-data s))))

;; Vector-fast generic operations.
(define (seq-ref s i) ((seq-op s 'ref) (seq-data s) i))
(define (seq-length s) ((seq-op s 'length) (seq-data s)))

(define (seq->list s)
  (if (eqv? (seq-kind s) 'list) (seq-data s) (vector->list (seq-data s))))

;; ----- the self-specializing constructor (Figure 14) ------------------------

(define-syntax (profiled-sequence stx)
  ;; Fresh profile points per instance, as in the profiled list.
  (define list-src (make-profile-point))
  (define vector-src (make-profile-point))
  (syntax-case stx ()
    [(_ init ...)
     ;; Conditionally generate wrapped versions of the list *or* vector
     ;; operations, and represent the underlying data using a list *or*
     ;; vector, depending on the profile information.
     (let ([lw (profile-query list-src)]
           [vw (profile-query vector-src)])
       ;; Decision provenance: both representation weights and the winner.
       (record-optimization-decision "datastructure" stx
         (list (cons "list" lw) (cons "vector" vw))
         (list (if (>= lw vw) "list" "vector")))
     (if (>= lw vw)
         #`(make-seq 'list
             (let ([ht (make-eq-hashtable)])
               (hashtable-set! ht 'first #,(instrument-call #'car list-src))
               (hashtable-set! ht 'rest #,(instrument-call #'cdr list-src))
               (hashtable-set! ht 'cons #,(instrument-call #'cons list-src))
               (hashtable-set! ht 'ref #,(instrument-call #'list-ref vector-src))
               (hashtable-set! ht 'length #,(instrument-call #'length vector-src))
               ht)
             (list init ...))
         #`(make-seq 'vector
             (let ([ht (make-eq-hashtable)])
               (hashtable-set! ht 'first #,(instrument-call #'seq-vector-first list-src))
               (hashtable-set! ht 'rest #,(instrument-call #'seq-vector-rest list-src))
               (hashtable-set! ht 'cons #,(instrument-call #'seq-vector-cons list-src))
               (hashtable-set! ht 'ref #,(instrument-call #'vector-ref vector-src))
               (hashtable-set! ht 'length #,(instrument-call #'vector-length vector-src))
               ht)
             (vector init ...))))]))
