;; §6.3, Figure 13 — a profiled list library.
;;
;; Each profiled-list instance carries a table of *instrumented* calls to
;; the underlying list operations. The constructor generates two fresh
;; profile points per instance: one counts operations that are
;; asymptotically fast on lists (car/cdr/cons), the other counts operations
;; that are asymptotically fast on vectors (random access, length). When
;; profile data from an earlier run shows the vector-fast operations
;; dominating, the constructor emits a compile-time warning recommending a
;; representation change — the Perflint-style recommendation.

;; Compile-time helper: a wrapper procedure whose body is the annotated
;; operation reference, so every call bumps the profile point's counter.
(define-for-syntax (instrument-call op-stx pt)
  #`(lambda args (apply #,(annotate-expr op-stx pt) args)))

;; ----- runtime representation ----------------------------------------------

(define (make-plist ops data)
  (let ([rep (make-eq-hashtable)])
    (hashtable-set! rep 'ops ops)
    (hashtable-set! rep 'data data)
    rep))

(define (plist? x)
  (if (hashtable? x) (hashtable-contains? x 'ops) #f))

(define (plist-ops rep) (hashtable-ref rep 'ops #f))
(define (plist-data rep) (hashtable-ref rep 'data '()))
(define (plist-op rep name) (hashtable-ref (plist-ops rep) name #f))

;; List-fast operations.
(define (plist-car rep) ((plist-op rep 'car) (plist-data rep)))
(define (plist-cdr rep)
  (make-plist (plist-ops rep) ((plist-op rep 'cdr) (plist-data rep))))
(define (plist-cons x rep)
  (make-plist (plist-ops rep) ((plist-op rep 'cons) x (plist-data rep))))
(define (plist-null? rep) (null? (plist-data rep)))

;; Vector-fast operations.
(define (plist-ref rep i) ((plist-op rep 'ref) (plist-data rep) i))
(define (plist-length rep) ((plist-op rep 'length) (plist-data rep)))

(define (plist->list rep) (plist-data rep))

;; ----- the constructor meta-program (Figure 13) -----------------------------

(define-syntax (profiled-list stx)
  ;; Create fresh profile points, one pair per constructor instance:
  ;; list-src profiles operations that are asymptotically fast on lists,
  ;; vector-src profiles operations that are asymptotically fast on
  ;; vectors.
  (define list-src (make-profile-point))
  (define vector-src (make-profile-point))
  (syntax-case stx ()
    [(_ init ...)
     (begin
       (unless (>= (profile-query list-src) (profile-query vector-src))
         ;; Prints at compile time.
         (warn "WARNING: You should probably reimplement this list as a vector: ~a"
               (syntax->datum stx)))
       #`(make-plist
          ;; Build a hash table of instrumented calls to list operations:
          ;; the table maps the operation name to a profiled call to the
          ;; built-in operation.
          (let ([ht (make-eq-hashtable)])
            (hashtable-set! ht 'car #,(instrument-call #'car list-src))
            (hashtable-set! ht 'cdr #,(instrument-call #'cdr list-src))
            (hashtable-set! ht 'cons #,(instrument-call #'cons list-src))
            (hashtable-set! ht 'ref #,(instrument-call #'list-ref vector-src))
            (hashtable-set! ht 'length #,(instrument-call #'length vector-src))
            ht)
          (list init ...)))]))
