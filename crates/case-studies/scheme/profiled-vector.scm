;; §6.3 — the profiled vector library, the analogue of Figure 13 for
;; vectors: random access and length are the cheap operations; prepending
;; and iterating head/tail style are the operations a list would make
;; cheap. When list-fast operations dominate the profile, the constructor
;; warns that a list representation may be better.

(define-for-syntax (instrument-call op-stx pt)
  #`(lambda args (apply #,(annotate-expr op-stx pt) args)))

;; ----- helpers the instrumented table closes over ---------------------------

(define (vector-first v) (vector-ref v 0))

(define (vector-rest v)
  (let* ([n (vector-length v)]
         [out (make-vector (- n 1) 0)])
    (let loop ([i 1])
      (if (= i n)
          out
          (begin
            (vector-set! out (- i 1) (vector-ref v i))
            (loop (add1 i)))))))

(define (vector-cons-front x v)
  (let* ([n (vector-length v)]
         [out (make-vector (+ n 1) 0)])
    (vector-set! out 0 x)
    (let loop ([i 0])
      (if (= i n)
          out
          (begin
            (vector-set! out (+ i 1) (vector-ref v i))
            (loop (add1 i)))))))

;; ----- runtime representation ----------------------------------------------

(define (make-pvec ops data)
  (let ([rep (make-eq-hashtable)])
    (hashtable-set! rep 'ops ops)
    (hashtable-set! rep 'data data)
    rep))

(define (pvec-ops rep) (hashtable-ref rep 'ops #f))
(define (pvec-data rep) (hashtable-ref rep 'data #f))
(define (pvec-op rep name) (hashtable-ref (pvec-ops rep) name #f))

;; Vector-fast operations.
(define (pvec-ref rep i) ((pvec-op rep 'ref) (pvec-data rep) i))
(define (pvec-set! rep i v) ((pvec-op rep 'set) (pvec-data rep) i v))
(define (pvec-length rep) ((pvec-op rep 'length) (pvec-data rep)))

;; List-fast operations.
(define (pvec-first rep) ((pvec-op rep 'first) (pvec-data rep)))
(define (pvec-rest rep)
  (make-pvec (pvec-ops rep) ((pvec-op rep 'rest) (pvec-data rep))))
(define (pvec-cons x rep)
  (make-pvec (pvec-ops rep) ((pvec-op rep 'cons) x (pvec-data rep))))

(define (pvec->vector rep) (pvec-data rep))

;; ----- the constructor meta-program -----------------------------------------

(define-syntax (profiled-vector stx)
  (define list-src (make-profile-point))
  (define vector-src (make-profile-point))
  (syntax-case stx ()
    [(_ init ...)
     (begin
       (unless (>= (profile-query vector-src) (profile-query list-src))
         (warn "WARNING: You should probably reimplement this vector as a list: ~a"
               (syntax->datum stx)))
       #`(make-pvec
          (let ([ht (make-eq-hashtable)])
            (hashtable-set! ht 'ref #,(instrument-call #'vector-ref vector-src))
            (hashtable-set! ht 'set #,(instrument-call #'vector-set! vector-src))
            (hashtable-set! ht 'length #,(instrument-call #'vector-length vector-src))
            (hashtable-set! ht 'first #,(instrument-call #'vector-first list-src))
            (hashtable-set! ht 'rest #,(instrument-call #'vector-rest list-src))
            (hashtable-set! ht 'cons #,(instrument-call #'vector-cons-front list-src))
            ht)
          (vector init ...)))]))
