;; Extension case study — profile-guided function inlining.
;;
;; The paper's introduction motivates PGO with profile-guided *inlining*
;; (Arnold et al.: up to 59% over static heuristics in Java). This library
;; shows the same optimization as a user-level meta-program in our design:
;;
;;   (define-inlinable (f x) body ...)   — defines f and records its source
;;   (inline-call f e ...)               — a call site that, when its own
;;                                         profile weight is at least the
;;                                         inline threshold, splices f's
;;                                         body with arguments let-bound;
;;                                         otherwise emits a normal call.
;;
;; Profile points: the call site's *own* source object is the profile
;; point (every expression is profiled under the Chez model), so no fresh
;; points are needed and the decision is stable across compilations.
;;
;; Self-recursive functions are inlined one level: occurrences of
;; (inline-call f ...) for f itself inside the spliced body are rewritten
;; to direct calls. (Mutually-recursive inlinables can still expand
;; repeatedly; the expander's step budget reports such loops.)

(begin-for-syntax
  (define inline-registry '())
  (define inline-threshold-value 0.4))

(define-for-syntax (inline-register! name params bodies)
  (set! inline-registry (cons (list name params bodies) inline-registry)))

(define-for-syntax (inline-lookup name) (assq name inline-registry))
(define-for-syntax (inline-threshold) inline-threshold-value)
(define-for-syntax (set-inline-threshold! t) (set! inline-threshold-value t))

;; Rewrites (inline-call nm a ...) to (nm a ...) throughout stx, so a
;; spliced body of nm cannot re-inline itself.
(define-for-syntax (strip-self-inline nm stx)
  (let ([elems (syntax->list stx)])
    (cond
      [(not elems) stx]
      [(null? elems) stx]
      [(and (identifier? (car elems))
            (eqv? (syntax->datum (car elems)) 'inline-call)
            (pair? (cdr elems))
            (identifier? (cadr elems))
            (eqv? (syntax->datum (cadr elems)) nm))
       #`(#,(cadr elems)
          #,@(map (lambda (e) (strip-self-inline nm e)) (cddr elems)))]
      [else
       #`(#,@(map (lambda (e) (strip-self-inline nm e)) elems))])))

(define-syntax (define-inlinable stx)
  (syntax-case stx ()
    [(_ (name param ...) body ...)
     (begin
       (inline-register! (syntax->datum #'name)
                         (syntax->list #'(param ...))
                         (map (lambda (b)
                                (strip-self-inline (syntax->datum #'name) b))
                              (syntax->list #'(body ...))))
       #'(define (name param ...) body ...))]))

;; Emits a plain call that carries the *call site's* source object, so the
;; profiler attributes its executions to this site (template-built syntax
;; would otherwise carry the template's location, merging all sites).
(define-for-syntax (inline-plain-call site call-stx)
  (let ([src (syntax-source site)])
    (if (source-object? src)
        (annotate-expr call-stx src)
        call-stx)))

(define-syntax (inline-call stx)
  (syntax-case stx ()
    [(_ name arg ...)
     (let ([entry (inline-lookup (syntax->datum #'name))]
           [args (syntax->list #'(arg ...))])
       (cond
         ;; Unknown function: plain call.
         [(not entry) (inline-plain-call stx #'(name arg ...))]
         ;; Hot call site with matching arity: splice the body.
         [(and (profile-data-available?)
               (>= (profile-query stx) (inline-threshold))
               (= (length (cadr entry)) (length args)))
          (let ([params (cadr entry)]
                [bodies (caddr entry)])
            #`(let (#,@(map (lambda (p a) #`(#,p #,a)) params args))
                #,@bodies))]
         ;; Cold (or unprofiled, or arity mismatch): plain call.
         [else (inline-plain-call stx #'(name arg ...))]))]))
