;; §6.1, Figure 7 — exclusive-cond: a multi-way conditional branch like
;; cond, except the programmer asserts the clauses are mutually exclusive,
;; which lets the meta-program reorder them by profile weight. An optional
;; else clause is never reordered (it stays last).

(define-syntax (exclusive-cond stx)
  ;; Internal definitions run at compile time.
  (define (else-clause? clause)
    (syntax-case clause (else)
      [(else body ...) #t]
      [_ #f]))
  (define (clause-weight clause)
    (syntax-case clause ()
      ;; Weight of a clause is the weight of its first body expression.
      [(test e1 e2 ...) (profile-query #'e1)]
      ;; (test) clauses are weighted by the test itself.
      [(test) (profile-query #'test)]))
  (define (sort-clauses clause*)
    ;; Sort clauses greatest-to-least by weight; stable, so clauses with
    ;; equal weights keep their source order.
    (sort-by clause* > clause-weight))
  (define (clause-label clause)
    ;; A clause is identified by its test expression.
    (syntax-case clause ()
      [(test e ...) #'test]))
  ;; Start of code transformation.
  (syntax-case stx ()
    [(_ clause ...)
     (let* ([clauses (syntax->list #'(clause ...))]
            [els (filter else-clause? clauses)]
            [ordinary (filter (lambda (c) (not (else-clause? c))) clauses)]
            [sorted (sort-clauses ordinary)])
       ;; Decision provenance: every clause with the weight consulted, and
       ;; the order that won (no-op unless a trace is being recorded).
       (record-optimization-decision "exclusive-cond" stx
         (map (lambda (c) (cons (clause-label c) (clause-weight c))) ordinary)
         (map clause-label sorted))
       ;; Splice sorted clauses into a cond expression.
       #`(cond #,@sorted #,@els))]))
