;; §6.2, Figures 9–12 — an object system DSL with profile-guided receiver
;; class prediction (polymorphic inline caching).
;;
;; `class` registers each class (fields + method source) in an expand-time
;; registry and defines the runtime class value. `method` is the
;; profile-guided meta-program: with no profile data it instruments every
;; call site with one fresh profile point per class (Figure 11, top); with
;; profile data it inlines the method bodies of the most frequently seen
;; classes, most frequent first (Figure 12), falling back to dynamic
;; dispatch.

;; ----- expand-time class registry -----------------------------------------

(begin-for-syntax
  (define oo-class-registry '())
  (define oo-inline-limit-value 2))

(define-for-syntax (oo-register-class! name fields methods)
  (set! oo-class-registry
        (append oo-class-registry (list (list name fields methods)))))

(define-for-syntax (oo-all-classes) oo-class-registry)
(define-for-syntax (oo-inline-limit) oo-inline-limit-value)
(define-for-syntax (set-oo-inline-limit! n) (set! oo-inline-limit-value n))
(define-for-syntax (oo-entry-name entry) (car entry))
(define-for-syntax (oo-entry-methods entry) (caddr entry))

;; ----- runtime object representation ---------------------------------------

(define (make-class name fields defaults methods)
  (let ([cls (make-eq-hashtable)])
    (hashtable-set! cls 'class-name name)
    (hashtable-set! cls 'fields fields)
    (hashtable-set! cls 'defaults defaults)
    (hashtable-set! cls 'methods methods)
    cls))

;; (new cls v ...) — field values in declaration order; defaults when
;; omitted.
(define (new cls . field-values)
  (let ([obj (make-eq-hashtable)])
    (hashtable-set! obj 'class cls)
    (let loop ([fs (hashtable-ref cls 'fields '())]
               [vs (if (null? field-values)
                       (hashtable-ref cls 'defaults '())
                       field-values)])
      (unless (null? fs)
        (hashtable-set! obj (car fs) (car vs))
        (loop (cdr fs) (cdr vs))))
    obj))

(define (object-class obj) (hashtable-ref obj 'class #f))

(define (instance-of? obj class-name)
  (let ([cls (object-class obj)])
    (if cls
        (eqv? (hashtable-ref cls 'class-name #f) class-name)
        #f)))

(define (field-ref obj fname) (hashtable-ref obj fname #f))
(define (set-field! obj fname v) (hashtable-set! obj fname v))

;; (field obj name) — field access with an unquoted field name, as the
;; paper writes it: (field this length).
(define-syntax (field stx)
  (syntax-case stx ()
    [(_ obj fname) #'(field-ref obj 'fname)]))

(define (dynamic-dispatch obj mname . args)
  (let* ([cls (object-class obj)]
         [m (assq mname (hashtable-ref cls 'methods '()))])
    (if m
        (apply (cdr m) obj args)
        (error "no method" mname))))

;; The standard dynamic dispatch routine the instrumented multi-way branch
;; targets (Figure 11).
(define (instrumented-dispatch obj mname . args)
  (apply dynamic-dispatch obj mname args))

;; ----- the class definition macro ------------------------------------------

(define-syntax (class stx)
  (syntax-case stx ()
    [(_ name ((fname fdefault) ...) (defm (mname mparam ...) mbody ...) ...)
     (begin
       ;; Register the class at expand time, keeping the *syntax* of each
       ;; method so call sites can inline it.
       (oo-register-class!
        (syntax->datum #'name)
        (map syntax->datum (syntax->list #'(fname ...)))
        (map (lambda (mn ps bs)
               (cons (syntax->datum mn)
                     (list (syntax->list ps) (syntax->list bs))))
             (syntax->list #'(mname ...))
             (syntax->list #'((mparam ...) ...))
             (syntax->list #'((mbody ...) ...))))
       ;; Runtime class value with closed-over method procedures.
       #'(define name
           (make-class 'name
                       '(fname ...)
                       (list fdefault ...)
                       (list (cons 'mname (lambda (mparam ...) mbody ...))
                             ...))))]))

;; ----- compile-time helpers for `method` -----------------------------------

;; Instrumentation clause: test the class, then call the standard dynamic
;; dispatch through an expression annotated with this (class, call-site)
;; profile point.
(define-for-syntax (oo-instrument-clause x-ref m-datum val-stxs entry pt)
  #`((instance-of? #,x-ref '#,(datum->syntax x-ref (oo-entry-name entry)))
     #,(annotate-expr
        #`(instrumented-dispatch #,x-ref '#,(datum->syntax x-ref m-datum)
                                 #,@val-stxs)
        pt)))

;; Optimized clause: test the class and inline the method body, binding the
;; method parameters with let.
(define-for-syntax (oo-inline-clause x-ref m-datum val-stxs entry)
  (let ([m (assq m-datum (oo-entry-methods entry))])
    (if m
        (let* ([params (car (cdr m))]
               [bodies (cadr (cdr m))]
               [self-param (car params)]
               [rest-params (cdr params)])
          #`((instance-of? #,x-ref '#,(datum->syntax x-ref (oo-entry-name entry)))
             (let ([#,self-param #,x-ref]
                   #,@(map (lambda (p v) #`[#,p #,v]) rest-params val-stxs))
               #,@bodies)))
        ;; The class has no such method: keep dynamic dispatch.
        #`((instance-of? #,x-ref '#,(datum->syntax x-ref (oo-entry-name entry)))
           (dynamic-dispatch #,x-ref '#,(datum->syntax x-ref m-datum)
                             #,@val-stxs)))))

;; ----- the profile-guided method call macro (Figure 9) ---------------------

(define-syntax (method stx)
  (syntax-case stx ()
    [(_ obj m val ...)
     (let* ([entries (oo-all-classes)]
            ;; One fresh profile point per class, generated in registry
            ;; order — deterministic, so the optimizing compile regenerates
            ;; the same points the instrumented run counted.
            [pts (map (lambda (e) (make-profile-point)) entries)]
            [m-datum (syntax->datum #'m)]
            [val-stxs (syntax->list #'(val ...))])
       (if (not (profile-data-available?))
           ;; If no profile data, instrument!
           #`(let ([x obj])
               (cond
                 #,@(map (lambda (e pt)
                           (oo-instrument-clause #'x m-datum val-stxs e pt))
                         entries pts)
                 [else (dynamic-dispatch x 'm val ...)]))
           ;; If profile data, inline up to the top inline-limit classes
           ;; with non-zero weights, most frequent first (Figure 12).
           (let* ([weighted (map (lambda (e pt) (cons e (profile-query pt)))
                                 entries pts)]
                  [nonzero (filter (lambda (p) (> (cdr p) 0.0)) weighted)]
                  [sorted (sort nonzero (lambda (a b) (> (cdr a) (cdr b))))]
                  [top (take sorted (min (oo-inline-limit) (length sorted)))])
             ;; Decision provenance: every registered class with the weight
             ;; its call-site profile point reported, and which classes won
             ;; an inline slot (most frequent first).
             (record-optimization-decision "receiver-prediction" stx
               (map (lambda (p) (cons (oo-entry-name (car p)) (cdr p)))
                    weighted)
               (map (lambda (p) (oo-entry-name (car p))) top))
             #`(let ([x obj])
                 (cond
                   #,@(map (lambda (p)
                             (oo-inline-clause #'x m-datum val-stxs (car p)))
                           top)
                   ;; Fall back to dynamic dispatch.
                   [else (dynamic-dispatch x 'm val ...)])))))]))
