;; §2, Figure 1 — the running example: a profile-guided `if` that orders
;; its branches by how likely they are to be executed.
;;
;; When the false branch is hotter than the true branch, if-r negates the
;; test and swaps the branches (producing Figure 2's output); otherwise it
;; generates the if unchanged.

(define-syntax (if-r stx)
  (syntax-case stx ()
    [(if-r test t-branch f-branch)
     ;; This let expression runs at compile time.
     (let ([t-prof (profile-query #'t-branch)]
           [f-prof (profile-query #'f-branch)])
       ;; This cond expression runs at compile time, and conditionally
       ;; generates run-time code based on profile information.
       (cond
         [(< t-prof f-prof)
          ;; This if expression would run at run time when generated.
          #'(if (not test) f-branch t-branch)]
         [(>= t-prof f-prof)
          ;; So would this if expression.
          #'(if test t-branch f-branch)]))]))
