//! End-to-end test of the fleet profile daemon: a real `pgmp-profiled`
//! process, several concurrent `pgmp-run --publish` writers with skewed
//! workloads, a `--subscribe` consumer that re-optimizes from fleet
//! drift, and an oracle comparing the daemon's canonical profile against
//! the offline `pgmp-profile merge` of the writers' stored profiles.
//!
//! The writers must present *identical slot tables* (the daemon refuses
//! incompatible tables at handshake) yet run *skewed workloads*. Slot
//! tables derive from source positions, so each writer runs the same
//! relative path `prog.scm` from its own working directory, with program
//! texts that differ only in same-width numeric literals: identical
//! byte offsets, identical points, different behavior.

use pgmp_observe::{merge_traces, read_trace_lenient, EventKind, TraceEvent};
use pgmp_profiler::StoredProfile;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

/// The shared fleet program. Every writer gets this text with `lo`/`hi`
/// spliced in as exactly-three-digit literals, so the annotated source
/// positions — and therefore the slot table — are identical across the
/// fleet while the `case` key distribution is not.
fn program(lo: u32, hi: u32) -> String {
    assert!((100..1000).contains(&lo) && (100..1000).contains(&hi));
    format!(
        "(define (bucket n)
  (case (quotient n 100)
    [(3 4) 'low]
    [(5 6) 'mid]
    [(7 8) 'high]
    [else 'other]))
(let loop ([i {lo}] [lows 0])
  (if (= i {hi}) lows
      (loop (add1 i) (if (eqv? (bucket i) 'low) (add1 lows) lows))))"
    )
}

/// A sibling binary of `pgmp-run` in the same target directory. Only the
/// crate that defines a bin gets a `CARGO_BIN_EXE_*` env var, so the
/// daemon and profile tools are located relative to the one we do have.
fn sibling_bin(name: &str) -> PathBuf {
    Path::new(env!("CARGO_BIN_EXE_pgmp-run"))
        .parent()
        .expect("bin dir")
        .join(name)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pgmp-fleet-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn pgmp_run_in(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pgmp-run"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("pgmp-run spawns")
}

/// Kills the daemon if the test panics before the orderly shutdown.
struct DaemonGuard(Option<Child>);

impl DaemonGuard {
    /// Waits for exit, polling; panics if the daemon outlives the deadline.
    fn wait(mut self) -> Output {
        let mut child = self.0.take().unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while child.try_wait().expect("daemon wait").is_none() {
            assert!(Instant::now() < deadline, "daemon did not exit after shutdown request");
            std::thread::sleep(Duration::from_millis(20));
        }
        child.wait_with_output().expect("daemon output")
    }
}

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        if let Some(child) = self.0.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn_daemon(socket: &Path, profile: &Path) -> DaemonGuard {
    let child = Command::new(sibling_bin("pgmp-profiled"))
        .args(["serve", "--socket"])
        .arg(socket)
        .arg("--profile")
        .arg(profile)
        .args(["--interval-ms", "40"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("pgmp-profiled spawns");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {}", socket.display());
        std::thread::sleep(Duration::from_millis(10));
    }
    DaemonGuard(Some(child))
}

#[test]
fn fleet_daemon_merges_three_skewed_writers_and_drives_a_subscriber() {
    if !sibling_bin("pgmp-profiled").exists() {
        // Only reachable under a `-p pgmp-case-studies` invocation that
        // skipped building the daemon crate's bin; the workspace run
        // (tier 1) always builds it.
        eprintln!("skipping: pgmp-profiled binary not built");
        return;
    }
    let dir = scratch("e2e");
    let socket = dir.join("fleet.sock");
    let fleet_profile = dir.join("fleet.pgmp");
    let daemon = spawn_daemon(&socket, &fleet_profile);

    // Three writers over disjoint 300-element ranges of the same `case`
    // dispatch: low-heavy, mid-heavy, and high-heavy. `lows` printed at
    // the end pins each workload's skew observably.
    let writers = [(300u32, 600u32, "200"), (500, 800, "0"), (600, 900, "0")];
    let mut children = Vec::new();
    for (i, (lo, hi, _)) in writers.iter().enumerate() {
        let wdir = dir.join(format!("w{i}"));
        std::fs::create_dir_all(&wdir).unwrap();
        std::fs::write(wdir.join("prog.scm"), program(*lo, *hi)).unwrap();
        let child = Command::new(env!("CARGO_BIN_EXE_pgmp-run"))
            .current_dir(&wdir)
            .args(["--libs", "case", "--instrument", "every", "--publish"])
            .arg(&socket)
            .args(["--store", "local.pgmp", "--store-format", "2", "prog.scm"])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("writer spawns");
        children.push(child);
    }
    for (child, (_, _, lows)) in children.into_iter().zip(&writers) {
        let out = child.wait_with_output().expect("writer output");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "{stderr}");
        assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), *lows);
        assert!(stderr.contains("fleet: published"), "{stderr}");
    }

    // The subscriber's local workload matches writer 0 (low-heavy), but
    // the fleet aggregate is mid-heavy — drift it can only learn about
    // from the daemon's broadcasts.
    let sdir = dir.join("sub");
    std::fs::create_dir_all(&sdir).unwrap();
    std::fs::write(sdir.join("prog.scm"), program(300, 600)).unwrap();
    let out = pgmp_run_in(
        &sdir,
        &[
            "--libs", "case",
            "--adaptive", "--epochs", "3", "--threads", "1", "--epoch-ms", "120",
            "--drift-threshold", "0.02",
            "--subscribe", socket.to_str().unwrap(),
            "prog.scm",
        ],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("fleet: subscribed to"), "{stderr}");
    assert!(
        stderr
            .lines()
            .any(|l| l.starts_with("fleet: epoch") && l.contains("REOPTIMIZED generation")),
        "subscriber never re-optimized from fleet drift:\n{stderr}"
    );

    // Orderly shutdown: the daemon final-merges, writes the canonical
    // profile, and exits.
    let out = Command::new(sibling_bin("pgmp-profiled"))
        .args(["shutdown", "--socket"])
        .arg(&socket)
        .output()
        .expect("shutdown spawns");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = daemon.wait();
    let dstderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{dstderr}");
    assert!(dstderr.contains("shut down after"), "{dstderr}");

    // Oracle: the daemon's live ingestion must equal the offline
    // `pgmp-profile merge` of the writers' own stored v2 profiles —
    // same §3.2 dataset-weighted rule, same typed slot-table gate.
    let offline = dir.join("offline.pgmp");
    let out = Command::new(sibling_bin("pgmp-profile"))
        .args(["merge", "--to", "2", "-o"])
        .arg(&offline)
        .args(
            (0..writers.len())
                .map(|i| dir.join(format!("w{i}/local.pgmp")))
                .collect::<Vec<_>>(),
        )
        .output()
        .expect("pgmp-profile spawns");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let fleet = StoredProfile::load_file(&fleet_profile).expect("canonical profile parses");
    let merged = StoredProfile::load_file(&offline).expect("offline merge parses");
    assert_eq!(fleet.version, 2);
    assert!(fleet.slots.as_ref().is_some_and(|t| !t.is_empty()), "canonical profile carries the fleet slot table");
    assert_eq!(fleet.info.dataset_count(), 3);
    assert_eq!(merged.info.dataset_count(), 3);
    let mut points: Vec<_> = fleet
        .info
        .iter()
        .map(|(p, _)| p)
        .chain(merged.info.iter().map(|(p, _)| p))
        .collect();
    points.sort();
    points.dedup();
    assert!(!points.is_empty());
    for p in points {
        let live = fleet.info.weight(p);
        let offline = merged.info.weight(p);
        assert!(
            (live - offline).abs() < 1e-9,
            "daemon and offline merge disagree at {p}: {live} vs {offline}"
        );
    }
}

/// Reads a trace file, failing the test on any corrupt line (these are
/// freshly recorded, so leniency would only hide a writer bug).
fn load_trace(path: &Path) -> Vec<TraceEvent> {
    let (events, errors) = read_trace_lenient(path).expect("trace file reads");
    assert!(errors.is_empty(), "corrupt lines in {}: {errors:?}", path.display());
    assert!(!events.is_empty(), "{} recorded no events", path.display());
    events
}

/// The full causal-observability loop across real processes: a traced
/// daemon, a traced publisher, and a traced subscriber — each pinned to
/// a known instance id via `PGMP_INSTANCE_ID` — produce three JSONL
/// files that `merge_traces` interleaves into one timeline where the
/// publisher's delta precedes the daemon's ingest, the daemon's
/// handshake precedes the peer's connect, and the daemon's merge
/// precedes the subscriber's apply. The `pgmp-trace` CLI must agree
/// with the library merge byte for byte, and the flame export must
/// attribute frames to the right processes.
#[test]
fn merged_fleet_traces_form_one_causal_timeline() {
    if !sibling_bin("pgmp-profiled").exists() || !sibling_bin("pgmp-trace").exists() {
        eprintln!("skipping: sibling binaries not built");
        return;
    }
    const DAEMON_INST: u64 = 9001;
    const WRITER_INST: u64 = 9101;
    const SUB_INST: u64 = 9301;
    let dir = scratch("trace-merge");
    let socket = dir.join("fleet.sock");
    let profile = dir.join("fleet.pgmp");
    let daemon_trace = dir.join("daemon.jsonl");

    let child = Command::new(sibling_bin("pgmp-profiled"))
        .args(["serve", "--socket"])
        .arg(&socket)
        .arg("--profile")
        .arg(&profile)
        .args(["--interval-ms", "40", "--trace"])
        .arg(&daemon_trace)
        .env("PGMP_INSTANCE_ID", DAEMON_INST.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("pgmp-profiled spawns");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {}", socket.display());
        std::thread::sleep(Duration::from_millis(10));
    }
    let daemon = DaemonGuard(Some(child));

    // One mid-heavy writer: the subscriber's low-heavy local profile
    // must drift against the fleet aggregate it publishes.
    let wdir = dir.join("writer");
    std::fs::create_dir_all(&wdir).unwrap();
    std::fs::write(wdir.join("prog.scm"), program(500, 800)).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pgmp-run"))
        .current_dir(&wdir)
        .args(["--libs", "case", "--instrument", "every", "--publish"])
        .arg(&socket)
        .args(["--trace", "trace.jsonl", "prog.scm"])
        .env("PGMP_INSTANCE_ID", WRITER_INST.to_string())
        .output()
        .expect("writer spawns");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("fleet: published"), "{stderr}");

    let sdir = dir.join("sub");
    std::fs::create_dir_all(&sdir).unwrap();
    std::fs::write(sdir.join("prog.scm"), program(300, 600)).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pgmp-run"))
        .current_dir(&sdir)
        .args([
            "--libs", "case",
            "--adaptive", "--epochs", "3", "--threads", "1", "--epoch-ms", "120",
            "--drift-threshold", "0.02",
            "--subscribe",
        ])
        .arg(&socket)
        .args(["--trace", "trace.jsonl", "prog.scm"])
        .env("PGMP_INSTANCE_ID", SUB_INST.to_string())
        .output()
        .expect("subscriber spawns");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("fleet: subscribed to"), "{stderr}");

    let out = Command::new(sibling_bin("pgmp-profiled"))
        .args(["shutdown", "--socket"])
        .arg(&socket)
        .output()
        .expect("shutdown spawns");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = daemon.wait();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let writer_trace = wdir.join("trace.jsonl");
    let sub_trace = sdir.join("trace.jsonl");
    let traces = vec![
        load_trace(&daemon_trace),
        load_trace(&writer_trace),
        load_trace(&sub_trace),
    ];
    // Every event carries its recorder's pinned instance id.
    for (trace, inst) in traces.iter().zip([DAEMON_INST, WRITER_INST, SUB_INST]) {
        assert!(trace.iter().all(|e| e.inst == inst), "wrong inst stamps for {inst}");
    }

    let merged = merge_traces(&traces).expect("fleet traces merge");
    assert_eq!(merged.deduped, 0);
    assert!(
        merged.cross_edges >= 3,
        "expected handshake + delta + apply edges, got {}",
        merged.cross_edges
    );
    let pos = |pred: &dyn Fn(&TraceEvent) -> bool| merged.events.iter().position(|e| pred(e));

    // Handshake: the daemon greeted the writer before the writer's
    // fleet_connect (it only fires after reading the Ack).
    let hello = pos(&|e| {
        e.inst == DAEMON_INST
            && matches!(&e.kind, EventKind::FleetHello { role, peer_inst, .. }
                if role == "publisher" && *peer_inst == WRITER_INST)
    })
    .expect("daemon recorded the writer's handshake");
    let connect = pos(&|e| {
        e.inst == WRITER_INST
            && matches!(&e.kind, EventKind::FleetConnect { role, daemon_inst, .. }
                if role == "publisher" && *daemon_inst == DAEMON_INST)
    })
    .expect("writer recorded its fleet_connect");
    assert!(hello < connect, "hello at {hello} must precede connect at {connect}");

    // Delta: the writer's first publish precedes the daemon's first
    // ingest of it, joined on (peer_inst, epoch).
    let publish = pos(&|e| {
        e.inst == WRITER_INST && matches!(e.kind, EventKind::PublishDelta { epoch: 1, .. })
    })
    .expect("writer recorded publish_delta");
    let ingest = pos(&|e| {
        e.inst == DAEMON_INST
            && matches!(e.kind, EventKind::IngestBatch { epoch: 1, peer_inst, .. }
                if peer_inst == WRITER_INST)
    })
    .expect("daemon recorded the ingest of the writer's delta");
    assert!(publish < ingest, "publish at {publish} must precede ingest at {ingest}");

    // Apply: whichever merge epoch the subscriber consumed, the daemon's
    // merge event for it comes first in the merged timeline.
    let (apply, apply_epoch) = merged
        .events
        .iter()
        .enumerate()
        .find_map(|(i, e)| match &e.kind {
            EventKind::FleetApply { daemon_inst, epoch, .. }
                if e.inst == SUB_INST && *daemon_inst == DAEMON_INST =>
            {
                Some((i, *epoch))
            }
            _ => None,
        })
        .expect("subscriber recorded fleet_apply");
    let merge = pos(&|e| {
        e.inst == DAEMON_INST
            && matches!(e.kind, EventKind::Merge { epoch, .. } if epoch == apply_epoch)
    })
    .expect("daemon recorded the merge the subscriber applied");
    assert!(merge < apply, "merge at {merge} must precede apply at {apply}");

    // The CLI agrees with the library, file for file.
    let merged_path = dir.join("merged.jsonl");
    let out = Command::new(sibling_bin("pgmp-trace"))
        .arg("merge")
        .arg(&daemon_trace)
        .arg(&writer_trace)
        .arg(&sub_trace)
        .arg("-o")
        .arg(&merged_path)
        .output()
        .expect("pgmp-trace spawns");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cross-process edge"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(load_trace(&merged_path), merged.events);

    // And the flame export attributes frames per process.
    let out = Command::new(sibling_bin("pgmp-trace"))
        .arg("flame")
        .arg(&merged_path)
        .output()
        .expect("pgmp-trace spawns");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let flame = String::from_utf8_lossy(&out.stdout);
    assert!(flame.contains(&format!("process:{DAEMON_INST};")), "{flame}");
    assert!(flame.contains(&format!("process:{SUB_INST};")), "{flame}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn offline_merge_refuses_aliasing_slot_tables_like_the_daemon() {
    let dir = scratch("merge-gate");
    let a = dir.join("a.pgmp");
    let b = dir.join("b.pgmp");
    std::fs::write(
        &a,
        "(pgmp-profile (version 2) (datasets 1) (slots 1) (slot 0 \"x.scm\" 0 1 1.0))",
    )
    .unwrap();
    std::fs::write(
        &b,
        "(pgmp-profile (version 2) (datasets 1) (slots 1) (slot 0 \"y.scm\" 4 9 1.0))",
    )
    .unwrap();
    let out = Command::new(sibling_bin("pgmp-profile"))
        .args(["merge", "-o"])
        .arg(dir.join("out.pgmp"))
        .arg(&a)
        .arg(&b)
        .output()
        .expect("pgmp-profile spawns");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("incompatible slot tables"), "{stderr}");
    assert!(stderr.contains("slot 0"), "{stderr}");
}

#[test]
fn diff_explains_movers_through_recorded_consultations() {
    let dir = scratch("diff-explain");
    std::fs::write(dir.join("prog.scm"), program(300, 600)).unwrap();

    // A low-heavy local profile, then an optimized+traced run under it:
    // expanding `case` queries each clause's weight, and those profile
    // queries are exactly the consultations diff --explain surfaces.
    let out = pgmp_run_in(
        &dir,
        &["--libs", "case", "--instrument", "every", "--store", "local.pgmp",
          "--store-format", "2", "prog.scm"],
    );
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = pgmp_run_in(
        &dir,
        &["--libs", "case", "--load", "local.pgmp", "--trace", "trace.jsonl", "prog.scm"],
    );
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // A mid-heavy profile to diff against, from a shifted range.
    let wdir = dir.join("shifted");
    std::fs::create_dir_all(&wdir).unwrap();
    std::fs::write(wdir.join("prog.scm"), program(500, 800)).unwrap();
    let out = pgmp_run_in(
        &wdir,
        &["--libs", "case", "--instrument", "every", "--store", "local.pgmp",
          "--store-format", "2", "prog.scm"],
    );
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = Command::new(sibling_bin("pgmp-profile"))
        .current_dir(&dir)
        .args(["diff", "--explain", "trace.jsonl", "local.pgmp", "shifted/local.pgmp"])
        .output()
        .expect("pgmp-profile spawns");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("top movers"), "{stdout}");
    // The clause bodies whose weights moved were consulted by the case
    // expansion's weight queries; at least one mover must show one.
    assert!(stdout.contains("profile-query"), "{stdout}");
    assert!(stdout.contains("drift:"), "{stdout}");
}
