//! End-to-end tests of the `pgmp-run` command-line driver.

use std::path::PathBuf;
use std::process::{Command, Output};

fn pgmp_run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pgmp-run"))
        .args(args)
        .output()
        .expect("pgmp-run spawns")
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join("pgmp-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_train_then_optimize_cycle() {
    let dir = tmpdir();
    let prog = dir.join("cycle.scm");
    let profile = dir.join("cycle.pgmp");
    std::fs::write(
        &prog,
        "(define (classify n) (if-r (< n 10) 'small 'big))
         (let loop ([i 0] [bigs 0])
           (if (= i 300) bigs
               (loop (add1 i) (if (eqv? (classify i) 'big) (add1 bigs) bigs))))",
    )
    .unwrap();

    // Train.
    let out = pgmp_run(&[
        "--libs",
        "if-r",
        "--instrument",
        "every",
        "--store",
        profile.to_str().unwrap(),
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "290");
    assert!(profile.exists());

    // Inspect the optimized expansion.
    let out = pgmp_run(&[
        "--libs",
        "if-r",
        "--load",
        profile.to_str().unwrap(),
        "--expand",
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("(if (not (< n 10)) (quote big) (quote small))"),
        "{stdout}"
    );

    // Run optimized.
    let out = pgmp_run(&[
        "--libs",
        "if-r",
        "--load",
        profile.to_str().unwrap(),
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "290");
}

#[test]
fn warnings_go_to_stderr() {
    let dir = tmpdir();
    let prog = dir.join("warn.scm");
    let profile = dir.join("warn.pgmp");
    std::fs::write(
        &prog,
        "(define p (profiled-list 1 2 3 4 5))
         (define (hammer n)
           (let loop ([i 0] [acc 0])
             (if (= i n) acc (loop (add1 i) (+ acc (plist-ref p (modulo i 5)))))))
         (hammer 200)",
    )
    .unwrap();
    let out = pgmp_run(&[
        "--libs", "list",
        "--instrument", "every",
        "--store", profile.to_str().unwrap(),
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = pgmp_run(&[
        "--libs", "list",
        "--load", profile.to_str().unwrap(),
        "--expand",
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("reimplement this list as a vector"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = pgmp_run(&[]);
    assert!(!out.status.success());
    let out = pgmp_run(&["--libs", "no-such-lib", "x.scm"]);
    assert!(!out.status.success());
    let out = pgmp_run(&["/nonexistent/prog.scm"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("pgmp-run"));
}

#[test]
fn program_errors_exit_nonzero_with_location() {
    let dir = tmpdir();
    let prog = dir.join("bad.scm");
    std::fs::write(&prog, "(car 5)").unwrap();
    let out = pgmp_run(&[prog.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad.scm"));
}
