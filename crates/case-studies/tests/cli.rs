//! End-to-end tests of the `pgmp-run` command-line driver.

use std::path::PathBuf;
use std::process::{Command, Output};

fn pgmp_run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pgmp-run"))
        .args(args)
        .output()
        .expect("pgmp-run spawns")
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join("pgmp-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_train_then_optimize_cycle() {
    let dir = tmpdir();
    let prog = dir.join("cycle.scm");
    let profile = dir.join("cycle.pgmp");
    std::fs::write(
        &prog,
        "(define (classify n) (if-r (< n 10) 'small 'big))
         (let loop ([i 0] [bigs 0])
           (if (= i 300) bigs
               (loop (add1 i) (if (eqv? (classify i) 'big) (add1 bigs) bigs))))",
    )
    .unwrap();

    // Train.
    let out = pgmp_run(&[
        "--libs",
        "if-r",
        "--instrument",
        "every",
        "--store",
        profile.to_str().unwrap(),
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "290");
    assert!(profile.exists());

    // Inspect the optimized expansion.
    let out = pgmp_run(&[
        "--libs",
        "if-r",
        "--load",
        profile.to_str().unwrap(),
        "--expand",
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("(if (not (< n 10)) (quote big) (quote small))"),
        "{stdout}"
    );

    // Run optimized.
    let out = pgmp_run(&[
        "--libs",
        "if-r",
        "--load",
        profile.to_str().unwrap(),
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "290");
}

#[test]
fn warnings_go_to_stderr() {
    let dir = tmpdir();
    let prog = dir.join("warn.scm");
    let profile = dir.join("warn.pgmp");
    std::fs::write(
        &prog,
        "(define p (profiled-list 1 2 3 4 5))
         (define (hammer n)
           (let loop ([i 0] [acc 0])
             (if (= i n) acc (loop (add1 i) (+ acc (plist-ref p (modulo i 5)))))))
         (hammer 200)",
    )
    .unwrap();
    let out = pgmp_run(&[
        "--libs", "list",
        "--instrument", "every",
        "--store", profile.to_str().unwrap(),
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = pgmp_run(&[
        "--libs", "list",
        "--load", profile.to_str().unwrap(),
        "--expand",
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("reimplement this list as a vector"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = pgmp_run(&[]);
    assert!(!out.status.success());
    let out = pgmp_run(&["--libs", "no-such-lib", "x.scm"]);
    assert!(!out.status.success());
    let out = pgmp_run(&["/nonexistent/prog.scm"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("pgmp-run"));
}

#[test]
fn program_errors_exit_nonzero_with_location() {
    let dir = tmpdir();
    let prog = dir.join("bad.scm");
    std::fs::write(&prog, "(car 5)").unwrap();
    let out = pgmp_run(&[prog.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad.scm"));
}

fn pgmp_profile(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pgmp-profile"))
        .args(args)
        .output()
        .expect("pgmp-profile spawns")
}

#[test]
fn incremental_warm_start_recompiles_with_zero_reexpansions() {
    let dir = tmpdir();
    let prog = dir.join("warm.scm");
    let profile = dir.join("warm.pgmp");
    let session = dir.join("warm.session");
    std::fs::write(
        &prog,
        "(define (classify n) (if-r (< n 10) 'small 'big))
         (let loop ([i 0] [bigs 0])
           (if (= i 300) bigs
               (loop (add1 i) (if (eqv? (classify i) 'big) (add1 bigs) bigs))))",
    )
    .unwrap();

    // Train, then compile incrementally under the profile and save state.
    let out = pgmp_run(&[
        "--libs", "if-r",
        "--instrument", "every",
        "--store", profile.to_str().unwrap(),
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = pgmp_run(&[
        "--libs", "if-r",
        "--incremental",
        "--load", profile.to_str().unwrap(),
        "--save-state", session.to_str().unwrap(),
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "290");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("session saved"), "{stderr}");

    // Fresh process, warm start: zero re-expansions, same answer.
    let out = pgmp_run(&[
        "--libs", "if-r",
        "--incremental",
        "--load-state", session.to_str().unwrap(),
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "290");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warm start"), "{stderr}");
    assert!(stderr.contains("0 re-expanded"), "reuse stats must prove it: {stderr}");

    // A corrupt session file is a clean error, not a panic.
    std::fs::write(&session, "(pgmp-session (version 1) garbage").unwrap();
    let out = pgmp_run(&[
        "--libs", "if-r",
        "--incremental",
        "--load-state", session.to_str().unwrap(),
        prog.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("pgmp-run"));
}

#[test]
fn state_flags_require_a_stateful_mode() {
    let dir = tmpdir();
    let prog = dir.join("plain.scm");
    std::fs::write(&prog, "(+ 1 2)").unwrap();
    let out = pgmp_run(&["--save-state", "/tmp/x.session", prog.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--incremental"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn profile_tool_inspects_merges_and_converts() {
    let dir = tmpdir();
    let a = dir.join("a.pgmp");
    let b = dir.join("b.pgmp");
    let merged = dir.join("merged.pgmp");
    let v2 = dir.join("merged.v2.pgmp");
    let back = dir.join("merged.back.pgmp");
    std::fs::write(
        &a,
        "(pgmp-profile\n  (version 1)\n  (datasets 1)\n  (point \"x.scm\" 0 1 1.0))\n",
    )
    .unwrap();
    std::fs::write(
        &b,
        "(pgmp-profile\n  (version 1)\n  (datasets 3)\n  (point \"x.scm\" 0 1 0.2)\n  (point \"y.scm\" 4 9 1.0))\n",
    )
    .unwrap();

    // Merge: §3.2 weighted average by dataset count -> x = (1*1.0 + 3*0.2)/4.
    let out = pgmp_profile(&[
        "merge",
        "-o", merged.to_str().unwrap(),
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = pgmp_profile(&["inspect", merged.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("format:   v1"), "{stdout}");
    assert!(stdout.contains("datasets: 4"), "{stdout}");
    assert!(stdout.contains("0.4000   x.scm:0-1"), "{stdout}");

    // Convert to v2 with a synthesized slot table.
    let out = pgmp_profile(&[
        "convert", "--to", "2", "--slots",
        "-o", v2.to_str().unwrap(),
        merged.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&v2).unwrap();
    assert!(text.contains("(version 2)"), "{text}");
    assert!(text.contains("(slot 0 "), "{text}");
    let out = pgmp_profile(&["inspect", v2.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("format:   v2"), "{stdout}");
    assert!(stdout.contains("slots:    2"), "{stdout}");

    // Convert back to v1: byte-identical to the original merge output.
    let out = pgmp_profile(&[
        "convert", "--to", "1",
        "-o", back.to_str().unwrap(),
        v2.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert_eq!(
        std::fs::read_to_string(&merged).unwrap(),
        std::fs::read_to_string(&back).unwrap(),
        "v2 -> v1 must reproduce the v1 bytes"
    );

    // Corrupt input: typed failure, nonzero exit.
    let bad = dir.join("bad.pgmp");
    std::fs::write(&bad, "(pgmp-profile (version 9))").unwrap();
    let out = pgmp_profile(&["inspect", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unsupported profile format version"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn adaptive_snapshot_round_trips_through_the_cli() {
    let dir = tmpdir();
    let prog = dir.join("adaptive-snap.scm");
    let snap = dir.join("adaptive-snap.epoch");
    std::fs::write(
        &prog,
        "(define (classify n) (if-r (< n 10) 'small 'big))
         (let loop ([i 10])
           (unless (= i 60) (classify i) (loop (add1 i))))",
    )
    .unwrap();
    let out = pgmp_run(&[
        "--libs", "if-r",
        "--adaptive", "--epochs", "2", "--threads", "1",
        "--save-state", snap.to_str().unwrap(),
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(snap.exists());
    let text = std::fs::read_to_string(&snap).unwrap();
    assert!(text.starts_with("(pgmp-epoch"), "{text}");

    let out = pgmp_run(&[
        "--libs", "if-r",
        "--adaptive", "--epochs", "1", "--threads", "1",
        "--load-state", snap.to_str().unwrap(),
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("restored epoch snapshot"), "{stderr}");
}
