//! The hygienic macro expander — the "meta-programming system" of the paper.
//!
//! This crate turns syntax objects into [`pgmp_eval::Core`] expressions,
//! running `define-syntax` transformers along the way. It provides the
//! Scheme-style facilities the paper's case studies are written in:
//!
//! - `define-syntax` with procedural transformers (`(define-syntax (name
//!   stx) body …)` or `(define-syntax name transformer-expr)`),
//! - `syntax-case` pattern matching with literals, fenders, `_` and `…`,
//! - `#'template` (`syntax`), `` #`template `` (`quasisyntax`) with `#,`
//!   (`unsyntax`) and `#,@` (`unsyntax-splicing`),
//! - `define-for-syntax` / `begin-for-syntax` for expand-time state (used
//!   by the object system of §6.2 to keep a class table),
//! - mark-based hygiene (fresh mark per macro invocation, XOR-cancelling),
//! - the usual derived forms: `let`, `let*`, `letrec`, named `let`,
//!   `cond`, `case`, `when`, `unless`, `and`, `or`, `quasiquote`.
//!
//! Transformers run on a *meta* interpreter embedded in the [`Expander`];
//! the engine (`pgmp` crate) installs the profile API (`profile-query`,
//! `make-profile-point`, `annotate-expr`) into that interpreter, which is
//! exactly the paper's design: meta-programs access profile information
//! through ordinary procedures available at expand time.
//!
//! # Example
//!
//! ```
//! use pgmp_expander::Expander;
//! use pgmp_eval::{install_primitives, Interp};
//! use pgmp_reader::read_str;
//!
//! let mut exp = Expander::new();
//! let forms = read_str(
//!     "(define-syntax (twice stx)
//!        (syntax-case stx ()
//!          [(_ e) #'(+ e e)]))
//!      (twice 21)",
//!     "demo.scm",
//! ).unwrap();
//! let program = exp.expand_program(&forms).unwrap();
//!
//! let mut interp = Interp::new();
//! install_primitives(&mut interp);
//! pgmp_expander::install_expander_support(&mut interp);
//! let mut last = pgmp_eval::Value::Unspecified;
//! for form in &program {
//!     last = interp.eval(form, &None).unwrap();
//! }
//! assert_eq!(last.to_string(), "42");
//! ```

mod cenv;
mod deep;
mod error;
mod expander;
mod forms;
mod identity;
mod pattern;
mod support;
mod template;

pub use cenv::{BindKind, CEnv};
pub use error::{ExpandError, ExpandErrorKind};
pub use expander::Expander;
pub use identity::form_hash;
pub use support::install_expander_support;
