//! Runtime support natives for expanded code.
//!
//! Compiled `syntax-case` and template code calls these `%`-prefixed
//! natives. They are installed under names no reader-produced identifier
//! can shadow accidentally (user code *can* name them explicitly, which is
//! occasionally useful in tests).

use crate::pattern::syntax_dispatch;
use pgmp_eval::{value_to_syntax, EvalError, Interp, Value};
use std::rc::Rc;

fn want_syntax(v: &Value) -> Result<Rc<pgmp_syntax::Syntax>, EvalError> {
    match v {
        Value::Syntax(s) => Ok(s.clone()),
        other => Err(EvalError::type_error("syntax", other)),
    }
}

/// Installs the expander's support natives into `interp`.
///
/// Required in any interpreter that will run code produced by
/// [`crate::Expander`] — both the expander's own meta interpreter (done
/// automatically) and the object-program interpreter (done by the engine).
pub fn install_expander_support(interp: &mut Interp) {
    // (%syntax-dispatch stx 'spec nvars) -> #(v ...) | #f
    interp.define_native("%syntax-dispatch", 3, Some(3), |_, args| {
        let stx = want_syntax(&args[0])?;
        let spec = args[1]
            .to_datum()
            .ok_or_else(|| EvalError::type_error("pattern spec datum", &args[1]))?;
        let nvars = match &args[2] {
            Value::Int(n) if *n >= 0 => *n as usize,
            other => return Err(EvalError::type_error("non-negative integer", other)),
        };
        Ok(match syntax_dispatch(&stx, &spec, nvars) {
            Some(binds) => Value::Vector(Rc::new(std::cell::RefCell::new(binds))),
            None => Value::Bool(false),
        })
    });
    // (%value->syntax ctx v) -> syntax ; template finalization
    interp.define_native("%value->syntax", 2, Some(2), |_, args| {
        let ctx = want_syntax(&args[0])?;
        Ok(Value::Syntax(Rc::new(value_to_syntax(&ctx, &args[1])?)))
    });
    // (%list v ...) ; shadow-proof `list`
    interp.define_native("%list", 0, None, |_, args| Ok(Value::list(args)));
    // (%append l ... tail) ; shadow-proof `append`, last argument passed through
    interp.define_native("%append", 0, None, |_, args| {
        let Some((last, init)) = args.split_last() else {
            return Ok(Value::Nil);
        };
        let mut elems = Vec::new();
        for a in init {
            elems.extend(
                a.list_elems()
                    .ok_or_else(|| EvalError::type_error("proper list", a))?,
            );
        }
        let mut acc = last.clone();
        for e in elems.into_iter().rev() {
            acc = Value::cons(e, acc);
        }
        Ok(acc)
    });
    // (%map f l ...) ; shadow-proof zipping map for ellipsis templates
    interp.define_native("%map", 2, None, |interp, args| {
        let f = args[0].clone();
        let lists: Vec<Vec<Value>> = args[1..]
            .iter()
            .map(|l| {
                l.list_elems()
                    .ok_or_else(|| EvalError::type_error("proper list", l))
            })
            .collect::<Result<_, _>>()?;
        let n = lists.iter().map(Vec::len).min().unwrap_or(0);
        if let Some(longest) = lists.iter().map(Vec::len).max() {
            if longest != n {
                return Err(EvalError::new(
                    pgmp_eval::EvalErrorKind::Runtime,
                    "ellipsis template: pattern variables matched different lengths",
                ));
            }
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let row: Vec<Value> = lists.iter().map(|l| l[i].clone()).collect();
            out.push(interp.apply(&f, row)?);
        }
        Ok(Value::list(out))
    });
    // (%vector-ref v n) ; shadow-proof vector-ref for match results
    interp.define_native("%vector-ref", 2, Some(2), |_, args| {
        let Value::Vector(v) = &args[0] else {
            return Err(EvalError::type_error("vector", &args[0]));
        };
        let Value::Int(i) = &args[1] else {
            return Err(EvalError::type_error("integer", &args[1]));
        };
        let v = v.borrow();
        v.get(*i as usize).cloned().ok_or_else(|| {
            EvalError::new(
                pgmp_eval::EvalErrorKind::Runtime,
                format!("%vector-ref: index {i} out of range"),
            )
        })
    });
    // (%case-memv key '(k ...)) ; membership test for the built-in `case`
    interp.define_native("%case-memv", 2, Some(2), |_, args| {
        let elems = args[1]
            .list_elems()
            .ok_or_else(|| EvalError::type_error("list", &args[1]))?;
        Ok(Value::Bool(elems.iter().any(|k| k.eqv(&args[0]))))
    });
    // (%no-clause-matched stx) ; syntax-case fall-through
    interp.define_native("%no-clause-matched", 1, Some(1), |_, args| {
        let where_ = match &args[0] {
            Value::Syntax(s) => format!("{}", s.to_datum()),
            other => other.to_string(),
        };
        Err(EvalError::new(
            pgmp_eval::EvalErrorKind::Runtime,
            format!("syntax-case: no clause matched {where_}"),
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmp_eval::install_primitives;
    use pgmp_syntax::Symbol;

    fn with_interp<R>(f: impl FnOnce(&mut Interp) -> R) -> R {
        let mut i = Interp::new();
        install_primitives(&mut i);
        install_expander_support(&mut i);
        f(&mut i)
    }

    fn call(i: &mut Interp, name: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        let f = i.global(Symbol::intern(name)).cloned().unwrap();
        i.apply(&f, args)
    }

    #[test]
    fn percent_list_and_append() {
        with_interp(|i| {
            let l = call(i, "%list", vec![Value::Int(1), Value::Int(2)]).unwrap();
            assert_eq!(l.to_string(), "(1 2)");
            let a = call(i, "%append", vec![l, Value::list(vec![Value::Int(3)])]).unwrap();
            assert_eq!(a.to_string(), "(1 2 3)");
        });
    }

    #[test]
    fn percent_map_requires_equal_lengths() {
        with_interp(|i| {
            let id = {
                let f = i.global(Symbol::intern("%list")).cloned().unwrap();
                f
            };
            let l1 = Value::list(vec![Value::Int(1), Value::Int(2)]);
            let l2 = Value::list(vec![Value::Int(3)]);
            assert!(call(i, "%map", vec![id, l1, l2]).is_err());
        });
    }

    #[test]
    fn no_clause_matched_errors() {
        with_interp(|i| {
            assert!(call(i, "%no-clause-matched", vec![Value::Int(1)]).is_err());
        });
    }
}
