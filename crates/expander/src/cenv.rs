//! Compile-time environments: lexical addressing with hygiene-aware lookup.

use pgmp_syntax::{MarkSet, Symbol, Syntax};

/// What kind of thing a lexical binding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BindKind {
    /// An ordinary variable.
    Var,
    /// A `syntax-case` pattern variable with the given ellipsis depth.
    PatternVar(u8),
}

/// One binding: identifier identity (symbol + marks) plus kind.
#[derive(Clone, Debug)]
pub struct ScopeEntry {
    /// Bound name.
    pub sym: Symbol,
    /// Hygiene marks of the binder occurrence.
    pub marks: MarkSet,
    /// Kind of binding.
    pub kind: BindKind,
}

/// One compile-time scope, mirroring exactly one runtime frame.
#[derive(Clone, Debug, Default)]
pub struct Scope {
    /// Entries; slot `i` of the runtime frame holds `entries[i]`.
    pub entries: Vec<ScopeEntry>,
}

/// A resolved lexical reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LexicalRef {
    /// Frames up from the use site.
    pub depth: u16,
    /// Slot within that frame.
    pub index: u16,
    /// Binding kind.
    pub kind: BindKind,
}

/// The compile-time environment: a stack of scopes, innermost last.
///
/// Lookup compares `(symbol, marks)` for exact equality — the
/// mark-discipline described in the crate docs makes this sufficient:
/// macro-introduced identifiers carry the invocation mark, user identifiers
/// do not, so neither can capture the other.
#[derive(Clone, Debug, Default)]
pub struct CEnv {
    scopes: Vec<Scope>,
}

impl CEnv {
    /// The empty environment (only globals visible).
    pub fn new() -> CEnv {
        CEnv::default()
    }

    /// Returns a new environment with `scope` pushed innermost.
    pub fn push(&self, scope: Scope) -> CEnv {
        let mut scopes = self.scopes.clone();
        scopes.push(scope);
        CEnv { scopes }
    }

    /// True if no scopes are present.
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }

    /// Number of scopes.
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }

    /// Resolves identifier `id`, innermost scope first. Within a scope the
    /// *last* matching entry wins, so later parameters shadow earlier ones.
    pub fn resolve(&self, id: &Syntax) -> Option<LexicalRef> {
        let sym = id.as_symbol()?;
        for (depth, scope) in self.scopes.iter().rev().enumerate() {
            for (index, entry) in scope.entries.iter().enumerate().rev() {
                if entry.sym == sym && entry.marks == id.marks {
                    return Some(LexicalRef {
                        depth: depth as u16,
                        index: index as u16,
                        kind: entry.kind,
                    });
                }
            }
        }
        None
    }
}

/// Builds a scope entry from a binder identifier.
pub fn entry_for(id: &Syntax, kind: BindKind) -> ScopeEntry {
    ScopeEntry {
        sym: id.as_symbol().expect("binder must be an identifier"),
        marks: id.marks.clone(),
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmp_syntax::Mark;

    fn ident(name: &str) -> Syntax {
        Syntax::ident(name, None)
    }

    #[test]
    fn innermost_scope_wins() {
        let x_outer = ident("x");
        let x_inner = ident("x");
        let env = CEnv::new()
            .push(Scope {
                entries: vec![entry_for(&x_outer, BindKind::Var)],
            })
            .push(Scope {
                entries: vec![entry_for(&x_inner, BindKind::Var)],
            });
        let r = env.resolve(&ident("x")).unwrap();
        assert_eq!((r.depth, r.index), (0, 0));
    }

    #[test]
    fn outer_scope_reachable() {
        let env = CEnv::new()
            .push(Scope {
                entries: vec![entry_for(&ident("x"), BindKind::Var)],
            })
            .push(Scope {
                entries: vec![entry_for(&ident("y"), BindKind::Var)],
            });
        let r = env.resolve(&ident("x")).unwrap();
        assert_eq!((r.depth, r.index), (1, 0));
    }

    #[test]
    fn marks_must_match_exactly() {
        let marked = ident("t").apply_mark(Mark(1));
        let env = CEnv::new().push(Scope {
            entries: vec![entry_for(&marked, BindKind::Var)],
        });
        assert!(env.resolve(&ident("t")).is_none(), "unmarked use misses marked binder");
        assert!(env.resolve(&marked).is_some(), "marked use hits marked binder");
    }

    #[test]
    fn later_entries_shadow_within_scope() {
        let env = CEnv::new().push(Scope {
            entries: vec![
                entry_for(&ident("a"), BindKind::Var),
                entry_for(&ident("a"), BindKind::PatternVar(1)),
            ],
        });
        let r = env.resolve(&ident("a")).unwrap();
        assert_eq!(r.index, 1);
        assert_eq!(r.kind, BindKind::PatternVar(1));
    }

    #[test]
    fn unbound_is_none() {
        assert!(CEnv::new().resolve(&ident("nope")).is_none());
    }
}
