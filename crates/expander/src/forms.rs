//! Core and derived form compilers.

use crate::cenv::{entry_for, BindKind, CEnv, Scope, ScopeEntry};
use crate::error::{ExpandError, ExpandErrorKind};
use crate::expander::Expander;
use crate::pattern::compile_pattern;
use crate::template::{call_support, compile_template, plain_ident};
use pgmp_eval::{Core, CoreKind, LambdaDef};
use pgmp_syntax::{Datum, Symbol, Syntax, SyntaxBody};
use std::rc::Rc;

fn bad(msg: impl Into<String>, stx: &Syntax) -> ExpandError {
    ExpandError::new(ExpandErrorKind::BadForm, msg).with_src(stx.source)
}

fn parts(stx: &Syntax) -> &[Rc<Syntax>] {
    stx.as_list().expect("caller checked list")
}

fn is_sym(stx: &Syntax, name: &str) -> bool {
    stx.as_symbol().is_some_and(|s| s.as_str() == name)
}

fn hidden_ident(base: &str) -> Syntax {
    plain_ident(Symbol::gensym(base).as_str())
}

fn lref(env: &CEnv, id: &Syntax) -> Rc<Core> {
    let r = env.resolve(id).expect("hidden binder must resolve");
    Core::rc(
        CoreKind::LocalRef {
            depth: r.depth,
            index: r.index,
        },
        id.source,
    )
}

fn unspecified() -> Rc<Core> {
    Core::rc(CoreKind::Seq(Vec::new()), None)
}

/// Dispatches `stx` (a list form with identifier head `name`, not shadowed
/// lexically and not a macro) against the built-in special forms. Returns
/// `Ok(None)` when `name` is not special, meaning the form is an ordinary
/// application.
pub(crate) fn expand_core_form(
    exp: &mut Expander,
    name: &str,
    stx: &Rc<Syntax>,
    env: &CEnv,
) -> Result<Option<Rc<Core>>, ExpandError> {
    let core = match name {
        "quote" => Some(expand_quote(stx)?),
        "if" => Some(expand_if(exp, stx, env)?),
        "lambda" => Some(expand_lambda(exp, stx, env)?),
        "begin" => Some(expand_begin(exp, stx, env)?),
        "set!" => Some(expand_set(exp, stx, env)?),
        "let" => Some(expand_let(exp, stx, env)?),
        "let*" => Some(expand_let_star(exp, stx, env)?),
        "letrec" | "letrec*" => Some(expand_letrec(exp, stx, env)?),
        "cond" => Some(expand_cond(exp, stx, env)?),
        "case" => Some(expand_case(exp, stx, env)?),
        "when" | "unless" => Some(expand_when_unless(exp, stx, env, name == "when")?),
        "and" => Some(expand_and(exp, stx, env)?),
        "or" => Some(expand_or(exp, stx, env)?),
        "syntax" => Some(expand_syntax_template(exp, stx, env, false)?),
        "quasisyntax" => Some(expand_syntax_template(exp, stx, env, true)?),
        "syntax-case" => Some(expand_syntax_case(exp, stx, env)?),
        "syntax-rules" => Some(expand_syntax_rules(exp, stx, env)?),
        "quasiquote" => Some(expand_quasiquote(exp, stx, env)?),
        "define" | "define-syntax" | "define-for-syntax" | "begin-for-syntax" => {
            return Err(bad(
                format!("`{name}` is only allowed at the top level or (for `define`) at the start of a body"),
                stx,
            ));
        }
        "unquote" | "unquote-splicing" => {
            return Err(bad(format!("`{name}` outside quasiquote"), stx));
        }
        "unsyntax" | "unsyntax-splicing" => {
            return Err(bad(format!("`{name}` outside quasisyntax"), stx));
        }
        "else" => return Err(bad("`else` outside cond or case", stx)),
        _ => None,
    };
    Ok(core)
}

fn expand_quote(stx: &Rc<Syntax>) -> Result<Rc<Core>, ExpandError> {
    match parts(stx) {
        [_, datum] => Ok(Core::rc(CoreKind::Const(datum.to_datum()), stx.source)),
        _ => Err(bad("quote expects exactly one datum", stx)),
    }
}

fn expand_if(exp: &mut Expander, stx: &Rc<Syntax>, env: &CEnv) -> Result<Rc<Core>, ExpandError> {
    match parts(stx) {
        [_, c, t] => Ok(Core::rc(
            CoreKind::If(
                exp.expand_expr(c, env)?,
                exp.expand_expr(t, env)?,
                unspecified(),
            ),
            stx.source,
        )),
        [_, c, t, e] => Ok(Core::rc(
            CoreKind::If(
                exp.expand_expr(c, env)?,
                exp.expand_expr(t, env)?,
                exp.expand_expr(e, env)?,
            ),
            stx.source,
        )),
        _ => Err(bad("if expects 2 or 3 subforms", stx)),
    }
}

/// A parsed lambda parameter list: (required binders, rest binder).
type ParsedParams = (Vec<Rc<Syntax>>, Option<Rc<Syntax>>);

/// Parses a lambda parameter list into (required binders, rest binder).
fn parse_params(params: &Syntax) -> Result<ParsedParams, ExpandError> {
    match &params.body {
        SyntaxBody::Atom(Datum::Sym(_)) => {
            Ok((Vec::new(), Some(Rc::new(params.clone()))))
        }
        SyntaxBody::List(elems) => {
            for e in elems {
                if !e.is_identifier() {
                    return Err(bad("parameter is not an identifier", e));
                }
            }
            Ok((elems.clone(), None))
        }
        SyntaxBody::Improper(elems, tail) => {
            for e in elems.iter().chain(std::iter::once(tail)) {
                if !e.is_identifier() {
                    return Err(bad("parameter is not an identifier", e));
                }
            }
            Ok((elems.clone(), Some(tail.clone())))
        }
        _ => Err(bad("malformed parameter list", params)),
    }
}

fn compile_lambda(
    exp: &mut Expander,
    params: &Syntax,
    body_forms: &[Rc<Syntax>],
    env: &CEnv,
    name: Option<Symbol>,
    src: Option<pgmp_syntax::SourceObject>,
) -> Result<Rc<Core>, ExpandError> {
    let (required, rest) = parse_params(params)?;
    let mut entries: Vec<ScopeEntry> = required
        .iter()
        .map(|p| entry_for(p, BindKind::Var))
        .collect();
    if let Some(rest) = &rest {
        entries.push(entry_for(rest, BindKind::Var));
    }
    let inner = env.push(Scope { entries });
    let body = expand_body(exp, body_forms, &inner, src)?;
    Ok(Core::rc(
        CoreKind::Lambda(Rc::new(LambdaDef {
            params: required.len() as u16,
            variadic: rest.is_some(),
            body,
            name,
            src,
        })),
        src,
    ))
}

fn expand_lambda(
    exp: &mut Expander,
    stx: &Rc<Syntax>,
    env: &CEnv,
) -> Result<Rc<Core>, ExpandError> {
    let elems = parts(stx);
    if elems.len() < 3 {
        return Err(bad("lambda expects parameters and a body", stx));
    }
    compile_lambda(exp, &elems[1], &elems[2..], env, None, stx.source)
}

/// Expands a body: internal `define`s (possibly produced by macros or
/// spliced from `begin`) become `letrec*` slots; the body's value is the
/// value of its last form.
pub(crate) fn expand_body(
    exp: &mut Expander,
    forms: &[Rc<Syntax>],
    env: &CEnv,
    src: Option<pgmp_syntax::SourceObject>,
) -> Result<Rc<Core>, ExpandError> {
    // Discover defines by macro-expanding each form's head and splicing
    // begins.
    enum Item {
        Define(Rc<Syntax>, Rc<Syntax>), // binder, init expression
        Expr(Rc<Syntax>),
    }
    let mut items: Vec<Item> = Vec::new();
    let mut queue: std::collections::VecDeque<Rc<Syntax>> = forms.iter().cloned().collect();
    while let Some(form) = queue.pop_front() {
        let form = exp.macroexpand_head(form, env)?;
        let head = form
            .as_list()
            .and_then(|e| e.first())
            .and_then(|h| h.as_symbol())
            .map(|s| s.as_str());
        // Head position must not be lexically shadowed for special meaning.
        let shadowed = form
            .as_list()
            .and_then(|e| e.first())
            .is_some_and(|h| env.resolve(h).is_some());
        match head {
            Some("begin") if !shadowed => {
                let elems = form.as_list().expect("checked");
                for sub in elems[1..].iter().rev() {
                    queue.push_front(sub.clone());
                }
            }
            Some("define") if !shadowed => {
                let (binder, init) = parse_define(&form)?;
                items.push(Item::Define(binder, init));
            }
            Some("define-syntax") if !shadowed => {
                return Err(ExpandError::new(
                    ExpandErrorKind::Unsupported,
                    "internal define-syntax is not supported; use toplevel define-syntax",
                )
                .with_src(form.source));
            }
            _ => items.push(Item::Expr(form)),
        }
    }
    if items.is_empty() {
        return Err(ExpandError::new(ExpandErrorKind::BadForm, "empty body").with_src(src));
    }
    let has_defines = items.iter().any(|i| matches!(i, Item::Define(..)));
    if !has_defines {
        let exprs: Result<Vec<Rc<Core>>, ExpandError> = items
            .iter()
            .map(|i| match i {
                Item::Expr(e) => exp.expand_expr(e, env),
                Item::Define(..) => unreachable!(),
            })
            .collect();
        let mut exprs = exprs?;
        return Ok(if exprs.len() == 1 {
            exprs.remove(0)
        } else {
            Core::rc(CoreKind::Seq(exprs), src)
        });
    }
    // letrec* over every item: defines bind their name, expressions bind a
    // throwaway slot, preserving left-to-right evaluation order.
    let entries: Vec<ScopeEntry> = items
        .iter()
        .map(|i| match i {
            Item::Define(binder, _) => entry_for(binder, BindKind::Var),
            Item::Expr(_) => entry_for(&hidden_ident("seq"), BindKind::Var),
        })
        .collect();
    let inner = env.push(Scope { entries });
    let mut inits = Vec::with_capacity(items.len());
    let mut last_is_expr = false;
    for item in &items {
        match item {
            Item::Define(binder, init) => {
                let name = binder.as_symbol();
                let core = expand_named_init(exp, init, &inner, name)?;
                inits.push(core);
                last_is_expr = false;
            }
            Item::Expr(e) => {
                inits.push(exp.expand_expr(e, &inner)?);
                last_is_expr = true;
            }
        }
    }
    let body = if last_is_expr {
        Core::rc(
            CoreKind::LocalRef {
                depth: 0,
                index: (items.len() - 1) as u16,
            },
            src,
        )
    } else {
        unspecified()
    };
    Ok(Core::rc(CoreKind::LetRec { inits, body }, src))
}

/// Expands `init`, naming it if it is a lambda (for diagnostics).
fn expand_named_init(
    exp: &mut Expander,
    init: &Rc<Syntax>,
    env: &CEnv,
    name: Option<Symbol>,
) -> Result<Rc<Core>, ExpandError> {
    let core = exp.expand_expr(init, env)?;
    if let CoreKind::Lambda(def) = &core.kind {
        if def.name.is_none() {
            let named = LambdaDef {
                name,
                ..(**def).clone()
            };
            return Ok(Core::rc(CoreKind::Lambda(Rc::new(named)), core.src));
        }
    }
    Ok(core)
}

/// Parses `(define x e)` or `(define (f . params) body …)` into
/// `(binder, init-expression)` where function defines become lambdas.
pub(crate) fn parse_define(form: &Syntax) -> Result<(Rc<Syntax>, Rc<Syntax>), ExpandError> {
    let elems = form.as_list().ok_or_else(|| bad("malformed define", form))?;
    match elems {
        [_, name, value] if name.is_identifier() => Ok((name.clone(), value.clone())),
        [_, name] if name.is_identifier() => {
            // (define x) — initialize to unspecified via (void).
            let init = Syntax::list(vec![Rc::new(plain_ident("void"))], form.source);
            Ok((name.clone(), Rc::new(init)))
        }
        [_, header, body @ ..] if !body.is_empty() => {
            let (name, params): (Rc<Syntax>, Syntax) = match &header.body {
                SyntaxBody::List(h) => {
                    let Some((name, ps)) = h.split_first() else {
                        return Err(bad("malformed define header", form));
                    };
                    (
                        name.clone(),
                        Syntax::new(SyntaxBody::List(ps.to_vec()), header.source),
                    )
                }
                SyntaxBody::Improper(h, tail) => {
                    let Some((name, ps)) = h.split_first() else {
                        return Err(bad("malformed define header", form));
                    };
                    let params = if ps.is_empty() {
                        (**tail).clone()
                    } else {
                        Syntax::new(
                            SyntaxBody::Improper(ps.to_vec(), tail.clone()),
                            header.source,
                        )
                    };
                    (name.clone(), params)
                }
                _ => return Err(bad("malformed define", form)),
            };
            if !name.is_identifier() {
                return Err(bad("defined name must be an identifier", &name));
            }
            let mut lam = vec![Rc::new(plain_ident("lambda")), Rc::new(params)];
            lam.extend(body.iter().cloned());
            Ok((name, Rc::new(Syntax::list(lam, form.source))))
        }
        _ => Err(bad("malformed define", form)),
    }
}

/// Expands a toplevel `define`, returning the global name and initializer.
pub(crate) fn expand_define(
    exp: &mut Expander,
    form: &Syntax,
    env: &CEnv,
) -> Result<(Symbol, Rc<Core>), ExpandError> {
    let (binder, init) = parse_define(form)?;
    let name = binder.as_symbol().expect("parse_define checked");
    let core = expand_named_init(exp, &init, env, Some(name))?;
    Ok((name, core))
}

fn expand_begin(exp: &mut Expander, stx: &Rc<Syntax>, env: &CEnv) -> Result<Rc<Core>, ExpandError> {
    let elems = parts(stx);
    let exprs: Result<Vec<Rc<Core>>, ExpandError> =
        elems[1..].iter().map(|e| exp.expand_expr(e, env)).collect();
    let mut exprs = exprs?;
    Ok(match exprs.len() {
        0 => unspecified(),
        1 => exprs.remove(0),
        _ => Core::rc(CoreKind::Seq(exprs), stx.source),
    })
}

fn expand_set(exp: &mut Expander, stx: &Rc<Syntax>, env: &CEnv) -> Result<Rc<Core>, ExpandError> {
    let [_, target, value] = parts(stx) else {
        return Err(bad("set! expects a variable and a value", stx));
    };
    if !target.is_identifier() {
        return Err(bad("set! target must be an identifier", target));
    }
    let value = exp.expand_expr(value, env)?;
    match env.resolve(target) {
        Some(r) => Ok(Core::rc(
            CoreKind::SetLocal {
                depth: r.depth,
                index: r.index,
                value,
            },
            stx.source,
        )),
        None => Ok(Core::rc(
            CoreKind::SetGlobal(target.as_symbol().expect("identifier"), value),
            stx.source,
        )),
    }
}

/// A parsed `[x e]` binding: (identifier, right-hand side).
type ParsedBindings = Vec<(Rc<Syntax>, Rc<Syntax>)>;

/// Parses `([x e] …)` binding lists.
fn parse_bindings(bindings: &Syntax) -> Result<ParsedBindings, ExpandError> {
    let elems = bindings
        .as_list()
        .ok_or_else(|| bad("malformed binding list", bindings))?;
    elems
        .iter()
        .map(|b| match b.as_list() {
            Some([name, value]) if name.is_identifier() => Ok((name.clone(), value.clone())),
            _ => Err(bad("binding must be [identifier expression]", b)),
        })
        .collect()
}

fn expand_let(exp: &mut Expander, stx: &Rc<Syntax>, env: &CEnv) -> Result<Rc<Core>, ExpandError> {
    let elems = parts(stx);
    // Named let: (let loop ([x e] ...) body ...).
    if elems.len() >= 4 && elems[1].is_identifier() {
        return expand_named_let(exp, stx, env);
    }
    if elems.len() < 3 {
        return Err(bad("let expects bindings and a body", stx));
    }
    let bindings = parse_bindings(&elems[1])?;
    let inits: Result<Vec<Rc<Core>>, ExpandError> = bindings
        .iter()
        .map(|(_, v)| exp.expand_expr(v, env))
        .collect();
    let entries = bindings
        .iter()
        .map(|(n, _)| entry_for(n, BindKind::Var))
        .collect();
    let inner = env.push(Scope { entries });
    let body = expand_body(exp, &elems[2..], &inner, stx.source)?;
    Ok(Core::rc(
        CoreKind::Let {
            inits: inits?,
            body,
        },
        stx.source,
    ))
}

fn expand_named_let(
    exp: &mut Expander,
    stx: &Rc<Syntax>,
    env: &CEnv,
) -> Result<Rc<Core>, ExpandError> {
    let elems = parts(stx);
    let name = &elems[1];
    let bindings = parse_bindings(&elems[2])?;
    // (letrec ([name (lambda (x ...) body ...)]) (name e ...))
    let loop_env = env.push(Scope {
        entries: vec![entry_for(name, BindKind::Var)],
    });
    let param_entries = bindings
        .iter()
        .map(|(n, _)| entry_for(n, BindKind::Var))
        .collect();
    let lam_env = loop_env.push(Scope {
        entries: param_entries,
    });
    let body = expand_body(exp, &elems[3..], &lam_env, stx.source)?;
    let lambda = Core::rc(
        CoreKind::Lambda(Rc::new(LambdaDef {
            params: bindings.len() as u16,
            variadic: false,
            body,
            name: name.as_symbol(),
            src: stx.source,
        })),
        stx.source,
    );
    // The initial call is the LetRec body, so it evaluates *inside* the
    // loop frame: compile the argument expressions against loop_env, not
    // the outer env.
    let call_args: Result<Vec<Rc<Core>>, ExpandError> = bindings
        .iter()
        .map(|(_, v)| exp.expand_expr(v, &loop_env))
        .collect();
    let call = Core::rc(
        CoreKind::Call {
            func: lref(&loop_env, name),
            args: call_args?,
        },
        stx.source,
    );
    Ok(Core::rc(
        CoreKind::LetRec {
            inits: vec![lambda],
            body: call,
        },
        stx.source,
    ))
}

fn expand_let_star(
    exp: &mut Expander,
    stx: &Rc<Syntax>,
    env: &CEnv,
) -> Result<Rc<Core>, ExpandError> {
    let elems = parts(stx);
    if elems.len() < 3 {
        return Err(bad("let* expects bindings and a body", stx));
    }
    let bindings = parse_bindings(&elems[1])?;
    // Each binding gets its own nested frame.
    fn nest(
        exp: &mut Expander,
        bindings: &[(Rc<Syntax>, Rc<Syntax>)],
        body_forms: &[Rc<Syntax>],
        env: &CEnv,
        src: Option<pgmp_syntax::SourceObject>,
    ) -> Result<Rc<Core>, ExpandError> {
        match bindings.split_first() {
            None => expand_body(exp, body_forms, env, src),
            Some(((name, value), rest)) => {
                let init = exp.expand_expr(value, env)?;
                let inner = env.push(Scope {
                    entries: vec![entry_for(name, BindKind::Var)],
                });
                let body = nest(exp, rest, body_forms, &inner, src)?;
                Ok(Core::rc(
                    CoreKind::Let {
                        inits: vec![init],
                        body,
                    },
                    src,
                ))
            }
        }
    }
    nest(exp, &bindings, &elems[2..], env, stx.source)
}

fn expand_letrec(
    exp: &mut Expander,
    stx: &Rc<Syntax>,
    env: &CEnv,
) -> Result<Rc<Core>, ExpandError> {
    let elems = parts(stx);
    if elems.len() < 3 {
        return Err(bad("letrec expects bindings and a body", stx));
    }
    let bindings = parse_bindings(&elems[1])?;
    let entries = bindings
        .iter()
        .map(|(n, _)| entry_for(n, BindKind::Var))
        .collect();
    let inner = env.push(Scope { entries });
    let mut inits = Vec::with_capacity(bindings.len());
    for (name, value) in &bindings {
        inits.push(expand_named_init(exp, value, &inner, name.as_symbol())?);
    }
    let body = expand_body(exp, &elems[2..], &inner, stx.source)?;
    Ok(Core::rc(CoreKind::LetRec { inits, body }, stx.source))
}

fn expand_cond(exp: &mut Expander, stx: &Rc<Syntax>, env: &CEnv) -> Result<Rc<Core>, ExpandError> {
    let clauses = &parts(stx)[1..];
    fn nest(
        exp: &mut Expander,
        clauses: &[Rc<Syntax>],
        env: &CEnv,
    ) -> Result<Rc<Core>, ExpandError> {
        let Some((clause, rest)) = clauses.split_first() else {
            return Ok(unspecified());
        };
        let Some(clause_elems) = clause.as_list() else {
            return Err(bad("cond clause must be a list", clause));
        };
        let Some((test, body)) = clause_elems.split_first() else {
            return Err(bad("empty cond clause", clause));
        };
        if is_sym(test, "else") {
            if !rest.is_empty() {
                return Err(bad("else clause must be last", clause));
            }
            return expand_body(exp, body, env, clause.source);
        }
        if body.is_empty() {
            // (cond [e] ...) — value of e if truthy.
            let t = hidden_ident("t");
            let init = exp.expand_expr(test, env)?;
            let inner = env.push(Scope {
                entries: vec![entry_for(&t, BindKind::Var)],
            });
            let alt = nest(exp, rest, &inner)?;
            let body = Core::rc(
                CoreKind::If(lref(&inner, &t), lref(&inner, &t), alt),
                clause.source,
            );
            return Ok(Core::rc(
                CoreKind::Let {
                    inits: vec![init],
                    body,
                },
                clause.source,
            ));
        }
        let test_core = exp.expand_expr(test, env)?;
        let then_core = expand_body(exp, body, env, clause.source)?;
        let else_core = nest(exp, rest, env)?;
        Ok(Core::rc(
            CoreKind::If(test_core, then_core, else_core),
            clause.source,
        ))
    }
    nest(exp, clauses, env)
}

fn expand_case(exp: &mut Expander, stx: &Rc<Syntax>, env: &CEnv) -> Result<Rc<Core>, ExpandError> {
    let elems = parts(stx);
    if elems.len() < 2 {
        return Err(bad("case expects a key expression", stx));
    }
    let key_init = exp.expand_expr(&elems[1], env)?;
    let key = hidden_ident("key");
    let inner = env.push(Scope {
        entries: vec![entry_for(&key, BindKind::Var)],
    });
    fn nest(
        exp: &mut Expander,
        clauses: &[Rc<Syntax>],
        key: &Syntax,
        env: &CEnv,
    ) -> Result<Rc<Core>, ExpandError> {
        let Some((clause, rest)) = clauses.split_first() else {
            return Ok(unspecified());
        };
        let Some(clause_elems) = clause.as_list() else {
            return Err(bad("case clause must be a list", clause));
        };
        let Some((lhs, body)) = clause_elems.split_first() else {
            return Err(bad("empty case clause", clause));
        };
        if body.is_empty() {
            return Err(bad("case clause needs a body", clause));
        }
        if is_sym(lhs, "else") {
            if !rest.is_empty() {
                return Err(bad("else clause must be last", clause));
            }
            return expand_body(exp, body, env, clause.source);
        }
        if lhs.as_list().is_none() {
            return Err(bad("case clause left-hand side must be a datum list", clause));
        }
        // (memv key '(k ...))
        let test = call_support(
            "%case-memv",
            vec![
                lref(env, key),
                Core::rc(CoreKind::Const(lhs.to_datum()), lhs.source),
            ],
            clause,
        );
        let then_core = expand_body(exp, body, env, clause.source)?;
        let else_core = nest(exp, rest, key, env)?;
        Ok(Core::rc(
            CoreKind::If(test, then_core, else_core),
            clause.source,
        ))
    }
    let body = nest(exp, &elems[2..], &key, &inner)?;
    Ok(Core::rc(
        CoreKind::Let {
            inits: vec![key_init],
            body,
        },
        stx.source,
    ))
}

fn expand_when_unless(
    exp: &mut Expander,
    stx: &Rc<Syntax>,
    env: &CEnv,
    positive: bool,
) -> Result<Rc<Core>, ExpandError> {
    let elems = parts(stx);
    if elems.len() < 3 {
        return Err(bad("when/unless expect a test and a body", stx));
    }
    let test = exp.expand_expr(&elems[1], env)?;
    let body = expand_body(exp, &elems[2..], env, stx.source)?;
    let (t, e) = if positive {
        (body, unspecified())
    } else {
        (unspecified(), body)
    };
    Ok(Core::rc(CoreKind::If(test, t, e), stx.source))
}

fn expand_and(exp: &mut Expander, stx: &Rc<Syntax>, env: &CEnv) -> Result<Rc<Core>, ExpandError> {
    let elems = &parts(stx)[1..];
    fn nest(
        exp: &mut Expander,
        elems: &[Rc<Syntax>],
        env: &CEnv,
    ) -> Result<Rc<Core>, ExpandError> {
        match elems {
            [] => Ok(Core::rc(CoreKind::Const(Datum::Bool(true)), None)),
            [last] => exp.expand_expr(last, env),
            [first, rest @ ..] => {
                let test = exp.expand_expr(first, env)?;
                let then = nest(exp, rest, env)?;
                Ok(Core::rc(
                    CoreKind::If(test, then, Core::rc(CoreKind::Const(Datum::Bool(false)), None)),
                    None,
                ))
            }
        }
    }
    nest(exp, elems, env)
}

fn expand_or(exp: &mut Expander, stx: &Rc<Syntax>, env: &CEnv) -> Result<Rc<Core>, ExpandError> {
    let elems = &parts(stx)[1..];
    fn nest(
        exp: &mut Expander,
        elems: &[Rc<Syntax>],
        env: &CEnv,
    ) -> Result<Rc<Core>, ExpandError> {
        match elems {
            [] => Ok(Core::rc(CoreKind::Const(Datum::Bool(false)), None)),
            [last] => exp.expand_expr(last, env),
            [first, rest @ ..] => {
                let t = hidden_ident("or");
                let init = exp.expand_expr(first, env)?;
                let inner = env.push(Scope {
                    entries: vec![entry_for(&t, BindKind::Var)],
                });
                let alt = nest(exp, rest, &inner)?;
                let body = Core::rc(CoreKind::If(lref(&inner, &t), lref(&inner, &t), alt), None);
                Ok(Core::rc(
                    CoreKind::Let {
                        inits: vec![init],
                        body,
                    },
                    None,
                ))
            }
        }
    }
    nest(exp, elems, env)
}

fn expand_syntax_template(
    exp: &mut Expander,
    stx: &Rc<Syntax>,
    env: &CEnv,
    quasi: bool,
) -> Result<Rc<Core>, ExpandError> {
    match parts(stx) {
        [_, tmpl] => compile_template(exp, tmpl, env, quasi),
        _ => Err(bad("syntax expects exactly one template", stx)),
    }
}

fn expand_quasiquote(
    exp: &mut Expander,
    stx: &Rc<Syntax>,
    env: &CEnv,
) -> Result<Rc<Core>, ExpandError> {
    let [_, tmpl] = parts(stx) else {
        return Err(bad("quasiquote expects exactly one template", stx));
    };
    build_qq(exp, tmpl, env, 0)
}

/// Quasiquote: like templates but producing plain runtime values.
fn build_qq(
    exp: &mut Expander,
    tmpl: &Rc<Syntax>,
    env: &CEnv,
    depth: u32,
) -> Result<Rc<Core>, ExpandError> {
    // Fast path: constant subtree.
    fn is_constant(t: &Syntax, depth: u32) -> bool {
        match &t.body {
            SyntaxBody::Atom(_) => true,
            SyntaxBody::List(elems) => {
                if let Some(head) = elems.first() {
                    if is_sym(head, "unquote") || is_sym(head, "unquote-splicing") {
                        if depth == 0 {
                            return false;
                        }
                        return elems[1..].iter().all(|e| is_constant(e, depth - 1));
                    }
                    if is_sym(head, "quasiquote") {
                        return elems[1..].iter().all(|e| is_constant(e, depth + 1));
                    }
                }
                // `(a . ,e)` reads as `(a unquote e)` — not constant at
                // depth 0.
                if depth == 0
                    && elems.len() >= 3
                    && is_sym(&elems[elems.len() - 2], "unquote")
                {
                    return false;
                }
                elems.iter().all(|e| is_constant(e, depth))
            }
            SyntaxBody::Improper(elems, tail) => {
                elems.iter().all(|e| is_constant(e, depth)) && is_constant(tail, depth)
            }
            SyntaxBody::Vector(elems) => elems.iter().all(|e| is_constant(e, depth)),
        }
    }
    if is_constant(tmpl, depth) {
        return Ok(Core::rc(CoreKind::Const(tmpl.to_datum()), tmpl.source));
    }
    match &tmpl.body {
        SyntaxBody::Atom(_) | SyntaxBody::Vector(_) => {
            Ok(Core::rc(CoreKind::Const(tmpl.to_datum()), tmpl.source))
        }
        SyntaxBody::List(elems) => {
            if let Some(head) = elems.first() {
                if is_sym(head, "unquote") && elems.len() == 2 {
                    if depth == 0 {
                        return exp.expand_expr(&elems[1], env);
                    }
                    let inner = build_qq(exp, &elems[1], env, depth - 1)?;
                    return Ok(call_support(
                        "%list",
                        vec![
                            Core::rc(CoreKind::Const(head.to_datum()), head.source),
                            inner,
                        ],
                        tmpl,
                    ));
                }
                if is_sym(head, "quasiquote") && elems.len() == 2 {
                    let inner = build_qq(exp, &elems[1], env, depth + 1)?;
                    return Ok(call_support(
                        "%list",
                        vec![
                            Core::rc(CoreKind::Const(head.to_datum()), head.source),
                            inner,
                        ],
                        tmpl,
                    ));
                }
            }
            // `(a b . ,e)` reads as `(a b unquote e)`: compile the prefix
            // as segments and the unquoted expression as the tail.
            if depth == 0 && elems.len() >= 3 && is_sym(&elems[elems.len() - 2], "unquote") {
                let j = elems.len() - 2;
                let mut args: Vec<Rc<Core>> = Vec::new();
                for e in &elems[..j] {
                    args.push(call_support(
                        "%list",
                        vec![build_qq(exp, e, env, depth)?],
                        tmpl,
                    ));
                }
                args.push(exp.expand_expr(&elems[j + 1], env)?);
                return Ok(call_support("%append", args, tmpl));
            }
            let mut segs: Vec<(bool, Rc<Core>)> = Vec::new();
            for e in elems {
                if depth == 0 {
                    if let SyntaxBody::List(sub) = &e.body {
                        if sub.len() == 2 && sub.first().is_some_and(|h| is_sym(h, "unquote-splicing")) {
                            segs.push((true, exp.expand_expr(&sub[1], env)?));
                            continue;
                        }
                    }
                }
                segs.push((false, build_qq(exp, e, env, depth)?));
            }
            if segs.iter().all(|(splice, _)| !splice) {
                return Ok(call_support(
                    "%list",
                    segs.into_iter().map(|(_, c)| c).collect(),
                    tmpl,
                ));
            }
            let mut args: Vec<Rc<Core>> = segs
                .into_iter()
                .map(|(splice, c)| {
                    if splice {
                        c
                    } else {
                        call_support("%list", vec![c], tmpl)
                    }
                })
                .collect();
            args.push(Core::rc(CoreKind::Const(Datum::Nil), tmpl.source));
            Ok(call_support("%append", args, tmpl))
        }
        SyntaxBody::Improper(elems, tail) => {
            let mut args: Vec<Rc<Core>> = Vec::new();
            for e in elems {
                args.push(call_support(
                    "%list",
                    vec![build_qq(exp, e, env, depth)?],
                    tmpl,
                ));
            }
            args.push(build_qq(exp, tail, env, depth)?);
            Ok(call_support("%append", args, tmpl))
        }
    }
}

/// `(syntax-rules (lit …) [pattern template] …)` — the declarative
/// transformer sugar: desugars to `(lambda (stx) (syntax-case stx (lit …)
/// [pattern #'template] …))` and expands that.
fn expand_syntax_rules(
    exp: &mut Expander,
    stx: &Rc<Syntax>,
    env: &CEnv,
) -> Result<Rc<Core>, ExpandError> {
    let elems = parts(stx);
    if elems.len() < 2 {
        return Err(bad("syntax-rules expects a literals list", stx));
    }
    let stx_id = Rc::new(Syntax {
        body: plain_ident(Symbol::gensym("stx").as_str()).body,
        source: stx.source,
        marks: stx.marks.clone(),
    });
    let mut clauses: Vec<Rc<Syntax>> = Vec::with_capacity(elems.len() - 2);
    for clause in &elems[2..] {
        let Some([pattern, template]) = clause.as_list() else {
            return Err(bad("syntax-rules clause must be [pattern template]", clause));
        };
        let wrapped = Syntax::list(
            vec![
                Rc::new(Syntax {
                    body: plain_ident("syntax").body,
                    source: template.source,
                    marks: template.marks.clone(),
                }),
                template.clone(),
            ],
            template.source,
        );
        clauses.push(Rc::new(Syntax::list(
            vec![pattern.clone(), Rc::new(wrapped)],
            clause.source,
        )));
    }
    let mut case_form = vec![
        Rc::new(Syntax {
            body: plain_ident("syntax-case").body,
            source: stx.source,
            marks: stx.marks.clone(),
        }),
        stx_id.clone(),
        elems[1].clone(),
    ];
    case_form.extend(clauses);
    let lambda = Syntax::list(
        vec![
            Rc::new(Syntax {
                body: plain_ident("lambda").body,
                source: stx.source,
                marks: stx.marks.clone(),
            }),
            Rc::new(Syntax::list(vec![stx_id], stx.source)),
            Rc::new(Syntax::list(case_form, stx.source)),
        ],
        stx.source,
    );
    exp.expand_expr(&Rc::new(lambda), env)
}

fn expand_syntax_case(
    exp: &mut Expander,
    stx: &Rc<Syntax>,
    env: &CEnv,
) -> Result<Rc<Core>, ExpandError> {
    let elems = parts(stx);
    if elems.len() < 3 {
        return Err(bad("syntax-case expects a scrutinee and literals", stx));
    }
    let scrutinee = exp.expand_expr(&elems[1], env)?;
    let lits: Vec<Symbol> = match elems[2].as_list() {
        Some(lits) => {
            let mut out = Vec::with_capacity(lits.len());
            for l in lits {
                out.push(
                    l.as_symbol()
                        .ok_or_else(|| bad("literal must be an identifier", l))?,
                );
            }
            out
        }
        None => return Err(bad("syntax-case literals must be a list", &elems[2])),
    };
    let scrut_id = hidden_ident("stx");
    let scrut_env = env.push(Scope {
        entries: vec![entry_for(&scrut_id, BindKind::Var)],
    });
    let body = compile_clauses(exp, &elems[3..], &lits, &scrut_id, &scrut_env)?;
    Ok(Core::rc(
        CoreKind::Let {
            inits: vec![scrutinee],
            body,
        },
        stx.source,
    ))
}

fn compile_clauses(
    exp: &mut Expander,
    clauses: &[Rc<Syntax>],
    lits: &[Symbol],
    scrut_id: &Syntax,
    env: &CEnv,
) -> Result<Rc<Core>, ExpandError> {
    let Some((clause, rest)) = clauses.split_first() else {
        return Ok(call_support(
            "%no-clause-matched",
            vec![lref(env, scrut_id)],
            scrut_id,
        ));
    };
    let Some(clause_elems) = clause.as_list() else {
        return Err(bad("syntax-case clause must be a list", clause));
    };
    let (pattern, fender, output) = match clause_elems {
        [p, o] => (p, None, o),
        [p, f, o] => (p, Some(f), o),
        _ => return Err(bad("syntax-case clause must be [pattern output] or [pattern fender output]", clause)),
    };
    let cp = compile_pattern(pattern, lits)?;
    let nvars = cp.vars.len();
    // Bind the raw match result (vector or #f).
    let match_id = hidden_ident("match");
    let match_env = env.push(Scope {
        entries: vec![entry_for(&match_id, BindKind::Var)],
    });
    let dispatch = call_support(
        "%syntax-dispatch",
        vec![
            lref(env, scrut_id),
            Core::rc(CoreKind::Const(cp.spec.clone()), pattern.source),
            Core::rc(CoreKind::Const(Datum::Int(nvars as i64)), pattern.source),
        ],
        clause,
    );
    // Bind the pattern variables from the match vector.
    let var_entries: Vec<ScopeEntry> = cp
        .vars
        .iter()
        .enumerate()
        .map(|(i, v)| ScopeEntry {
            sym: v.id.as_symbol().expect("pattern var is identifier"),
            marks: v.id.marks.clone(),
            kind: cp.bind_kind(i),
        })
        .collect();
    let var_env = match_env.push(Scope {
        entries: var_entries,
    });
    // The variable initializers run in the Let's *enclosing* environment
    // (match_env), reading slots out of the match vector.
    let mut var_inits = Vec::with_capacity(nvars);
    for i in 0..nvars {
        var_inits.push(call_support(
            "%vector-ref",
            vec![
                lref(&match_env, &match_id),
                Core::rc(CoreKind::Const(Datum::Int(i as i64)), clause.source),
            ],
            clause,
        ));
    }
    let output_core = exp.expand_expr(output, &var_env)?;
    let clause_body = match fender {
        None => output_core,
        Some(f) => {
            let fender_core = exp.expand_expr(f, &var_env)?;
            // Fender failure falls through to the remaining clauses,
            // compiled at this depth.
            let fallback = compile_clauses(exp, rest, lits, scrut_id, &var_env)?;
            Core::rc(CoreKind::If(fender_core, output_core, fallback), clause.source)
        }
    };
    let matched = Core::rc(
        CoreKind::Let {
            inits: var_inits,
            body: clause_body,
        },
        clause.source,
    );
    let next = compile_clauses(exp, rest, lits, scrut_id, &match_env)?;
    let test = Core::rc(
        CoreKind::If(lref(&match_env, &match_id), matched, next),
        clause.source,
    );
    Ok(Core::rc(
        CoreKind::Let {
            inits: vec![dispatch],
            body: test,
        },
        clause.source,
    ))
}
