//! Expansion errors.

use pgmp_eval::EvalError;
use pgmp_syntax::SourceObject;
use std::fmt;

/// Classification of expansion errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpandErrorKind {
    /// A form is structurally malformed (`(lambda)`, `(if)`, …).
    BadForm,
    /// A `syntax-case` pattern or template is ill-formed.
    BadPattern,
    /// No `syntax-case` clause matched the input.
    NoMatch,
    /// A macro transformer raised an error when run.
    TransformerFailed,
    /// A transformer returned a non-syntax value.
    BadTransformerResult,
    /// Macro expansion did not terminate within the step budget.
    ExpansionLoop,
    /// Feature deliberately not supported (documented in DESIGN.md).
    Unsupported,
}

/// An error produced during macro expansion.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpandError {
    /// What went wrong.
    pub kind: ExpandErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Source location of the offending syntax, if known.
    pub src: Option<SourceObject>,
}

impl ExpandError {
    /// Creates an error.
    pub fn new(kind: ExpandErrorKind, message: impl Into<String>) -> ExpandError {
        ExpandError {
            kind,
            message: message.into(),
            src: None,
        }
    }

    /// Attaches a source location if not already present.
    pub fn with_src(mut self, src: Option<SourceObject>) -> ExpandError {
        if self.src.is_none() {
            self.src = src;
        }
        self
    }
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.src {
            Some(src) => write!(f, "expand error: {} (at {src})", self.message),
            None => write!(f, "expand error: {}", self.message),
        }
    }
}

impl std::error::Error for ExpandError {}

impl From<EvalError> for ExpandError {
    fn from(e: EvalError) -> ExpandError {
        ExpandError {
            kind: ExpandErrorKind::TransformerFailed,
            message: format!("transformer raised: {e}"),
            src: e.src,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_location() {
        let e = ExpandError::new(ExpandErrorKind::BadForm, "malformed if")
            .with_src(Some(SourceObject::new("f.scm", 1, 5)));
        assert_eq!(e.to_string(), "expand error: malformed if (at f.scm:1-5)");
    }

    #[test]
    fn eval_errors_convert() {
        let e: ExpandError = EvalError::type_error("x", &pgmp_eval::Value::Nil).into();
        assert_eq!(e.kind, ExpandErrorKind::TransformerFailed);
        assert!(e.message.contains("transformer raised"));
    }
}
