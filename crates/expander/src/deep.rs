//! Source-to-source expansion: expand every macro but keep core forms.
//!
//! [`Expander::expand_to_syntax`] is how tests and examples inspect what a
//! profile-guided meta-program generated — e.g. to check that `case`
//! produced the reordered `cond` of Figure 8. It is a display-oriented
//! mirror of the real compilation pipeline: macros are expanded with the
//! same transformers and hygiene machinery, but the result remains syntax.

use crate::cenv::{entry_for, BindKind, CEnv, Scope};
use crate::error::ExpandError;
use crate::expander::Expander;
use pgmp_syntax::{Syntax, SyntaxBody};
use std::rc::Rc;

fn is_sym(stx: &Syntax, name: &str) -> bool {
    stx.as_symbol().is_some_and(|s| s.as_str() == name)
}

fn rebuild(stx: &Syntax, elems: Vec<Rc<Syntax>>) -> Rc<Syntax> {
    let mut out = Syntax::new(SyntaxBody::List(elems), stx.source);
    out.marks = stx.marks.clone();
    Rc::new(out)
}

/// Extends `env` with binders from a lambda-style parameter list.
fn bind_params(env: &CEnv, params: &Syntax) -> CEnv {
    let mut entries = Vec::new();
    match &params.body {
        SyntaxBody::Atom(_) if params.is_identifier() => {
            entries.push(entry_for(params, BindKind::Var));
        }
        SyntaxBody::List(elems) => {
            for e in elems {
                if e.is_identifier() {
                    entries.push(entry_for(e, BindKind::Var));
                }
            }
        }
        SyntaxBody::Improper(elems, tail) => {
            for e in elems.iter().chain(std::iter::once(tail)) {
                if e.is_identifier() {
                    entries.push(entry_for(e, BindKind::Var));
                }
            }
        }
        _ => {}
    }
    env.push(Scope { entries })
}

fn bind_let_bindings(env: &CEnv, bindings: &Syntax) -> CEnv {
    let mut entries = Vec::new();
    if let Some(elems) = bindings.as_list() {
        for b in elems {
            if let Some([name, _]) = b.as_list() {
                if name.is_identifier() {
                    entries.push(entry_for(name, BindKind::Var));
                }
            }
        }
    }
    env.push(Scope { entries })
}

impl Expander {
    /// Fully macro-expands a program, returning syntax rather than core
    /// code. `define-syntax` and `for-syntax` forms are processed (they
    /// affect the meta interpreter) and omitted from the output.
    ///
    /// # Errors
    ///
    /// Returns the first [`ExpandError`] encountered.
    pub fn expand_to_syntax(
        &mut self,
        program: &[Rc<Syntax>],
    ) -> Result<Vec<Rc<Syntax>>, ExpandError> {
        let mut out = Vec::new();
        for form in program {
            self.expand_toplevel_to_syntax(form.clone(), &mut out)?;
        }
        Ok(out)
    }

    /// Source-to-source expansion of a single toplevel form (the
    /// per-form mirror of [`Expander::expand_to_syntax`], used by the
    /// incremental recompilation cache).
    ///
    /// # Errors
    ///
    /// Returns the first [`ExpandError`] encountered.
    pub fn expand_form_to_syntax(
        &mut self,
        form: &Rc<Syntax>,
    ) -> Result<Vec<Rc<Syntax>>, ExpandError> {
        let mut out = Vec::new();
        self.expand_toplevel_to_syntax(form.clone(), &mut out)?;
        Ok(out)
    }

    fn expand_toplevel_to_syntax(
        &mut self,
        form: Rc<Syntax>,
        out: &mut Vec<Rc<Syntax>>,
    ) -> Result<(), ExpandError> {
        let env = CEnv::new();
        let form = self.macroexpand_head(form, &env)?;
        let head = form
            .as_list()
            .and_then(|e| e.first())
            .and_then(|h| h.as_symbol())
            .map(|s| s.as_str());
        match head {
            Some("begin") => {
                for sub in &form.as_list().expect("checked")[1..] {
                    self.expand_toplevel_to_syntax(sub.clone(), out)?;
                }
            }
            Some("define-syntax") => {
                // Register the transformer; emit nothing.
                let mut sink = Vec::new();
                self.expand_program(&[form])?.into_iter().for_each(|c| sink.push(c));
            }
            Some("define-for-syntax") | Some("begin-for-syntax") => {
                self.expand_program(&[form])?;
            }
            _ => out.push(self.deep(&form, &env)?),
        }
        Ok(())
    }

    /// Recursively expands macros inside `stx`, leaving core forms intact.
    pub(crate) fn deep(
        &mut self,
        stx: &Rc<Syntax>,
        env: &CEnv,
    ) -> Result<Rc<Syntax>, ExpandError> {
        let stx = self.macroexpand_head(stx.clone(), env)?;
        let Some(elems) = stx.as_list() else {
            return Ok(stx);
        };
        let Some(head) = elems.first() else {
            return Ok(stx);
        };
        let head_special = head.as_symbol().filter(|_| env.resolve(head).is_none());
        let elems = elems.to_vec();
        let Some(sym) = head_special else {
            // Application (or shadowed head): expand every element.
            let parts: Result<Vec<Rc<Syntax>>, ExpandError> =
                elems.iter().map(|e| self.deep(e, env)).collect();
            return Ok(rebuild(&stx, parts?));
        };
        match sym.as_str() {
            // Opaque forms: no expansion inside.
            "quote" | "syntax" | "quasisyntax" | "quasiquote" => Ok(stx),
            "lambda" if elems.len() >= 3 => {
                let inner = bind_params(env, &elems[1]);
                self.deep_rest(&stx, &elems, 2, &inner)
            }
            "let" if elems.len() >= 3 && elems[1].is_identifier() => {
                // Named let.
                let loop_env = env.push(Scope {
                    entries: vec![entry_for(&elems[1], BindKind::Var)],
                });
                let inner = bind_let_bindings(&loop_env, &elems[2]);
                let bindings = self.deep_bindings(&elems[2], env)?;
                let mut parts = vec![elems[0].clone(), elems[1].clone(), bindings];
                for b in &elems[3..] {
                    parts.push(self.deep(b, &inner)?);
                }
                Ok(rebuild(&stx, parts))
            }
            "let" | "letrec" | "letrec*" if elems.len() >= 3 => {
                let inner = bind_let_bindings(env, &elems[1]);
                let binding_env = if sym.as_str() == "let" { env.clone() } else { inner.clone() };
                let bindings = self.deep_bindings(&elems[1], &binding_env)?;
                let mut parts = vec![elems[0].clone(), bindings];
                for b in &elems[2..] {
                    parts.push(self.deep(b, &inner)?);
                }
                Ok(rebuild(&stx, parts))
            }
            "let*" if elems.len() >= 3 => {
                // Bind progressively.
                let mut cur = env.clone();
                let mut new_bindings = Vec::new();
                if let Some(bs) = elems[1].as_list() {
                    for b in bs {
                        if let Some([name, value]) = b.as_list() {
                            let v = self.deep(value, &cur)?;
                            new_bindings.push(rebuild(b, vec![name.clone(), v]));
                            cur = cur.push(Scope {
                                entries: vec![entry_for(name, BindKind::Var)],
                            });
                        } else {
                            new_bindings.push(b.clone());
                        }
                    }
                }
                let bindings = rebuild(&elems[1], new_bindings);
                let mut parts = vec![elems[0].clone(), bindings];
                for b in &elems[2..] {
                    parts.push(self.deep(b, &cur)?);
                }
                Ok(rebuild(&stx, parts))
            }
            "define" if elems.len() >= 2 => {
                // Keep the header, expand the body/init.
                let inner = match elems[1].as_list() {
                    Some([_, ps @ ..]) => {
                        let params = Syntax::new(SyntaxBody::List(ps.to_vec()), elems[1].source);
                        bind_params(env, &params)
                    }
                    _ => env.clone(),
                };
                self.deep_rest(&stx, &elems, 2, &inner)
            }
            "cond" | "case" => {
                // Expand inside every clause (and the key for case).
                let mut parts = vec![elems[0].clone()];
                let mut rest = 1;
                if sym.as_str() == "case" && elems.len() >= 2 {
                    parts.push(self.deep(&elems[1], env)?);
                    rest = 2;
                }
                for clause in &elems[rest..] {
                    match clause.as_list() {
                        Some([lhs, body @ ..]) => {
                            let mut cparts = Vec::with_capacity(body.len() + 1);
                            // For cond, the lhs is an expression (unless
                            // `else`); for case it is a datum list.
                            if sym.as_str() == "cond" && !is_sym(lhs, "else") {
                                cparts.push(self.deep(lhs, env)?);
                            } else {
                                cparts.push(lhs.clone());
                            }
                            for b in body {
                                cparts.push(self.deep(b, env)?);
                            }
                            parts.push(rebuild(clause, cparts));
                        }
                        _ => parts.push(clause.clone()),
                    }
                }
                Ok(rebuild(&stx, parts))
            }
            _ => {
                // All other forms (if, begin, set!, when, and, or,
                // applications of core names used as procedures, …):
                // expand every subform after the head.
                self.deep_rest(&stx, &elems, 1, env)
            }
        }
    }

    fn deep_rest(
        &mut self,
        stx: &Syntax,
        elems: &[Rc<Syntax>],
        from: usize,
        env: &CEnv,
    ) -> Result<Rc<Syntax>, ExpandError> {
        let mut parts: Vec<Rc<Syntax>> = elems[..from].to_vec();
        for e in &elems[from..] {
            parts.push(self.deep(e, env)?);
        }
        Ok(rebuild(stx, parts))
    }

    fn deep_bindings(
        &mut self,
        bindings: &Rc<Syntax>,
        env: &CEnv,
    ) -> Result<Rc<Syntax>, ExpandError> {
        let Some(elems) = bindings.as_list() else {
            return Ok(bindings.clone());
        };
        let mut out = Vec::with_capacity(elems.len());
        for b in elems {
            match b.as_list() {
                Some([name, value]) => {
                    let v = self.deep(value, env)?;
                    out.push(rebuild(b, vec![name.clone(), v]));
                }
                _ => out.push(b.clone()),
            }
        }
        Ok(rebuild(bindings, out))
    }
}
