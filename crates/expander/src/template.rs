//! Syntax templates: `#'tmpl` and `` #`tmpl `` with `#,` / `#,@`.
//!
//! A template compiles to [`Core`] code that, when the transformer runs,
//! builds the output syntax object: pattern variables are read from their
//! slots, ellipses become `%map` loops, `unsyntax` escapes are compiled as
//! ordinary expressions, and the finished value tree is converted to syntax
//! by `%value->syntax` in the context of the template itself (so introduced
//! atoms inherit the template's source and marks).

use crate::cenv::{BindKind, CEnv, Scope, ScopeEntry};
use crate::error::{ExpandError, ExpandErrorKind};
use crate::expander::Expander;
use pgmp_eval::{Core, CoreKind, LambdaDef};
use pgmp_syntax::{MarkSet, Symbol, Syntax, SyntaxBody};
use std::rc::Rc;

fn is_sym(stx: &Syntax, name: &str) -> bool {
    stx.as_symbol().is_some_and(|s| s.as_str() == name)
}

fn bad(msg: impl Into<String>, stx: &Syntax) -> ExpandError {
    ExpandError::new(ExpandErrorKind::BadPattern, msg).with_src(stx.source)
}

pub(crate) fn call_support(name: &'static str, args: Vec<Rc<Core>>, stx: &Syntax) -> Rc<Core> {
    Core::rc(
        CoreKind::Call {
            func: Core::rc(CoreKind::GlobalRef(Symbol::intern(name)), None),
            args,
        },
        stx.source,
    )
}

fn pattern_var_depth(env: &CEnv, id: &Syntax) -> Option<u8> {
    match env.resolve(id) {
        Some(r) => match r.kind {
            BindKind::PatternVar(d) => Some(d),
            BindKind::Var => None,
        },
        None => None,
    }
}

fn local_ref(env: &CEnv, id: &Syntax) -> Rc<Core> {
    let r = env.resolve(id).expect("pattern variable resolved twice");
    Core::rc(
        CoreKind::LocalRef {
            depth: r.depth,
            index: r.index,
        },
        id.source,
    )
}

/// True when the template mentions no pattern variables or unsyntax
/// escapes — such templates compile to a single `SyntaxConst`.
fn is_constant(tmpl: &Syntax, env: &CEnv, quasi: bool, qdepth: u32) -> bool {
    match &tmpl.body {
        SyntaxBody::Atom(_) => {
            !(tmpl.is_identifier() && pattern_var_depth(env, tmpl).is_some())
        }
        SyntaxBody::List(elems) => {
            if quasi {
                if let Some(head) = elems.first() {
                    if is_sym(head, "unsyntax") || is_sym(head, "unsyntax-splicing") {
                        if qdepth == 0 {
                            return false;
                        }
                        return elems[1..].iter().all(|e| is_constant(e, env, quasi, qdepth - 1));
                    }
                    if is_sym(head, "quasisyntax") {
                        return elems[1..].iter().all(|e| is_constant(e, env, quasi, qdepth + 1));
                    }
                }
            }
            if elems.first().is_some_and(|h| is_sym(h, "...")) {
                return true; // (... escaped) is literal
            }
            elems.iter().all(|e| is_constant(e, env, quasi, qdepth))
        }
        SyntaxBody::Improper(elems, tail) => {
            elems.iter().all(|e| is_constant(e, env, quasi, qdepth))
                && is_constant(tail, env, quasi, qdepth)
        }
        SyntaxBody::Vector(elems) => elems.iter().all(|e| is_constant(e, env, quasi, qdepth)),
    }
}

/// Compiles a template into code producing a syntax object.
///
/// `quasi` selects `quasisyntax` semantics (honouring `unsyntax`).
pub(crate) fn compile_template(
    exp: &mut Expander,
    tmpl: &Rc<Syntax>,
    env: &CEnv,
    quasi: bool,
) -> Result<Rc<Core>, ExpandError> {
    if is_constant(tmpl, env, quasi, 0) {
        return Ok(Core::rc(CoreKind::SyntaxConst(tmpl.clone()), tmpl.source));
    }
    let item = build_item(exp, tmpl, env, quasi, 0)?;
    Ok(call_support(
        "%value->syntax",
        vec![
            Core::rc(CoreKind::SyntaxConst(tmpl.clone()), tmpl.source),
            item,
        ],
        tmpl,
    ))
}

/// One element of a list template: either a single item or a spliced list.
enum Segment {
    Item(Rc<Core>),
    Splice(Rc<Core>),
}

fn segments_to_core(segs: Vec<Segment>, stx: &Syntax, tail: Option<Rc<Core>>) -> Rc<Core> {
    let all_items = segs.iter().all(|s| matches!(s, Segment::Item(_))) && tail.is_none();
    if all_items {
        let items = segs
            .into_iter()
            .map(|s| match s {
                Segment::Item(c) => c,
                Segment::Splice(_) => unreachable!(),
            })
            .collect();
        return call_support("%list", items, stx);
    }
    let mut args: Vec<Rc<Core>> = segs
        .into_iter()
        .map(|s| match s {
            Segment::Item(c) => call_support("%list", vec![c], stx),
            Segment::Splice(c) => c,
        })
        .collect();
    args.push(tail.unwrap_or_else(|| {
        Core::rc(CoreKind::Const(pgmp_syntax::Datum::Nil), stx.source)
    }));
    call_support("%append", args, stx)
}

fn build_item(
    exp: &mut Expander,
    tmpl: &Rc<Syntax>,
    env: &CEnv,
    quasi: bool,
    qdepth: u32,
) -> Result<Rc<Core>, ExpandError> {
    match &tmpl.body {
        SyntaxBody::Atom(_) => {
            if tmpl.is_identifier() {
                if let Some(d) = pattern_var_depth(env, tmpl) {
                    if d > 0 {
                        return Err(bad(
                            format!(
                                "pattern variable `{}` of ellipsis depth {d} used without enough ellipses",
                                tmpl.as_symbol().expect("identifier")
                            ),
                            tmpl,
                        ));
                    }
                    return Ok(local_ref(env, tmpl));
                }
            }
            Ok(Core::rc(CoreKind::SyntaxConst(tmpl.clone()), tmpl.source))
        }
        SyntaxBody::Vector(_) => Err(ExpandError::new(
            ExpandErrorKind::Unsupported,
            "vector templates are not supported (see DESIGN.md)",
        )
        .with_src(tmpl.source)),
        SyntaxBody::List(elems) => {
            if let Some(head) = elems.first() {
                // `(... t)` escapes ellipsis interpretation.
                if is_sym(head, "...") && elems.len() == 2 {
                    return Ok(Core::rc(
                        CoreKind::SyntaxConst(elems[1].clone()),
                        tmpl.source,
                    ));
                }
                if quasi && is_sym(head, "unsyntax") && elems.len() == 2 {
                    if qdepth == 0 {
                        return exp.expand_expr(&elems[1], env);
                    }
                    let inner = build_item(exp, &elems[1], env, quasi, qdepth - 1)?;
                    let segs = vec![
                        Segment::Item(Core::rc(
                            CoreKind::SyntaxConst(head.clone()),
                            head.source,
                        )),
                        Segment::Item(inner),
                    ];
                    return Ok(segments_to_core(segs, tmpl, None));
                }
                if quasi && is_sym(head, "quasisyntax") && elems.len() == 2 {
                    let inner = build_item(exp, &elems[1], env, quasi, qdepth + 1)?;
                    let segs = vec![
                        Segment::Item(Core::rc(
                            CoreKind::SyntaxConst(head.clone()),
                            head.source,
                        )),
                        Segment::Item(inner),
                    ];
                    return Ok(segments_to_core(segs, tmpl, None));
                }
            }
            let segs = build_segments(exp, elems, env, quasi, qdepth, tmpl)?;
            Ok(segments_to_core(segs, tmpl, None))
        }
        SyntaxBody::Improper(elems, tail) => {
            let segs = build_segments(exp, elems, env, quasi, qdepth, tmpl)?;
            let tail_core = build_item(exp, tail, env, quasi, qdepth)?;
            Ok(segments_to_core(segs, tmpl, Some(tail_core)))
        }
    }
}

fn build_segments(
    exp: &mut Expander,
    elems: &[Rc<Syntax>],
    env: &CEnv,
    quasi: bool,
    qdepth: u32,
    whole: &Syntax,
) -> Result<Vec<Segment>, ExpandError> {
    let mut segs = Vec::new();
    let mut i = 0;
    while i < elems.len() {
        let e = &elems[i];
        let followed_by_ellipsis = elems.get(i + 1).is_some_and(|n| is_sym(n, "..."));
        if is_sym(e, "...") {
            return Err(bad("misplaced ellipsis in template", whole));
        }
        if followed_by_ellipsis {
            segs.push(ellipsis_segment(exp, e, env, quasi, qdepth)?);
            i += 2;
            continue;
        }
        // (unsyntax-splicing e) as a list element splices.
        if quasi && qdepth == 0 {
            if let SyntaxBody::List(parts) = &e.body {
                if parts.len() == 2 && parts.first().is_some_and(|h| is_sym(h, "unsyntax-splicing"))
                {
                    segs.push(Segment::Splice(exp.expand_expr(&parts[1], env)?));
                    i += 1;
                    continue;
                }
            }
        }
        segs.push(Segment::Item(build_item(exp, e, env, quasi, qdepth)?));
        i += 1;
    }
    Ok(segs)
}

/// Collects the pattern variables of positive remaining depth mentioned in
/// `t` (deduplicated by identifier identity).
fn collect_deep_vars(t: &Syntax, env: &CEnv, out: &mut Vec<(Syntax, u8)>) {
    match &t.body {
        SyntaxBody::Atom(_) => {
            if t.is_identifier() {
                if let Some(d) = pattern_var_depth(env, t) {
                    if d > 0 && !out.iter().any(|(id, _)| id.bound_identifier_eq(t)) {
                        out.push((t.clone(), d));
                    }
                }
            }
        }
        SyntaxBody::List(elems) => {
            // Skip `(... escaped)` blocks.
            if elems.first().is_some_and(|h| is_sym(h, "...")) && elems.len() == 2 {
                return;
            }
            elems.iter().for_each(|e| collect_deep_vars(e, env, out));
        }
        SyntaxBody::Improper(elems, tail) => {
            elems.iter().for_each(|e| collect_deep_vars(e, env, out));
            collect_deep_vars(tail, env, out);
        }
        SyntaxBody::Vector(elems) => elems.iter().for_each(|e| collect_deep_vars(e, env, out)),
    }
}

fn ellipsis_segment(
    exp: &mut Expander,
    sub: &Rc<Syntax>,
    env: &CEnv,
    quasi: bool,
    qdepth: u32,
) -> Result<Segment, ExpandError> {
    let mut vars = Vec::new();
    collect_deep_vars(sub, env, &mut vars);
    if vars.is_empty() {
        return Err(bad("ellipsis template contains no pattern variable", sub));
    }
    // Fast path: `v ...` where v is itself a pattern variable list.
    if sub.is_identifier() && vars.len() == 1 && vars[0].0.bound_identifier_eq(sub) {
        return Ok(Segment::Splice(local_ref(env, sub)));
    }
    // General: map a generated lambda over the variables' lists.
    let entries: Vec<ScopeEntry> = vars
        .iter()
        .map(|(id, d)| ScopeEntry {
            sym: id.as_symbol().expect("pattern var is identifier"),
            marks: id.marks.clone(),
            kind: BindKind::PatternVar(d - 1),
        })
        .collect();
    let inner_env = env.push(Scope { entries });
    let body = build_item(exp, sub, &inner_env, quasi, qdepth)?;
    let lambda = Core::rc(
        CoreKind::Lambda(Rc::new(LambdaDef {
            params: vars.len() as u16,
            variadic: false,
            body,
            name: Some(Symbol::intern("%ellipsis-template")),
            src: sub.source,
        })),
        sub.source,
    );
    let mut args = vec![lambda];
    for (id, _) in &vars {
        args.push(local_ref(env, id));
    }
    Ok(Segment::Splice(call_support("%map", args, sub)))
}

/// Returns an identifier with no marks for internal use.
pub(crate) fn plain_ident(name: &str) -> Syntax {
    Syntax {
        body: SyntaxBody::Atom(pgmp_syntax::Datum::sym(name)),
        source: None,
        marks: MarkSet::new(),
    }
}
