//! Stable per-form identity for the incremental recompilation cache.
//!
//! [`form_hash`] fingerprints a top-level form's *meaning-relevant* content:
//! node structure, atom values, and source locations. Source offsets are
//! included deliberately — profile weights are keyed by `SourceObject`
//! (file + byte offsets), so a form whose text shifted must hash differently
//! even when its datum structure is unchanged: its profile points moved, and
//! any cached expansion that baked in the old points would be stale.
//!
//! Hygiene marks are *excluded*: reader output carries no marks, and the
//! cache keys forms as read, before any expansion.

use pgmp_syntax::{Datum, Syntax, SyntaxBody};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        // Length-prefix so ("ab","c") and ("a","bc") differ.
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
}

fn hash_datum(h: &mut Fnv, d: &Datum) {
    match d {
        Datum::Nil => h.byte(0),
        Datum::Bool(b) => {
            h.byte(1);
            h.byte(*b as u8);
        }
        Datum::Int(i) => {
            h.byte(2);
            h.u64(*i as u64);
        }
        Datum::Float(f) => {
            h.byte(3);
            h.u64(f.to_bits());
        }
        Datum::Char(c) => {
            h.byte(4);
            h.u64(*c as u64);
        }
        Datum::Str(s) => {
            h.byte(5);
            h.str(s);
        }
        Datum::Sym(s) => {
            h.byte(6);
            h.str(s.as_str());
        }
        Datum::Pair(p) => {
            h.byte(7);
            hash_datum(h, &p.0);
            hash_datum(h, &p.1);
        }
        Datum::Vector(v) => {
            h.byte(8);
            h.u64(v.len() as u64);
            for e in v.iter() {
                hash_datum(h, e);
            }
        }
    }
}

fn hash_node(h: &mut Fnv, stx: &Syntax) {
    match stx.source {
        Some(src) => {
            h.byte(1);
            h.str(src.file.as_str());
            h.u64(src.bfp as u64);
            h.u64(src.efp as u64);
        }
        None => h.byte(0),
    }
    match &stx.body {
        SyntaxBody::Atom(d) => {
            h.byte(10);
            hash_datum(h, d);
        }
        SyntaxBody::List(elems) => {
            h.byte(11);
            h.u64(elems.len() as u64);
            for e in elems {
                hash_node(h, e);
            }
        }
        SyntaxBody::Improper(elems, tail) => {
            h.byte(12);
            h.u64(elems.len() as u64);
            for e in elems {
                hash_node(h, e);
            }
            hash_node(h, tail);
        }
        SyntaxBody::Vector(elems) => {
            h.byte(13);
            h.u64(elems.len() as u64);
            for e in elems {
                hash_node(h, e);
            }
        }
    }
}

/// Fingerprints a top-level form for cache keying: structure, atoms, and
/// source positions, ignoring hygiene marks.
pub fn form_hash(stx: &Syntax) -> u64 {
    let mut h = Fnv::new();
    hash_node(&mut h, stx);
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmp_reader::read_str;

    fn one(src: &str, file: &str) -> std::rc::Rc<Syntax> {
        read_str(src, file).unwrap().remove(0)
    }

    #[test]
    fn identical_text_hashes_equal() {
        assert_eq!(
            form_hash(&one("(+ 1 2)", "a.scm")),
            form_hash(&one("(+ 1 2)", "a.scm"))
        );
    }

    #[test]
    fn different_text_hashes_differ() {
        assert_ne!(
            form_hash(&one("(+ 1 2)", "a.scm")),
            form_hash(&one("(+ 1 3)", "a.scm"))
        );
    }

    #[test]
    fn shifted_offsets_hash_differently() {
        // Same datum, different byte positions: the profile points moved,
        // so the cache must treat it as a different form.
        let a = one("(+ 1 2)", "a.scm");
        let b = read_str("     (+ 1 2)", "a.scm").unwrap().remove(0);
        assert_eq!(a.to_datum().to_string(), b.to_datum().to_string());
        assert_ne!(form_hash(&a), form_hash(&b));
    }

    #[test]
    fn file_name_participates() {
        assert_ne!(
            form_hash(&one("(+ 1 2)", "a.scm")),
            form_hash(&one("(+ 1 2)", "b.scm"))
        );
    }

    #[test]
    fn marks_do_not_participate() {
        let a = one("(+ 1 2)", "a.scm");
        let marked = a.apply_mark(pgmp_syntax::Mark(7));
        assert_eq!(form_hash(&a), form_hash(&marked));
    }
}
