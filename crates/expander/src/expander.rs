//! The expander driver: macro application, hygiene, and the toplevel loop.

use crate::cenv::CEnv;
use crate::error::{ExpandError, ExpandErrorKind};
use crate::forms;
use crate::support::install_expander_support;
use pgmp_eval::{install_primitives, Core, CoreKind, Interp, Value};
use pgmp_observe as observe;
use pgmp_syntax::{Datum, Mark, Symbol, Syntax, SyntaxBody};
use std::collections::HashMap;
use std::rc::Rc;

/// The source file an expansion span is attributed to.
fn form_file(form: &Syntax) -> String {
    form.first_source()
        .map_or_else(|| "<none>".to_string(), |s| s.file.as_str().to_string())
}

/// The macro expander.
///
/// Holds the table of `define-syntax` transformers and the **meta
/// interpreter** those transformers run on. The engine (`pgmp` crate)
/// installs the profile API into [`Expander::meta`], giving meta-programs
/// compile-time access to profile weights — the central mechanism of the
/// paper.
///
/// See the crate-level docs for an end-to-end example.
pub struct Expander {
    /// The interpreter used to run transformers and `for-syntax` code.
    pub meta: Interp,
    macros: HashMap<Symbol, Value>,
    next_mark: u32,
    steps: usize,
    /// Budget of macro applications per `expand_program`/`expand_expr_top`
    /// call; exceeding it reports an expansion loop.
    pub max_steps: usize,
    meta_dirty: bool,
}

impl Default for Expander {
    fn default() -> Expander {
        Expander::new()
    }
}

impl Expander {
    /// Creates an expander whose meta interpreter has the standard
    /// primitives and expander support installed.
    pub fn new() -> Expander {
        let mut meta = Interp::new();
        install_primitives(&mut meta);
        install_expander_support(&mut meta);
        Expander {
            meta,
            macros: HashMap::new(),
            next_mark: 1,
            steps: 0,
            max_steps: 100_000,
            meta_dirty: false,
        }
    }

    /// Registers `transformer` (a procedure value in the meta interpreter)
    /// as the macro `name`.
    pub fn define_macro(&mut self, name: Symbol, transformer: Value) {
        self.meta_dirty = true;
        self.macros.insert(name, transformer);
    }

    /// Reports (and clears) whether expansion since the last call changed
    /// compile-time state visible to later forms: a `define-syntax`,
    /// `define-for-syntax`, or `begin-for-syntax` ran. The incremental
    /// cache uses this to invalidate every form downstream of such a form —
    /// their cached expansions may depend on the old meta state.
    pub fn take_meta_dirty(&mut self) -> bool {
        std::mem::take(&mut self.meta_dirty)
    }

    /// True iff `name` is a registered macro.
    pub fn is_macro(&self, name: Symbol) -> bool {
        self.macros.contains_key(&name)
    }

    /// Drains compile-time warnings produced by meta-programs (via the
    /// `warn` primitive), e.g. the §6.3 "reimplement this list as a
    /// vector" recommendation.
    pub fn take_warnings(&mut self) -> Vec<String> {
        std::mem::take(&mut self.meta.warnings)
    }

    pub(crate) fn fresh_mark(&mut self) -> Mark {
        let m = Mark(self.next_mark);
        self.next_mark += 1;
        m
    }

    /// Runs `transformer` on `stx` with the mark discipline: mark input,
    /// run, mark output; marks cancel on pass-through syntax.
    pub(crate) fn apply_transformer(
        &mut self,
        transformer: &Value,
        stx: &Syntax,
    ) -> Result<Rc<Syntax>, ExpandError> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(ExpandError::new(
                ExpandErrorKind::ExpansionLoop,
                format!("macro expansion exceeded {} steps", self.max_steps),
            )
            .with_src(stx.source));
        }
        let mark = self.fresh_mark();
        let input = stx.apply_mark(mark);
        let out = self
            .meta
            .apply(transformer, vec![Value::Syntax(Rc::new(input))])
            .map_err(|e| ExpandError::from(e).with_src(stx.source))?;
        match out {
            Value::Syntax(s) => Ok(Rc::new(s.apply_mark(mark))),
            other => Err(ExpandError::new(
                ExpandErrorKind::BadTransformerResult,
                format!("transformer returned {} instead of syntax", other.type_name()),
            )
            .with_src(stx.source)),
        }
    }

    /// Repeatedly expands macros in head position until the form is no
    /// longer a macro use. Lexical bindings shadow macros.
    pub(crate) fn macroexpand_head(
        &mut self,
        mut stx: Rc<Syntax>,
        env: &CEnv,
    ) -> Result<Rc<Syntax>, ExpandError> {
        loop {
            let Some(elems) = stx.as_list() else {
                return Ok(stx);
            };
            let Some(head) = elems.first() else {
                return Ok(stx);
            };
            let Some(sym) = head.as_symbol() else {
                return Ok(stx);
            };
            if env.resolve(head).is_some() {
                return Ok(stx); // shadowed by a lexical binding
            }
            let Some(t) = self.macros.get(&sym).cloned() else {
                return Ok(stx);
            };
            stx = self.apply_transformer(&t, &stx)?;
        }
    }

    /// Expands a single expression in the empty lexical environment.
    ///
    /// # Errors
    ///
    /// Returns an [`ExpandError`] for malformed forms, failing
    /// transformers, and expansion loops.
    pub fn expand_expr_top(&mut self, stx: &Rc<Syntax>) -> Result<Rc<Core>, ExpandError> {
        self.steps = 0;
        self.expand_expr(stx, &CEnv::new())
    }

    /// Expands an expression in `env`.
    pub(crate) fn expand_expr(
        &mut self,
        stx: &Rc<Syntax>,
        env: &CEnv,
    ) -> Result<Rc<Core>, ExpandError> {
        let stx = self.macroexpand_head(stx.clone(), env)?;
        match &stx.body {
            SyntaxBody::Atom(Datum::Sym(sym)) => {
                if let Some(r) = env.resolve(&stx) {
                    return Ok(Core::rc(
                        CoreKind::LocalRef {
                            depth: r.depth,
                            index: r.index,
                        },
                        stx.source,
                    ));
                }
                if self.macros.contains_key(sym) {
                    return Err(ExpandError::new(
                        ExpandErrorKind::BadForm,
                        format!("macro `{sym}` used as a variable"),
                    )
                    .with_src(stx.source));
                }
                Ok(Core::rc(CoreKind::GlobalRef(*sym), stx.source))
            }
            SyntaxBody::Atom(d) => Ok(Core::rc(CoreKind::Const(d.clone()), stx.source)),
            SyntaxBody::Vector(_) => Ok(Core::rc(CoreKind::Const(stx.to_datum()), stx.source)),
            SyntaxBody::Improper(_, _) => Err(ExpandError::new(
                ExpandErrorKind::BadForm,
                "dotted list in expression position",
            )
            .with_src(stx.source)),
            SyntaxBody::List(elems) => {
                if elems.is_empty() {
                    return Err(ExpandError::new(
                        ExpandErrorKind::BadForm,
                        "empty application ()",
                    )
                    .with_src(stx.source));
                }
                if let Some(sym) = elems[0].as_symbol() {
                    if env.resolve(&elems[0]).is_none() {
                        if let Some(core) =
                            forms::expand_core_form(self, sym.as_str(), &stx, env)?
                        {
                            return Ok(core);
                        }
                    }
                }
                let func = self.expand_expr(&elems[0], env)?;
                let args: Result<Vec<Rc<Core>>, ExpandError> = elems[1..]
                    .iter()
                    .map(|a| self.expand_expr(a, env))
                    .collect();
                Ok(Core::rc(CoreKind::Call { func, args: args? }, stx.source))
            }
        }
    }

    /// Expands a whole program: a sequence of toplevel forms.
    ///
    /// `define-syntax`, `define-for-syntax`, and `begin-for-syntax` are
    /// processed at expand time (affecting the meta interpreter) and emit
    /// no core code; everything else becomes one [`Core`] form per
    /// toplevel form.
    ///
    /// # Errors
    ///
    /// Returns the first [`ExpandError`] encountered.
    pub fn expand_program(
        &mut self,
        program: &[Rc<Syntax>],
    ) -> Result<Vec<Rc<Core>>, ExpandError> {
        self.steps = 0;
        let mut out = Vec::new();
        for (i, form) in program.iter().enumerate() {
            let t = observe::timer();
            self.expand_toplevel_form(form.clone(), &mut out)?;
            observe::finish(t, |duration_us| observe::EventKind::ExpandForm {
                file: form_file(form),
                index: i as u32,
                duration_us,
            });
        }
        Ok(out)
    }

    /// Expands a single toplevel form, returning the core forms it
    /// produces (possibly several, via `begin` splicing; possibly none,
    /// for `define-syntax` and friends).
    ///
    /// This is the per-form granularity the incremental recompilation
    /// cache works at: each toplevel form is expanded (or reused)
    /// independently.
    ///
    /// # Errors
    ///
    /// Returns the first [`ExpandError`] encountered.
    pub fn expand_form(&mut self, form: &Rc<Syntax>) -> Result<Vec<Rc<Core>>, ExpandError> {
        self.steps = 0;
        let mut out = Vec::new();
        let t = observe::timer();
        self.expand_toplevel_form(form.clone(), &mut out)?;
        observe::finish(t, |duration_us| observe::EventKind::ExpandForm {
            file: form_file(form),
            index: 0,
            duration_us,
        });
        Ok(out)
    }

    fn expand_toplevel_form(
        &mut self,
        form: Rc<Syntax>,
        out: &mut Vec<Rc<Core>>,
    ) -> Result<(), ExpandError> {
        let env = CEnv::new();
        let form = self.macroexpand_head(form, &env)?;
        let head = form
            .as_list()
            .and_then(|elems| elems.first())
            .and_then(|h| h.as_symbol());
        match head.map(|h| h.as_str()) {
            Some("begin") => {
                let elems = form.as_list().expect("checked");
                for sub in &elems[1..] {
                    self.expand_toplevel_form(sub.clone(), out)?;
                }
                Ok(())
            }
            Some("define-syntax") => self.handle_define_syntax(&form),
            Some("define-for-syntax") => self.handle_define_for_syntax(&form),
            Some("begin-for-syntax") => {
                self.meta_dirty = true;
                let elems = form.as_list().expect("checked");
                for sub in &elems[1..] {
                    // Defines inside begin-for-syntax become meta globals.
                    let is_define = sub
                        .as_list()
                        .and_then(|e| e.first())
                        .and_then(|h| h.as_symbol())
                        .is_some_and(|s| s.as_str() == "define");
                    let core = if is_define {
                        let (name, value) = forms::expand_define(self, sub, &env)?;
                        Core::rc(CoreKind::DefineGlobal(name, value), sub.source)
                    } else {
                        self.expand_expr(sub, &env)?
                    };
                    self.meta
                        .eval(&core, &None)
                        .map_err(|e| ExpandError::from(e).with_src(sub.source))?;
                }
                Ok(())
            }
            Some("define") => {
                let (name, value) = forms::expand_define(self, &form, &env)?;
                out.push(Core::rc(CoreKind::DefineGlobal(name, value), form.source));
                Ok(())
            }
            _ => {
                out.push(self.expand_expr(&form, &env)?);
                Ok(())
            }
        }
    }

    /// Parses the two `define-syntax` shapes and returns
    /// `(name, transformer-expression)`.
    pub(crate) fn parse_define_syntax(
        form: &Syntax,
    ) -> Result<(Symbol, Rc<Syntax>), ExpandError> {
        let bad = |msg: &str| {
            Err(ExpandError::new(ExpandErrorKind::BadForm, format!("define-syntax: {msg}"))
                .with_src(form.source))
        };
        let Some(elems) = form.as_list() else {
            return bad("not a list");
        };
        match elems {
            // (define-syntax name transformer)
            [_, name, transformer] if name.is_identifier() => {
                Ok((name.as_symbol().expect("identifier"), transformer.clone()))
            }
            // (define-syntax (name stx) body ...)
            [_, header, _body @ ..] if header.as_list().is_some() => {
                let header_elems = header.as_list().expect("checked");
                let [name, param] = header_elems else {
                    return bad("expected (define-syntax (name stx) body ...)");
                };
                let Some(name_sym) = name.as_symbol() else {
                    return bad("macro name must be an identifier");
                };
                if !param.is_identifier() {
                    return bad("transformer parameter must be an identifier");
                }
                let mut lam = vec![
                    Rc::new(crate::template::plain_ident("lambda")),
                    Rc::new(Syntax::list(vec![param.clone()], header.source)),
                ];
                lam.extend(elems[2..].iter().cloned());
                Ok((name_sym, Rc::new(Syntax::list(lam, form.source))))
            }
            _ => bad("malformed"),
        }
    }

    fn handle_define_syntax(&mut self, form: &Syntax) -> Result<(), ExpandError> {
        let (name, transformer_stx) = Self::parse_define_syntax(form)?;
        let core = self.expand_expr(&transformer_stx, &CEnv::new())?;
        let transformer = self
            .meta
            .eval(&core, &None)
            .map_err(|e| ExpandError::from(e).with_src(form.source))?;
        if !transformer.is_procedure() {
            return Err(ExpandError::new(
                ExpandErrorKind::BadForm,
                format!(
                    "define-syntax: transformer for `{name}` is {} rather than a procedure",
                    transformer.type_name()
                ),
            )
            .with_src(form.source));
        }
        self.define_macro(name, transformer);
        Ok(())
    }

    fn handle_define_for_syntax(&mut self, form: &Syntax) -> Result<(), ExpandError> {
        self.meta_dirty = true;
        let env = CEnv::new();
        let (name, value) = forms::expand_define(self, form, &env)?;
        let core = Core::rc(CoreKind::DefineGlobal(name, value), form.source);
        self.meta
            .eval(&core, &None)
            .map_err(|e| ExpandError::from(e).with_src(form.source))?;
        Ok(())
    }
}
