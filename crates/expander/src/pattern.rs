//! `syntax-case` patterns: compilation to a spec datum and matching.
//!
//! Patterns are compiled by the expander into a first-order *spec* encoded
//! as a [`Datum`], which the `%syntax-dispatch` native interprets at run
//! time (of the transformer). The encoding:
//!
//! ```text
//! any                              wildcard `_`
//! (var n)                          bind pattern variable slot n
//! (lit name)                       literal identifier
//! (const datum)                    constant
//! (list s1 … sn)                   proper list of exactly n
//! (improper (s1 … sn) t)           dotted list
//! (ellist (pre…) head (post…) (slots…))
//!                                  prefix, repeated head, fixed tail;
//!                                  `slots` are the head's variable slots
//! ```

use crate::cenv::BindKind;
use crate::error::{ExpandError, ExpandErrorKind};
use pgmp_eval::Value;
use pgmp_syntax::{Datum, Symbol, Syntax, SyntaxBody};
use std::rc::Rc;

/// A pattern variable discovered during pattern compilation.
#[derive(Clone, Debug)]
pub struct PatternVar {
    /// The binder occurrence (keeps its marks for hygienic binding).
    pub id: Syntax,
    /// Ellipsis depth at which the variable binds.
    pub depth: u8,
}

/// A compiled pattern: the spec plus its variables in slot order.
#[derive(Clone, Debug)]
pub struct CompiledPattern {
    /// First-order matcher program.
    pub spec: Datum,
    /// Variables; slot `i` is `vars[i]`.
    pub vars: Vec<PatternVar>,
}

impl CompiledPattern {
    /// Kind tag for binding the `i`-th variable in a compile-time scope.
    pub fn bind_kind(&self, i: usize) -> BindKind {
        BindKind::PatternVar(self.vars[i].depth)
    }
}

fn bad_pattern(msg: impl Into<String>, stx: &Syntax) -> ExpandError {
    ExpandError::new(ExpandErrorKind::BadPattern, msg).with_src(stx.source)
}

fn is_ellipsis(stx: &Syntax) -> bool {
    stx.as_symbol().is_some_and(|s| s.as_str() == "...")
}

fn is_underscore(stx: &Syntax) -> bool {
    stx.as_symbol().is_some_and(|s| s.as_str() == "_")
}

/// Compiles `pattern` with the given literal identifiers.
///
/// # Errors
///
/// Rejects duplicate pattern variables, misplaced `…`, vector patterns, and
/// `…` in dotted tails.
pub fn compile_pattern(
    pattern: &Syntax,
    literals: &[Symbol],
) -> Result<CompiledPattern, ExpandError> {
    let mut vars: Vec<PatternVar> = Vec::new();
    let spec = compile(pattern, literals, 0, &mut vars)?;
    Ok(CompiledPattern { spec, vars })
}

fn compile(
    p: &Syntax,
    literals: &[Symbol],
    depth: u8,
    vars: &mut Vec<PatternVar>,
) -> Result<Datum, ExpandError> {
    match &p.body {
        SyntaxBody::Atom(Datum::Sym(sym)) => {
            if is_ellipsis(p) {
                return Err(bad_pattern("misplaced ellipsis", p));
            }
            if is_underscore(p) {
                return Ok(Datum::sym("any"));
            }
            if literals.contains(sym) {
                return Ok(Datum::list(vec![Datum::sym("lit"), Datum::Sym(*sym)]));
            }
            if vars.iter().any(|v| v.id.as_symbol() == Some(*sym)) {
                return Err(bad_pattern(format!("duplicate pattern variable `{sym}`"), p));
            }
            let slot = vars.len() as i64;
            vars.push(PatternVar {
                id: p.clone(),
                depth,
            });
            Ok(Datum::list(vec![Datum::sym("var"), Datum::Int(slot)]))
        }
        SyntaxBody::Atom(d) => Ok(Datum::list(vec![Datum::sym("const"), d.clone()])),
        SyntaxBody::Vector(_) => Err(bad_pattern(
            "vector patterns are not supported (see DESIGN.md)",
            p,
        )),
        SyntaxBody::List(elems) => {
            let ell_pos = elems.iter().position(|e| is_ellipsis(e));
            match ell_pos {
                None => {
                    let specs: Result<Vec<Datum>, ExpandError> = elems
                        .iter()
                        .map(|e| compile(e, literals, depth, vars))
                        .collect();
                    let mut out = vec![Datum::sym("list")];
                    out.extend(specs?);
                    Ok(Datum::list(out))
                }
                Some(0) => Err(bad_pattern("ellipsis with no preceding pattern", p)),
                Some(i) => {
                    if elems[i + 1..].iter().any(|e| is_ellipsis(e)) {
                        return Err(bad_pattern("multiple ellipses at one level", p));
                    }
                    let pre: Result<Vec<Datum>, ExpandError> = elems[..i - 1]
                        .iter()
                        .map(|e| compile(e, literals, depth, vars))
                        .collect();
                    let pre = pre?;
                    let head_slot_start = vars.len();
                    let head = compile(&elems[i - 1], literals, depth + 1, vars)?;
                    let head_slots: Vec<Datum> = (head_slot_start..vars.len())
                        .map(|s| Datum::Int(s as i64))
                        .collect();
                    let post: Result<Vec<Datum>, ExpandError> = elems[i + 1..]
                        .iter()
                        .map(|e| compile(e, literals, depth, vars))
                        .collect();
                    Ok(Datum::list(vec![
                        Datum::sym("ellist"),
                        Datum::list(pre),
                        head,
                        Datum::list(post?),
                        Datum::list(head_slots),
                    ]))
                }
            }
        }
        SyntaxBody::Improper(elems, tail) => {
            if elems.iter().any(|e| is_ellipsis(e)) {
                return Err(bad_pattern("ellipsis in dotted pattern is not supported", p));
            }
            let specs: Result<Vec<Datum>, ExpandError> = elems
                .iter()
                .map(|e| compile(e, literals, depth, vars))
                .collect();
            let tail_spec = compile(tail, literals, depth, vars)?;
            Ok(Datum::list(vec![
                Datum::sym("improper"),
                Datum::list(specs?),
                tail_spec,
            ]))
        }
    }
}

// ---------------------------------------------------------------------------
// Matching
// ---------------------------------------------------------------------------

/// Matches `stx` against `spec`; on success returns the bindings vector of
/// length `nvars` (slots never matched — impossible for well-compiled
/// patterns — are left `Unspecified`).
pub fn syntax_dispatch(stx: &Syntax, spec: &Datum, nvars: usize) -> Option<Vec<Value>> {
    let mut binds = vec![Value::Unspecified; nvars];
    if matches(stx, spec, &mut binds) {
        Some(binds)
    } else {
        None
    }
}

fn spec_parts(spec: &Datum) -> Option<(Symbol, Vec<Datum>)> {
    let elems = spec.list_elems()?;
    let (head, rest) = elems.split_first()?;
    match head {
        Datum::Sym(s) => Some((*s, rest.to_vec())),
        _ => None,
    }
}

fn matches(stx: &Syntax, spec: &Datum, binds: &mut [Value]) -> bool {
    if let Datum::Sym(s) = spec {
        if s.as_str() == "any" {
            return true;
        }
    }
    let Some((tag, args)) = spec_parts(spec) else {
        return false;
    };
    match tag.as_str() {
        "var" => {
            let Datum::Int(slot) = args[0] else { return false };
            binds[slot as usize] = Value::Syntax(Rc::new(stx.clone()));
            true
        }
        "lit" => {
            let Datum::Sym(name) = args[0] else { return false };
            stx.as_symbol() == Some(name)
        }
        "const" => stx.to_datum().equal(&args[0]),
        "list" => {
            let Some(elems) = stx.as_list() else { return false };
            elems.len() == args.len()
                && elems
                    .iter()
                    .zip(args.iter())
                    .all(|(e, s)| matches(e, s, binds))
        }
        "improper" => {
            let (elems, tail): (Vec<Rc<Syntax>>, Rc<Syntax>) = match &stx.body {
                SyntaxBody::Improper(elems, tail) => (elems.clone(), tail.clone()),
                // A proper list also matches a dotted pattern when the
                // pattern tail can absorb the rest, e.g. `(a . rest)`
                // against `(a b c)` binds rest = `(b c)`.
                SyntaxBody::List(elems) => {
                    let specs = args[0].list_elems().unwrap_or_default();
                    if elems.len() < specs.len() {
                        return false;
                    }
                    let rest = Syntax::new(
                        SyntaxBody::List(elems[specs.len()..].to_vec()),
                        stx.source,
                    );
                    return elems[..specs.len()]
                        .iter()
                        .zip(specs.iter())
                        .all(|(e, s)| matches(e, s, binds))
                        && matches(&rest, &args[1], binds);
                }
                _ => return false,
            };
            let specs = args[0].list_elems().unwrap_or_default();
            if elems.len() < specs.len() {
                return false;
            }
            let fixed_ok = elems[..specs.len()]
                .iter()
                .zip(specs.iter())
                .all(|(e, s)| matches(e, s, binds));
            if !fixed_ok {
                return false;
            }
            let rest = if elems.len() == specs.len() {
                (*tail).clone()
            } else {
                Syntax::new(
                    SyntaxBody::Improper(elems[specs.len()..].to_vec(), tail),
                    stx.source,
                )
            };
            matches(&rest, &args[1], binds)
        }
        "ellist" => {
            let Some(elems) = stx.as_list() else { return false };
            let pre = args[0].list_elems().unwrap_or_default();
            let head = &args[1];
            let post = args[2].list_elems().unwrap_or_default();
            let slots: Vec<usize> = args[3]
                .list_elems()
                .unwrap_or_default()
                .iter()
                .filter_map(|d| match d {
                    Datum::Int(n) => Some(*n as usize),
                    _ => None,
                })
                .collect();
            if elems.len() < pre.len() + post.len() {
                return false;
            }
            let (pre_elems, rest) = elems.split_at(pre.len());
            let (mid, post_elems) = rest.split_at(rest.len() - post.len());
            if !pre_elems
                .iter()
                .zip(pre.iter())
                .all(|(e, s)| matches(e, s, binds))
            {
                return false;
            }
            let mut acc: Vec<Vec<Value>> = vec![Vec::new(); slots.len()];
            for e in mid {
                for &s in &slots {
                    binds[s] = Value::Unspecified;
                }
                if !matches(e, head, binds) {
                    return false;
                }
                for (k, &s) in slots.iter().enumerate() {
                    acc[k].push(binds[s].clone());
                }
            }
            for (k, &s) in slots.iter().enumerate() {
                binds[s] = Value::list(std::mem::take(&mut acc[k]));
            }
            post_elems
                .iter()
                .zip(post.iter())
                .all(|(e, s)| matches(e, s, binds))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stx(src: &str) -> Rc<Syntax> {
        pgmp_reader::read_str(src, "p.scm").unwrap().remove(0)
    }

    fn pat(src: &str, lits: &[&str]) -> CompiledPattern {
        let lits: Vec<Symbol> = lits.iter().map(|s| Symbol::intern(s)).collect();
        compile_pattern(&stx(src), &lits).unwrap()
    }

    fn try_match(p: &CompiledPattern, input: &str) -> Option<Vec<Value>> {
        syntax_dispatch(&stx(input), &p.spec, p.vars.len())
    }

    #[test]
    fn flat_pattern_binds_vars() {
        let p = pat("(if-r test t-branch f-branch)", &[]);
        assert_eq!(p.vars.len(), 4);
        let binds = try_match(&p, "(if-r (f x) 1 2)").unwrap();
        assert!(matches!(&binds[1], Value::Syntax(s) if s.to_datum().to_string() == "(f x)"));
        assert!(matches!(&binds[2], Value::Syntax(s) if s.to_datum().to_string() == "1"));
        assert!(try_match(&p, "(if-r 1 2)").is_none(), "wrong length");
    }

    #[test]
    fn wildcard_and_constants() {
        let p = pat("(_ 42 \"s\")", &[]);
        assert!(try_match(&p, "(anything 42 \"s\")").is_some());
        assert!(try_match(&p, "(anything 41 \"s\")").is_none());
    }

    #[test]
    fn literals_match_by_name() {
        let p = pat("(_ else body)", &["else"]);
        assert!(try_match(&p, "(cl else 1)").is_some());
        assert!(try_match(&p, "(cl other 1)").is_none());
        assert_eq!(p.vars.len(), 1, "`else` and `_` are not variables");
    }

    #[test]
    fn ellipsis_collects_lists() {
        let p = pat("(_ e ...)", &[]);
        let binds = try_match(&p, "(m 1 2 3)").unwrap();
        let es = binds[0].list_elems().unwrap();
        assert_eq!(es.len(), 3);
        let binds = try_match(&p, "(m)").unwrap();
        assert_eq!(binds[0].list_elems().unwrap().len(), 0);
    }

    #[test]
    fn ellipsis_with_fixed_tail() {
        let p = pat("(_ x ... y z)", &[]);
        let binds = try_match(&p, "(m 1 2 3 4 5)").unwrap();
        assert_eq!(binds[0].list_elems().unwrap().len(), 3);
        assert!(matches!(&binds[1], Value::Syntax(s) if s.to_datum().to_string() == "4"));
        assert!(matches!(&binds[2], Value::Syntax(s) if s.to_datum().to_string() == "5"));
        assert!(try_match(&p, "(m 1)").is_none(), "too short for tail");
    }

    #[test]
    fn nested_ellipsis() {
        let p = pat("(_ ((k ...) body) ...)", &[]);
        let binds = try_match(&p, "(case ((1 2) a) ((3) b))").unwrap();
        // k has depth 2: list of lists of syntax.
        let ks = binds[0].list_elems().unwrap();
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].list_elems().unwrap().len(), 2);
        assert_eq!(ks[1].list_elems().unwrap().len(), 1);
        let bodies = binds[1].list_elems().unwrap();
        assert_eq!(bodies.len(), 2);
        assert_eq!(p.vars[0].depth, 2);
        assert_eq!(p.vars[1].depth, 1);
    }

    #[test]
    fn dotted_patterns() {
        let p = pat("(a . rest)", &[]);
        let binds = try_match(&p, "(1 2 3)").unwrap();
        assert!(matches!(&binds[1], Value::Syntax(s) if s.to_datum().to_string() == "(2 3)"));
        let binds = try_match(&p, "(1 . 2)").unwrap();
        assert!(matches!(&binds[1], Value::Syntax(s) if s.to_datum().to_string() == "2"));
        assert!(try_match(&p, "()").is_none());
    }

    #[test]
    fn duplicate_variables_rejected() {
        let r = compile_pattern(&stx("(m x x)"), &[]);
        assert!(r.is_err());
    }

    #[test]
    fn misplaced_ellipsis_rejected() {
        assert!(compile_pattern(&stx("(... x)"), &[]).is_err());
        assert!(compile_pattern(&stx("(a ... b ...)"), &[]).is_err());
        assert!(compile_pattern(&stx("..."), &[]).is_err());
    }

    #[test]
    fn vector_patterns_rejected() {
        assert!(compile_pattern(&stx("#(a b)"), &[]).is_err());
    }

    #[test]
    fn ellipsis_repetition_isolates_bindings() {
        // Each repetition re-binds; values must not leak across reps.
        let p = pat("(_ (k v) ...)", &[]);
        let binds = try_match(&p, "(m (a 1) (b 2))").unwrap();
        let ks: Vec<String> = binds[0]
            .list_elems()
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(ks, vec!["#<syntax a>", "#<syntax b>"]);
    }
}
