//! End-to-end expander tests: read → expand → evaluate.

use pgmp_eval::{install_primitives, Interp, Value};
use pgmp_expander::{install_expander_support, Expander};
use pgmp_reader::read_str;

/// Expands and runs `src`, returning the `write` representation of the
/// last form's value.
fn run(src: &str) -> String {
    try_run(src).unwrap_or_else(|e| panic!("program failed: {e}\n---\n{src}"))
}

fn try_run(src: &str) -> Result<String, String> {
    let forms = read_str(src, "test.scm").map_err(|e| e.to_string())?;
    let mut exp = Expander::new();
    let program = exp.expand_program(&forms).map_err(|e| e.to_string())?;
    let mut interp = Interp::new();
    install_primitives(&mut interp);
    install_expander_support(&mut interp);
    interp.set_fuel(Some(50_000_000));
    let mut last = Value::Unspecified;
    for form in &program {
        last = interp.eval(form, &None).map_err(|e| e.to_string())?;
    }
    Ok(last.write_string())
}

/// Fully expands `src` and returns the printed expansion of the last form.
fn expand(src: &str) -> String {
    let forms = read_str(src, "test.scm").unwrap();
    let mut exp = Expander::new();
    let out = exp.expand_to_syntax(&forms).unwrap();
    out.last().map(|s| s.to_datum().to_string()).unwrap_or_default()
}

// -------------------------------------------------------------------------
// Core forms
// -------------------------------------------------------------------------

#[test]
fn literals_and_arithmetic() {
    assert_eq!(run("(+ 1 (* 2 3))"), "7");
    assert_eq!(run("42"), "42");
    assert_eq!(run("\"hi\""), "\"hi\"");
    assert_eq!(run("#\\a"), "#\\a");
    assert_eq!(run("#t"), "#t");
    assert_eq!(run("'sym"), "sym");
    assert_eq!(run("'(1 2 . 3)"), "(1 2 . 3)");
    assert_eq!(run("#(1 2)"), "#(1 2)");
}

#[test]
fn lambda_and_application() {
    assert_eq!(run("((lambda (x y) (+ x y)) 3 4)"), "7");
    assert_eq!(run("((lambda args args) 1 2 3)"), "(1 2 3)");
    assert_eq!(run("((lambda (a . rest) (cons a rest)) 1 2 3)"), "(1 2 3)");
}

#[test]
fn define_and_call() {
    assert_eq!(run("(define (square x) (* x x)) (square 9)"), "81");
    assert_eq!(run("(define x 10) (define y 20) (+ x y)"), "30");
    assert_eq!(run("(define (f . xs) (length xs)) (f 1 2 3 4)"), "4");
}

#[test]
fn recursion_and_named_let() {
    assert_eq!(
        run("(define (fact n) (if (zero? n) 1 (* n (fact (sub1 n))))) (fact 10)"),
        "3628800"
    );
    assert_eq!(
        run("(let loop ([i 0] [acc 0]) (if (= i 5) acc (loop (add1 i) (+ acc i))))"),
        "10"
    );
}

#[test]
fn let_family() {
    assert_eq!(run("(let ([x 1] [y 2]) (+ x y))"), "3");
    assert_eq!(run("(let* ([x 1] [y (+ x 1)]) (* x y))"), "2");
    assert_eq!(
        run("(letrec ([even? (lambda (n) (if (zero? n) #t (odd? (- n 1))))] \
                      [odd? (lambda (n) (if (zero? n) #f (even? (- n 1))))]) \
               (even? 100))"),
        "#t"
    );
    // Shadowing.
    assert_eq!(run("(define x 1) (let ([x 2]) x)"), "2");
    assert_eq!(run("(define x 1) (let ([x 2]) (let ([x 3]) x))"), "3");
}

#[test]
fn internal_defines_are_letrec_star() {
    assert_eq!(
        run("(define (f) (define a 1) (define b (+ a 1)) (+ a b)) (f)"),
        "3"
    );
    // Mutual recursion between internal defines.
    assert_eq!(
        run("(define (f n)
               (define (ev? n) (if (zero? n) #t (od? (- n 1))))
               (define (od? n) (if (zero? n) #f (ev? (- n 1))))
               (ev? n))
             (f 10)"),
        "#t"
    );
    // Expressions interleaved with defines evaluate in order.
    assert_eq!(
        run("(define out '())
             (define (f)
               (define a 1)
               (set! out (cons 'mid out))
               (define b 2)
               (+ a b))
             (list (f) out)"),
        "(3 (mid))"
    );
}

#[test]
fn conditionals() {
    assert_eq!(run("(if #f 1 2)"), "2");
    assert_eq!(run("(cond [#f 1] [#t 2] [else 3])"), "2");
    assert_eq!(run("(cond [#f 1] [else 3])"), "3");
    assert_eq!(run("(cond [(memv 2 '(1 2 3))])"), "(2 3)");
    assert_eq!(run("(case 2 [(1) 'one] [(2 3) 'two-or-three] [else 'other])"), "two-or-three");
    assert_eq!(run("(case 9 [(1) 'one] [else 'other])"), "other");
    assert_eq!(run("(case #\\b [(#\\a) 1] [(#\\b) 2])"), "2");
    assert_eq!(run("(when #t 1 2)"), "2");
    assert_eq!(run("(unless #t 1 2)"), "#<void>");
    assert_eq!(run("(and 1 2 3)"), "3");
    assert_eq!(run("(and 1 #f 3)"), "#f");
    assert_eq!(run("(and)"), "#t");
    assert_eq!(run("(or #f 2 3)"), "2");
    assert_eq!(run("(or #f #f)"), "#f");
    assert_eq!(run("(or)"), "#f");
}

#[test]
fn or_evaluates_once() {
    assert_eq!(
        run("(define n 0) (define (bump!) (set! n (add1 n)) n) (list (or (bump!) 99) n)"),
        "(1 1)"
    );
}

#[test]
fn set_mutates() {
    assert_eq!(run("(define x 1) (set! x 5) x"), "5");
    assert_eq!(run("(define (counter) (let ([n 0]) (lambda () (set! n (add1 n)) n))) \
                    (define c (counter)) (c) (c) (c)"), "3");
}

#[test]
fn quasiquote() {
    assert_eq!(run("`(1 ,(+ 1 1) 3)"), "(1 2 3)");
    assert_eq!(run("`(1 ,@(list 2 3) 4)"), "(1 2 3 4)");
    assert_eq!(run("`(a b c)"), "(a b c)");
    assert_eq!(run("`(1 . ,(+ 1 1))"), "(1 . 2)");
    // Nested quasiquote keeps inner unquote literal.
    assert_eq!(run("`(a `(b ,(c)))"), "(a (quasiquote (b (unquote (c)))))");
    assert_eq!(run("(let ([x 5]) `(x is ,x))"), "(x is 5)");
}

// -------------------------------------------------------------------------
// Macros
// -------------------------------------------------------------------------

#[test]
fn simple_macro() {
    assert_eq!(
        run("(define-syntax (twice stx)
               (syntax-case stx ()
                 [(_ e) #'(+ e e)]))
             (twice 21)"),
        "42"
    );
}

#[test]
fn macro_with_multiple_clauses_and_constants() {
    assert_eq!(
        run("(define-syntax (m stx)
               (syntax-case stx ()
                 [(_ 0) #''zero]
                 [(_ n) #''nonzero]))
             (list (m 0) (m 7))"),
        "(zero nonzero)"
    );
}

#[test]
fn macro_with_fender() {
    assert_eq!(
        run("(define-syntax (lit stx)
               (syntax-case stx ()
                 [(_ x) (number? (syntax->datum #'x)) #''number]
                 [(_ x) #''other]))
             (list (lit 3) (lit abc))"),
        "(number other)"
    );
}

#[test]
fn ellipsis_template() {
    assert_eq!(
        run("(define-syntax (my-list stx)
               (syntax-case stx ()
                 [(_ e ...) #'(list e ...)]))
             (my-list 1 2 3)"),
        "(1 2 3)"
    );
    assert_eq!(
        run("(define-syntax (swap-pairs stx)
               (syntax-case stx ()
                 [(_ (a b) ...) #'(list (cons b a) ...)]))
             (swap-pairs (1 2) (3 4))"),
        "((2 . 1) (4 . 3))"
    );
}

#[test]
fn nested_ellipsis_template() {
    assert_eq!(
        run("(define-syntax (flatten2 stx)
               (syntax-case stx ()
                 [(_ ((e ...) ...)) #'(append (list e ...) ...)]))
             (flatten2 ((1 2) (3) ()))"),
        "(1 2 3)"
    );
}

#[test]
fn ellipsis_with_tail_pattern() {
    assert_eq!(
        run("(define-syntax (but-last stx)
               (syntax-case stx ()
                 [(_ e ... last) #'(list e ...)]))
             (but-last 1 2 3 4)"),
        "(1 2 3)"
    );
}

#[test]
fn recursive_macro() {
    assert_eq!(
        run("(define-syntax (my-and stx)
               (syntax-case stx ()
                 [(_) #'#t]
                 [(_ e) #'e]
                 [(_ e rest ...) #'(if e (my-and rest ...) #f)]))
             (list (my-and) (my-and 1) (my-and 1 2 3) (my-and 1 #f 3))"),
        "(#t 1 3 #f)"
    );
}

#[test]
fn hygiene_template_binder_does_not_capture() {
    // The classic test: my-or binds `t` internally; user code's `t` must
    // not be captured.
    assert_eq!(
        run("(define-syntax (my-or stx)
               (syntax-case stx ()
                 [(_ a b) #'(let ([t a]) (if t t b))]))
             (let ([t 5]) (my-or #f t))"),
        "5"
    );
}

#[test]
fn hygiene_macro_references_resolve_in_definition_context() {
    // The macro's `if` must be the core `if` even if the user shadows it
    // lexically at the use site... our simplified hygiene resolves free
    // macro identifiers globally, so test the global-shadow direction:
    assert_eq!(
        run("(define-syntax (m stx)
               (syntax-case stx ()
                 [(_ x) #'(add1 x)]))
             (let ([add1 (lambda (n) 'wrong)])
               ;; use-site lexical shadowing does not capture the
               ;; macro-introduced add1 reference
               (m 1))"),
        "2"
    );
}

#[test]
fn hygiene_nested_macro_invocations() {
    assert_eq!(
        run("(define-syntax (swap! stx)
               (syntax-case stx ()
                 [(_ a b) #'(let ([tmp a]) (set! a b) (set! b tmp))]))
             (let ([tmp 1] [y 2])
               (swap! tmp y)
               (list tmp y))"),
        "(2 1)"
    );
}

#[test]
fn quasisyntax_with_unsyntax() {
    assert_eq!(
        run("(define-syntax (add-const stx)
               (syntax-case stx ()
                 [(_ e) #`(+ e #,(datum->syntax #'e (* 2 3)))]))
             (add-const 4)"),
        "10"
    );
    // Raw (non-syntax) values in unsyntax are converted.
    assert_eq!(
        run("(define-syntax (n stx)
               (syntax-case stx ()
                 [(_) #`#,(* 7 6)]))
             (n)"),
        "42"
    );
}

#[test]
fn unsyntax_splicing() {
    assert_eq!(
        run("(define-syntax (rev stx)
               (syntax-case stx ()
                 [(_ e ...) #`(list #,@(reverse (syntax->list #'(e ...))))]))
             (rev 1 2 3)"),
        "(3 2 1)"
    );
}

#[test]
fn define_for_syntax_helpers() {
    assert_eq!(
        run("(define-for-syntax (doubled n) (* 2 n))
             (define-syntax (m stx)
               (syntax-case stx ()
                 [(_ x) #`(+ x #,(datum->syntax #'x (doubled 10)))]))
             (m 1)"),
        "21"
    );
}

#[test]
fn begin_for_syntax_state() {
    // Expand-time state accumulates across macro uses (the mechanism the
    // §6.2 object system uses for its class registry).
    assert_eq!(
        run("(begin-for-syntax (define counter 0))
             (define-syntax (tick stx)
               (syntax-case stx ()
                 [(_) (begin
                        (set! counter (add1 counter))
                        #`#,(datum->syntax stx counter))]))
             (list (tick) (tick) (tick))"),
        "(1 2 3)"
    );
}

#[test]
fn macro_generating_defines() {
    assert_eq!(
        run("(define-syntax (def-two stx)
               (syntax-case stx ()
                 [(_ a b) #'(begin (define a 1) (define b 2))]))
             (def-two x y)
             (+ x y)"),
        "3"
    );
}

#[test]
fn macros_in_transformer_bodies() {
    assert_eq!(
        run("(define-syntax (m stx)
               (syntax-case stx ()
                 [(_ x) (let ([n (syntax->datum #'x)])
                          (cond [(> n 0) #''pos]
                                [(< n 0) #''neg]
                                [else #''zero]))]))
             (list (m 3) (m -3) (m 0))"),
        "(pos neg zero)"
    );
}

#[test]
fn literals_in_syntax_case() {
    assert_eq!(
        run("(define-syntax (has-else stx)
               (syntax-case stx (else)
                 [(_ else) #''yes]
                 [(_ x) #''no]))
             (list (has-else else) (has-else other))"),
        "(yes no)"
    );
}

#[test]
fn curry_in_transformer() {
    // Figure 6 uses (map (curry rewrite-clause #'key) clauses).
    assert_eq!(
        run("(define-for-syntax (pair-with x y) (cons x y))
             (define-syntax (m stx)
               (syntax-case stx ()
                 [(_ e ...)
                  #`(quote #,(datum->syntax stx
                      (map (curry pair-with 'k)
                           (map syntax->datum (syntax->list #'(e ...))))))]))
             (m 1 2)"),
        "((k . 1) (k . 2))"
    );
}

// -------------------------------------------------------------------------
// The paper's running example (§2), with a stubbed profile-query
// -------------------------------------------------------------------------

#[test]
fn if_r_reorders_branches() {
    // profile-query stubbed to return fixed weights: the false branch is
    // hotter, so if-r negates the test and swaps the branches (Figure 2).
    let src = r#"
      (define-for-syntax (profile-query-stub e)
        (let ([d (syntax->datum e)])
          (if (equal? d '(flag email 'important)) 0.5 1.0)))
      (define-syntax (if-r stx)
        (syntax-case stx ()
          [(if-r test t-branch f-branch)
           (let ([t-prof (profile-query-stub #'t-branch)]
                 [f-prof (profile-query-stub #'f-branch)])
             (cond
               [(< t-prof f-prof) #'(if (not test) f-branch t-branch)]
               [else #'(if test t-branch f-branch)]))]))
      (define (classify email)
        (if-r (subject-contains email "PLDI")
          (flag email 'important)
          (flag email 'spam)))
    "#;
    let forms = read_str(src, "ifr.scm").unwrap();
    let mut exp = Expander::new();
    let out = exp.expand_to_syntax(&forms).unwrap();
    let classify = out.last().unwrap().to_datum().to_string();
    assert_eq!(
        classify,
        "(define (classify email) (if (not (subject-contains email \"PLDI\")) \
         (flag email (quote spam)) (flag email (quote important))))"
    );
}

// -------------------------------------------------------------------------
// expand_to_syntax
// -------------------------------------------------------------------------

#[test]
fn expansion_is_source_to_source() {
    assert_eq!(
        expand(
            "(define-syntax (twice stx)
               (syntax-case stx ()
                 [(_ e) #'(+ e e)]))
             (twice 21)"
        ),
        "(+ 21 21)"
    );
}

#[test]
fn expansion_descends_into_core_forms() {
    assert_eq!(
        expand(
            "(define-syntax (twice stx)
               (syntax-case stx ()
                 [(_ e) #'(+ e e)]))
             (lambda (x) (twice x))"
        ),
        "(lambda (x) (+ x x))"
    );
    assert_eq!(
        expand(
            "(define-syntax (twice stx)
               (syntax-case stx ()
                 [(_ e) #'(+ e e)]))
             (let ([y (twice 3)]) (twice y))"
        ),
        "(let ((y (+ 3 3))) (+ y y))"
    );
}

#[test]
fn expansion_respects_shadowing() {
    // `twice` is rebound as a variable: no macro expansion.
    assert_eq!(
        expand(
            "(define-syntax (twice stx)
               (syntax-case stx ()
                 [(_ e) #'(+ e e)]))
             (lambda (twice) (twice 21))"
        ),
        "(lambda (twice) (twice 21))"
    );
}

#[test]
fn expansion_leaves_quote_alone() {
    assert_eq!(
        expand(
            "(define-syntax (twice stx)
               (syntax-case stx ()
                 [(_ e) #'(+ e e)]))
             '(twice 21)"
        ),
        "(quote (twice 21))"
    );
}

// -------------------------------------------------------------------------
// Error behaviour
// -------------------------------------------------------------------------

#[test]
fn error_cases() {
    assert!(try_run("(if)").is_err());
    assert!(try_run("()").is_err());
    assert!(try_run("(lambda (x))").is_err());
    assert!(try_run("(let ([x]) x)").is_err());
    assert!(try_run("(unbound-var-zzz)").is_err());
    assert!(try_run("(else 1)").is_err());
    assert!(try_run("(unquote 1)").is_err());
    assert!(try_run("(set! 3 4)").is_err());
    assert!(try_run("(define-syntax (m stx) 42) (m)").is_err(), "non-syntax result");
    assert!(try_run("(define-syntax m 5)").is_err(), "non-procedure transformer");
}

#[test]
fn no_matching_clause_is_a_transformer_error() {
    let e = try_run(
        "(define-syntax (one stx)
           (syntax-case stx ()
             [(_ x) #'x]))
         (one 1 2 3)",
    )
    .unwrap_err();
    assert!(e.contains("no clause matched"), "got: {e}");
}

#[test]
fn expansion_loop_detected() {
    let e = try_run(
        "(define-syntax (loop stx)
           (syntax-case stx ()
             [(_) #'(loop)]))
         (loop)",
    )
    .unwrap_err();
    assert!(e.contains("exceeded"), "got: {e}");
}

#[test]
fn macro_used_as_variable_is_an_error() {
    let e = try_run(
        "(define-syntax (m stx)
           (syntax-case stx ()
             [(_ x) #'x]))
         (list m)",
    )
    .unwrap_err();
    assert!(e.contains("used as a variable"), "got: {e}");
}

#[test]
fn deep_recursion_is_fine_with_tail_calls() {
    assert_eq!(
        run("(let loop ([i 0]) (if (= i 1000000) 'done (loop (add1 i))))"),
        "done"
    );
}
