//! Source-to-source expansion (`expand_to_syntax`): the facility tests and
//! examples use to compare generated code against the paper's figures.

use pgmp_expander::Expander;
use pgmp_reader::read_str;

fn expand_all(src: &str) -> Vec<String> {
    let forms = read_str(src, "d.scm").unwrap();
    let mut exp = Expander::new();
    exp.expand_to_syntax(&forms)
        .unwrap()
        .iter()
        .map(|s| s.to_datum().to_string())
        .collect()
}

fn expand_one(src: &str) -> String {
    expand_all(src).pop().unwrap()
}

const TWICE: &str = "(define-syntax (twice stx)
                       (syntax-case stx ()
                         [(_ e) #'(+ e e)]))";

#[test]
fn define_syntax_forms_are_omitted_from_output() {
    let out = expand_all(&format!("{TWICE} (twice 1) (twice 2)"));
    assert_eq!(out, vec!["(+ 1 1)", "(+ 2 2)"]);
}

#[test]
fn begin_splices_at_toplevel() {
    let out = expand_all(&format!("{TWICE} (begin (twice 1) (begin (twice 2) (twice 3)))"));
    assert_eq!(out, vec!["(+ 1 1)", "(+ 2 2)", "(+ 3 3)"]);
}

#[test]
fn expansion_recurses_into_every_binding_form() {
    let cases = [
        ("(let ([a (twice 1)]) (twice a))", "(let ((a (+ 1 1))) (+ a a))"),
        ("(let* ([a (twice 1)] [b (twice a)]) b)", "(let* ((a (+ 1 1)) (b (+ a a))) b)"),
        (
            "(letrec ([f (lambda (x) (twice x))]) (f 1))",
            "(letrec ((f (lambda (x) (+ x x)))) (f 1))",
        ),
        (
            "(let loop ([i (twice 3)]) (if (zero? i) 'done (loop (sub1 i))))",
            "(let loop ((i (+ 3 3))) (if (zero? i) (quote done) (loop (sub1 i))))",
        ),
        (
            "(define (f x) (twice x))",
            "(define (f x) (+ x x))",
        ),
        (
            "(when (twice 1) (twice 2))",
            "(when (+ 1 1) (+ 2 2))",
        ),
        (
            "(cond [(twice 1) (twice 2)] [else (twice 3)])",
            "(cond ((+ 1 1) (+ 2 2)) (else (+ 3 3)))",
        ),
        (
            "(case (twice 1) [(2) (twice 2)] [else 'no])",
            "(case (+ 1 1) ((2) (+ 2 2)) (else (quote no)))",
        ),
        (
            "(and (twice 1) (or (twice 2) 3))",
            "(and (+ 1 1) (or (+ 2 2) 3))",
        ),
        ("(set! x (twice 4))", "(set! x (+ 4 4))"),
    ];
    for (src, expected) in cases {
        assert_eq!(expand_one(&format!("{TWICE} {src}")), expected, "on {src}");
    }
}

#[test]
fn quote_and_templates_stay_opaque() {
    for (src, expected) in [
        ("'(twice 1)", "(quote (twice 1))"),
        ("`(twice 1)", "(quasiquote (twice 1))"),
    ] {
        assert_eq!(expand_one(&format!("{TWICE} {src}")), expected);
    }
}

#[test]
fn lambda_parameters_shadow_macros_in_display_expansion() {
    assert_eq!(
        expand_one(&format!("{TWICE} (lambda (twice) (twice 9))")),
        "(lambda (twice) (twice 9))"
    );
    assert_eq!(
        expand_one(&format!("{TWICE} (let ([twice car]) (twice '(1)))")),
        "(let ((twice car)) (twice (quote (1))))"
    );
}

#[test]
fn nested_macros_expand_outside_in() {
    let src = "
      (define-syntax (wrap stx)
        (syntax-case stx ()
          [(_ e) #'(list 'wrapped e)]))
      (define-syntax (twice stx)
        (syntax-case stx ()
          [(_ e) #'(+ e e)]))
      (wrap (twice 5))";
    assert_eq!(expand_one(src), "(list (quote wrapped) (+ 5 5))");
}

#[test]
fn macro_generating_macro_uses() {
    let src = "
      (define-syntax (twice stx)
        (syntax-case stx ()
          [(_ e) #'(+ e e)]))
      (define-syntax (quadruple stx)
        (syntax-case stx ()
          [(_ e) #'(twice (twice e))]))
      (quadruple 4)";
    assert_eq!(expand_one(src), "(+ (+ 4 4) (+ 4 4))");
}

#[test]
fn displayed_marks_are_invisible() {
    // Hygiene marks must not leak into the printed expansion (symbols
    // print by name, not by identity).
    let src = "
      (define-syntax (with-temp stx)
        (syntax-case stx ()
          [(_ e) #'(let ([t 1]) (+ t e))]))
      (with-temp 2)";
    assert_eq!(expand_one(src), "(let ((t 1)) (+ t 2))");
}

#[test]
fn for_syntax_state_affects_display_expansion() {
    let src = "
      (begin-for-syntax (define n 0))
      (define-syntax (fresh stx)
        (syntax-case stx ()
          [(_) (begin (set! n (add1 n)) #`#,(datum->syntax stx n))]))
      (fresh) (fresh)";
    assert_eq!(expand_all(src), vec!["1", "2"]);
}
