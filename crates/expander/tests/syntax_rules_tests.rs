//! `syntax-rules` — the declarative transformer sugar.

use pgmp_eval::{install_primitives, Interp, Value};
use pgmp_expander::{install_expander_support, Expander};
use pgmp_reader::read_str;

fn run(src: &str) -> String {
    let forms = read_str(src, "sr.scm").unwrap();
    let mut exp = Expander::new();
    let program = exp.expand_program(&forms).unwrap();
    let mut interp = Interp::new();
    install_primitives(&mut interp);
    install_expander_support(&mut interp);
    let mut last = Value::Unspecified;
    for form in &program {
        last = interp.eval(form, &None).unwrap();
    }
    last.write_string()
}

#[test]
fn basic_syntax_rules() {
    assert_eq!(
        run("(define-syntax twice
               (syntax-rules ()
                 [(_ e) (+ e e)]))
             (twice 21)"),
        "42"
    );
}

#[test]
fn multiple_clauses() {
    assert_eq!(
        run("(define-syntax opt
               (syntax-rules ()
                 [(_ a) (list 'one a)]
                 [(_ a b) (list 'two a b)]))
             (list (opt 1) (opt 1 2))"),
        "((one 1) (two 1 2))"
    );
}

#[test]
fn ellipses_in_syntax_rules() {
    assert_eq!(
        run("(define-syntax my-begin
               (syntax-rules ()
                 [(_ e) e]
                 [(_ e rest ...) (let ([t e]) (my-begin rest ...))]))
             (define n 0)
             (my-begin (set! n 1) (set! n (+ n 10)) n)"),
        "11"
    );
}

#[test]
fn literals_in_syntax_rules() {
    assert_eq!(
        run("(define-syntax is-arrow
               (syntax-rules (=>)
                 [(_ => x) (list 'arrow x)]
                 [(_ y x) (list 'no y x)]))
             (list (is-arrow => 1) (is-arrow 2 1))"),
        "((arrow 1) (no 2 1))"
    );
}

#[test]
fn syntax_rules_is_hygienic() {
    assert_eq!(
        run("(define-syntax my-or2
               (syntax-rules ()
                 [(_ a b) (let ([t a]) (if t t b))]))
             (let ([t 5]) (my-or2 #f t))"),
        "5"
    );
}

#[test]
fn recursive_syntax_rules() {
    assert_eq!(
        run("(define-syntax my-list*
               (syntax-rules ()
                 [(_ e) e]
                 [(_ e rest ...) (cons e (my-list* rest ...))]))
             (my-list* 1 2 3 '(4 5))"),
        "(1 2 3 4 5)"
    );
}

#[test]
fn syntax_rules_value_is_a_transformer_only() {
    // Using syntax-rules where a plain value is expected still yields a
    // procedure (the transformer), matching Scheme semantics.
    assert_eq!(
        run("(procedure? (syntax-rules () [(_ x) x]))"),
        "#t"
    );
}

#[test]
fn malformed_syntax_rules_errors() {
    let forms = read_str(
        "(define-syntax bad (syntax-rules () [only-a-pattern]))",
        "sr.scm",
    )
    .unwrap();
    let mut exp = Expander::new();
    assert!(exp.expand_program(&forms).is_err());
}
