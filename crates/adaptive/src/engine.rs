//! The adaptive driver: epochs → drift → re-optimization, continuously.

use crate::counters::ShardedCounters;
use crate::drift::{drift, DriftMetric};
use crate::rolling::RollingProfile;
use pgmp::{Engine, Error, IncrementalConfig, IncrementalEngine};
use pgmp_bytecode::{
    canonical_form, compile_chunk, optimize_layout, BlockCounters, Chunk, DispatchMode,
    FusionPlan, Vm, VmMetrics,
};
use pgmp_eval::{EvalError, EvalErrorKind};
use pgmp_observe as observe;
use pgmp_profiler::{ProfileInformation, ProfileMode};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Tuning knobs for the adaptive loop.
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Wall-clock pacing of the background aggregator (ignored by
    /// synchronous [`AdaptiveEngine::tick`], which the caller paces).
    pub epoch: Duration,
    /// Per-epoch exponential decay of the rolling profile, in `[0, 1]`:
    /// `1.0` never forgets, `0.0` keeps only the latest epoch.
    pub decay: f64,
    /// Drift value above which re-optimization triggers.
    pub drift_threshold: f64,
    /// Distance measure for drift.
    pub metric: DriftMetric,
    /// Epochs that drained fewer total hits than this cannot fire the
    /// detector — an idle system decaying toward an empty profile is not
    /// behavior change worth recompiling for.
    pub min_epoch_hits: u64,
    /// Re-optimize through the per-form incremental cache
    /// ([`pgmp::IncrementalEngine`]): only forms whose consulted weights
    /// changed re-expand. Disable to recompile from scratch each time
    /// (useful as a baseline; the adaptive loop is otherwise identical).
    pub incremental: bool,
    /// Per-point weight drift the incremental cache tolerates before
    /// re-expanding a form (see [`pgmp::IncrementalConfig::epsilon`]).
    pub epsilon: f64,
    /// Number of *consecutive* over-threshold epochs required before the
    /// drift detector fires. `1` (the default) fires immediately; higher
    /// values ride out single-epoch noise spikes.
    pub hysteresis_epochs: u32,
    /// Epochs to skip drift detection after a re-optimization, bounding
    /// the recompile rate under sustained drift. `0` disables.
    pub cooldown_epochs: u64,
    /// Write-coalescing buffer capacity (distinct points) for worker-side
    /// counter merges: `0` (the default) writes straight to the shared
    /// registry; `n > 0` batches through a [`crate::CountersWriter`] that
    /// flushes at `n` distinct buffered points and, at the latest, when
    /// the collection unit ends — so every hit is visible to the next
    /// epoch drain. Flush statistics via [`AdaptiveHandle::flush_stats`].
    pub coalesce: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            epoch: Duration::from_millis(250),
            decay: 0.5,
            drift_threshold: 0.15,
            metric: DriftMetric::TotalVariation,
            min_epoch_hits: 1,
            incremental: true,
            epsilon: 0.0,
            hysteresis_epochs: 1,
            cooldown_epochs: 0,
            coalesce: 0,
        }
    }
}

/// One compiled, immutable version of the program. Readers grab the
/// current `Arc` and keep serving from it while a newer generation is
/// being compiled and swapped in.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledProgram {
    /// 0 for the initial (profile-less) compile, +1 per re-optimization.
    pub generation: u64,
    /// Fully macro-expanded toplevel forms, printed — what the
    /// profile-guided meta-programs emitted under this generation's
    /// weights.
    pub expansion: Vec<String>,
    /// Canonical control-flow graphs of the bytecode-compiled toplevel
    /// forms.
    pub cfgs: Vec<String>,
    /// Number of profile points in the weights this generation was
    /// optimized under.
    pub optimized_under_points: usize,
    /// Top-level forms served from the incremental cache when this
    /// generation was compiled (0 for from-scratch compiles).
    pub reused_forms: usize,
    /// Top-level forms (re-)expanded when this generation was compiled.
    pub reexpanded_forms: usize,
}

/// What one epoch concluded.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// 1-based epoch number.
    pub epoch: u64,
    /// Total counter hits drained from the shared registry this epoch.
    pub hits: u64,
    /// Measured drift of the rolling profile from the optimization
    /// baseline.
    pub drift: f64,
    /// Whether the drift detector fired.
    pub fired: bool,
    /// Whether a new program generation was compiled and swapped in.
    pub reoptimized: bool,
    /// Generation serving after this epoch.
    pub generation: u64,
    /// Consecutive over-threshold epochs after this one (hysteresis state).
    pub streak: u32,
    /// Epochs of post-re-optimization cooldown remaining.
    pub cooldown: u32,
    /// Coalescing-writer buffer flushes performed during this epoch.
    pub flush_writes: u64,
    /// Counter hits merged away by coalescing during this epoch (hits
    /// absorbed into local buffers minus distinct slot writes pushed).
    pub flush_merged: u64,
}

struct AggState {
    rolling: RollingProfile,
    /// Weights the current program generation was optimized under.
    baseline: ProfileInformation,
    epoch: u64,
    /// Consecutive over-threshold epochs (hysteresis accumulator; see
    /// [`crate::HysteresisDetector`] for the standalone form).
    streak: u32,
    /// Epochs left in the post-re-optimization cooldown window.
    cooldown_left: u64,
}

struct EpochStep {
    epoch: u64,
    hits: u64,
    drift: f64,
    fired: bool,
    streak: u32,
    cooldown: u32,
    weights: ProfileInformation,
}

/// State shared between the engine thread, worker threads, and the
/// background aggregator.
struct Shared {
    source: String,
    file: String,
    setup: Option<Setup>,
    counters: ShardedCounters,
    /// [`AdaptiveConfig::coalesce`], copied here so worker-side handles
    /// can batch without holding the whole config.
    coalesce: usize,
    program: RwLock<Arc<CompiledProgram>>,
    agg: Mutex<AggState>,
    pending: Mutex<Option<ProfileInformation>>,
    drift_pending: AtomicBool,
    reoptimizations: AtomicU64,
}

impl Shared {
    /// A fresh single-threaded engine with the setup hook applied.
    fn fresh_engine(&self) -> Result<Engine, Error> {
        let mut engine = Engine::new();
        if let Some(setup) = &self.setup {
            setup(&mut engine)?;
        }
        Ok(engine)
    }

    /// The aggregation half of an epoch: drain, decay, measure drift.
    /// Runs on either the engine thread (`tick`) or the background
    /// aggregator; re-optimization itself always happens on the engine
    /// thread because `pgmp::Engine` is single-threaded.
    ///
    /// Firing is damped: the raw threshold must be exceeded for
    /// [`AdaptiveConfig::hysteresis_epochs`] consecutive eligible epochs,
    /// and never within [`AdaptiveConfig::cooldown_epochs`] of the last
    /// re-optimization.
    fn epoch_step(&self, config: &AdaptiveConfig) -> EpochStep {
        let epoch_data = self.counters.drain();
        let hits: u64 = epoch_data.iter().map(|(_, c)| c).sum();
        let mut agg = self.agg.lock().expect("adaptive aggregation state poisoned");
        agg.epoch += 1;
        agg.rolling.absorb(&epoch_data);
        let weights = agg.rolling.weights();
        let value = drift(&weights, &agg.baseline, config.metric);
        let over = value > config.drift_threshold && hits >= config.min_epoch_hits;
        let fired = if agg.cooldown_left > 0 {
            agg.cooldown_left -= 1;
            false
        } else {
            if over {
                agg.streak += 1;
            } else {
                agg.streak = 0;
            }
            agg.streak >= config.hysteresis_epochs.max(1)
        };
        EpochStep {
            epoch: agg.epoch,
            hits,
            drift: value,
            fired,
            streak: agg.streak,
            cooldown: agg.cooldown_left as u32,
            weights,
        }
    }
}

/// A cloneable, `Send + Sync` handle for worker threads: bump counters,
/// read the currently-served program.
#[derive(Clone)]
pub struct AdaptiveHandle {
    shared: Arc<Shared>,
}

impl AdaptiveHandle {
    /// The shared counter registry workers feed.
    pub fn counters(&self) -> &ShardedCounters {
        &self.shared.counters
    }

    /// Merges one instrumented run's dataset into the shared registry,
    /// through a coalescing writer when [`AdaptiveConfig::coalesce`] is on.
    pub fn absorb(&self, dataset: &pgmp_profiler::Dataset) {
        if self.shared.coalesce > 0 {
            let mut w = self.shared.counters.writer(self.shared.coalesce);
            for (p, c) in dataset.iter() {
                if c > 0 {
                    w.add(p, c);
                }
            }
            // Dropping the writer flushes the tail, so the merge is fully
            // visible before absorb returns.
        } else {
            self.shared.counters.absorb(dataset);
        }
    }

    /// Cumulative flush statistics of the coalescing writers used by
    /// [`AdaptiveHandle::absorb`]/[`AdaptiveHandle::collect_run`] (all
    /// zero when [`AdaptiveConfig::coalesce`] is 0).
    pub fn flush_stats(&self) -> pgmp_rt::FlushStatsSnapshot {
        self.shared.counters.flush_stats()
    }

    /// The program generation currently being served. The returned `Arc`
    /// stays valid (and consistent) however many swaps happen after.
    pub fn current_program(&self) -> Arc<CompiledProgram> {
        self.shared
            .program
            .read()
            .expect("adaptive program cell poisoned")
            .clone()
    }

    /// Generation number currently being served.
    pub fn generation(&self) -> u64 {
        self.current_program().generation
    }

    /// Number of re-optimizations performed so far.
    pub fn reoptimizations(&self) -> u64 {
        self.shared.reoptimizations.load(Ordering::Relaxed)
    }

    /// True when the background aggregator has detected drift and a call
    /// to [`AdaptiveEngine::poll_reoptimize`] would recompile.
    pub fn drift_pending(&self) -> bool {
        self.shared.drift_pending.load(Ordering::Relaxed)
    }

    /// Runs the program once, instrumented, in a fresh engine, and merges
    /// the resulting counts into the shared registry — one unit of
    /// concurrent profile collection. `driver` optionally runs extra
    /// workload source (same engine, separate file) after the program
    /// loads, which is how a service's traffic is simulated against fixed
    /// program source.
    ///
    /// Lives on the handle so worker threads can collect while the owning
    /// thread holds the (single-threaded) re-optimization state.
    ///
    /// # Errors
    ///
    /// Propagates engine errors from either run.
    pub fn collect_run(&self, driver: Option<&str>) -> Result<(), Error> {
        let mut engine = self.shared.fresh_engine()?;
        engine.set_instrumentation(ProfileMode::EveryExpression);
        engine.run_str(&self.shared.source, &self.shared.file)?;
        if let Some(d) = driver {
            engine.run_str(d, "adaptive-driver.scm")?;
        }
        self.absorb(&engine.counters().snapshot());
        Ok(())
    }
}

type Setup = Box<dyn Fn(&mut Engine) -> Result<(), Error> + Send + Sync>;

/// VM-serving state: a persistent [`Vm`] that executes the current
/// generation's compiled chunks with block-level profiling on, so each
/// re-optimization can re-lay-out the code it keeps (drift-driven
/// re-layout) and re-mine the superinstruction plan. Lives on the engine —
/// the VM borrows the incremental engine's interpreter, and both are
/// single-threaded.
struct VmServing {
    vm: Vm,
    /// Block counters for the current generation's serving window; cleared
    /// at each re-optimization so the next re-layout sees only current
    /// behavior (dense registrations survive the clear).
    counters: BlockCounters,
    /// Top-level chunks of the serving generation. Reused forms keep their
    /// chunk ids across re-optimizations, so counters collected against an
    /// earlier generation stay valid for them.
    chunks: Vec<Chunk>,
    /// Whether re-optimization re-mines a [`FusionPlan`] from the window's
    /// counters.
    fuse: bool,
}

/// The online driver that closes the paper's loop.
///
/// The paper's workflow (§4.3) is offline: instrument, run, store,
/// recompile. `AdaptiveEngine` runs the same machinery continuously:
///
/// 1. worker threads feed a [`ShardedCounters`] registry (directly, or by
///    absorbing instrumented runs — see [`AdaptiveEngine::collect_run`]);
/// 2. each epoch, the registry is drained into a [`RollingProfile`]
///    (exponential decay, so old behavior ages out) —
///    [`crate::RollingProfile`];
/// 3. the current rolling weights are compared against the weights the
///    serving program was optimized under ([`crate::DriftDetector`]
///    semantics, inlined here);
/// 4. on drift, the program is re-expanded and bytecode-compiled through a
///    fresh [`pgmp::Engine`] with the new weights, and the resulting
///    [`CompiledProgram`] is atomically swapped in for readers.
///
/// `pgmp::Engine` itself is single-threaded, so compilation happens on
/// whichever thread owns the `AdaptiveEngine`; everything workers touch
/// ([`AdaptiveHandle`]) is `Send + Sync`. Epochs can be driven
/// synchronously with [`tick`](AdaptiveEngine::tick) (deterministic —
/// what tests and the CLI use) or from a background thread with
/// [`spawn_aggregator`](AdaptiveEngine::spawn_aggregator) +
/// [`poll_reoptimize`](AdaptiveEngine::poll_reoptimize).
pub struct AdaptiveEngine {
    config: AdaptiveConfig,
    shared: Arc<Shared>,
    /// The persistent per-form cache used by the incremental re-optimize
    /// path (`None` when [`AdaptiveConfig::incremental`] is off). Lives on
    /// the engine (not in [`Shared`]): compilation is single-threaded.
    incremental: Option<IncrementalEngine>,
    /// VM-serving state ([`AdaptiveEngine::enable_vm_serving`]); `None`
    /// until enabled. Requires the incremental path.
    serving: Option<VmServing>,
    /// Cumulative flush stats at the end of the previous [`tick`], so each
    /// epoch reports per-epoch deltas.
    ///
    /// [`tick`]: AdaptiveEngine::tick
    last_flush: pgmp_rt::FlushStatsSnapshot,
}

impl AdaptiveEngine {
    /// Compiles generation 0 of `source` (no profile) and returns the
    /// driver.
    ///
    /// # Errors
    ///
    /// Propagates read/expand errors from the initial compilation.
    pub fn new(source: &str, file: &str, config: AdaptiveConfig) -> Result<AdaptiveEngine, Error> {
        AdaptiveEngine::build(source, file, config, None)
    }

    /// Like [`AdaptiveEngine::new`], with a setup hook run on every fresh
    /// engine (the place to install case-study libraries or extra
    /// primitives before the program is compiled).
    ///
    /// # Errors
    ///
    /// Propagates setup and initial-compilation errors.
    pub fn with_setup(
        source: &str,
        file: &str,
        config: AdaptiveConfig,
        setup: impl Fn(&mut Engine) -> Result<(), Error> + Send + Sync + 'static,
    ) -> Result<AdaptiveEngine, Error> {
        AdaptiveEngine::build(source, file, config, Some(Box::new(setup)))
    }

    fn build(
        source: &str,
        file: &str,
        config: AdaptiveConfig,
        setup: Option<Setup>,
    ) -> Result<AdaptiveEngine, Error> {
        let placeholder = Arc::new(CompiledProgram {
            generation: 0,
            expansion: Vec::new(),
            cfgs: Vec::new(),
            optimized_under_points: 0,
            reused_forms: 0,
            reexpanded_forms: 0,
        });
        let shared = Arc::new(Shared {
            source: source.to_owned(),
            file: file.to_owned(),
            setup,
            counters: ShardedCounters::new(),
            coalesce: config.coalesce,
            program: RwLock::new(placeholder),
            agg: Mutex::new(AggState {
                rolling: RollingProfile::new(config.decay),
                baseline: ProfileInformation::empty(),
                epoch: 0,
                streak: 0,
                cooldown_left: 0,
            }),
            pending: Mutex::new(None),
            drift_pending: AtomicBool::new(false),
            reoptimizations: AtomicU64::new(0),
        });
        let incremental = if config.incremental {
            Some(IncrementalEngine::with_engine(
                shared.fresh_engine()?,
                source,
                file,
                IncrementalConfig {
                    epsilon: config.epsilon,
                },
            )?)
        } else {
            None
        };
        let mut engine = AdaptiveEngine {
            config,
            shared,
            incremental,
            serving: None,
            last_flush: pgmp_rt::FlushStatsSnapshot::default(),
        };
        let gen0 = engine.compile(ProfileInformation::empty(), 0)?;
        *engine
            .shared
            .program
            .write()
            .expect("adaptive program cell poisoned") = gen0;
        Ok(engine)
    }

    /// The loop configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// A `Send + Sync` handle for worker threads.
    pub fn handle(&self) -> AdaptiveHandle {
        AdaptiveHandle {
            shared: self.shared.clone(),
        }
    }

    /// The program generation currently being served.
    pub fn current_program(&self) -> Arc<CompiledProgram> {
        self.handle().current_program()
    }

    /// Runs the program once, instrumented, in a fresh engine, and merges
    /// the resulting counts into the shared registry. Delegates to
    /// [`AdaptiveHandle::collect_run`]; worker threads should clone a
    /// handle and call it there.
    ///
    /// # Errors
    ///
    /// Propagates engine errors from either run.
    pub fn collect_run(&self, driver: Option<&str>) -> Result<(), Error> {
        self.handle().collect_run(driver)
    }

    /// Turns on VM serving: compiles the current generation's chunks
    /// through the incremental cache, runs them once on a persistent
    /// [`Vm`] (defining the program's globals in the incremental engine's
    /// interpreter), and starts collecting block-level counters. From then
    /// on every re-optimization also re-lays-out the chunks it keeps under
    /// the counters of the closing generation (and, with `fuse`, re-mines
    /// the superinstruction plan) before the new generation starts
    /// serving.
    ///
    /// Top-level side effects run once here and once per re-optimization
    /// (the serving program is expected to be definition-shaped, like any
    /// program a long-lived service re-loads on deploy).
    ///
    /// # Errors
    ///
    /// Fails when [`AdaptiveConfig::incremental`] is off — serving depends
    /// on the cache keeping chunk ids stable for reused forms — and
    /// propagates compile/run errors.
    pub fn enable_vm_serving(&mut self, dispatch: DispatchMode, fuse: bool) -> Result<(), Error> {
        if self.incremental.is_none() {
            return Err(Error::Eval(EvalError::new(
                EvalErrorKind::Runtime,
                "VM serving requires the incremental re-optimization path \
                 (AdaptiveConfig::incremental)",
            )));
        }
        let weights = {
            let agg = self
                .shared
                .agg
                .lock()
                .expect("adaptive aggregation state poisoned");
            agg.baseline.clone()
        };
        let unit = self
            .incremental
            .as_mut()
            .expect("checked above")
            .compile(&weights)?;
        let counters = BlockCounters::new();
        let mut vm = Vm::new();
        vm.dispatch = dispatch;
        vm.set_block_profiling(counters.clone());
        self.serving = Some(VmServing {
            vm,
            counters,
            chunks: unit.chunks,
            fuse,
        });
        self.run_serving_chunks()?;
        Ok(())
    }

    /// True once [`AdaptiveEngine::enable_vm_serving`] has succeeded.
    pub fn vm_serving_enabled(&self) -> bool {
        self.serving.is_some()
    }

    /// One unit of VM-served traffic: re-runs the serving generation's
    /// top-level chunks and then `driver` (expanded through the engine, so
    /// the program's macros are visible) on the serving VM, mirroring what
    /// [`AdaptiveHandle::collect_run`] does tree-walked in a fresh engine.
    /// Block counters accumulate into the current generation's window;
    /// [`Vm::metrics`] accumulate for [`AdaptiveEngine::vm_metrics`].
    /// Returns the last value, printed.
    ///
    /// # Errors
    ///
    /// Fails unless serving is enabled; propagates expansion and runtime
    /// errors.
    pub fn vm_serve_run(&mut self, driver: Option<&str>) -> Result<String, Error> {
        if self.serving.is_none() {
            return Err(Error::Eval(EvalError::new(
                EvalErrorKind::Runtime,
                "vm_serve_run before enable_vm_serving",
            )));
        }
        let mut last = self.run_serving_chunks()?;
        if let Some(src) = driver {
            let incr = self
                .incremental
                .as_mut()
                .expect("VM serving requires the incremental path");
            let cores = incr.engine_mut().expand_to_core(src, "adaptive-vm-driver.scm")?;
            let serving = self.serving.as_mut().expect("checked above");
            let incr = self
                .incremental
                .as_mut()
                .expect("VM serving requires the incremental path");
            let interp = incr.engine_mut().interp_mut();
            for core in &cores {
                last = serving.vm.run_core(interp, core)?.write_string();
            }
        }
        Ok(last)
    }

    /// Cumulative execution metrics of the serving VM (`None` until
    /// [`AdaptiveEngine::enable_vm_serving`]). Copy out before and after a
    /// [`AdaptiveEngine::vm_serve_run`] to measure one unit of traffic.
    pub fn vm_metrics(&self) -> Option<VmMetrics> {
        self.serving.as_ref().map(|s| s.vm.metrics)
    }

    /// Compiles the program under `weights` (expansion + bytecode), off
    /// to the side; does not swap. Incremental when configured: only
    /// forms whose recorded profile reads changed re-expand.
    fn compile(
        &mut self,
        weights: ProfileInformation,
        generation: u64,
    ) -> Result<Arc<CompiledProgram>, Error> {
        let optimized_under_points = weights.len();
        if let Some(incr) = self.incremental.as_mut() {
            let unit = incr.compile(&weights)?;
            if let Some(serving) = self.serving.as_mut() {
                // Hand the new generation's chunks to the serving VM;
                // reused forms keep their chunk ids, so the counters
                // collected under the previous generation still apply.
                serving.chunks = unit.chunks;
            }
            return Ok(Arc::new(CompiledProgram {
                generation,
                expansion: unit.expansion,
                cfgs: unit.cfgs,
                optimized_under_points,
                reused_forms: unit.stats.reused,
                reexpanded_forms: unit.stats.reexpanded,
            }));
        }
        let mut engine = self.shared.fresh_engine()?;
        engine.set_profile(weights);
        let expansion: Vec<String> = engine
            .expand_str(&self.shared.source, &self.shared.file)?
            .iter()
            .map(|s| s.to_datum().to_string())
            .collect();
        // Replay generated profile points so the bytecode pass sees the
        // same points the expansion pass saw (§4.1 determinism).
        engine.reset_profile_points();
        let cfgs: Vec<String> = engine
            .expand_to_core(&self.shared.source, &self.shared.file)?
            .iter()
            .map(|c| canonical_form(&compile_chunk(c)))
            .collect();
        let reexpanded_forms = expansion.len();
        Ok(Arc::new(CompiledProgram {
            generation,
            expansion,
            cfgs,
            optimized_under_points,
            reused_forms: 0,
            reexpanded_forms,
        }))
    }

    /// Recompiles under `weights` and atomically swaps the new generation
    /// in; the drift baseline moves to `weights` and the cooldown window
    /// (if configured) starts.
    ///
    /// # Errors
    ///
    /// If compilation fails the old generation keeps serving and the
    /// baseline is unchanged.
    fn reoptimize(&mut self, weights: ProfileInformation) -> Result<Arc<CompiledProgram>, Error> {
        let t = observe::timer();
        let next_gen = self.current_program().generation + 1;
        let program = self.compile(weights.clone(), next_gen)?;
        let swap_us = {
            // A plain clock, not an observe span: the swap is interior
            // to the reoptimize span and reported as its `swap_us`.
            let swap_timer = observe::enabled().then(std::time::Instant::now);
            let mut cell = self
                .shared
                .program
                .write()
                .expect("adaptive program cell poisoned");
            *cell = program.clone();
            swap_timer.map_or(0, |t0| t0.elapsed().as_micros() as u64)
        };
        observe::finish(t, |duration_us| observe::EventKind::Reoptimize {
            generation: next_gen,
            reused: program.reused_forms as u32,
            reexpanded: program.reexpanded_forms as u32,
            duration_us,
            swap_us,
        });
        {
            let mut agg = self
                .shared
                .agg
                .lock()
                .expect("adaptive aggregation state poisoned");
            agg.baseline = weights;
            agg.streak = 0;
            agg.cooldown_left = self.config.cooldown_epochs;
        }
        self.shared.reoptimizations.fetch_add(1, Ordering::Relaxed);
        self.relayout_serving(next_gen)?;
        Ok(program)
    }

    /// The drift-driven re-layout half of a re-optimization (no-op unless
    /// VM serving is enabled): re-lays-out the new generation's chunks —
    /// and every lambda chunk the serving VM has compiled — under the
    /// block counters collected since the previous generation, re-mines
    /// the superinstruction plan from the same window, re-runs the
    /// (re-laid-out) top-level chunks so re-expanded definitions take
    /// effect, and opens a fresh counter window for the next generation.
    fn relayout_serving(&mut self, generation: u64) -> Result<(), Error> {
        let Some(serving) = self.serving.as_mut() else {
            return Ok(());
        };
        let t = observe::timer();
        for chunk in serving.chunks.iter_mut() {
            *chunk = optimize_layout(chunk, &serving.counters);
        }
        serving.vm.relayout_cached(&serving.counters);
        if serving.fuse {
            let lambda_chunks = serving.vm.compiled_chunks();
            let plan = FusionPlan::mine(
                serving
                    .chunks
                    .iter()
                    .chain(lambda_chunks.iter().map(|c| &**c)),
                &serving.counters,
                3,
            );
            serving.vm.set_fusion(plan);
        }
        let chunks = serving.chunks.len() as u32;
        serving.counters.clear();
        observe::finish(t, |duration_us| observe::EventKind::LayoutReoptimize {
            generation,
            chunks,
            duration_us,
        });
        observe::metrics().counter_add("vm.layout_reoptimizations", 1);
        self.run_serving_chunks()?;
        Ok(())
    }

    /// Runs the serving generation's top-level chunks on the serving VM
    /// against the incremental engine's interpreter (where the serving
    /// globals live), returning the last chunk's value, printed.
    fn run_serving_chunks(&mut self) -> Result<String, Error> {
        let serving = self
            .serving
            .as_mut()
            .expect("run_serving_chunks without serving state");
        let incr = self
            .incremental
            .as_mut()
            .expect("VM serving requires the incremental path");
        let interp = incr.engine_mut().interp_mut();
        let mut last = String::from("#<unspecified>");
        for chunk in &serving.chunks {
            last = serving.vm.run_chunk(interp, chunk)?.write_string();
        }
        Ok(last)
    }

    /// Runs one epoch synchronously: drain counters into the rolling
    /// profile, measure drift, and — if the detector fires — recompile and
    /// swap within this call.
    ///
    /// # Errors
    ///
    /// Propagates re-optimization errors; the aggregation itself cannot
    /// fail.
    pub fn tick(&mut self) -> Result<EpochReport, Error> {
        let t = observe::timer();
        let step = self.shared.epoch_step(&self.config);
        let mut reoptimized = false;
        if step.fired {
            self.reoptimize(step.weights.clone())?;
            reoptimized = true;
        }
        let flush = self.shared.counters.flush_stats();
        let merged_total = flush.buffered_hits.saturating_sub(flush.flushed_slots);
        let last_merged = self
            .last_flush
            .buffered_hits
            .saturating_sub(self.last_flush.flushed_slots);
        let report = EpochReport {
            epoch: step.epoch,
            hits: step.hits,
            drift: step.drift,
            fired: step.fired,
            reoptimized,
            generation: self.current_program().generation,
            streak: step.streak,
            cooldown: step.cooldown,
            flush_writes: flush.flushes.saturating_sub(self.last_flush.flushes),
            flush_merged: merged_total.saturating_sub(last_merged),
        };
        self.last_flush = flush;
        self.publish_epoch_metrics(&report);
        observe::finish(t, |duration_us| observe::EventKind::Epoch {
            epoch: report.epoch,
            hits: report.hits,
            drift: report.drift,
            fired: report.fired,
            reoptimized: report.reoptimized,
            generation: report.generation,
            streak: report.streak,
            cooldown: report.cooldown,
            flush_writes: report.flush_writes,
            flush_merged: report.flush_merged,
            duration_us,
        });
        Ok(report)
    }

    /// Publishes one epoch's outcome to the process-global metrics
    /// registry (`adaptive.*`). Every consumer — the `--adaptive` console
    /// lines, `--metrics` snapshots — reads these same values, so they
    /// cannot disagree.
    fn publish_epoch_metrics(&self, report: &EpochReport) {
        let m = observe::metrics();
        m.counter_add("adaptive.epochs", 1);
        m.counter_add("adaptive.hits", report.hits);
        m.counter_add("adaptive.flush_writes", report.flush_writes);
        m.counter_add("adaptive.flush_merged", report.flush_merged);
        if report.fired {
            m.counter_add("adaptive.fired", 1);
        }
        if report.reoptimized {
            m.counter_add("adaptive.reoptimizations", 1);
            let p = self.current_program();
            m.counter_add("adaptive.reused_forms", p.reused_forms as u64);
            m.counter_add("adaptive.reexpanded_forms", p.reexpanded_forms as u64);
        }
        m.gauge_set("adaptive.drift", report.drift);
        m.gauge_set("adaptive.generation", report.generation as f64);
        m.gauge_set("adaptive.streak", f64::from(report.streak));
        m.gauge_set("adaptive.cooldown", f64::from(report.cooldown));
        if let Some(s) = &self.serving {
            m.gauge_set("vm.taken_jumps", s.vm.metrics.taken_jumps as f64);
            m.gauge_set("vm.fused_share", s.vm.metrics.fused_share());
        }
    }

    /// Starts the epoch-based background aggregator: every
    /// [`AdaptiveConfig::epoch`], it drains the counters, updates the
    /// rolling profile, and measures drift on its own thread. When drift
    /// fires it *flags* rather than recompiles (the engine is
    /// single-threaded); the owning thread observes the flag via
    /// [`AdaptiveHandle::drift_pending`] and recompiles with
    /// [`AdaptiveEngine::poll_reoptimize`].
    pub fn spawn_aggregator(&self) -> AggregatorGuard {
        let shared = self.shared.clone();
        let config = self.config.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let join = std::thread::spawn(move || {
            let mut epochs = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                // Sleep in slices so stop() is prompt even for long epochs.
                let mut remaining = config.epoch;
                while !remaining.is_zero() && !stop_flag.load(Ordering::Relaxed) {
                    let slice = remaining.min(Duration::from_millis(10));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                let step = shared.epoch_step(&config);
                epochs += 1;
                if step.fired {
                    *shared.pending.lock().expect("adaptive pending cell poisoned") =
                        Some(step.weights);
                    shared.drift_pending.store(true, Ordering::Release);
                }
            }
            epochs
        });
        AggregatorGuard {
            stop,
            join: Some(join),
        }
    }

    /// Consumes a pending drift flag from the background aggregator:
    /// recompiles under the flagged weights and swaps. Returns the new
    /// program, or `None` when no drift was pending.
    ///
    /// # Errors
    ///
    /// Propagates re-optimization errors (the flag is consumed either
    /// way; the next drifting epoch will re-raise it).
    pub fn poll_reoptimize(&mut self) -> Result<Option<Arc<CompiledProgram>>, Error> {
        if !self.shared.drift_pending.swap(false, Ordering::Acquire) {
            return Ok(None);
        }
        let weights = self
            .shared
            .pending
            .lock()
            .expect("adaptive pending cell poisoned")
            .take();
        match weights {
            Some(w) => self.reoptimize(w).map(Some),
            None => Ok(None),
        }
    }

    /// Applies a *fleet* profile — the canonical merged weights pushed by
    /// a `pgmp-profiled` epoch broadcast — as a drift source: measures
    /// drift of `weights` against the weights this engine's serving
    /// program was optimized under and, past the configured threshold,
    /// recompiles and swaps exactly as a local over-threshold epoch
    /// would. Returns the new program when re-optimization ran, `None`
    /// when fleet behavior matches what is already being served.
    ///
    /// Hysteresis and cooldown do not apply: they damp per-epoch counter
    /// noise, while a broadcast is already one merged observation over
    /// the whole fleet (the daemon's merge cadence is the damping).
    ///
    /// # Errors
    ///
    /// Propagates re-optimization errors; on failure the old generation
    /// keeps serving and the baseline is unchanged.
    pub fn apply_fleet_profile(
        &mut self,
        weights: &ProfileInformation,
    ) -> Result<Option<Arc<CompiledProgram>>, Error> {
        self.apply_fleet_epoch(weights, 0, 0)
    }

    /// [`AdaptiveEngine::apply_fleet_profile`], stamped with the
    /// broadcast's correlation ids: the daemon's
    /// [`pgmp_observe::instance_id`] and merge epoch from the
    /// `EpochUpdate` frame. Emits a `fleet_apply` trace event carrying
    /// them — the join key `pgmp-trace merge` uses to order this
    /// process's re-optimization after the exact daemon merge that
    /// caused it. Zero ids (a v1 daemon, or no daemon at all) still
    /// record the local decision; they just cannot be joined.
    pub fn apply_fleet_epoch(
        &mut self,
        weights: &ProfileInformation,
        daemon_inst: u64,
        epoch: u64,
    ) -> Result<Option<Arc<CompiledProgram>>, Error> {
        let value = {
            let agg = self
                .shared
                .agg
                .lock()
                .expect("adaptive aggregation state poisoned");
            drift(weights, &agg.baseline, self.config.metric)
        };
        observe::metrics().gauge_set("adaptive.fleet_drift", value);
        let reoptimized = value > self.config.drift_threshold;
        // Emitted before the recompile so the merged timeline reads
        // decision-then-work: fleet_apply, then the reoptimize span.
        observe::emit(observe::EventKind::FleetApply {
            daemon_inst,
            epoch,
            drift: value,
            reoptimized,
        });
        if !reoptimized {
            return Ok(None);
        }
        let program = self.reoptimize(weights.clone())?;
        observe::metrics().counter_add("adaptive.fleet_reoptimizations", 1);
        Ok(Some(program))
    }

    /// Persists the aggregation state — rolling profile (decayed counts +
    /// epoch counter) and optimization baseline — to `path`, atomically.
    /// Pair with [`AdaptiveEngine::restore_snapshot`] to carry an online
    /// session's profile memory across a process restart.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the atomic write.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<(), Error> {
        let snap = {
            let agg = self
                .shared
                .agg
                .lock()
                .expect("adaptive aggregation state poisoned");
            crate::EpochSnapshot::capture(&agg.rolling, &agg.baseline)
        };
        snap.store_file(path).map_err(Error::Profile)?;
        Ok(())
    }

    /// Restores aggregation state saved by
    /// [`AdaptiveEngine::save_snapshot`]: the rolling profile resumes its
    /// decay history and the drift baseline is re-established, so the
    /// first epochs after a restart measure drift against what the
    /// previous process had learned — not against an empty profile.
    ///
    /// The engine keeps its *configured* decay factor (the stored one is
    /// diagnostic); hysteresis and cooldown state reset — they damp
    /// within-process oscillation and are meaningless across a restart.
    /// Returns the restored snapshot for inspection.
    ///
    /// # Errors
    ///
    /// Typed [`pgmp_profiler::ProfileStoreError`]s (wrapped in
    /// [`Error::Profile`]) for I/O, corruption, or version problems; the
    /// in-memory state is untouched on error.
    pub fn restore_snapshot(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<crate::EpochSnapshot, Error> {
        let snap = crate::EpochSnapshot::load_file(path).map_err(Error::Profile)?;
        let mut agg = self
            .shared
            .agg
            .lock()
            .expect("adaptive aggregation state poisoned");
        agg.rolling =
            RollingProfile::from_parts(self.config.decay, snap.epochs, snap.counts.clone());
        agg.baseline = snap.baseline.clone();
        agg.epoch = snap.epochs;
        agg.streak = 0;
        agg.cooldown_left = 0;
        Ok(snap)
    }
}

/// Stops (and joins) the background aggregator when dropped.
pub struct AggregatorGuard {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<u64>>,
}

impl AggregatorGuard {
    /// Stops the aggregator and returns how many epochs it ran.
    pub fn stop(mut self) -> u64 {
        self.shutdown()
    }

    fn shutdown(&mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        match self.join.take() {
            Some(join) => join.join().unwrap_or(0),
            None => 0,
        }
    }
}

impl Drop for AggregatorGuard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmp_syntax::SourceObject;

    // A program whose if-r macro flips branch order by profile weight —
    // self-contained (no case-studies dependency) so the adaptive crate's
    // own tests stay within this crate.
    const IF_R: &str = "
      (define-syntax (if-r stx)
        (syntax-case stx ()
          [(_ test t-branch f-branch)
           (if (< (profile-query #'t-branch) (profile-query #'f-branch))
               #'(if (not test) f-branch t-branch)
               #'(if test t-branch f-branch))]))
      (define (classify n) (if-r (< n 10) 'small 'big))";

    fn drive(lo: i64, hi: i64) -> String {
        format!(
            "(let loop ([i {lo}])
               (unless (= i {hi}) (classify i) (loop (add1 i))))"
        )
    }

    #[test]
    fn generation_zero_compiles_without_profile() {
        let engine =
            AdaptiveEngine::new(IF_R, "ifr.scm", AdaptiveConfig::default()).unwrap();
        let program = engine.current_program();
        assert_eq!(program.generation, 0);
        assert!(!program.expansion.is_empty());
        assert!(!program.cfgs.is_empty());
        assert_eq!(program.optimized_under_points, 0);
        // Unprofiled if-r keeps source order: (if (< n 10) 'small 'big).
        let text = program.expansion.join("\n");
        assert!(
            text.contains("(if (< n 10) (quote small) (quote big))"),
            "unexpected gen-0 expansion: {text}"
        );
    }

    #[test]
    fn drift_triggers_reoptimization_and_branch_flip() {
        let config = AdaptiveConfig {
            decay: 0.5,
            drift_threshold: 0.2,
            ..AdaptiveConfig::default()
        };
        let mut engine = AdaptiveEngine::new(IF_R, "ifr.scm", config).unwrap();

        // Phase 1: traffic is all n >= 10, so 'big dominates.
        engine.collect_run(Some(&drive(10, 60))).unwrap();
        let report = engine.tick().unwrap();
        assert!(report.fired, "first traffic must drift from empty baseline");
        assert!(report.reoptimized);
        assert_eq!(report.generation, 1);
        let text = engine.current_program().expansion.join("\n");
        assert!(
            text.contains("(if (not (< n 10)) (quote big) (quote small))"),
            "hot 'big branch should be negated to front: {text}"
        );

        // Same traffic again: no drift, no recompile.
        engine.collect_run(Some(&drive(10, 60))).unwrap();
        let report = engine.tick().unwrap();
        assert!(!report.fired, "steady traffic re-fired: drift {}", report.drift);
        assert_eq!(report.generation, 1);

        // Phase 2: traffic shifts to n < 10; decay ages 'big out.
        for _ in 0..4 {
            engine.collect_run(Some(&drive(0, 10))).unwrap();
            engine.tick().unwrap();
        }
        let program = engine.current_program();
        assert!(program.generation >= 2, "shift never re-optimized");
        let text = program.expansion.join("\n");
        assert!(
            text.contains("(if (< n 10) (quote small) (quote big))"),
            "after the shift 'small is hot again: {text}"
        );
    }

    /// Fall-through ratio of the control transfers between two metric
    /// snapshots.
    fn transfer_ratio(before: VmMetrics, after: VmMetrics) -> f64 {
        let ft = after.fallthroughs - before.fallthroughs;
        let tj = after.taken_jumps - before.taken_jumps;
        assert!(ft + tj > 0, "no control transfers measured");
        ft as f64 / (ft + tj) as f64
    }

    #[test]
    fn vm_serving_requires_the_incremental_path() {
        let config = AdaptiveConfig {
            incremental: false,
            ..AdaptiveConfig::default()
        };
        let mut engine = AdaptiveEngine::new("(define x 1)", "p.scm", config).unwrap();
        assert!(engine.enable_vm_serving(DispatchMode::Flat, false).is_err());
        assert!(!engine.vm_serving_enabled());
        assert!(engine.vm_metrics().is_none());
    }

    #[test]
    fn drift_relayout_raises_the_fallthrough_ratio() {
        // No profile-reading macros: every form is reused across the
        // re-optimization, so any fall-through improvement on the served
        // workload comes from drift-driven block re-layout alone.
        let src = "(define (classify n) (if (< n 10) 'small 'big))";
        let config = AdaptiveConfig {
            decay: 0.5,
            drift_threshold: 0.2,
            ..AdaptiveConfig::default()
        };
        let mut engine = AdaptiveEngine::new(src, "plain.scm", config).unwrap();
        engine.enable_vm_serving(DispatchMode::Flat, true).unwrap();
        assert!(engine.vm_serving_enabled());

        // Serve shifted traffic: n >= 10 throughout, so classify's
        // source-second 'big branch is the hot one (a taken jump under the
        // source-order layout).
        let before = engine.vm_metrics().unwrap();
        engine.vm_serve_run(Some(&drive(10, 60))).unwrap();
        let pre = transfer_ratio(before, engine.vm_metrics().unwrap());

        // Source-level drift from the empty baseline fires; the compile
        // reuses every form; the re-layout half re-orders the serving
        // chunks (and the VM's cached lambda bodies) under the counters
        // the serving run just collected.
        engine.collect_run(Some(&drive(10, 60))).unwrap();
        let report = engine.tick().unwrap();
        assert!(report.reoptimized, "drift from empty baseline must fire");
        assert!(
            engine.current_program().reused_forms > 0,
            "plain program must reuse, not re-expand"
        );

        // The same workload again: the hot branch now falls through.
        let before = engine.vm_metrics().unwrap();
        engine.vm_serve_run(Some(&drive(10, 60))).unwrap();
        let post = transfer_ratio(before, engine.vm_metrics().unwrap());
        assert!(
            post > pre,
            "re-layout must raise the fall-through ratio: pre {pre:.3} post {post:.3}"
        );
    }

    #[test]
    fn snapshot_restores_profile_memory_across_engines() {
        let dir = std::env::temp_dir().join(format!("pgmp-adapt-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epoch.pgmp");
        let config = AdaptiveConfig {
            decay: 0.5,
            drift_threshold: 0.2,
            ..AdaptiveConfig::default()
        };

        // "Process 1": learn that 'big is hot, re-optimize, snapshot.
        {
            let mut engine = AdaptiveEngine::new(IF_R, "ifr.scm", config.clone()).unwrap();
            engine.collect_run(Some(&drive(10, 60))).unwrap();
            let report = engine.tick().unwrap();
            assert!(report.reoptimized);
            engine.save_snapshot(&path).unwrap();
        }

        // "Process 2": restore; identical traffic must NOT fire (the
        // baseline carried over), unlike a cold engine where the very
        // first traffic always drifts from the empty baseline.
        let mut engine = AdaptiveEngine::new(IF_R, "ifr.scm", config).unwrap();
        let snap = engine.restore_snapshot(&path).unwrap();
        assert!(snap.epochs >= 1);
        assert!(!snap.baseline.is_empty());
        engine.collect_run(Some(&drive(10, 60))).unwrap();
        let report = engine.tick().unwrap();
        assert!(
            !report.fired,
            "restored baseline treated steady traffic as drift: {}",
            report.drift
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_from_corrupt_snapshot_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("pgmp-adapt-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epoch.pgmp");
        std::fs::write(&path, "(pgmp-epoch (version 9))").unwrap();
        let mut engine =
            AdaptiveEngine::new(IF_R, "ifr.scm", AdaptiveConfig::default()).unwrap();
        let err = engine.restore_snapshot(&path);
        assert!(matches!(err, Err(Error::Profile(_))), "{err:?}");
        // Engine still works after the failed restore.
        engine.collect_run(Some(&drive(0, 5))).unwrap();
        engine.tick().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn idle_epochs_never_fire() {
        let mut engine =
            AdaptiveEngine::new(IF_R, "ifr.scm", AdaptiveConfig::default()).unwrap();
        engine.collect_run(Some(&drive(0, 20))).unwrap();
        engine.tick().unwrap();
        let before = engine.current_program().generation;
        for _ in 0..10 {
            let report = engine.tick().unwrap();
            assert!(!report.fired, "idle epoch fired at drift {}", report.drift);
            assert_eq!(report.hits, 0);
        }
        assert_eq!(engine.current_program().generation, before);
    }

    #[test]
    fn failed_recompilation_keeps_serving_old_generation() {
        // A program whose macro errors once a profile point is hot (the
        // transformer calls an unbound procedure): re-optimization fails,
        // but generation 0 must keep serving.
        let booby_trap = "
          (define-syntax (trap stx)
            (syntax-case stx ()
              [(_ e)
               (if (> (profile-query #'e) 0.5)
                   (poison-the-hot-path)
                   #'e)]))
          (define (f) (trap (+ 1 2)))";
        let config = AdaptiveConfig {
            drift_threshold: 0.01,
            ..AdaptiveConfig::default()
        };
        let mut engine = AdaptiveEngine::new(booby_trap, "trap.scm", config).unwrap();
        engine.collect_run(Some("(f) (f) (f)")).unwrap();
        let result = engine.tick();
        assert!(result.is_err(), "poisoned recompilation must surface");
        let program = engine.current_program();
        assert_eq!(program.generation, 0, "old generation must keep serving");
        assert!(!program.expansion.is_empty());
    }

    #[test]
    fn background_aggregator_flags_drift_for_the_engine_thread() {
        let config = AdaptiveConfig {
            epoch: Duration::from_millis(15),
            drift_threshold: 0.2,
            ..AdaptiveConfig::default()
        };
        let mut engine = AdaptiveEngine::new(IF_R, "ifr.scm", config).unwrap();
        let handle = engine.handle();
        let aggregator = engine.spawn_aggregator();

        // Feed traffic from a worker thread while the aggregator runs.
        std::thread::scope(|s| {
            let h = engine.handle();
            let worker = s.spawn(move || h.collect_run(Some(&drive(10, 60))));
            worker.join().unwrap().unwrap();
        });

        // Wait (bounded) for the aggregator to notice.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !handle.drift_pending() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(handle.drift_pending(), "aggregator never flagged drift");
        let epochs = aggregator.stop();
        assert!(epochs >= 1);

        let program = engine.poll_reoptimize().unwrap().expect("pending reopt");
        assert_eq!(program.generation, 1);
        assert!(engine.poll_reoptimize().unwrap().is_none(), "flag must be consumed");
        assert_eq!(handle.reoptimizations(), 1);
    }

    #[test]
    fn fleet_profile_drives_reoptimization() {
        let config = AdaptiveConfig {
            drift_threshold: 0.2,
            ..AdaptiveConfig::default()
        };
        let mut engine = AdaptiveEngine::new(IF_R, "ifr.scm", config).unwrap();

        // Discover the program's profile points from one instrumented run,
        // then fabricate "fleet" weights that make 'big hot.
        let mut probe = pgmp::Engine::new();
        probe.set_instrumentation(ProfileMode::EveryExpression);
        probe.run_str(IF_R, "ifr.scm").unwrap();
        probe.run_str(&drive(10, 60), "adaptive-driver.scm").unwrap();
        let fleet = ProfileInformation::from_dataset(&probe.counters().snapshot());

        let program = engine
            .apply_fleet_profile(&fleet)
            .unwrap()
            .expect("fleet drift from empty baseline must re-optimize");
        assert_eq!(program.generation, 1);
        let text = program.expansion.join("\n");
        assert!(
            text.contains("(if (not (< n 10)) (quote big) (quote small))"),
            "fleet-hot 'big branch should lead: {text}"
        );

        // The same fleet profile again: baseline now matches, no recompile.
        assert!(engine.apply_fleet_profile(&fleet).unwrap().is_none());
        assert_eq!(engine.current_program().generation, 1);

        // Shifted fleet behavior re-optimizes again.
        let mut probe = pgmp::Engine::new();
        probe.set_instrumentation(ProfileMode::EveryExpression);
        probe.run_str(IF_R, "ifr.scm").unwrap();
        probe.run_str(&drive(0, 10), "adaptive-driver.scm").unwrap();
        let shifted = ProfileInformation::from_dataset(&probe.counters().snapshot());
        assert!(engine.apply_fleet_profile(&shifted).unwrap().is_some());
        assert_eq!(engine.current_program().generation, 2);
    }

    #[test]
    fn handle_counters_feed_the_same_registry() {
        let engine =
            AdaptiveEngine::new(IF_R, "ifr.scm", AdaptiveConfig::default()).unwrap();
        let handle = engine.handle();
        let p = SourceObject::new("direct.scm", 0, 1);
        handle.counters().add(p, 41);
        handle.counters().increment(p);
        assert_eq!(engine.handle().counters().count(p), 42);
    }
}
