//! Rolling, exponentially-decayed profile state.

use pgmp_profiler::{Dataset, ProfileInformation};
use pgmp_syntax::SourceObject;
use std::collections::HashMap;

/// Counts below this fraction of a single hit are dropped during decay, so
/// points whose behavior has aged out disappear instead of lingering as
/// denormals.
const RETENTION_FLOOR: f64 = 1e-6;

/// A profile that *forgets*: per-epoch datasets are folded in with
/// exponential decay, so the weights track recent behavior and old traffic
/// patterns age out.
///
/// After absorbing epochs `d_1, …, d_k` with decay factor `λ`, a point's
/// effective count is `Σ λ^(k-i) · d_i(p)` — the classic exponentially
/// weighted moving sum. `λ = 1` never forgets (every epoch counts
/// equally, the paper's offline accumulation); `λ = 0` keeps only the
/// latest epoch.
///
/// # Example
///
/// ```
/// use pgmp_adaptive::RollingProfile;
/// use pgmp_profiler::Dataset;
/// use pgmp_syntax::SourceObject;
///
/// let p = SourceObject::new("r.scm", 0, 1);
/// let q = SourceObject::new("r.scm", 2, 3);
/// let mut rolling = RollingProfile::new(0.5);
/// rolling.absorb(&[(p, 100)].into_iter().collect::<Dataset>());
/// rolling.absorb(&[(q, 100)].into_iter().collect::<Dataset>());
/// // p has decayed to 50, q is fresh at 100: q is now the hot point.
/// let w = rolling.weights();
/// assert_eq!(w.weight(q), 1.0);
/// assert_eq!(w.weight(p), 0.5);
/// ```
#[derive(Clone, Debug)]
pub struct RollingProfile {
    counts: HashMap<SourceObject, f64>,
    decay: f64,
    epochs: u64,
}

impl RollingProfile {
    /// An empty rolling profile with the given per-epoch decay factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= decay <= 1.0`.
    pub fn new(decay: f64) -> RollingProfile {
        assert!(
            (0.0..=1.0).contains(&decay),
            "decay must be in [0, 1], got {decay}"
        );
        RollingProfile {
            counts: HashMap::new(),
            decay,
            epochs: 0,
        }
    }

    /// The configured decay factor.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// Epochs absorbed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Number of points currently retained.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True iff no point is retained.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total retained (decayed) count mass.
    pub fn total(&self) -> f64 {
        self.counts.values().sum()
    }

    /// Folds one epoch's dataset in: existing counts decay by the factor,
    /// then the fresh counts are added at full weight. Points that decay
    /// below the retention floor are dropped.
    pub fn absorb(&mut self, epoch: &Dataset) {
        self.epochs += 1;
        if self.decay == 0.0 {
            self.counts.clear();
        } else if self.decay < 1.0 {
            self.counts.retain(|_, c| {
                *c *= self.decay;
                *c >= RETENTION_FLOOR
            });
        }
        for (p, c) in epoch.iter() {
            if c > 0 {
                *self.counts.entry(p).or_insert(0.0) += c as f64;
            }
        }
    }

    /// The retained (decayed) counts as `(point, count)` pairs, sorted by
    /// point for deterministic output. Together with
    /// [`RollingProfile::from_parts`] this is what epoch-snapshot
    /// persistence stores, so an adaptive session can resume aggregation
    /// across a process restart without losing its decay history.
    pub fn entries(&self) -> Vec<(SourceObject, f64)> {
        let mut out: Vec<(SourceObject, f64)> =
            self.counts.iter().map(|(p, c)| (*p, *c)).collect();
        out.sort_by_key(|e| e.0);
        out
    }

    /// Reconstructs a rolling profile from persisted state:
    /// [`RollingProfile::entries`] output plus the decay factor and epoch
    /// count. Non-positive counts are dropped (they could not have been
    /// retained).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= decay <= 1.0`, like [`RollingProfile::new`].
    pub fn from_parts(
        decay: f64,
        epochs: u64,
        entries: impl IntoIterator<Item = (SourceObject, f64)>,
    ) -> RollingProfile {
        let mut r = RollingProfile::new(decay);
        r.epochs = epochs;
        r.counts = entries
            .into_iter()
            .filter(|(_, c)| *c >= RETENTION_FLOOR)
            .collect();
        r
    }

    /// Current profile weights (normalized by the hottest retained point),
    /// ready for [`pgmp::Engine::set_profile`].
    pub fn weights(&self) -> ProfileInformation {
        let max = self.counts.values().copied().fold(0.0f64, f64::max);
        if max <= 0.0 {
            return ProfileInformation::empty();
        }
        ProfileInformation::from_weights(
            self.counts.iter().map(|(p, c)| (*p, *c / max)),
            1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> SourceObject {
        SourceObject::new("roll.scm", n, n + 1)
    }

    fn d(entries: &[(u32, u64)]) -> Dataset {
        entries.iter().map(|(i, c)| (p(*i), *c)).collect()
    }

    #[test]
    fn single_epoch_matches_plain_weights() {
        let mut r = RollingProfile::new(0.5);
        r.absorb(&d(&[(0, 5), (1, 10)]));
        let w = r.weights();
        assert_eq!(w.weight(p(0)), 0.5);
        assert_eq!(w.weight(p(1)), 1.0);
        assert_eq!(r.epochs(), 1);
    }

    #[test]
    fn old_behavior_ages_out() {
        let mut r = RollingProfile::new(0.5);
        r.absorb(&d(&[(0, 1000)]));
        for _ in 0..4 {
            r.absorb(&d(&[(1, 1000)]));
        }
        let w = r.weights();
        // p0 decayed 4 times: 1000 * 0.5^4 = 62.5 vs p1 ~ 1000+500+...
        assert!(w.weight(p(0)) < 0.05, "stale point still hot: {}", w.weight(p(0)));
        assert_eq!(w.weight(p(1)), 1.0);
    }

    #[test]
    fn decay_one_accumulates_forever() {
        let mut r = RollingProfile::new(1.0);
        r.absorb(&d(&[(0, 10)]));
        r.absorb(&d(&[(0, 10)]));
        let w = r.weights();
        assert_eq!(w.weight(p(0)), 1.0);
        assert!((r.total() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn decay_zero_keeps_only_latest_epoch() {
        let mut r = RollingProfile::new(0.0);
        r.absorb(&d(&[(0, 10)]));
        r.absorb(&d(&[(1, 10)]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.weights().weight(p(0)), 0.0);
        assert_eq!(r.weights().weight(p(1)), 1.0);
    }

    #[test]
    fn tiny_residues_are_dropped() {
        let mut r = RollingProfile::new(0.5);
        r.absorb(&d(&[(0, 1)]));
        for _ in 0..40 {
            r.absorb(&Dataset::new());
        }
        assert!(r.is_empty(), "residue survived: total {}", r.total());
        assert!(r.weights().is_empty());
    }

    #[test]
    #[should_panic(expected = "decay must be in [0, 1]")]
    fn rejects_bad_decay() {
        RollingProfile::new(1.5);
    }

    #[test]
    fn parts_round_trip_decay_history() {
        let mut r = RollingProfile::new(0.5);
        r.absorb(&d(&[(0, 100), (1, 40)]));
        r.absorb(&d(&[(1, 100)]));
        let back = RollingProfile::from_parts(r.decay(), r.epochs(), r.entries());
        assert_eq!(back.epochs(), r.epochs());
        assert_eq!(back.entries(), r.entries());
        // The restored profile keeps decaying from where it left off.
        let mut a = r.clone();
        let mut b = back;
        a.absorb(&d(&[(0, 7)]));
        b.absorb(&d(&[(0, 7)]));
        assert_eq!(a.entries(), b.entries());
    }
}
