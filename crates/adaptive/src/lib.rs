//! Online profile-guided meta-programming.
//!
//! The paper's workflow (§4.3) is offline: instrument a build, run the
//! benchmark suite, store the counts, recompile. This crate closes that
//! loop *while the system runs*:
//!
//! - [`ShardedCounters`] — a `Send + Sync` counter registry keyed by
//!   interned profile points ([`pgmp_syntax::SourceObject`]). Points are
//!   interned once to dense slots; bumps are lock-free relaxed atomics on
//!   a [`pgmp_rt::AtomicSlotArray`], and write-heavy workers can batch
//!   through a [`CountersWriter`]. Many worker threads bump it
//!   concurrently; snapshots come out as the existing
//!   [`pgmp_profiler::Dataset`], so the paper's weight normalization and
//!   dataset-merge machinery applies unchanged.
//! - [`RollingProfile`] — epoch aggregation with exponential decay, so
//!   weights track *recent* behavior and stale traffic patterns age out.
//! - [`DriftDetector`] / [`drift`] — L1 or total-variation distance
//!   between the live weights and the weights the running code was last
//!   optimized under; [`HysteresisDetector`] damps it with
//!   consecutive-epoch arming and a post-fire cooldown.
//! - [`AdaptiveEngine`] — on drift, re-optimizes under the new weights
//!   and atomically swaps the [`CompiledProgram`] readers see. By default
//!   recompilation is *incremental* ([`pgmp::IncrementalEngine`]): only
//!   top-level forms whose consulted profile weights changed re-expand.
//!   Epochs are driven synchronously ([`AdaptiveEngine::tick`]) or by a
//!   background aggregator thread ([`AdaptiveEngine::spawn_aggregator`] +
//!   [`AdaptiveEngine::poll_reoptimize`]).
//!
//! The crate deliberately reuses the single-threaded pipeline for the
//! heavy lifting — expansion, profile points, weights, bytecode — and adds
//! only the concurrency substrate around it, mirroring how the paper
//! layers PGMP on an unmodified Chez Scheme.

mod counters;
mod drift;
mod engine;
mod rolling;
mod snapshot;

pub use counters::{CountersWriter, ShardedCounters};
pub use drift::{drift, DriftDetector, DriftMetric, DriftReading, HysteresisDetector};
pub use engine::{
    AdaptiveConfig, AdaptiveEngine, AdaptiveHandle, AggregatorGuard, CompiledProgram, EpochReport,
};
pub use rolling::RollingProfile;
pub use snapshot::EpochSnapshot;
