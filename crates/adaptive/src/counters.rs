//! `ShardedCounters`: the concurrent counterpart of `pgmp_profiler::Counters`.

use pgmp_profiler::Dataset;
use pgmp_rt::ShardedRegistry;
use pgmp_syntax::SourceObject;
use std::sync::Arc;

/// A `Send + Sync` live counter registry for concurrent profile collection.
///
/// Where [`pgmp_profiler::Counters`] is the single-threaded registry one
/// engine bumps during an instrumented run, `ShardedCounters` is the shared
/// sink many threads feed at once: worker threads either bump points
/// directly ([`ShardedCounters::increment`]) or run their own instrumented
/// engine and [`absorb`](ShardedCounters::absorb) its dataset, while an
/// aggregator periodically [`drain`](ShardedCounters::drain)s the whole
/// registry into an epoch [`Dataset`].
///
/// Internally this is the same lock-striped [`ShardedRegistry`] the
/// proc-macro runtime (`pgmp-rt`) uses for its global registry, keyed by
/// interned [`SourceObject`]s instead of point-name strings — both
/// implementations of the design share one concurrency substrate.
///
/// Handles are cheaply cloneable and share state, mirroring the `Counters`
/// API.
///
/// # Example
///
/// ```
/// use pgmp_adaptive::ShardedCounters;
/// use pgmp_syntax::SourceObject;
///
/// let counters = ShardedCounters::new();
/// let p = SourceObject::new("svc.scm", 0, 5);
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         let c = counters.clone();
///         s.spawn(move || {
///             for _ in 0..1000 {
///                 c.increment(p);
///             }
///         });
///     }
/// });
/// assert_eq!(counters.snapshot().count(p), 4000);
/// ```
#[derive(Clone, Default)]
pub struct ShardedCounters {
    inner: Arc<ShardedRegistry<SourceObject>>,
}

impl ShardedCounters {
    /// An empty registry sized for this machine's parallelism.
    pub fn new() -> ShardedCounters {
        ShardedCounters::default()
    }

    /// An empty registry with a fixed shard count (rounded up to a power
    /// of two).
    pub fn with_shards(shards: usize) -> ShardedCounters {
        ShardedCounters {
            inner: Arc::new(ShardedRegistry::with_shards(shards)),
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// Adds one to the counter for profile point `p` (saturating).
    pub fn increment(&self, p: SourceObject) {
        self.inner.increment(&p);
    }

    /// Adds `n` to the counter for profile point `p` (saturating).
    pub fn add(&self, p: SourceObject, n: u64) {
        self.inner.add(&p, n);
    }

    /// Current count for `p` (0 if never incremented).
    pub fn count(&self, p: SourceObject) -> u64 {
        self.inner.count(&p)
    }

    /// Number of profile points with a counter.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True iff nothing has been counted.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Zeroes all counters.
    pub fn clear(&self) {
        self.inner.clear();
    }

    /// Adds every count of `dataset` — how a worker thread merges the
    /// counters of its own instrumented run into the shared registry.
    pub fn absorb(&self, dataset: &Dataset) {
        for (p, c) in dataset.iter() {
            if c > 0 {
                self.inner.add(&p, c);
            }
        }
    }

    /// Copies the current counts into a [`Dataset`], reusing the existing
    /// weight/merge pipeline unchanged.
    pub fn snapshot(&self) -> Dataset {
        self.inner.snapshot().into_iter().collect()
    }

    /// Moves all counts out into a [`Dataset`], leaving the registry
    /// empty. Concurrent increments land either in this dataset or the
    /// next one, never in both and never nowhere — the epoch-aggregation
    /// guarantee.
    pub fn drain(&self) -> Dataset {
        self.inner.drain().into_iter().collect()
    }
}

impl std::fmt::Debug for ShardedCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCounters")
            .field("points", &self.len())
            .field("shards", &self.shard_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmp_profiler::ProfileInformation;

    fn p(n: u32) -> SourceObject {
        SourceObject::new("sc.scm", n, n + 1)
    }

    #[test]
    fn mirrors_counters_api() {
        let c = ShardedCounters::new();
        c.increment(p(0));
        c.increment(p(0));
        c.add(p(1), 3);
        assert_eq!(c.count(p(0)), 2);
        assert_eq!(c.count(p(1)), 3);
        assert_eq!(c.count(p(9)), 0);
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let c = ShardedCounters::new();
        let c2 = c.clone();
        c2.increment(p(7));
        assert_eq!(c.count(p(7)), 1);
    }

    #[test]
    fn snapshot_feeds_existing_weight_pipeline() {
        let c = ShardedCounters::new();
        c.add(p(0), 5);
        c.add(p(1), 10);
        let w = ProfileInformation::from_dataset(&c.snapshot());
        assert_eq!(w.weight(p(0)), 0.5);
        assert_eq!(w.weight(p(1)), 1.0);
    }

    #[test]
    fn drain_is_destructive_and_complete() {
        let c = ShardedCounters::new();
        c.add(p(0), 4);
        let d = c.drain();
        assert_eq!(d.count(p(0)), 4);
        assert!(c.is_empty());
        assert!(c.drain().is_empty());
    }

    #[test]
    fn absorb_merges_a_dataset() {
        let c = ShardedCounters::new();
        let d: Dataset = [(p(0), 2), (p(1), 0), (p(2), 7)].into_iter().collect();
        c.absorb(&d);
        c.absorb(&d);
        assert_eq!(c.count(p(0)), 4);
        assert_eq!(c.count(p(2)), 14);
        // Zero-count entries are not materialized.
        assert_eq!(c.count(p(1)), 0);
        assert_eq!(c.len(), 2);
    }
}
