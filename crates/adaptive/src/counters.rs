//! `ShardedCounters`: the concurrent counterpart of `pgmp_profiler::Counters`.

use pgmp_profiler::{Dataset, SlotMap};
use pgmp_rt::{AtomicSlotArray, CoalescingWriter, FlushStats, FlushStatsSnapshot};
use pgmp_syntax::SourceObject;
use std::sync::{Arc, RwLock};

struct Inner {
    /// Point → slot interning. Read-locked on the hot path (a hit on a
    /// known point), write-locked only the first time a point is seen.
    slots: RwLock<SlotMap>,
    /// Dense slot → count storage; bumps are lock-free relaxed atomics.
    counts: Arc<AtomicSlotArray>,
    /// Shared flush statistics of every [`CountersWriter`] handed out.
    stats: Arc<FlushStats>,
}

/// A `Send + Sync` live counter registry for concurrent profile collection.
///
/// Where [`pgmp_profiler::Counters`] is the single-threaded registry one
/// engine bumps during an instrumented run, `ShardedCounters` is the shared
/// sink many threads feed at once: worker threads either bump points
/// directly ([`ShardedCounters::increment`]) or run their own instrumented
/// engine and [`absorb`](ShardedCounters::absorb) its dataset, while an
/// aggregator periodically [`drain`](ShardedCounters::drain)s the whole
/// registry into an epoch [`Dataset`].
///
/// Internally this is the concurrent twin of the profiler's dense
/// representation: points are interned once into a [`SlotMap`] (read lock
/// on re-resolution, write lock only for a never-seen point) and counts
/// live in a [`pgmp_rt::AtomicSlotArray`], so a hit on a known slot is a
/// single relaxed fetch-add — no lock, no hashing. Compare the lock-striped
/// [`pgmp_rt::ShardedRegistry`] this type used to wrap, where every bump
/// hashed the key and took a stripe's read lock. (The name survives the
/// representation change; so does the whole API.)
///
/// Handles are cheaply cloneable and share state, mirroring the `Counters`
/// API. For write-heavy workers, [`ShardedCounters::writer`] hands out a
/// thread-local coalescing buffer that batches bumps and flushes them at
/// the latest when dropped — the adaptive engine's epoch-boundary flush
/// protocol.
///
/// # Example
///
/// ```
/// use pgmp_adaptive::ShardedCounters;
/// use pgmp_syntax::SourceObject;
///
/// let counters = ShardedCounters::new();
/// let p = SourceObject::new("svc.scm", 0, 5);
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         let c = counters.clone();
///         s.spawn(move || {
///             for _ in 0..1000 {
///                 c.increment(p);
///             }
///         });
///     }
/// });
/// assert_eq!(counters.snapshot().count(p), 4000);
/// ```
#[derive(Clone)]
pub struct ShardedCounters {
    inner: Arc<Inner>,
}

impl Default for ShardedCounters {
    fn default() -> ShardedCounters {
        ShardedCounters::new()
    }
}

impl ShardedCounters {
    /// An empty registry.
    pub fn new() -> ShardedCounters {
        ShardedCounters {
            inner: Arc::new(Inner {
                slots: RwLock::new(SlotMap::new()),
                counts: Arc::new(AtomicSlotArray::new()),
                stats: Arc::new(FlushStats::default()),
            }),
        }
    }

    /// Compatibility constructor from the lock-striped era; the dense
    /// registry has no stripes, so this is [`ShardedCounters::new`].
    pub fn with_shards(_shards: usize) -> ShardedCounters {
        ShardedCounters::new()
    }

    fn slots(&self) -> std::sync::RwLockReadGuard<'_, SlotMap> {
        self.inner.slots.read().expect("sharded counters slot map poisoned")
    }

    /// The dense slot for profile point `p`, interning it on first
    /// resolution. Slots are stable for the registry's lifetime (never
    /// recycled, not even by [`ShardedCounters::clear`]), so they can be
    /// cached by workers and embedded in generated code.
    pub fn resolve(&self, p: SourceObject) -> u32 {
        if let Some(slot) = self.slots().get(p) {
            return slot;
        }
        self.inner
            .slots
            .write()
            .expect("sharded counters slot map poisoned")
            .resolve(p)
    }

    /// The slot previously assigned to `p`, if any (never interns).
    pub fn slot(&self, p: SourceObject) -> Option<u32> {
        self.slots().get(p)
    }

    /// Number of slots interned so far (distinct points ever seen).
    pub fn resolved_slots(&self) -> usize {
        self.slots().len()
    }

    /// Adds `n` to the counter of an already-resolved `slot` (saturating).
    /// This is the lock-free hot path: one relaxed atomic RMW.
    #[inline]
    pub fn add_slot(&self, slot: u32, n: u64) {
        self.inner.counts.add(slot, n);
    }

    /// Current count of an already-resolved `slot`.
    pub fn count_slot(&self, slot: u32) -> u64 {
        self.inner.counts.get(slot)
    }

    /// Adds one to the counter for profile point `p` (saturating).
    pub fn increment(&self, p: SourceObject) {
        self.add(p, 1);
    }

    /// Adds `n` to the counter for profile point `p` (saturating).
    pub fn add(&self, p: SourceObject, n: u64) {
        let slot = self.resolve(p);
        self.inner.counts.add(slot, n);
    }

    /// Current count for `p` (0 if never incremented).
    pub fn count(&self, p: SourceObject) -> u64 {
        match self.slots().get(p) {
            Some(slot) => self.inner.counts.get(slot),
            None => 0,
        }
    }

    /// Number of profile points with a nonzero count.
    pub fn len(&self) -> usize {
        let slots = self.slots();
        (0..slots.len() as u32)
            .filter(|&s| self.inner.counts.get(s) > 0)
            .count()
    }

    /// True iff nothing has been counted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zeroes all counters. Slot assignments survive, so slots cached by
    /// workers stay valid.
    pub fn clear(&self) {
        self.inner.counts.clear();
    }

    /// Adds every count of `dataset` — how a worker thread merges the
    /// counters of its own instrumented run into the shared registry.
    pub fn absorb(&self, dataset: &Dataset) {
        for (p, c) in dataset.iter() {
            if c > 0 {
                self.add(p, c);
            }
        }
    }

    /// A thread-local coalescing writer over this registry, flushing
    /// automatically at `capacity` distinct buffered points and on drop.
    /// Buffered hits are invisible to [`snapshot`](ShardedCounters::snapshot)
    /// and [`drain`](ShardedCounters::drain) until flushed; the flush
    /// protocol is that writers live no longer than one epoch's collection
    /// unit (drop flushes), so the next drain sees everything.
    pub fn writer(&self, capacity: usize) -> CountersWriter {
        CountersWriter {
            registry: self.clone(),
            writer: CoalescingWriter::new(
                self.inner.counts.clone(),
                self.inner.stats.clone(),
                capacity,
            ),
        }
    }

    /// Cumulative flush statistics of every writer handed out by
    /// [`ShardedCounters::writer`].
    pub fn flush_stats(&self) -> FlushStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Copies the current counts into a [`Dataset`], reusing the existing
    /// weight/merge pipeline unchanged. Zero counts are skipped, so dense
    /// and hash-keyed registries fed the same hits snapshot identically.
    pub fn snapshot(&self) -> Dataset {
        let slots = self.slots();
        slots
            .points()
            .iter()
            .enumerate()
            .map(|(s, p)| (*p, self.inner.counts.get(s as u32)))
            .filter(|(_, c)| *c > 0)
            .collect()
    }

    /// Moves all counts out into a [`Dataset`], leaving the registry
    /// empty. Concurrent increments land either in this dataset or the
    /// next one, never in both and never nowhere — the epoch-aggregation
    /// guarantee, per slot ([`AtomicSlotArray::take`]).
    pub fn drain(&self) -> Dataset {
        let slots = self.slots();
        slots
            .points()
            .iter()
            .enumerate()
            .map(|(s, p)| (*p, self.inner.counts.take(s as u32)))
            .filter(|(_, c)| *c > 0)
            .collect()
    }
}

impl std::fmt::Debug for ShardedCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCounters")
            .field("points", &self.len())
            .field("slots", &self.resolved_slots())
            .finish()
    }
}

/// A thread-local write-coalescing handle over a [`ShardedCounters`]:
/// resolves points to slots through the shared registry, buffers counts in
/// a private [`CoalescingWriter`], and flushes at capacity and on drop.
///
/// Not `Clone` and not shareable — each worker thread owns its writer, so
/// buffering needs no synchronization at all.
#[derive(Debug)]
pub struct CountersWriter {
    registry: ShardedCounters,
    writer: CoalescingWriter,
}

impl CountersWriter {
    /// Buffers one hit on `p`.
    #[inline]
    pub fn increment(&mut self, p: SourceObject) {
        self.add(p, 1);
    }

    /// Buffers `n` hits on `p`, flushing if the buffer is full.
    #[inline]
    pub fn add(&mut self, p: SourceObject, n: u64) {
        let slot = self.registry.resolve(p);
        self.writer.add(slot, n);
    }

    /// Pushes every buffered count to the shared registry.
    pub fn flush(&mut self) {
        self.writer.flush();
    }

    /// Distinct points currently buffered.
    pub fn pending_slots(&self) -> usize {
        self.writer.pending_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmp_profiler::ProfileInformation;

    fn p(n: u32) -> SourceObject {
        SourceObject::new("sc.scm", n, n + 1)
    }

    #[test]
    fn mirrors_counters_api() {
        let c = ShardedCounters::new();
        c.increment(p(0));
        c.increment(p(0));
        c.add(p(1), 3);
        assert_eq!(c.count(p(0)), 2);
        assert_eq!(c.count(p(1)), 3);
        assert_eq!(c.count(p(9)), 0);
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let c = ShardedCounters::new();
        let c2 = c.clone();
        c2.increment(p(7));
        assert_eq!(c.count(p(7)), 1);
    }

    #[test]
    fn slots_are_stable_across_clear_and_drain() {
        let c = ShardedCounters::new();
        let s0 = c.resolve(p(0));
        let s1 = c.resolve(p(1));
        assert_ne!(s0, s1);
        c.add_slot(s0, 2);
        c.clear();
        assert_eq!(c.resolve(p(0)), s0, "clear must not recycle slots");
        c.add_slot(s0, 5);
        let _ = c.drain();
        assert_eq!(c.resolve(p(1)), s1, "drain must not recycle slots");
        assert_eq!(c.resolved_slots(), 2);
        c.add_slot(s1, 1);
        assert_eq!(c.count(p(1)), 1);
    }

    #[test]
    fn slot_and_keyed_apis_agree() {
        let c = ShardedCounters::new();
        let s = c.resolve(p(3));
        c.add_slot(s, 4);
        c.increment(p(3));
        assert_eq!(c.count(p(3)), 5);
        assert_eq!(c.count_slot(s), 5);
        assert_eq!(c.slot(p(3)), Some(s));
        assert_eq!(c.slot(p(4)), None);
    }

    #[test]
    fn snapshot_feeds_existing_weight_pipeline() {
        let c = ShardedCounters::new();
        c.add(p(0), 5);
        c.add(p(1), 10);
        let w = ProfileInformation::from_dataset(&c.snapshot());
        assert_eq!(w.weight(p(0)), 0.5);
        assert_eq!(w.weight(p(1)), 1.0);
    }

    #[test]
    fn drain_is_destructive_and_complete() {
        let c = ShardedCounters::new();
        c.add(p(0), 4);
        let d = c.drain();
        assert_eq!(d.count(p(0)), 4);
        assert!(c.is_empty());
        assert!(c.drain().is_empty());
    }

    #[test]
    fn absorb_merges_a_dataset() {
        let c = ShardedCounters::new();
        let d: Dataset = [(p(0), 2), (p(1), 0), (p(2), 7)].into_iter().collect();
        c.absorb(&d);
        c.absorb(&d);
        assert_eq!(c.count(p(0)), 4);
        assert_eq!(c.count(p(2)), 14);
        // Zero-count entries are not materialized.
        assert_eq!(c.count(p(1)), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn writer_buffers_then_flushes_into_the_shared_registry() {
        let c = ShardedCounters::new();
        {
            let mut w = c.writer(8);
            w.increment(p(0));
            w.add(p(0), 2);
            w.increment(p(1));
            assert_eq!(c.count(p(0)), 0, "buffered hits are invisible");
            assert_eq!(w.pending_slots(), 2);
            w.flush();
            assert_eq!(c.count(p(0)), 3);
            w.increment(p(2));
            // drop flushes the rest
        }
        assert_eq!(c.count(p(2)), 1);
        let stats = c.flush_stats();
        assert_eq!(stats.flushes, 2);
        assert_eq!(stats.flushed_slots, 3);
        assert_eq!(stats.buffered_hits, 5);
    }
}
