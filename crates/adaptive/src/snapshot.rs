//! Epoch-snapshot persistence for the adaptive loop.
//!
//! [`AdaptiveEngine::save_snapshot`] captures the aggregation state an
//! online session has built up — the rolling profile's decayed counts and
//! epoch counter, plus the baseline weights the serving program was last
//! optimized under — so a restarted process resumes drift detection where
//! the old one stopped instead of from a cold profile. The format follows
//! the profile store's conventions (one s-expression, read back with the
//! system reader, atomic writes, typed errors):
//!
//! ```text
//! (pgmp-epoch
//!   (version 1)
//!   (decay 0.5)
//!   (epochs 12)
//!   (count "hot.scm" 3 9 812.5)
//!   (baseline (datasets 1) (point "hot.scm" 3 9 1.0)))
//! ```
//!
//! [`AdaptiveEngine::save_snapshot`]: crate::AdaptiveEngine::save_snapshot

use crate::rolling::RollingProfile;
use pgmp_observe as observe;
use pgmp_profiler::{write_atomic, ProfileInformation, ProfileStoreError};
use pgmp_reader::read_datums;
use pgmp_syntax::{Datum, SourceObject};
use std::fmt::Write as _;
use std::path::Path;

/// The persisted aggregation state of an adaptive session.
#[derive(Clone, Debug)]
pub struct EpochSnapshot {
    /// Decay factor the counts were accumulated under (diagnostic: a
    /// restoring engine keeps its own configured decay).
    pub decay: f64,
    /// Epochs absorbed before the snapshot.
    pub epochs: u64,
    /// Retained (decayed) counts, sorted by point.
    pub counts: Vec<(SourceObject, f64)>,
    /// Weights the serving program generation was optimized under.
    pub baseline: ProfileInformation,
}

fn malformed(msg: impl Into<String>) -> ProfileStoreError {
    ProfileStoreError::Malformed(msg.into())
}

impl EpochSnapshot {
    /// Captures a rolling profile plus its optimization baseline.
    pub fn capture(rolling: &RollingProfile, baseline: &ProfileInformation) -> EpochSnapshot {
        EpochSnapshot {
            decay: rolling.decay(),
            epochs: rolling.epochs(),
            counts: rolling.entries(),
            baseline: baseline.clone(),
        }
    }

    /// Serializes the snapshot.
    pub fn store_to_string(&self) -> String {
        let mut out = String::from("(pgmp-epoch\n  (version 1)\n");
        let _ = writeln!(out, "  (decay {})", Datum::Float(self.decay));
        let _ = writeln!(out, "  (epochs {})", self.epochs);
        for (p, c) in &self.counts {
            let _ = writeln!(
                out,
                "  (count {} {} {} {})",
                Datum::string(p.file.as_str()),
                p.bfp,
                p.efp,
                Datum::Float(*c)
            );
        }
        let mut points: Vec<(SourceObject, f64)> = self.baseline.iter().collect();
        points.sort_by_key(|e| e.0);
        let _ = write!(
            out,
            "  (baseline (datasets {})",
            self.baseline.dataset_count()
        );
        for (p, w) in points {
            let _ = write!(
                out,
                " (point {} {} {} {})",
                Datum::string(p.file.as_str()),
                p.bfp,
                p.efp,
                Datum::Float(w)
            );
        }
        out.push_str("))");
        out
    }

    /// Parses a snapshot.
    ///
    /// # Errors
    ///
    /// Typed [`ProfileStoreError`]s: `Malformed` for structural problems,
    /// `UnsupportedVersion` for a version other than 1. Never panics on
    /// hostile input.
    pub fn load_from_str(text: &str) -> Result<EpochSnapshot, ProfileStoreError> {
        let forms = read_datums(text, "<epoch>")
            .map_err(|e| malformed(format!("unreadable: {e}")))?;
        let [datum]: [Datum; 1] = forms
            .try_into()
            .map_err(|_| malformed("expected exactly one top-level form"))?;
        let elems = datum
            .list_elems()
            .ok_or_else(|| malformed("top-level form must be a list"))?;
        let [head, entries @ ..] = elems.as_slice() else {
            return Err(malformed("empty snapshot file"));
        };
        match head {
            Datum::Sym(s) if s.as_str() == "pgmp-epoch" => {}
            other => return Err(malformed(format!("unexpected header `{other}`"))),
        }
        let mut version: Option<i64> = None;
        let mut decay = 1.0f64;
        let mut epochs = 0u64;
        let mut counts: Vec<(SourceObject, f64)> = Vec::new();
        let mut baseline = ProfileInformation::empty();
        for e in entries {
            let elems = e
                .list_elems()
                .ok_or_else(|| malformed("snapshot entry must be a list"))?;
            let [Datum::Sym(tag), args @ ..] = elems.as_slice() else {
                return Err(malformed(format!("snapshot entry missing tag: {e}")));
            };
            match (tag.as_str(), args) {
                ("version", [Datum::Int(v)]) => {
                    if version.replace(*v).is_some() {
                        return Err(malformed("duplicate version entry"));
                    }
                }
                ("decay", [d]) => {
                    decay = num(d).ok_or_else(|| malformed(format!("bad decay {d}")))?;
                    if !(0.0..=1.0).contains(&decay) {
                        return Err(malformed(format!("decay {decay} outside [0,1]")));
                    }
                }
                ("epochs", [Datum::Int(n)]) if *n >= 0 => epochs = *n as u64,
                ("count", [Datum::Str(file), Datum::Int(bfp), Datum::Int(efp), c])
                    if *bfp >= 0 && *efp >= 0 =>
                {
                    let c = num(c).ok_or_else(|| malformed(format!("bad count {c}")))?;
                    if !c.is_finite() || c < 0.0 {
                        return Err(malformed(format!("count {c} must be finite and >= 0")));
                    }
                    counts.push((SourceObject::new(file, *bfp as u32, *efp as u32), c));
                }
                ("baseline", body) => baseline = baseline_from(body)?,
                (other, _) => {
                    return Err(malformed(format!("unknown snapshot entry `{other}`")));
                }
            }
        }
        match version {
            Some(1) => {}
            Some(v) => return Err(ProfileStoreError::UnsupportedVersion(v)),
            None => return Err(malformed("missing version entry")),
        }
        Ok(EpochSnapshot {
            decay,
            epochs,
            counts,
            baseline,
        })
    }

    /// Writes the snapshot to `path` atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// [`ProfileStoreError::Io`] on I/O failure.
    pub fn store_file(&self, path: impl AsRef<Path>) -> Result<(), ProfileStoreError> {
        let text = self.store_to_string();
        let t = observe::timer();
        write_atomic(path.as_ref(), &text)?;
        observe::finish(t, |duration_us| observe::EventKind::StoreWrite {
            path: path.as_ref().display().to_string(),
            kind: "snapshot".to_string(),
            bytes: text.len() as u64,
            duration_us,
        });
        Ok(())
    }

    /// Reads a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// As [`EpochSnapshot::load_from_str`], plus I/O errors.
    pub fn load_file(path: impl AsRef<Path>) -> Result<EpochSnapshot, ProfileStoreError> {
        let t = observe::timer();
        let text = std::fs::read_to_string(path.as_ref())?;
        let snap = EpochSnapshot::load_from_str(&text)?;
        observe::finish(t, |duration_us| observe::EventKind::StoreRead {
            path: path.as_ref().display().to_string(),
            kind: "snapshot".to_string(),
            bytes: text.len() as u64,
            duration_us,
        });
        Ok(snap)
    }
}

fn num(d: &Datum) -> Option<f64> {
    match d {
        Datum::Float(x) => Some(*x),
        Datum::Int(n) => Some(*n as f64),
        _ => None,
    }
}

fn baseline_from(entries: &[Datum]) -> Result<ProfileInformation, ProfileStoreError> {
    let mut dataset_count = 1usize;
    let mut weights = Vec::new();
    for e in entries {
        let elems = e
            .list_elems()
            .ok_or_else(|| malformed("baseline entry must be a list"))?;
        match elems.as_slice() {
            [Datum::Sym(tag), Datum::Int(n)] if tag.as_str() == "datasets" && *n >= 0 => {
                dataset_count = *n as usize;
            }
            [Datum::Sym(tag), Datum::Str(file), Datum::Int(bfp), Datum::Int(efp), w]
                if tag.as_str() == "point" && *bfp >= 0 && *efp >= 0 =>
            {
                let w = num(w).ok_or_else(|| malformed(format!("bad weight {w}")))?;
                if !(0.0..=1.0).contains(&w) {
                    return Err(malformed(format!("weight {w} outside [0,1]")));
                }
                weights.push((SourceObject::new(file, *bfp as u32, *efp as u32), w));
            }
            _ => return Err(malformed(format!("unknown baseline entry {e}"))),
        }
    }
    Ok(ProfileInformation::from_weights(weights, dataset_count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmp_profiler::Dataset;

    fn p(n: u32) -> SourceObject {
        SourceObject::new("snap.scm", n, n + 1)
    }

    fn sample() -> EpochSnapshot {
        let mut r = RollingProfile::new(0.5);
        r.absorb(&[(p(0), 100), (p(1), 40)].into_iter().collect::<Dataset>());
        r.absorb(&[(p(1), 100)].into_iter().collect::<Dataset>());
        let baseline = ProfileInformation::from_weights([(p(1), 1.0), (p(0), 0.5)], 1);
        EpochSnapshot::capture(&r, &baseline)
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample();
        let back = EpochSnapshot::load_from_str(&snap.store_to_string()).unwrap();
        assert_eq!(back.decay, snap.decay);
        assert_eq!(back.epochs, snap.epochs);
        assert_eq!(back.counts, snap.counts);
        assert_eq!(back.baseline, snap.baseline);
    }

    #[test]
    fn restored_rolling_profile_resumes_decay() {
        let snap = sample();
        let text = snap.store_to_string();
        let back = EpochSnapshot::load_from_str(&text).unwrap();
        let mut restored = RollingProfile::from_parts(back.decay, back.epochs, back.counts);
        let mut original = RollingProfile::from_parts(snap.decay, snap.epochs, snap.counts);
        let epoch: Dataset = [(p(0), 7)].into_iter().collect();
        restored.absorb(&epoch);
        original.absorb(&epoch);
        assert_eq!(restored.entries(), original.entries());
    }

    #[test]
    fn corrupt_snapshots_error_without_panic() {
        let good = sample().store_to_string();
        let corpus: Vec<String> = vec![
            String::new(),
            "(".to_owned(),
            "(not-an-epoch)".to_owned(),
            "(pgmp-epoch)".to_owned(),
            "(pgmp-epoch (version 7))".to_owned(),
            "(pgmp-epoch (version 1) (decay 1.5))".to_owned(),
            "(pgmp-epoch (version 1) (count \"x\" -1 0 1.0))".to_owned(),
            "(pgmp-epoch (version 1) (count \"x\" 0 1 bogus))".to_owned(),
            "(pgmp-epoch (version 1) (baseline (point \"x\" 0 1 2.0)))".to_owned(),
            good[..good.len() - 5].to_owned(),
            good.replace("count", "cnuot"),
        ];
        for (i, bad) in corpus.iter().enumerate() {
            let r = EpochSnapshot::load_from_str(bad);
            assert!(r.is_err(), "case {i} must fail: {bad:?}");
        }
        assert!(matches!(
            EpochSnapshot::load_from_str("(pgmp-epoch (version 7))"),
            Err(ProfileStoreError::UnsupportedVersion(7))
        ));
    }

    #[test]
    fn atomic_store_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("pgmp-epoch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epoch.pgmp");
        let snap = sample();
        snap.store_file(&path).unwrap();
        let back = EpochSnapshot::load_file(&path).unwrap();
        assert_eq!(back.counts, snap.counts);
        // No temp-file droppings.
        let stray = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains(".tmp.")
            })
            .count();
        assert_eq!(stray, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
