//! Profile drift: how far current behavior has moved from the behavior the
//! code was last optimized under.

use pgmp_profiler::ProfileInformation;
use pgmp_syntax::SourceObject;
use std::collections::HashSet;

/// Distance measure between two weight vectors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DriftMetric {
    /// Plain L1 distance over the union of profile points:
    /// `Σ |w_a(p) − w_b(p)|`. Unbounded above (grows with the number of
    /// points that moved), which makes it useful for absolute "how much
    /// churn" telemetry.
    L1,
    /// Total-variation distance: each weight vector is normalized to a
    /// probability distribution over its points, and the result is
    /// `½ Σ |P_a(p) − P_b(p)| ∈ [0, 1]`. Scale-free, so one threshold
    /// works across programs of very different sizes; `1.0` means the two
    /// profiles share no mass (e.g. one side is empty and the other is
    /// not).
    #[default]
    TotalVariation,
}

fn union_points(a: &ProfileInformation, b: &ProfileInformation) -> HashSet<SourceObject> {
    a.iter().map(|(p, _)| p).chain(b.iter().map(|(p, _)| p)).collect()
}

/// Distance from `a` to `b` under `metric`. Symmetric; 0.0 when both are
/// empty.
pub fn drift(a: &ProfileInformation, b: &ProfileInformation, metric: DriftMetric) -> f64 {
    match metric {
        DriftMetric::L1 => union_points(a, b)
            .into_iter()
            .map(|p| (a.weight(p) - b.weight(p)).abs())
            .sum(),
        DriftMetric::TotalVariation => {
            let mass = |w: &ProfileInformation| w.iter().map(|(_, x)| x).sum::<f64>();
            let (ma, mb) = (mass(a), mass(b));
            match (ma > 0.0, mb > 0.0) {
                (false, false) => 0.0,
                (true, false) | (false, true) => 1.0,
                (true, true) => {
                    0.5 * union_points(a, b)
                        .into_iter()
                        .map(|p| (a.weight(p) / ma - b.weight(p) / mb).abs())
                        .sum::<f64>()
                }
            }
        }
    }
}

/// What one drift observation concluded.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftReading {
    /// The measured distance.
    pub value: f64,
    /// Whether it crossed the detector's threshold.
    pub fired: bool,
}

/// Compares live weights against the weights the running code was last
/// optimized under, and fires when the distance crosses a threshold.
///
/// # Example
///
/// ```
/// use pgmp_adaptive::{DriftDetector, DriftMetric};
/// use pgmp_profiler::{Dataset, ProfileInformation};
/// use pgmp_syntax::SourceObject;
///
/// let p = SourceObject::new("d.scm", 0, 1);
/// let q = SourceObject::new("d.scm", 2, 3);
/// let hot_p = ProfileInformation::from_dataset(&[(p, 90), (q, 10)].into_iter().collect::<Dataset>());
/// let hot_q = ProfileInformation::from_dataset(&[(p, 10), (q, 90)].into_iter().collect::<Dataset>());
///
/// let mut detector = DriftDetector::new(DriftMetric::TotalVariation, 0.2);
/// detector.rebase(hot_p.clone());
/// assert!(!detector.observe(&hot_p).fired);
/// assert!(detector.observe(&hot_q).fired);
/// ```
#[derive(Clone, Debug)]
pub struct DriftDetector {
    metric: DriftMetric,
    threshold: f64,
    baseline: ProfileInformation,
}

impl DriftDetector {
    /// A detector with an empty baseline (any nonempty profile reads as
    /// full drift under [`DriftMetric::TotalVariation`]).
    pub fn new(metric: DriftMetric, threshold: f64) -> DriftDetector {
        assert!(threshold >= 0.0, "threshold must be nonnegative");
        DriftDetector {
            metric,
            threshold,
            baseline: ProfileInformation::empty(),
        }
    }

    /// The metric in use.
    pub fn metric(&self) -> DriftMetric {
        self.metric
    }

    /// The firing threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The weights the code was last optimized under.
    pub fn baseline(&self) -> &ProfileInformation {
        &self.baseline
    }

    /// Measures drift of `current` from the baseline.
    pub fn observe(&self, current: &ProfileInformation) -> DriftReading {
        let value = drift(current, &self.baseline, self.metric);
        DriftReading {
            value,
            fired: value > self.threshold,
        }
    }

    /// Replaces the baseline — called right after re-optimizing, with the
    /// weights the new code was compiled under.
    pub fn rebase(&mut self, new_baseline: ProfileInformation) {
        self.baseline = new_baseline;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmp_profiler::Dataset;

    fn p(n: u32) -> SourceObject {
        SourceObject::new("drift.scm", n, n + 1)
    }

    fn info(entries: &[(u32, u64)]) -> ProfileInformation {
        ProfileInformation::from_dataset(&entries.iter().map(|(i, c)| (p(*i), *c)).collect::<Dataset>())
    }

    #[test]
    fn identical_profiles_have_zero_drift() {
        let w = info(&[(0, 5), (1, 10)]);
        assert_eq!(drift(&w, &w, DriftMetric::L1), 0.0);
        assert_eq!(drift(&w, &w, DriftMetric::TotalVariation), 0.0);
    }

    #[test]
    fn both_empty_is_zero_one_empty_is_full() {
        let empty = ProfileInformation::empty();
        let w = info(&[(0, 5)]);
        assert_eq!(drift(&empty, &empty, DriftMetric::TotalVariation), 0.0);
        assert_eq!(drift(&w, &empty, DriftMetric::TotalVariation), 1.0);
        assert_eq!(drift(&empty, &w, DriftMetric::TotalVariation), 1.0);
    }

    #[test]
    fn metrics_are_symmetric() {
        let a = info(&[(0, 10), (1, 3)]);
        let b = info(&[(1, 10), (2, 4)]);
        for m in [DriftMetric::L1, DriftMetric::TotalVariation] {
            assert!((drift(&a, &b, m) - drift(&b, &a, m)).abs() < 1e-12);
        }
    }

    #[test]
    fn tv_is_bounded_and_scale_free() {
        let a = info(&[(0, 100), (1, 1)]);
        let b = info(&[(0, 1_000_000), (1, 10_000)]);
        let d = drift(&a, &b, DriftMetric::TotalVariation);
        assert!((0.0..=1.0).contains(&d));
        // Same shape at different scales: tiny distance.
        assert!(d < 1e-9, "scale alone should not register as drift: {d}");
    }

    #[test]
    fn disjoint_profiles_are_maximally_distant_under_tv() {
        let a = info(&[(0, 10)]);
        let b = info(&[(1, 10)]);
        let d = drift(&a, &b, DriftMetric::TotalVariation);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn l1_counts_absolute_weight_movement() {
        let a = info(&[(0, 10), (1, 5)]); // weights 1.0, 0.5
        let b = info(&[(0, 10), (1, 10)]); // weights 1.0, 1.0
        assert!((drift(&a, &b, DriftMetric::L1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn detector_fires_only_past_threshold() {
        let mut det = DriftDetector::new(DriftMetric::TotalVariation, 0.3);
        det.rebase(info(&[(0, 90), (1, 10)]));
        let mild = info(&[(0, 80), (1, 20)]);
        let wild = info(&[(0, 10), (1, 90)]);
        assert!(!det.observe(&mild).fired);
        let reading = det.observe(&wild);
        assert!(reading.fired);
        assert!(reading.value > 0.3);
        // Rebasing onto the new behavior silences the detector.
        det.rebase(wild.clone());
        assert!(!det.observe(&wild).fired);
    }
}
