//! Profile drift: how far current behavior has moved from the behavior the
//! code was last optimized under.

use pgmp_profiler::ProfileInformation;
use pgmp_syntax::SourceObject;
use std::collections::HashSet;

/// Distance measure between two weight vectors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DriftMetric {
    /// Plain L1 distance over the union of profile points:
    /// `Σ |w_a(p) − w_b(p)|`. Unbounded above (grows with the number of
    /// points that moved), which makes it useful for absolute "how much
    /// churn" telemetry.
    L1,
    /// Total-variation distance: each weight vector is normalized to a
    /// probability distribution over its points, and the result is
    /// `½ Σ |P_a(p) − P_b(p)| ∈ [0, 1]`. Scale-free, so one threshold
    /// works across programs of very different sizes; `1.0` means the two
    /// profiles share no mass (e.g. one side is empty and the other is
    /// not).
    #[default]
    TotalVariation,
}

fn union_points(a: &ProfileInformation, b: &ProfileInformation) -> HashSet<SourceObject> {
    a.iter().map(|(p, _)| p).chain(b.iter().map(|(p, _)| p)).collect()
}

/// Distance from `a` to `b` under `metric`. Symmetric; 0.0 when both are
/// empty.
pub fn drift(a: &ProfileInformation, b: &ProfileInformation, metric: DriftMetric) -> f64 {
    match metric {
        DriftMetric::L1 => union_points(a, b)
            .into_iter()
            .map(|p| (a.weight(p) - b.weight(p)).abs())
            .sum(),
        DriftMetric::TotalVariation => {
            let mass = |w: &ProfileInformation| w.iter().map(|(_, x)| x).sum::<f64>();
            let (ma, mb) = (mass(a), mass(b));
            match (ma > 0.0, mb > 0.0) {
                (false, false) => 0.0,
                (true, false) | (false, true) => 1.0,
                (true, true) => {
                    0.5 * union_points(a, b)
                        .into_iter()
                        .map(|p| (a.weight(p) / ma - b.weight(p) / mb).abs())
                        .sum::<f64>()
                }
            }
        }
    }
}

/// What one drift observation concluded.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftReading {
    /// The measured distance.
    pub value: f64,
    /// Whether it crossed the detector's threshold.
    pub fired: bool,
}

/// Compares live weights against the weights the running code was last
/// optimized under, and fires when the distance crosses a threshold.
///
/// # Example
///
/// ```
/// use pgmp_adaptive::{DriftDetector, DriftMetric};
/// use pgmp_profiler::{Dataset, ProfileInformation};
/// use pgmp_syntax::SourceObject;
///
/// let p = SourceObject::new("d.scm", 0, 1);
/// let q = SourceObject::new("d.scm", 2, 3);
/// let hot_p = ProfileInformation::from_dataset(&[(p, 90), (q, 10)].into_iter().collect::<Dataset>());
/// let hot_q = ProfileInformation::from_dataset(&[(p, 10), (q, 90)].into_iter().collect::<Dataset>());
///
/// let mut detector = DriftDetector::new(DriftMetric::TotalVariation, 0.2);
/// detector.rebase(hot_p.clone());
/// assert!(!detector.observe(&hot_p).fired);
/// assert!(detector.observe(&hot_q).fired);
/// ```
#[derive(Clone, Debug)]
pub struct DriftDetector {
    metric: DriftMetric,
    threshold: f64,
    baseline: ProfileInformation,
}

impl DriftDetector {
    /// A detector with an empty baseline (any nonempty profile reads as
    /// full drift under [`DriftMetric::TotalVariation`]).
    pub fn new(metric: DriftMetric, threshold: f64) -> DriftDetector {
        assert!(threshold >= 0.0, "threshold must be nonnegative");
        DriftDetector {
            metric,
            threshold,
            baseline: ProfileInformation::empty(),
        }
    }

    /// The metric in use.
    pub fn metric(&self) -> DriftMetric {
        self.metric
    }

    /// The firing threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The weights the code was last optimized under.
    pub fn baseline(&self) -> &ProfileInformation {
        &self.baseline
    }

    /// Measures drift of `current` from the baseline.
    pub fn observe(&self, current: &ProfileInformation) -> DriftReading {
        let value = drift(current, &self.baseline, self.metric);
        DriftReading {
            value,
            fired: value > self.threshold,
        }
    }

    /// Replaces the baseline — called right after re-optimizing, with the
    /// weights the new code was compiled under.
    pub fn rebase(&mut self, new_baseline: ProfileInformation) {
        self.baseline = new_baseline;
    }
}

/// A [`DriftDetector`] with flap damping: it fires only after the raw
/// threshold has been exceeded for `consecutive` epochs in a row, and then
/// not again until `cooldown` further observations have passed.
///
/// A workload hovering *at* the threshold makes the raw detector fire on
/// every noise spike, and each firing is a full re-optimization plus a
/// program swap. Hysteresis demands sustained drift; the cooldown bounds
/// the re-optimization rate even when drift genuinely persists.
///
/// # Example
///
/// ```
/// use pgmp_adaptive::{DriftMetric, HysteresisDetector};
/// use pgmp_profiler::{Dataset, ProfileInformation};
/// use pgmp_syntax::SourceObject;
///
/// let p = SourceObject::new("h.scm", 0, 1);
/// let q = SourceObject::new("h.scm", 2, 3);
/// let hot_q = ProfileInformation::from_dataset(&[(p, 10), (q, 90)].into_iter().collect::<Dataset>());
///
/// // Require two consecutive over-threshold epochs.
/// let mut det = HysteresisDetector::new(DriftMetric::TotalVariation, 0.2, 2, 0);
/// assert!(!det.observe(&hot_q).fired, "first spike: armed, not fired");
/// assert!(det.observe(&hot_q).fired, "sustained drift fires");
/// ```
#[derive(Clone, Debug)]
pub struct HysteresisDetector {
    inner: DriftDetector,
    consecutive: u32,
    cooldown: u64,
    streak: u32,
    cooldown_left: u64,
}

impl HysteresisDetector {
    /// A damped detector: `consecutive` over-threshold epochs arm it
    /// (values ≤ 1 behave like the raw detector), `cooldown` observations
    /// are skipped after each firing (0 disables the cooldown).
    pub fn new(
        metric: DriftMetric,
        threshold: f64,
        consecutive: u32,
        cooldown: u64,
    ) -> HysteresisDetector {
        HysteresisDetector {
            inner: DriftDetector::new(metric, threshold),
            consecutive: consecutive.max(1),
            cooldown,
            streak: 0,
            cooldown_left: 0,
        }
    }

    /// The weights the code was last optimized under.
    pub fn baseline(&self) -> &ProfileInformation {
        self.inner.baseline()
    }

    /// Measures drift of `current` from the baseline; `fired` is set only
    /// when the raw threshold has been exceeded for the configured number
    /// of consecutive observations and no cooldown is pending.
    pub fn observe(&mut self, current: &ProfileInformation) -> DriftReading {
        let raw = self.inner.observe(current);
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return DriftReading {
                value: raw.value,
                fired: false,
            };
        }
        if raw.fired {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
        DriftReading {
            value: raw.value,
            fired: self.streak >= self.consecutive,
        }
    }

    /// Replaces the baseline after re-optimizing and starts the cooldown
    /// window.
    pub fn rebase(&mut self, new_baseline: ProfileInformation) {
        self.inner.rebase(new_baseline);
        self.streak = 0;
        self.cooldown_left = self.cooldown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmp_profiler::Dataset;

    fn p(n: u32) -> SourceObject {
        SourceObject::new("drift.scm", n, n + 1)
    }

    fn info(entries: &[(u32, u64)]) -> ProfileInformation {
        ProfileInformation::from_dataset(&entries.iter().map(|(i, c)| (p(*i), *c)).collect::<Dataset>())
    }

    #[test]
    fn identical_profiles_have_zero_drift() {
        let w = info(&[(0, 5), (1, 10)]);
        assert_eq!(drift(&w, &w, DriftMetric::L1), 0.0);
        assert_eq!(drift(&w, &w, DriftMetric::TotalVariation), 0.0);
    }

    #[test]
    fn both_empty_is_zero_one_empty_is_full() {
        let empty = ProfileInformation::empty();
        let w = info(&[(0, 5)]);
        assert_eq!(drift(&empty, &empty, DriftMetric::TotalVariation), 0.0);
        assert_eq!(drift(&w, &empty, DriftMetric::TotalVariation), 1.0);
        assert_eq!(drift(&empty, &w, DriftMetric::TotalVariation), 1.0);
    }

    #[test]
    fn metrics_are_symmetric() {
        let a = info(&[(0, 10), (1, 3)]);
        let b = info(&[(1, 10), (2, 4)]);
        for m in [DriftMetric::L1, DriftMetric::TotalVariation] {
            assert!((drift(&a, &b, m) - drift(&b, &a, m)).abs() < 1e-12);
        }
    }

    #[test]
    fn tv_is_bounded_and_scale_free() {
        let a = info(&[(0, 100), (1, 1)]);
        let b = info(&[(0, 1_000_000), (1, 10_000)]);
        let d = drift(&a, &b, DriftMetric::TotalVariation);
        assert!((0.0..=1.0).contains(&d));
        // Same shape at different scales: tiny distance.
        assert!(d < 1e-9, "scale alone should not register as drift: {d}");
    }

    #[test]
    fn disjoint_profiles_are_maximally_distant_under_tv() {
        let a = info(&[(0, 10)]);
        let b = info(&[(1, 10)]);
        let d = drift(&a, &b, DriftMetric::TotalVariation);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn l1_counts_absolute_weight_movement() {
        let a = info(&[(0, 10), (1, 5)]); // weights 1.0, 0.5
        let b = info(&[(0, 10), (1, 10)]); // weights 1.0, 1.0
        assert!((drift(&a, &b, DriftMetric::L1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn borderline_workload_no_longer_flaps() {
        // A workload oscillating around the threshold: one noisy epoch
        // over, then back under, repeatedly. The raw detector fires on
        // every spike; with hysteresis of 2 it never does.
        let baseline = info(&[(0, 90), (1, 10)]);
        let spike = info(&[(0, 55), (1, 45)]); // TV ≈ 0.35, over 0.3
        let calm = info(&[(0, 85), (1, 15)]); // TV ≈ 0.05, under 0.3

        let raw = DriftDetector::new(DriftMetric::TotalVariation, 0.3);
        let mut damped = HysteresisDetector::new(DriftMetric::TotalVariation, 0.3, 2, 0);
        let mut raw2 = raw.clone();
        raw2.rebase(baseline.clone());
        damped.rebase(baseline.clone());

        let mut raw_firings = 0;
        let mut damped_firings = 0;
        for _ in 0..5 {
            if raw2.observe(&spike).fired {
                raw_firings += 1;
            }
            raw2.observe(&calm);
            if damped.observe(&spike).fired {
                damped_firings += 1;
            }
            damped.observe(&calm);
        }
        assert_eq!(raw_firings, 5, "raw detector flaps on every spike");
        assert_eq!(damped_firings, 0, "hysteresis rides out isolated spikes");
    }

    #[test]
    fn sustained_drift_still_fires_through_hysteresis() {
        let mut det = HysteresisDetector::new(DriftMetric::TotalVariation, 0.3, 3, 0);
        det.rebase(info(&[(0, 90), (1, 10)]));
        let shifted = info(&[(0, 10), (1, 90)]);
        assert!(!det.observe(&shifted).fired);
        assert!(!det.observe(&shifted).fired);
        let reading = det.observe(&shifted);
        assert!(reading.fired, "third consecutive epoch fires");
        assert!(reading.value > 0.3);
    }

    #[test]
    fn cooldown_suppresses_immediate_refire() {
        let mut det = HysteresisDetector::new(DriftMetric::TotalVariation, 0.3, 1, 2);
        let baseline = info(&[(0, 90), (1, 10)]);
        det.rebase(baseline.clone());
        // rebase arms the cooldown (it models a fresh deploy): ride it out
        // with steady traffic first.
        assert!(!det.observe(&baseline).fired);
        assert!(!det.observe(&baseline).fired);
        let shifted = info(&[(0, 10), (1, 90)]);
        assert!(det.observe(&shifted).fired);
        // Re-optimized: rebase onto the new behavior, cooldown starts.
        det.rebase(shifted.clone());
        // Behavior shifts again immediately — but we just swapped code.
        let back = info(&[(0, 90), (1, 10)]);
        assert!(!det.observe(&back).fired, "within cooldown");
        assert!(!det.observe(&back).fired, "within cooldown");
        assert!(det.observe(&back).fired, "cooldown expired, drift persists");
    }

    #[test]
    fn hysteresis_of_one_matches_raw_detector() {
        let baseline = info(&[(0, 90), (1, 10)]);
        let wild = info(&[(0, 10), (1, 90)]);
        let mut raw = DriftDetector::new(DriftMetric::TotalVariation, 0.3);
        raw.rebase(baseline.clone());
        let mut damped = HysteresisDetector::new(DriftMetric::TotalVariation, 0.3, 1, 0);
        damped.rebase(baseline);
        assert_eq!(raw.observe(&wild).fired, damped.observe(&wild).fired);
        assert_eq!(
            raw.observe(&wild).value,
            damped.observe(&wild).value
        );
    }

    #[test]
    fn detector_fires_only_past_threshold() {
        let mut det = DriftDetector::new(DriftMetric::TotalVariation, 0.3);
        det.rebase(info(&[(0, 90), (1, 10)]));
        let mild = info(&[(0, 80), (1, 20)]);
        let wild = info(&[(0, 10), (1, 90)]);
        assert!(!det.observe(&mild).fired);
        let reading = det.observe(&wild);
        assert!(reading.fired);
        assert!(reading.value > 0.3);
        // Rebasing onto the new behavior silences the detector.
        det.rebase(wild.clone());
        assert!(!det.observe(&wild).fired);
    }
}
