//! Concurrency guarantees of [`ShardedCounters`]: merging per-shard
//! snapshots is order-independent, and concurrent increments are never
//! lost.

use pgmp_adaptive::ShardedCounters;
use pgmp_profiler::Dataset;
use pgmp_rt::ShardedRegistry;
use pgmp_syntax::SourceObject;
use proptest::prelude::*;
use std::collections::HashMap;

fn point(n: u32) -> SourceObject {
    SourceObject::new("conc.scm", n, n + 1)
}

proptest! {
    /// Splitting a stream of (point, count) events across any number of
    /// worker "shards", absorbing each shard in any order, equals the
    /// single-threaded total — merge is commutative and associative.
    #[test]
    fn shard_merge_is_order_independent(
        events in proptest::collection::vec((0u32..16, 1u64..1000), 0..64),
        shards in 1usize..8,
        rotate in 0usize..8,
    ) {
        // Single-threaded reference: fold every event into one map.
        let mut reference: HashMap<u32, u64> = HashMap::new();
        for (p, c) in &events {
            *reference.entry(*p).or_insert(0) += c;
        }

        // Partition events round-robin into per-shard datasets (a dataset
        // holds one count per point, so pre-sum within each shard).
        let mut parts: Vec<HashMap<u32, u64>> = vec![HashMap::new(); shards];
        for (i, (p, c)) in events.iter().enumerate() {
            *parts[i % shards].entry(*p).or_insert(0) += c;
        }
        let mut datasets: Vec<Dataset> = parts
            .into_iter()
            .map(|part| part.into_iter().map(|(p, c)| (point(p), c)).collect())
            .collect();
        // Absorb the per-shard datasets in a permuted order.
        datasets.rotate_left(rotate % shards);

        let counters = ShardedCounters::with_shards(4);
        for d in &datasets {
            counters.absorb(d);
        }

        let merged = counters.snapshot();
        for (p, expected) in &reference {
            prop_assert_eq!(merged.count(point(*p)), *expected, "point {}", p);
        }
        let merged_points = merged.iter().filter(|(_, c)| *c > 0).count();
        prop_assert_eq!(merged_points, reference.len());
    }

    /// snapshot() and drain() agree with each other: drain returns exactly
    /// what snapshot saw, then the registry is empty.
    #[test]
    fn drain_equals_snapshot_then_empty(
        events in proptest::collection::vec((0u32..8, 1u64..100), 0..32),
    ) {
        let counters = ShardedCounters::new();
        for (p, c) in &events {
            counters.add(point(*p), *c);
        }
        let before = counters.snapshot();
        let drained = counters.drain();
        for (p, c) in before.iter() {
            prop_assert_eq!(drained.count(p), c);
        }
        prop_assert!(counters.is_empty());
        prop_assert!(counters.snapshot().iter().next().is_none());
    }
}

/// Hammer one registry from many threads; every increment must land
/// exactly once (no lost updates under contention).
#[test]
fn concurrent_increments_are_never_lost() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    const POINTS: u32 = 13; // odd, so threads collide on shards

    let counters = ShardedCounters::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let c = counters.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    c.increment(point(((t as u64 + i) % POINTS as u64) as u32));
                }
            });
        }
    });

    let total: u64 = counters.snapshot().iter().map(|(_, c)| c).sum();
    assert_eq!(total, THREADS as u64 * PER_THREAD, "lost updates");
}

/// Drains running concurrently with increments neither lose nor duplicate
/// counts: the sum of everything drained plus the residue equals the
/// number of increments issued.
#[test]
fn concurrent_drain_partitions_every_hit() {
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 10_000;

    let counters = ShardedCounters::new();
    let mut drained_total = 0u64;
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let c = counters.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.increment(point((i % 7) as u32 + t as u32 * 10));
                    }
                })
            })
            .collect();
        // Aggregator: drain repeatedly while workers are still hammering.
        while !workers.iter().all(|w| w.is_finished()) {
            drained_total += counters.drain().iter().map(|(_, c)| c).sum::<u64>();
        }
    });
    let residue: u64 = counters.drain().iter().map(|(_, c)| c).sum();
    assert_eq!(
        drained_total + residue,
        THREADS as u64 * PER_THREAD,
        "epoch drains lost or duplicated hits"
    );
}

/// Concurrent equivalence oracle: the dense slot-indexed registry and the
/// lock-striped hash registry it replaced agree on every per-point count
/// after identical concurrent workloads.
#[test]
fn dense_registry_agrees_with_lock_striped_oracle() {
    const THREADS: u64 = 6;
    const PER_THREAD: u64 = 5_000;
    const POINTS: u64 = 11;

    let dense = ShardedCounters::new();
    let oracle: ShardedRegistry<SourceObject> = ShardedRegistry::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let dense = dense.clone();
            let oracle = &oracle;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let p = point(((t * 3 + i) % POINTS) as u32);
                    let n = 1 + (t + i) % 4;
                    dense.add(p, n);
                    oracle.add(&p, n);
                }
            });
        }
    });
    for raw in 0..POINTS {
        let p = point(raw as u32);
        assert_eq!(dense.count(p), oracle.count(&p), "point {raw}");
    }
    let dense_total: u64 = dense.snapshot().iter().map(|(_, c)| c).sum();
    let oracle_total: u64 = oracle.snapshot().iter().map(|(_, c)| c).sum();
    assert_eq!(dense_total, oracle_total);
}

/// Per-thread coalescing writers lose nothing: once every writer has
/// flushed (here: dropped), the registry holds exactly the hits issued,
/// and the flush statistics account for all of them.
#[test]
fn coalescing_writers_preserve_every_hit() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 10_000;
    const POINTS: u64 = 9;

    let counters = ShardedCounters::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let c = counters.clone();
            s.spawn(move || {
                // Capacity above the point count, so every point's hits
                // coalesce locally and only flush at capacity/drop.
                let mut w = c.writer(16);
                for i in 0..PER_THREAD {
                    w.increment(point(((t + i) % POINTS) as u32));
                }
                // drop flushes the tail
            });
        }
    });
    let total: u64 = counters.snapshot().iter().map(|(_, c)| c).sum();
    assert_eq!(total, THREADS * PER_THREAD, "coalescing lost hits");
    let stats = counters.flush_stats();
    assert_eq!(stats.buffered_hits, THREADS * PER_THREAD);
    assert!(stats.flushes > 0);
    assert!(
        stats.flushed_slots < stats.buffered_hits,
        "coalescing should collapse many hits per flushed slot"
    );
}
