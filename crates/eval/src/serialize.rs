//! Core-tree serialization for the persistent incremental cache.
//!
//! A cached form's expansion must be rehydrated **with its source objects
//! intact** — the printed source-to-source expansion loses them, and a core
//! tree whose profile points drifted would be silently mis-profiled. So
//! cache persistence serializes [`Core`] trees to s-expressions carrying
//! every node's [`SourceObject`] verbatim, and reads them back with the
//! system's own reader.
//!
//! Each node is `(tag <src> …)` where `<src>` is `#f` or
//! `(<file> bfp efp)`, with `<file>` either a verbatim string or — under
//! [`core_to_datum_with`] — an integer index into a shared
//! [`StringTable`]. Trees containing [`CoreKind::SyntaxConst`] nodes are
//! **not serializable** — a residual syntax object carries hygiene state
//! with no stable textual form — and [`core_to_datum`] returns `None` for
//! them; callers skip persisting such forms (they simply re-expand on warm
//! start, which is sound, just slower).

use crate::core_expr::{Core, CoreKind, LambdaDef};
use pgmp_syntax::{Datum, SourceObject, Symbol};
use std::collections::HashMap;
use std::rc::Rc;

/// Interns the file names and global symbols of one session's core trees.
///
/// Source objects annotate nearly every core node, and their file-name
/// component is drawn from a handful of distinct strings; likewise global
/// references repeat the same few names. Serializing each occurrence
/// verbatim bloats session files and — worse — costs a string allocation
/// plus a symbol-intern per node on the warm-start parse. A session-wide
/// string table ([`core_to_datum_with`] / [`core_from_datum_with`]) writes
/// each distinct string once and each occurrence as an integer index.
#[derive(Debug, Default)]
pub struct StringTable {
    syms: Vec<Symbol>,
    index: HashMap<Symbol, usize>,
}

impl StringTable {
    /// Creates an empty table.
    pub fn new() -> StringTable {
        StringTable::default()
    }

    /// Returns `s`'s index, assigning the next free one on first sight.
    pub fn intern(&mut self, s: Symbol) -> usize {
        if let Some(&i) = self.index.get(&s) {
            return i;
        }
        let i = self.syms.len();
        self.syms.push(s);
        self.index.insert(s, i);
        i
    }

    /// The interned symbols, in index order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.syms
    }

    /// True iff nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }
}

/// Encoding policy for symbols embedded in serialized core nodes.
trait SymSink {
    fn sym(&mut self, s: Symbol) -> Datum;
}

/// Self-contained encoding: every occurrence carries the full string.
struct Verbatim;

impl SymSink for Verbatim {
    fn sym(&mut self, s: Symbol) -> Datum {
        Datum::string(s.as_str())
    }
}

impl SymSink for StringTable {
    fn sym(&mut self, s: Symbol) -> Datum {
        Datum::Int(self.intern(s) as i64)
    }
}

/// Decoding counterpart of [`SymSink`]. Both decoders accept verbatim
/// strings; table indices additionally require a table.
struct SymTab<'a>(&'a [Symbol]);

impl SymTab<'_> {
    fn sym(&self, d: &Datum) -> Result<Symbol, String> {
        match d {
            Datum::Str(s) => Ok(Symbol::intern(s)),
            Datum::Int(i) => usize::try_from(*i)
                .ok()
                .and_then(|i| self.0.get(i).copied())
                .ok_or_else(|| format!("string-table index {i} out of range")),
            other => Err(format!("expected symbol-as-string or index, got {other}")),
        }
    }
}

fn src_to_datum<E: SymSink>(src: &Option<SourceObject>, enc: &mut E) -> Datum {
    match src {
        None => Datum::Bool(false),
        Some(p) => Datum::list(vec![
            enc.sym(p.file),
            Datum::Int(p.bfp as i64),
            Datum::Int(p.efp as i64),
        ]),
    }
}

fn src_from_datum(d: &Datum, tab: &SymTab) -> Result<Option<SourceObject>, String> {
    match d {
        Datum::Bool(false) => Ok(None),
        _ => match d.list_elems().as_deref() {
            Some([file, Datum::Int(bfp), Datum::Int(efp)]) if *bfp >= 0 && *efp >= 0 => {
                Ok(Some(SourceObject {
                    file: tab.sym(file)?,
                    bfp: *bfp as u32,
                    efp: *efp as u32,
                }))
            }
            _ => Err(format!("bad source object {d}")),
        },
    }
}

fn node<E: SymSink>(tag: &str, src: &Option<SourceObject>, enc: &mut E, rest: Vec<Datum>) -> Datum {
    let mut elems = vec![Datum::sym(tag), src_to_datum(src, enc)];
    elems.extend(rest);
    Datum::list(elems)
}

fn to_datum<E: SymSink>(core: &Core, enc: &mut E) -> Option<Datum> {
    let kind = match &core.kind {
        CoreKind::Const(d) => node("const", &core.src, enc, vec![d.clone()]),
        CoreKind::SyntaxConst(_) => return None,
        CoreKind::LocalRef { depth, index } => node(
            "lref",
            &core.src,
            enc,
            vec![Datum::Int(*depth as i64), Datum::Int(*index as i64)],
        ),
        CoreKind::GlobalRef(name) => {
            let name = enc.sym(*name);
            node("gref", &core.src, enc, vec![name])
        }
        CoreKind::SetLocal {
            depth,
            index,
            value,
        } => {
            let value = to_datum(value, enc)?;
            node(
                "setl",
                &core.src,
                enc,
                vec![Datum::Int(*depth as i64), Datum::Int(*index as i64), value],
            )
        }
        CoreKind::SetGlobal(name, value) => {
            let rest = vec![enc.sym(*name), to_datum(value, enc)?];
            node("setg", &core.src, enc, rest)
        }
        CoreKind::If(c, t, e) => {
            let rest = vec![to_datum(c, enc)?, to_datum(t, enc)?, to_datum(e, enc)?];
            node("if", &core.src, enc, rest)
        }
        CoreKind::Lambda(def) => {
            let name = match def.name {
                Some(n) => enc.sym(n),
                None => Datum::Bool(false),
            };
            let lsrc = src_to_datum(&def.src, enc);
            let body = to_datum(&def.body, enc)?;
            node(
                "lambda",
                &core.src,
                enc,
                vec![
                    Datum::Int(def.params as i64),
                    Datum::Bool(def.variadic),
                    name,
                    lsrc,
                    body,
                ],
            )
        }
        CoreKind::Call { func, args } => {
            let mut rest = vec![to_datum(func, enc)?];
            for a in args {
                rest.push(to_datum(a, enc)?);
            }
            node("call", &core.src, enc, rest)
        }
        CoreKind::Seq(es) => {
            let rest: Option<Vec<Datum>> = es.iter().map(|e| to_datum(e, enc)).collect();
            node("seq", &core.src, enc, rest?)
        }
        CoreKind::Let { inits, body } => {
            let inits: Option<Vec<Datum>> = inits.iter().map(|e| to_datum(e, enc)).collect();
            let rest = vec![Datum::list(inits?), to_datum(body, enc)?];
            node("let", &core.src, enc, rest)
        }
        CoreKind::LetRec { inits, body } => {
            let inits: Option<Vec<Datum>> = inits.iter().map(|e| to_datum(e, enc)).collect();
            let rest = vec![Datum::list(inits?), to_datum(body, enc)?];
            node("letrec", &core.src, enc, rest)
        }
        CoreKind::DefineGlobal(name, value) => {
            let rest = vec![enc.sym(*name), to_datum(value, enc)?];
            node("defg", &core.src, enc, rest)
        }
    };
    Some(kind)
}

/// Serializes a core tree to an s-expression datum, or `None` if the tree
/// contains a [`CoreKind::SyntaxConst`] node (not persistable). Symbols
/// and file names are written verbatim; prefer [`core_to_datum_with`] when
/// many trees share a file.
pub fn core_to_datum(core: &Core) -> Option<Datum> {
    to_datum(core, &mut Verbatim)
}

/// As [`core_to_datum`], but interning file names and global symbols into
/// `table`: occurrences serialize as integer indices, and the caller
/// writes the table (e.g. a `(strings …)` section) alongside the trees.
pub fn core_to_datum_with(core: &Core, table: &mut StringTable) -> Option<Datum> {
    to_datum(core, table)
}

fn u16_from(d: &Datum, what: &str) -> Result<u16, String> {
    match d {
        Datum::Int(n) if *n >= 0 && *n <= u16::MAX as i64 => Ok(*n as u16),
        other => Err(format!("bad {what} {other}")),
    }
}

fn from_datum(d: &Datum, tab: &SymTab) -> Result<Rc<Core>, String> {
    let elems = d
        .list_elems()
        .ok_or_else(|| format!("core node must be a list, got {d}"))?;
    let [tag, src, rest @ ..] = elems.as_slice() else {
        return Err(format!("core node too short: {d}"));
    };
    let tag = match tag {
        Datum::Sym(s) => s.as_str().to_owned(),
        other => return Err(format!("bad core tag {other}")),
    };
    let src = src_from_datum(src, tab)?;
    let kind = match (tag.as_str(), rest) {
        ("const", [val]) => CoreKind::Const(val.clone()),
        ("lref", [depth, index]) => CoreKind::LocalRef {
            depth: u16_from(depth, "depth")?,
            index: u16_from(index, "index")?,
        },
        ("gref", [name]) => CoreKind::GlobalRef(tab.sym(name)?),
        ("setl", [depth, index, value]) => CoreKind::SetLocal {
            depth: u16_from(depth, "depth")?,
            index: u16_from(index, "index")?,
            value: from_datum(value, tab)?,
        },
        ("setg", [name, value]) => CoreKind::SetGlobal(tab.sym(name)?, from_datum(value, tab)?),
        ("if", [c, t, e]) => CoreKind::If(
            from_datum(c, tab)?,
            from_datum(t, tab)?,
            from_datum(e, tab)?,
        ),
        ("lambda", [params, variadic, name, lsrc, body]) => {
            let variadic = match variadic {
                Datum::Bool(b) => *b,
                other => return Err(format!("bad variadic flag {other}")),
            };
            let name = match name {
                Datum::Bool(false) => None,
                other => Some(tab.sym(other)?),
            };
            CoreKind::Lambda(Rc::new(LambdaDef {
                params: u16_from(params, "param count")?,
                variadic,
                body: from_datum(body, tab)?,
                name,
                src: src_from_datum(lsrc, tab)?,
            }))
        }
        ("call", [func, args @ ..]) => CoreKind::Call {
            func: from_datum(func, tab)?,
            args: args
                .iter()
                .map(|a| from_datum(a, tab))
                .collect::<Result<_, _>>()?,
        },
        ("seq", es) => CoreKind::Seq(
            es.iter()
                .map(|e| from_datum(e, tab))
                .collect::<Result<_, _>>()?,
        ),
        ("let", [inits, body]) | ("letrec", [inits, body]) => {
            let inits = inits
                .list_elems()
                .ok_or_else(|| "let inits must be a list".to_string())?
                .iter()
                .map(|e| from_datum(e, tab))
                .collect::<Result<_, _>>()?;
            let body = from_datum(body, tab)?;
            if tag == "let" {
                CoreKind::Let { inits, body }
            } else {
                CoreKind::LetRec { inits, body }
            }
        }
        ("defg", [name, value]) => CoreKind::DefineGlobal(tab.sym(name)?, from_datum(value, tab)?),
        _ => return Err(format!("unknown or malformed core node `{tag}`")),
    };
    Ok(Core::rc(kind, src))
}

/// Deserializes a core tree from an s-expression datum produced by
/// [`core_to_datum`].
///
/// # Errors
///
/// Returns a descriptive message for any structural mismatch — corrupt
/// session files surface as typed load errors, never panics.
pub fn core_from_datum(d: &Datum) -> Result<Rc<Core>, String> {
    from_datum(d, &SymTab(&[]))
}

/// As [`core_from_datum`], but resolving integer symbol references against
/// `table` (the deserialized counterpart of the [`StringTable`] the tree
/// was written with). Verbatim strings are still accepted, so trees from
/// either encoder decode with this entry point.
pub fn core_from_datum_with(d: &Datum, table: &[Symbol]) -> Result<Rc<Core>, String> {
    from_datum(d, &SymTab(table))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn konst(n: i64) -> Rc<Core> {
        Core::rc(CoreKind::Const(Datum::Int(n)), None)
    }

    fn p(n: u32) -> SourceObject {
        SourceObject::new("s.scm", n, n + 1)
    }

    fn round_trip(core: &Core) -> Rc<Core> {
        let d = core_to_datum(core).expect("serializable");
        // Exercise the full textual path: print, re-read, re-parse.
        let text = d.to_string();
        let forms = pgmp_reader_read(&text);
        core_from_datum(&forms).expect("deserializable")
    }

    /// Reads one datum back through `Datum` parsing of the printed text.
    /// (The reader crate would be a dev-dependency cycle; a tiny structural
    /// re-parse via the printed form's shape is enough because production
    /// loads go through `pgmp_reader::read_str` and `Syntax::to_datum`.)
    fn pgmp_reader_read(text: &str) -> Datum {
        // Minimal s-expr reader for tests: delegates to the printed datum
        // structure by re-using core_to_datum output directly would be
        // circular, so parse by hand.
        let mut toks = Vec::new();
        let mut chars = text.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '(' | ')' => toks.push(c.to_string()),
                '"' => {
                    let mut s = String::from("\"");
                    for c in chars.by_ref() {
                        s.push(c);
                        if c == '"' {
                            break;
                        }
                    }
                    toks.push(s);
                }
                c if c.is_whitespace() => {}
                c => {
                    let mut s = c.to_string();
                    while let Some(&n) = chars.peek() {
                        if n.is_whitespace() || n == '(' || n == ')' {
                            break;
                        }
                        s.push(n);
                        chars.next();
                    }
                    toks.push(s);
                }
            }
        }
        let mut pos = 0usize;
        fn parse(toks: &[String], pos: &mut usize) -> Datum {
            let t = toks[*pos].clone();
            *pos += 1;
            if t == "(" {
                let mut elems = Vec::new();
                while toks[*pos] != ")" {
                    elems.push(parse(toks, pos));
                }
                *pos += 1;
                Datum::list(elems)
            } else if let Some(s) = t.strip_prefix('"') {
                Datum::string(s.strip_suffix('"').unwrap())
            } else if t == "#t" {
                Datum::Bool(true)
            } else if t == "#f" {
                Datum::Bool(false)
            } else if let Ok(n) = t.parse::<i64>() {
                Datum::Int(n)
            } else if let Ok(x) = t.parse::<f64>() {
                Datum::Float(x)
            } else {
                Datum::sym(&t)
            }
        }
        parse(&toks, &mut pos)
    }

    #[test]
    fn atoms_round_trip() {
        for core in [
            Core::new(CoreKind::Const(Datum::Int(42)), Some(p(0))),
            Core::new(CoreKind::Const(Datum::sym("x")), None),
            Core::new(CoreKind::LocalRef { depth: 2, index: 7 }, Some(p(3))),
            Core::new(CoreKind::GlobalRef(Symbol::intern("g")), None),
        ] {
            assert_eq!(*round_trip(&core), core);
        }
    }

    #[test]
    fn compound_nodes_round_trip() {
        let lam = Core::new(
            CoreKind::Lambda(Rc::new(LambdaDef {
                params: 2,
                variadic: true,
                body: Core::rc(
                    CoreKind::If(konst(1), konst(2), konst(3)),
                    Some(p(9)),
                ),
                name: Some(Symbol::intern("f")),
                src: Some(p(1)),
            })),
            Some(p(0)),
        );
        assert_eq!(*round_trip(&lam), lam);

        let letrec = Core::new(
            CoreKind::LetRec {
                inits: vec![konst(1), lam.clone().into()],
                body: Core::rc(
                    CoreKind::Call {
                        func: Core::rc(CoreKind::LocalRef { depth: 0, index: 1 }, None),
                        args: vec![konst(5), konst(6)],
                    },
                    Some(p(4)),
                ),
            },
            None,
        );
        assert_eq!(*round_trip(&letrec), letrec);
    }

    #[test]
    fn sources_survive_round_trip() {
        let core = Core::new(
            CoreKind::Seq(vec![
                Core::rc(CoreKind::Const(Datum::Int(1)), Some(p(10))),
                Core::rc(CoreKind::Const(Datum::Int(2)), Some(p(20))),
            ]),
            Some(SourceObject::new("gen.scm%pgmp3", 5, 9)),
        );
        let back = round_trip(&core);
        let mut srcs = Vec::new();
        back.walk(&mut |n| srcs.push(n.src));
        assert_eq!(
            srcs,
            vec![
                Some(SourceObject::new("gen.scm%pgmp3", 5, 9)),
                Some(p(10)),
                Some(p(20))
            ]
        );
    }

    #[test]
    fn interned_encoding_round_trips_and_is_compact() {
        let lam = Core::new(
            CoreKind::Lambda(Rc::new(LambdaDef {
                params: 1,
                variadic: false,
                body: Core::rc(CoreKind::GlobalRef(Symbol::intern("helper")), Some(p(5))),
                name: Some(Symbol::intern("f")),
                src: Some(p(1)),
            })),
            Some(p(0)),
        );
        let defg = Core::new(
            CoreKind::DefineGlobal(Symbol::intern("f"), lam.into()),
            Some(p(0)),
        );
        let mut table = StringTable::new();
        let d = core_to_datum_with(&defg, &mut table).expect("serializable");
        // Every symbol and file name became an index: the printed tree
        // contains no string literals at all.
        assert!(!d.to_string().contains('"'), "interned tree: {d}");
        // "f", "s.scm", "helper" — each interned exactly once.
        assert_eq!(table.symbols().len(), 3);
        let text = d.to_string();
        let back =
            core_from_datum_with(&pgmp_reader_read(&text), table.symbols()).expect("decodes");
        assert_eq!(*back, defg);
        // The verbatim encoding of the same tree decodes identically via
        // the table-aware entry point (strings are always accepted).
        let verbatim = core_to_datum(&defg).unwrap().to_string();
        let back2 =
            core_from_datum_with(&pgmp_reader_read(&verbatim), table.symbols()).expect("decodes");
        assert_eq!(*back2, defg);
        // An out-of-range index is a typed error, not a panic.
        assert!(core_from_datum_with(&pgmp_reader_read("(gref #f 99)"), table.symbols()).is_err());
    }

    #[test]
    fn syntax_const_is_not_serializable() {
        use pgmp_syntax::Syntax;
        let core = Core::new(
            CoreKind::SyntaxConst(Rc::new(Syntax::ident("x", None))),
            None,
        );
        assert!(core_to_datum(&core).is_none());
        // …even nested.
        let seq = Core::new(CoreKind::Seq(vec![konst(1), Rc::new(core)]), None);
        assert!(core_to_datum(&seq).is_none());
    }

    #[test]
    fn corrupt_datums_error_without_panic() {
        for bad in [
            "()",
            "(mystery #f)",
            "(lref #f 1)",
            "(lref #f -1 0)",
            "(lref #f 99999999 0)",
            "(if #f (const #f 1) (const #f 2))",
            "(const (\"f\" -1 2) 5)",
            "(lambda #f 1 nope #f #f (const #f 1))",
        ] {
            let d = pgmp_reader_read(bad);
            assert!(core_from_datum(&d).is_err(), "should reject {bad}");
        }
    }
}
