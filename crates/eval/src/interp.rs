//! The tree-walking interpreter.

use crate::core_expr::{Core, CoreKind};
use crate::env::Frame;
use crate::error::{EvalError, EvalErrorKind};
use crate::value::{Closure, Native, NativeFn, Value};
use pgmp_profiler::{Counters, ProfileMode};
use pgmp_syntax::{SourceObject, Symbol};
use std::collections::HashMap;
use std::rc::Rc;

/// The interpreter: global environment, profiling hooks, output sink, and
/// an optional fuel budget.
///
/// The same type is used for running object programs *and* for running
/// meta-programs at expand time — the expander holds an `Interp` whose
/// globals include the profile-query API.
///
/// # Example
///
/// ```
/// use pgmp_eval::{Core, CoreKind, Interp};
/// use pgmp_syntax::Datum;
/// let mut interp = Interp::new();
/// let expr = Core::rc(CoreKind::Const(Datum::Int(42)), None);
/// let v = interp.eval(&expr, &None)?;
/// assert_eq!(v.to_string(), "42");
/// # Ok::<(), pgmp_eval::EvalError>(())
/// ```
pub struct Interp {
    /// Global variables, slot-indexed: the map interns a name to a stable
    /// index into `global_values`. Redefinition overwrites the value in
    /// place, so a resolved global slot (e.g. cached by the VM per chunk)
    /// stays valid for the lifetime of the interpreter.
    global_slots: HashMap<Symbol, u32>,
    /// Value cells in slot order; `None` marks a slot reserved (e.g. by a
    /// compiled `GlobalRef` cache) before the global was bound.
    global_values: Vec<Option<Value>>,
    /// Live profile counters, when instrumenting.
    pub counters: Option<Counters>,
    /// Instrumentation mode.
    pub mode: ProfileMode,
    fuel: Option<u64>,
    output: String,
    /// Warnings emitted by meta-programs (e.g. the §6.3 data-structure
    /// recommendations print here at compile time).
    pub warnings: Vec<String>,
}

impl Default for Interp {
    fn default() -> Interp {
        Interp::new()
    }
}

impl Interp {
    /// Creates an interpreter with *no* primitives installed; call
    /// [`crate::install_primitives`] (or let the engine do it) to populate
    /// the global environment.
    pub fn new() -> Interp {
        Interp {
            global_slots: HashMap::new(),
            global_values: Vec::new(),
            counters: None,
            mode: ProfileMode::Off,
            fuel: None,
            output: String::new(),
            warnings: Vec::new(),
        }
    }

    /// Enables profiling in `mode`, counting into `counters`.
    pub fn set_profiling(&mut self, mode: ProfileMode, counters: Counters) {
        self.mode = mode;
        self.counters = Some(counters);
    }

    /// Disables profiling; profile points stop introducing any overhead.
    pub fn clear_profiling(&mut self) {
        self.mode = ProfileMode::Off;
        self.counters = None;
    }

    /// Parks the sampling beacon, if the live counters are sampling-backed:
    /// samples taken until the next profile-point entry attribute nothing.
    /// Call this from natives that genuinely block (sleeps, waits on
    /// external state) so wall-clock time spent blocked is not charged to
    /// the last-entered profile point; exact backends ignore it. The next
    /// profiled expression re-publishes the position automatically.
    #[inline]
    pub fn park_profiling(&self) {
        if let Some(counters) = &self.counters {
            counters.park();
        }
    }

    /// Sets a step budget. Evaluation fails with a fuel error when it runs
    /// out — useful for tests that must terminate.
    pub fn set_fuel(&mut self, fuel: Option<u64>) {
        self.fuel = fuel;
    }

    /// Defines (or redefines) a global variable. Redefinition reuses the
    /// existing slot.
    pub fn define_global(&mut self, name: Symbol, v: Value) {
        let slot = self.global_slot_or_reserve(name);
        self.global_values[slot as usize] = Some(v);
    }

    /// Looks up a global variable.
    pub fn global(&self, name: Symbol) -> Option<&Value> {
        let slot = *self.global_slots.get(&name)?;
        self.global_values[slot as usize].as_ref()
    }

    /// The stable slot index of `name`, if it has ever been defined or
    /// reserved. A slot does *not* imply the global is bound — reads still
    /// go through [`Interp::global_by_slot`], which distinguishes the two.
    pub fn global_slot(&self, name: Symbol) -> Option<u32> {
        self.global_slots.get(&name).copied()
    }

    /// Interns `name` to a global slot, reserving an unbound cell if it was
    /// never defined. Used by the VM to burn a slot index into its
    /// chunk-local global cache before the global is necessarily bound.
    pub fn global_slot_or_reserve(&mut self, name: Symbol) -> u32 {
        let values = &mut self.global_values;
        *self.global_slots.entry(name).or_insert_with(|| {
            values.push(None);
            (values.len() - 1) as u32
        })
    }

    /// Reads the global in `slot`; `None` means reserved but unbound.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never allocated.
    #[inline]
    pub fn global_by_slot(&self, slot: u32) -> Option<&Value> {
        self.global_values[slot as usize].as_ref()
    }

    /// Writes the global in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never allocated.
    #[inline]
    pub fn set_global_by_slot(&mut self, slot: u32, v: Value) {
        self.global_values[slot as usize] = Some(v);
    }

    /// Registers a native primitive under `name`.
    pub fn define_native(
        &mut self,
        name: &'static str,
        min_args: usize,
        max_args: Option<usize>,
        f: impl Fn(&mut Interp, Vec<Value>) -> Result<Value, EvalError> + 'static,
    ) {
        let native = Native {
            name,
            min_args,
            max_args,
            quick: crate::value::QuickOp::for_name(name),
            f: Box::new(f) as Box<NativeFn>,
        };
        self.define_global(Symbol::intern(name), Value::Native(Rc::new(native)));
    }

    /// Appends to the captured output (used by `display` and friends).
    pub fn print(&mut self, s: &str) {
        self.output.push_str(s);
    }

    /// Takes and clears the captured output.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.output)
    }

    /// Read-only view of the captured output.
    pub fn output(&self) -> &str {
        &self.output
    }

    fn burn_fuel(&mut self) -> Result<(), EvalError> {
        if let Some(fuel) = self.fuel.as_mut() {
            if *fuel == 0 {
                return Err(EvalError::new(EvalErrorKind::Fuel, "fuel exhausted"));
            }
            *fuel -= 1;
        }
        Ok(())
    }

    /// Evaluates `expr` in environment `env` (with `None` meaning only
    /// globals are visible). Proper tail calls: tail-recursive object
    /// programs run in constant Rust stack.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] for unbound variables, arity and type
    /// errors, user `error` calls, and fuel exhaustion.
    pub fn eval(&mut self, expr: &Rc<Core>, env: &Option<Rc<Frame>>) -> Result<Value, EvalError> {
        let mut expr = expr.clone();
        let mut env = env.clone();
        loop {
            self.burn_fuel()?;
            if self.mode == ProfileMode::EveryExpression {
                if let (Some(counters), Some(src)) = (&self.counters, expr.src) {
                    bump(counters, &expr, src);
                }
            }
            match &expr.kind {
                CoreKind::Const(d) => return Ok(Value::from_datum(d)),
                CoreKind::SyntaxConst(s) => return Ok(Value::Syntax(s.clone())),
                CoreKind::LocalRef { depth, index } => {
                    let frame = env
                        .as_ref()
                        .expect("local reference outside any frame — expander bug");
                    return Ok(frame.get(*depth, *index));
                }
                CoreKind::GlobalRef(name) => {
                    return self.global(*name).cloned().ok_or_else(|| {
                        EvalError::new(
                            EvalErrorKind::Unbound,
                            format!("unbound variable `{name}`"),
                        )
                        .with_src(expr.src)
                    });
                }
                CoreKind::SetLocal {
                    depth,
                    index,
                    value,
                } => {
                    let v = self.eval(value, &env)?;
                    env.as_ref()
                        .expect("local set! outside any frame — expander bug")
                        .set(*depth, *index, v);
                    return Ok(Value::Unspecified);
                }
                CoreKind::SetGlobal(name, value) => {
                    if self.global(*name).is_none() {
                        return Err(EvalError::new(
                            EvalErrorKind::Unbound,
                            format!("set!: unbound variable `{name}`"),
                        )
                        .with_src(expr.src));
                    }
                    let v = self.eval(value, &env)?;
                    self.define_global(*name, v);
                    return Ok(Value::Unspecified);
                }
                CoreKind::DefineGlobal(name, value) => {
                    let v = self.eval(value, &env)?;
                    self.define_global(*name, v);
                    return Ok(Value::Unspecified);
                }
                CoreKind::If(c, t, e) => {
                    let test = self.eval(c, &env)?;
                    expr = if test.is_truthy() { t.clone() } else { e.clone() };
                }
                CoreKind::Lambda(def) => {
                    return Ok(Value::Closure(Rc::new(Closure {
                        def: def.clone(),
                        env: env.clone(),
                    })));
                }
                CoreKind::Seq(es) => match es.split_last() {
                    None => return Ok(Value::Unspecified),
                    Some((last, init)) => {
                        for e in init {
                            self.eval(e, &env)?;
                        }
                        expr = last.clone();
                    }
                },
                CoreKind::Let { inits, body } => {
                    let mut slots = Vec::with_capacity(inits.len());
                    for init in inits {
                        slots.push(self.eval(init, &env)?);
                    }
                    env = Some(Frame::new(slots, env.clone()));
                    expr = body.clone();
                }
                CoreKind::LetRec { inits, body } => {
                    let frame = Frame::new(vec![Value::Unspecified; inits.len()], env.clone());
                    let inner = Some(frame.clone());
                    for (i, init) in inits.iter().enumerate() {
                        let v = self.eval(init, &inner)?;
                        frame.set(0, i as u16, v);
                    }
                    env = inner;
                    expr = body.clone();
                }
                CoreKind::Call { func, args } => {
                    if self.mode == ProfileMode::CallsOnly {
                        if let (Some(counters), Some(src)) = (&self.counters, expr.src) {
                            bump(counters, &expr, src);
                        }
                    }
                    let f = self.eval(func, &env)?;
                    let mut argv = Vec::with_capacity(args.len());
                    for a in args {
                        argv.push(self.eval(a, &env)?);
                    }
                    match f {
                        Value::Native(n) => {
                            check_native_arity(&n, argv.len()).map_err(|e| e.with_src(expr.src))?;
                            return (n.f)(self, argv).map_err(|e| e.with_src(expr.src));
                        }
                        Value::Closure(c) => {
                            let frame = bind_args(&c, argv).map_err(|e| e.with_src(expr.src))?;
                            env = Some(frame);
                            expr = c.def.body.clone();
                        }
                        other => {
                            return Err(EvalError::type_error("procedure", &other)
                                .with_src(expr.src));
                        }
                    }
                }
            }
        }
    }

    /// Applies a procedure value to arguments, from Rust. Used by
    /// higher-order primitives and by the expander to invoke macro
    /// transformers.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] if `f` is not a procedure or its body
    /// fails.
    pub fn apply(&mut self, f: &Value, args: Vec<Value>) -> Result<Value, EvalError> {
        match f {
            Value::Native(n) => {
                check_native_arity(n, args.len())?;
                (n.f)(self, args)
            }
            Value::Closure(c) => {
                let frame = bind_args(c, args)?;
                self.eval(&c.def.body, &Some(frame))
            }
            other => Err(EvalError::type_error("procedure", other)),
        }
    }
}

/// Records one hit of `expr`'s profile point. Slotted registries take the
/// paper's fast path: the slot id cached on the node (validated against the
/// registry's map id) makes the record a single slot op — a vector bump on
/// dense counters, one relaxed beacon store on sampling counters; the first
/// hit per node resolves and caches the slot, unless
/// [`crate::resolve_profile_slots`] already did so at instrumentation time.
/// Hash-keyed registries fall back to the legacy keyed increment.
#[inline]
fn bump(counters: &Counters, expr: &Core, src: SourceObject) {
    let map_id = counters.map_id();
    if map_id == 0 {
        counters.increment(src);
        return;
    }
    let slot = match expr.cached_slot(map_id) {
        Some(slot) => slot,
        None => {
            let slot = counters.resolve(src);
            expr.cache_slot(map_id, slot);
            slot
        }
    };
    counters.record_hit(slot);
}

fn check_native_arity(n: &Native, got: usize) -> Result<(), EvalError> {
    let ok = got >= n.min_args && n.max_args.is_none_or(|max| got <= max);
    if ok {
        Ok(())
    } else {
        let expected = match n.max_args {
            Some(max) if max == n.min_args => format!("{max}"),
            Some(max) => format!("{}..{}", n.min_args, max),
            None => format!("at least {}", n.min_args),
        };
        Err(EvalError::arity(n.name, &expected, got))
    }
}

fn bind_args(c: &Closure, mut args: Vec<Value>) -> Result<Rc<Frame>, EvalError> {
    let required = c.def.params as usize;
    let name = c
        .def
        .name
        .map(|n| n.as_str())
        .unwrap_or("#<procedure>");
    if c.def.variadic {
        if args.len() < required {
            return Err(EvalError::arity(name, &format!("at least {required}"), args.len()));
        }
        let rest = Value::list(args.split_off(required));
        args.push(rest);
    } else if args.len() != required {
        return Err(EvalError::arity(name, &required.to_string(), args.len()));
    }
    Ok(Frame::new(args, c.env.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_expr::LambdaDef;
    use pgmp_syntax::{Datum, SourceObject};

    fn konst(n: i64) -> Rc<Core> {
        Core::rc(CoreKind::Const(Datum::Int(n)), None)
    }

    #[test]
    fn constants_and_if() {
        let mut i = Interp::new();
        let e = Core::rc(
            CoreKind::If(
                Core::rc(CoreKind::Const(Datum::Bool(false)), None),
                konst(1),
                konst(2),
            ),
            None,
        );
        assert_eq!(i.eval(&e, &None).unwrap().to_string(), "2");
    }

    #[test]
    fn define_and_reference_global() {
        let mut i = Interp::new();
        let x = Symbol::intern("x-test-global");
        i.eval(&Core::rc(CoreKind::DefineGlobal(x, konst(7)), None), &None)
            .unwrap();
        let v = i
            .eval(&Core::rc(CoreKind::GlobalRef(x), None), &None)
            .unwrap();
        assert_eq!(v.to_string(), "7");
    }

    #[test]
    fn unbound_global_errors() {
        let mut i = Interp::new();
        let e = Core::rc(
            CoreKind::GlobalRef(Symbol::intern("never-defined-anywhere")),
            None,
        );
        let err = i.eval(&e, &None).unwrap_err();
        assert_eq!(err.kind, EvalErrorKind::Unbound);
    }

    #[test]
    fn set_of_unbound_global_errors() {
        let mut i = Interp::new();
        let e = Core::rc(
            CoreKind::SetGlobal(Symbol::intern("never-set-anywhere"), konst(1)),
            None,
        );
        assert_eq!(i.eval(&e, &None).unwrap_err().kind, EvalErrorKind::Unbound);
    }

    fn identity_lambda() -> Rc<Core> {
        Core::rc(
            CoreKind::Lambda(Rc::new(LambdaDef {
                params: 1,
                variadic: false,
                body: Core::rc(CoreKind::LocalRef { depth: 0, index: 0 }, None),
                name: Some(Symbol::intern("id")),
                src: None,
            })),
            None,
        )
    }

    #[test]
    fn closure_call() {
        let mut i = Interp::new();
        let call = Core::rc(
            CoreKind::Call {
                func: identity_lambda(),
                args: vec![konst(9)],
            },
            None,
        );
        assert_eq!(i.eval(&call, &None).unwrap().to_string(), "9");
    }

    #[test]
    fn closure_arity_error() {
        let mut i = Interp::new();
        let call = Core::rc(
            CoreKind::Call {
                func: identity_lambda(),
                args: vec![konst(9), konst(10)],
            },
            None,
        );
        assert_eq!(i.eval(&call, &None).unwrap_err().kind, EvalErrorKind::Arity);
    }

    #[test]
    fn variadic_collects_rest() {
        let mut i = Interp::new();
        // (lambda args args) applied to 1 2 3.
        let lam = Core::rc(
            CoreKind::Lambda(Rc::new(LambdaDef {
                params: 0,
                variadic: true,
                body: Core::rc(CoreKind::LocalRef { depth: 0, index: 0 }, None),
                name: None,
                src: None,
            })),
            None,
        );
        let call = Core::rc(
            CoreKind::Call {
                func: lam,
                args: vec![konst(1), konst(2), konst(3)],
            },
            None,
        );
        assert_eq!(i.eval(&call, &None).unwrap().to_string(), "(1 2 3)");
    }

    #[test]
    fn tail_calls_run_in_constant_stack() {
        // (letrec ([loop (lambda (n) (if <n is zero> 42 (loop <n-1>)))]) (loop 200000))
        // Built by hand with a native decrement to avoid needing primitives.
        let mut i = Interp::new();
        i.define_native("dec!", 1, Some(1), |_, args| match &args[0] {
            Value::Int(n) => Ok(Value::Int(n - 1)),
            v => Err(EvalError::type_error("integer", v)),
        });
        i.define_native("zero?!", 1, Some(1), |_, args| match &args[0] {
            Value::Int(n) => Ok(Value::Bool(*n == 0)),
            v => Err(EvalError::type_error("integer", v)),
        });
        let gref = |s: &str| Core::rc(CoreKind::GlobalRef(Symbol::intern(s)), None);
        let n_ref = Core::rc(CoreKind::LocalRef { depth: 0, index: 0 }, None);
        let loop_ref = Core::rc(CoreKind::LocalRef { depth: 1, index: 0 }, None);
        let body = Core::rc(
            CoreKind::If(
                Core::rc(
                    CoreKind::Call {
                        func: gref("zero?!"),
                        args: vec![n_ref.clone()],
                    },
                    None,
                ),
                konst(42),
                Core::rc(
                    CoreKind::Call {
                        func: loop_ref,
                        args: vec![Core::rc(
                            CoreKind::Call {
                                func: gref("dec!"),
                                args: vec![n_ref],
                            },
                            None,
                        )],
                    },
                    None,
                ),
            ),
            None,
        );
        let lam = Core::rc(
            CoreKind::Lambda(Rc::new(LambdaDef {
                params: 1,
                variadic: false,
                body,
                name: Some(Symbol::intern("loop")),
                src: None,
            })),
            None,
        );
        let letrec = Core::rc(
            CoreKind::LetRec {
                inits: vec![lam],
                body: Core::rc(
                    CoreKind::Call {
                        func: Core::rc(CoreKind::LocalRef { depth: 0, index: 0 }, None),
                        args: vec![konst(200_000)],
                    },
                    None,
                ),
            },
            None,
        );
        assert_eq!(i.eval(&letrec, &None).unwrap().to_string(), "42");
    }

    #[test]
    fn fuel_limits_evaluation() {
        let mut i = Interp::new();
        i.set_fuel(Some(10));
        // Infinite loop: (letrec ([f (lambda () (f))]) (f)).
        let f_ref = Core::rc(CoreKind::LocalRef { depth: 1, index: 0 }, None);
        let lam = Core::rc(
            CoreKind::Lambda(Rc::new(LambdaDef {
                params: 0,
                variadic: false,
                body: Core::rc(
                    CoreKind::Call {
                        func: f_ref,
                        args: vec![],
                    },
                    None,
                ),
                name: None,
                src: None,
            })),
            None,
        );
        let letrec = Core::rc(
            CoreKind::LetRec {
                inits: vec![lam],
                body: Core::rc(
                    CoreKind::Call {
                        func: Core::rc(CoreKind::LocalRef { depth: 0, index: 0 }, None),
                        args: vec![],
                    },
                    None,
                ),
            },
            None,
        );
        assert_eq!(i.eval(&letrec, &None).unwrap_err().kind, EvalErrorKind::Fuel);
    }

    #[test]
    fn every_expression_mode_counts_each_node() {
        let mut i = Interp::new();
        let counters = Counters::new();
        i.set_profiling(ProfileMode::EveryExpression, counters.clone());
        let src_if = SourceObject::new("t.scm", 0, 10);
        let src_one = SourceObject::new("t.scm", 5, 6);
        let src_two = SourceObject::new("t.scm", 7, 8);
        let e = Core::rc(
            CoreKind::If(
                Core::rc(CoreKind::Const(Datum::Bool(true)), None),
                Rc::new(Core::new(CoreKind::Const(Datum::Int(1)), Some(src_one))),
                Rc::new(Core::new(CoreKind::Const(Datum::Int(2)), Some(src_two))),
            ),
            Some(src_if),
        );
        i.eval(&e, &None).unwrap();
        assert_eq!(counters.count(src_if), 1);
        assert_eq!(counters.count(src_one), 1);
        assert_eq!(counters.count(src_two), 0, "untaken branch not counted");
    }

    #[test]
    fn calls_only_mode_counts_only_calls() {
        let mut i = Interp::new();
        let counters = Counters::new();
        i.set_profiling(ProfileMode::CallsOnly, counters.clone());
        let src_call = SourceObject::new("t.scm", 0, 10);
        let src_const = SourceObject::new("t.scm", 5, 6);
        let call = Rc::new(Core::new(
            CoreKind::Call {
                func: identity_lambda(),
                args: vec![Rc::new(Core::new(
                    CoreKind::Const(Datum::Int(1)),
                    Some(src_const),
                ))],
            },
            Some(src_call),
        ));
        i.eval(&call, &None).unwrap();
        assert_eq!(counters.count(src_call), 1);
        assert_eq!(counters.count(src_const), 0);
    }

    #[test]
    fn profiling_off_counts_nothing() {
        let mut i = Interp::new();
        let counters = Counters::new();
        i.counters = Some(counters.clone());
        // mode stays Off
        let src = SourceObject::new("t.scm", 0, 1);
        let e = Rc::new(Core::new(CoreKind::Const(Datum::Int(1)), Some(src)));
        i.eval(&e, &None).unwrap();
        assert!(counters.is_empty());
    }

    #[test]
    fn output_capture() {
        let mut i = Interp::new();
        i.print("hello ");
        i.print("world");
        assert_eq!(i.output(), "hello world");
        assert_eq!(i.take_output(), "hello world");
        assert_eq!(i.output(), "");
    }
}
