//! Runtime values.

use crate::core_expr::LambdaDef;
use crate::env::Frame;
use crate::error::EvalError;
use crate::interp::Interp;
use pgmp_syntax::{Datum, SourceObject, Symbol, Syntax};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Signature of a native (Rust-implemented) primitive.
///
/// Natives receive the interpreter so higher-order primitives (`apply`,
/// `map`, `sort`, …) can call back into evaluation.
pub type NativeFn = dyn Fn(&mut Interp, Vec<Value>) -> Result<Value, EvalError>;

/// Identity of a primitive whose exact-integer case the bytecode VM may
/// execute inline ("quickening"), skipping the boxed call and its argument
/// `Vec`. The fast path covers *only* fixnum operands with an in-range
/// result; every other shape — floats, type errors, overflow, unusual
/// arity — falls back to `f`, so observable semantics stay defined by the
/// closure alone. The differential oracle in the bytecode crate holds the
/// two paths to the same answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuickOp {
    /// `(+ a b)` — checked add.
    Add,
    /// `(- a b)` — checked sub.
    Sub,
    /// `(* a b)` — checked mul.
    Mul,
    /// `(< a b)`.
    Lt,
    /// `(> a b)`.
    Gt,
    /// `(<= a b)`.
    Le,
    /// `(>= a b)`.
    Ge,
    /// `(= a b)`.
    NumEq,
    /// `(add1 n)` — checked add of 1.
    Add1,
    /// `(sub1 n)` — checked sub of 1.
    Sub1,
}

impl QuickOp {
    /// The fast-path identity for prelude primitive `name`, if it has one.
    /// Keyed by name at registration time ([`crate::Interp::define_native`]);
    /// user code that shadows these names rebinds the global to a fresh
    /// value without a `quick` tag, so shadowing disables the fast path.
    pub fn for_name(name: &str) -> Option<QuickOp> {
        match name {
            "+" => Some(QuickOp::Add),
            "-" => Some(QuickOp::Sub),
            "*" => Some(QuickOp::Mul),
            "<" => Some(QuickOp::Lt),
            ">" => Some(QuickOp::Gt),
            "<=" => Some(QuickOp::Le),
            ">=" => Some(QuickOp::Ge),
            "=" => Some(QuickOp::NumEq),
            "add1" => Some(QuickOp::Add1),
            "sub1" => Some(QuickOp::Sub1),
            _ => None,
        }
    }
}

/// A named native primitive with arity information.
pub struct Native {
    /// Name used in error messages.
    pub name: &'static str,
    /// Minimum number of arguments.
    pub min_args: usize,
    /// Maximum number of arguments (`None` = variadic).
    pub max_args: Option<usize>,
    /// Fixnum fast-path identity, when the VM may inline this primitive.
    pub quick: Option<QuickOp>,
    /// Implementation.
    pub f: Box<NativeFn>,
}

impl fmt::Debug for Native {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#<primitive {}>", self.name)
    }
}

/// A user-defined procedure: compiled lambda plus captured environment.
#[derive(Debug)]
pub struct Closure {
    /// Code.
    pub def: Rc<LambdaDef>,
    /// Captured lexical environment.
    pub env: Option<Rc<Frame>>,
}

/// A mutable cons cell.
#[derive(Debug)]
pub struct PairCell {
    /// First element.
    pub car: RefCell<Value>,
    /// Rest.
    pub cdr: RefCell<Value>,
}

/// Keys usable in hashtables: the hashable, immutable subset of [`Value`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum HashKey {
    /// Symbol key (the common case for `make-eq-hashtable`).
    Sym(Symbol),
    /// Integer key.
    Int(i64),
    /// Character key.
    Char(char),
    /// Boolean key.
    Bool(bool),
    /// String key (copied at insertion, so later mutation of the string
    /// value does not corrupt the table).
    Str(String),
    /// The empty list.
    Nil,
}

impl HashKey {
    /// Converts a value to a key, if it is of a hashable type.
    pub fn from_value(v: &Value) -> Option<HashKey> {
        match v {
            Value::Sym(s) => Some(HashKey::Sym(*s)),
            Value::Int(n) => Some(HashKey::Int(*n)),
            Value::Char(c) => Some(HashKey::Char(*c)),
            Value::Bool(b) => Some(HashKey::Bool(*b)),
            Value::Str(s) => Some(HashKey::Str(s.borrow().clone())),
            Value::Nil => Some(HashKey::Nil),
            _ => None,
        }
    }

    /// Converts a key back to a value.
    pub fn to_value(&self) -> Value {
        match self {
            HashKey::Sym(s) => Value::Sym(*s),
            HashKey::Int(n) => Value::Int(*n),
            HashKey::Char(c) => Value::Char(*c),
            HashKey::Bool(b) => Value::Bool(*b),
            HashKey::Str(s) => Value::string(s),
            HashKey::Nil => Value::Nil,
        }
    }
}

/// A runtime value.
#[derive(Clone, Debug)]
pub enum Value {
    /// The unspecified value (result of `set!`, `define`, empty `begin`).
    Unspecified,
    /// The empty list.
    Nil,
    /// Boolean.
    Bool(bool),
    /// Exact integer.
    Int(i64),
    /// Inexact real.
    Float(f64),
    /// Character.
    Char(char),
    /// Symbol.
    Sym(Symbol),
    /// Mutable string.
    Str(Rc<RefCell<String>>),
    /// Mutable cons cell.
    Pair(Rc<PairCell>),
    /// Mutable vector.
    Vector(Rc<RefCell<Vec<Value>>>),
    /// Mutable hashtable.
    Hash(Rc<RefCell<HashMap<HashKey, Value>>>),
    /// User-defined procedure.
    Closure(Rc<Closure>),
    /// Native primitive.
    Native(Rc<Native>),
    /// First-class syntax object (manipulated by meta-programs).
    Syntax(Rc<Syntax>),
    /// First-class source object / profile point
    /// (returned by `make-profile-point`).
    Source(SourceObject),
}

impl Value {
    /// Builds a cons cell.
    pub fn cons(car: Value, cdr: Value) -> Value {
        Value::Pair(Rc::new(PairCell {
            car: RefCell::new(car),
            cdr: RefCell::new(cdr),
        }))
    }

    /// Builds a fresh mutable string value.
    pub fn string(s: &str) -> Value {
        Value::Str(Rc::new(RefCell::new(s.to_owned())))
    }

    /// Builds a proper list.
    pub fn list(elems: Vec<Value>) -> Value {
        let mut acc = Value::Nil;
        for e in elems.into_iter().rev() {
            acc = Value::cons(e, acc);
        }
        acc
    }

    /// Scheme truthiness: everything but `#f` is true.
    #[inline]
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Bool(false))
    }

    /// If `self` is a proper list, collects its elements.
    pub fn list_elems(&self) -> Option<Vec<Value>> {
        let mut out = Vec::new();
        let mut cur = self.clone();
        loop {
            match cur {
                Value::Nil => return Some(out),
                Value::Pair(p) => {
                    out.push(p.car.borrow().clone());
                    let next = p.cdr.borrow().clone();
                    cur = next;
                }
                _ => return None,
            }
        }
    }

    /// Converts an immutable [`Datum`] into a value.
    pub fn from_datum(d: &Datum) -> Value {
        match d {
            Datum::Nil => Value::Nil,
            Datum::Bool(b) => Value::Bool(*b),
            Datum::Int(n) => Value::Int(*n),
            Datum::Float(x) => Value::Float(*x),
            Datum::Char(c) => Value::Char(*c),
            Datum::Str(s) => Value::string(s),
            Datum::Sym(s) => Value::Sym(*s),
            Datum::Pair(p) => Value::cons(Value::from_datum(&p.0), Value::from_datum(&p.1)),
            Datum::Vector(v) => Value::Vector(Rc::new(RefCell::new(
                v.iter().map(Value::from_datum).collect(),
            ))),
        }
    }

    /// Converts back to a [`Datum`], if the value contains only datum-able
    /// parts (no procedures, syntax, or hashtables).
    pub fn to_datum(&self) -> Option<Datum> {
        match self {
            Value::Nil => Some(Datum::Nil),
            Value::Bool(b) => Some(Datum::Bool(*b)),
            Value::Int(n) => Some(Datum::Int(*n)),
            Value::Float(x) => Some(Datum::Float(*x)),
            Value::Char(c) => Some(Datum::Char(*c)),
            Value::Str(s) => Some(Datum::string(&s.borrow())),
            Value::Sym(s) => Some(Datum::Sym(*s)),
            Value::Unspecified => None,
            Value::Pair(p) => Some(Datum::cons(
                p.car.borrow().to_datum()?,
                p.cdr.borrow().to_datum()?,
            )),
            Value::Vector(v) => {
                let elems: Option<Vec<Datum>> =
                    v.borrow().iter().map(|e| e.to_datum()).collect();
                Some(Datum::Vector(elems?.into()))
            }
            _ => None,
        }
    }

    /// `eqv?`: identity for compound values, value equality for atoms.
    pub fn eqv(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Unspecified, Value::Unspecified) => true,
            (Value::Nil, Value::Nil) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Char(a), Value::Char(b)) => a == b,
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => Rc::ptr_eq(a, b),
            (Value::Pair(a), Value::Pair(b)) => Rc::ptr_eq(a, b),
            (Value::Vector(a), Value::Vector(b)) => Rc::ptr_eq(a, b),
            (Value::Hash(a), Value::Hash(b)) => Rc::ptr_eq(a, b),
            (Value::Closure(a), Value::Closure(b)) => Rc::ptr_eq(a, b),
            (Value::Native(a), Value::Native(b)) => Rc::ptr_eq(a, b),
            (Value::Syntax(a), Value::Syntax(b)) => Rc::ptr_eq(a, b),
            (Value::Source(a), Value::Source(b)) => a == b,
            _ => false,
        }
    }

    /// `equal?`: deep structural equality.
    pub fn equal(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => *a.borrow() == *b.borrow(),
            (Value::Pair(a), Value::Pair(b)) => {
                a.car.borrow().equal(&b.car.borrow()) && a.cdr.borrow().equal(&b.cdr.borrow())
            }
            (Value::Vector(a), Value::Vector(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.equal(y))
            }
            _ => self.eqv(other),
        }
    }

    /// Name of this value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Unspecified => "unspecified",
            Value::Nil => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) | Value::Float(_) => "number",
            Value::Char(_) => "character",
            Value::Sym(_) => "symbol",
            Value::Str(_) => "string",
            Value::Pair(_) => "pair",
            Value::Vector(_) => "vector",
            Value::Hash(_) => "hashtable",
            Value::Closure(_) | Value::Native(_) => "procedure",
            Value::Syntax(_) => "syntax",
            Value::Source(_) => "source-object",
        }
    }

    /// True for procedures (closures and natives).
    pub fn is_procedure(&self) -> bool {
        matches!(self, Value::Closure(_) | Value::Native(_))
    }

    fn fmt_with(&self, f: &mut fmt::Formatter<'_>, write_mode: bool) -> fmt::Result {
        match self {
            Value::Unspecified => write!(f, "#<void>"),
            Value::Nil => write!(f, "()"),
            Value::Bool(b) => write!(f, "{}", if *b { "#t" } else { "#f" }),
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => write!(f, "{}", Datum::Float(*x)),
            Value::Char(c) => {
                if write_mode {
                    write!(f, "{}", Datum::Char(*c))
                } else {
                    write!(f, "{c}")
                }
            }
            Value::Sym(s) => write!(f, "{s}"),
            Value::Str(s) => {
                if write_mode {
                    write!(f, "{}", Datum::string(&s.borrow()))
                } else {
                    write!(f, "{}", s.borrow())
                }
            }
            Value::Pair(_) => {
                write!(f, "(")?;
                let mut cur = self.clone();
                let mut first = true;
                loop {
                    match cur {
                        Value::Pair(p) => {
                            if !first {
                                write!(f, " ")?;
                            }
                            p.car.borrow().fmt_with(f, write_mode)?;
                            first = false;
                            let next = p.cdr.borrow().clone();
                            cur = next;
                        }
                        Value::Nil => break,
                        other => {
                            write!(f, " . ")?;
                            other.fmt_with(f, write_mode)?;
                            break;
                        }
                    }
                }
                write!(f, ")")
            }
            Value::Vector(v) => {
                write!(f, "#(")?;
                for (i, e) in v.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    e.fmt_with(f, write_mode)?;
                }
                write!(f, ")")
            }
            Value::Hash(h) => write!(f, "#<hashtable of {}>", h.borrow().len()),
            Value::Closure(c) => match c.def.name {
                Some(n) => write!(f, "#<procedure {n}>"),
                None => write!(f, "#<procedure>"),
            },
            Value::Native(n) => write!(f, "#<primitive {}>", n.name),
            Value::Syntax(s) => write!(f, "#<syntax {}>", s.to_datum()),
            Value::Source(s) => write!(f, "#<source {s}>"),
        }
    }
}

impl fmt::Display for Value {
    /// `display` semantics: strings and characters print raw.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with(f, false)
    }
}

impl Value {
    /// `write` semantics: strings quoted, characters in `#\x` form.
    pub fn write_string(&self) -> String {
        struct W<'a>(&'a Value);
        impl fmt::Display for W<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.fmt_with(f, true)
            }
        }
        W(self).to_string()
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Bool(true).is_truthy());
        assert!(Value::Int(0).is_truthy());
        assert!(Value::Nil.is_truthy());
    }

    #[test]
    fn datum_round_trip() {
        let d = Datum::list(vec![Datum::Int(1), Datum::string("s"), Datum::sym("x")]);
        let v = Value::from_datum(&d);
        assert_eq!(v.to_datum().unwrap(), d);
    }

    #[test]
    fn eqv_is_identity_for_pairs() {
        let a = Value::cons(Value::Int(1), Value::Nil);
        let b = Value::cons(Value::Int(1), Value::Nil);
        assert!(!a.eqv(&b));
        assert!(a.eqv(&a.clone()));
        assert!(a.equal(&b));
    }

    #[test]
    fn equal_descends_structures() {
        let a = Value::list(vec![Value::string("x"), Value::Int(2)]);
        let b = Value::list(vec![Value::string("x"), Value::Int(2)]);
        assert!(a.equal(&b));
        let c = Value::list(vec![Value::string("y"), Value::Int(2)]);
        assert!(!a.equal(&c));
    }

    #[test]
    fn display_and_write_differ_on_strings() {
        let v = Value::string("hi");
        assert_eq!(v.to_string(), "hi");
        assert_eq!(v.write_string(), "\"hi\"");
        let c = Value::Char('a');
        assert_eq!(c.to_string(), "a");
        assert_eq!(c.write_string(), "#\\a");
    }

    #[test]
    fn list_elems_rejects_improper() {
        let improper = Value::cons(Value::Int(1), Value::Int(2));
        assert!(improper.list_elems().is_none());
        let proper = Value::list(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(proper.list_elems().unwrap().len(), 2);
    }

    #[test]
    fn hash_keys_round_trip() {
        for v in [
            Value::Sym(Symbol::intern("k")),
            Value::Int(3),
            Value::Char('c'),
            Value::Bool(true),
            Value::string("sk"),
            Value::Nil,
        ] {
            let k = HashKey::from_value(&v).unwrap();
            assert!(k.to_value().equal(&v));
        }
        assert!(HashKey::from_value(&Value::list(vec![Value::Int(1)])).is_none());
    }

    #[test]
    fn improper_list_display() {
        let v = Value::cons(Value::Int(1), Value::Int(2));
        assert_eq!(v.to_string(), "(1 . 2)");
    }
}
