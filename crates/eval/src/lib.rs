//! Core language and evaluator.
//!
//! The macro expander (`pgmp-expander`) lowers fully-expanded programs into
//! the [`Core`] expression language defined here; this crate evaluates it
//! with a tree-walking interpreter that supports proper tail calls and —
//! crucially for the paper — **profile instrumentation**: when a
//! [`pgmp_profiler::ProfileMode`] is active, the interpreter bumps the
//! counter of every executed expression's source object
//! ([`ProfileMode::EveryExpression`], the Chez Scheme model) or of every
//! procedure call ([`ProfileMode::CallsOnly`], the Racket `errortrace`
//! model).
//!
//! The same interpreter runs *meta-programs*: the expander evaluates
//! `define-syntax` transformers with an [`Interp`] whose globals include the
//! profile-query API, which is how meta-programs observe profile weights at
//! compile time.
//!
//! [`ProfileMode::EveryExpression`]: pgmp_profiler::ProfileMode::EveryExpression
//! [`ProfileMode::CallsOnly`]: pgmp_profiler::ProfileMode::CallsOnly

mod core_expr;
mod env;
mod error;
mod interp;
mod prims;
mod serialize;
mod value;

pub use core_expr::{resolve_profile_slots, Core, CoreKind, LambdaDef};
pub use serialize::{
    core_from_datum, core_from_datum_with, core_to_datum, core_to_datum_with, StringTable,
};
pub use env::Frame;
pub use error::{EvalError, EvalErrorKind};
pub use interp::Interp;
pub use prims::{install_primitives, value_to_syntax};
pub use value::{Closure, HashKey, Native, NativeFn, PairCell, QuickOp, Value};
