//! Hashtable primitives (Chez-style names, as used in Figure 13).

use crate::error::EvalError;
use crate::interp::Interp;
use crate::value::{HashKey, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

fn want_hash(v: &Value) -> Result<Rc<RefCell<HashMap<HashKey, Value>>>, EvalError> {
    match v {
        Value::Hash(h) => Ok(h.clone()),
        other => Err(EvalError::type_error("hashtable", other)),
    }
}

fn want_key(v: &Value) -> Result<HashKey, EvalError> {
    HashKey::from_value(v)
        .ok_or_else(|| EvalError::type_error("hashable key (symbol, number, char, bool, string)", v))
}

pub(super) fn install(interp: &mut Interp) {
    for name in ["make-eq-hashtable", "make-equal-hashtable", "make-hashtable"] {
        interp.define_native(name, 0, Some(2), |_, _| {
            Ok(Value::Hash(Rc::new(RefCell::new(HashMap::new()))))
        });
    }
    interp.define_native("hashtable?", 1, Some(1), |_, args| {
        Ok(Value::Bool(matches!(args[0], Value::Hash(_))))
    });
    interp.define_native("hashtable-set!", 3, Some(3), |_, args| {
        let h = want_hash(&args[0])?;
        let k = want_key(&args[1])?;
        h.borrow_mut().insert(k, args[2].clone());
        Ok(Value::Unspecified)
    });
    // (hashtable-ref ht key default)
    interp.define_native("hashtable-ref", 2, Some(3), |_, args| {
        let h = want_hash(&args[0])?;
        let k = want_key(&args[1])?;
        let default = args.get(2).cloned().unwrap_or(Value::Bool(false));
        let v = h.borrow().get(&k).cloned().unwrap_or(default);
        Ok(v)
    });
    interp.define_native("hashtable-contains?", 2, Some(2), |_, args| {
        let h = want_hash(&args[0])?;
        let k = want_key(&args[1])?;
        let present = h.borrow().contains_key(&k);
        Ok(Value::Bool(present))
    });
    interp.define_native("hashtable-delete!", 2, Some(2), |_, args| {
        let h = want_hash(&args[0])?;
        let k = want_key(&args[1])?;
        h.borrow_mut().remove(&k);
        Ok(Value::Unspecified)
    });
    interp.define_native("hashtable-size", 1, Some(1), |_, args| {
        Ok(Value::Int(want_hash(&args[0])?.borrow().len() as i64))
    });
    interp.define_native("hashtable-keys", 1, Some(1), |_, args| {
        let h = want_hash(&args[0])?;
        let mut keys: Vec<Value> = h.borrow().keys().map(HashKey::to_value).collect();
        keys.sort_by_key(|k| k.write_string());
        Ok(Value::list(keys))
    });
    interp.define_native("hashtable->alist", 1, Some(1), |_, args| {
        let h = want_hash(&args[0])?;
        let mut entries: Vec<(String, Value)> = h
            .borrow()
            .iter()
            .map(|(k, v)| (k.to_value().write_string(), Value::cons(k.to_value(), v.clone())))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Value::list(entries.into_iter().map(|(_, v)| v).collect()))
    });
    // (hashtable-update! ht key proc default)
    interp.define_native("hashtable-update!", 4, Some(4), |interp, args| {
        let h = want_hash(&args[0])?;
        let k = want_key(&args[1])?;
        let proc = args[2].clone();
        let cur = h.borrow().get(&k).cloned().unwrap_or_else(|| args[3].clone());
        let new = interp.apply(&proc, vec![cur])?;
        h.borrow_mut().insert(k, new);
        Ok(Value::Unspecified)
    });
}

#[cfg(test)]
mod tests {
    use crate::error::EvalError;
    use crate::interp::Interp;
    use crate::prims::install_primitives;
    use crate::value::Value;
    use pgmp_syntax::Symbol;

    fn with_interp<R>(f: impl FnOnce(&mut Interp) -> R) -> R {
        let mut i = Interp::new();
        install_primitives(&mut i);
        f(&mut i)
    }

    fn call(i: &mut Interp, name: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        let f = i.global(Symbol::intern(name)).cloned().unwrap();
        i.apply(&f, args)
    }

    fn sym(s: &str) -> Value {
        Value::Sym(Symbol::intern(s))
    }

    #[test]
    fn set_ref_contains_delete() {
        with_interp(|i| {
            let h = call(i, "make-eq-hashtable", vec![]).unwrap();
            call(i, "hashtable-set!", vec![h.clone(), sym("car"), Value::Int(1)]).unwrap();
            assert_eq!(
                call(i, "hashtable-ref", vec![h.clone(), sym("car"), Value::Int(0)])
                    .unwrap()
                    .to_string(),
                "1"
            );
            assert_eq!(
                call(i, "hashtable-ref", vec![h.clone(), sym("cdr"), Value::Int(0)])
                    .unwrap()
                    .to_string(),
                "0"
            );
            assert_eq!(
                call(i, "hashtable-contains?", vec![h.clone(), sym("car")]).unwrap().to_string(),
                "#t"
            );
            call(i, "hashtable-delete!", vec![h.clone(), sym("car")]).unwrap();
            assert_eq!(
                call(i, "hashtable-contains?", vec![h.clone(), sym("car")]).unwrap().to_string(),
                "#f"
            );
            assert_eq!(call(i, "hashtable-size", vec![h]).unwrap().to_string(), "0");
        });
    }

    #[test]
    fn string_keys_are_copied() {
        with_interp(|i| {
            let h = call(i, "make-equal-hashtable", vec![]).unwrap();
            let key = Value::string("k");
            call(i, "hashtable-set!", vec![h.clone(), key.clone(), Value::Int(1)]).unwrap();
            // Mutating the original string value must not orphan the entry.
            if let Value::Str(s) = &key {
                s.borrow_mut().push('!');
            }
            assert_eq!(
                call(i, "hashtable-ref", vec![h, Value::string("k"), Value::Int(0)])
                    .unwrap()
                    .to_string(),
                "1"
            );
        });
    }

    #[test]
    fn keys_listing_is_deterministic() {
        with_interp(|i| {
            let h = call(i, "make-eq-hashtable", vec![]).unwrap();
            for k in ["b", "a", "c"] {
                call(i, "hashtable-set!", vec![h.clone(), sym(k), Value::Int(0)]).unwrap();
            }
            assert_eq!(call(i, "hashtable-keys", vec![h]).unwrap().to_string(), "(a b c)");
        });
    }

    #[test]
    fn update_with_procedure() {
        with_interp(|i| {
            let h = call(i, "make-eq-hashtable", vec![]).unwrap();
            let add1 = i.global(Symbol::intern("add1")).cloned().unwrap();
            call(
                i,
                "hashtable-update!",
                vec![h.clone(), sym("n"), add1.clone(), Value::Int(0)],
            )
            .unwrap();
            call(i, "hashtable-update!", vec![h.clone(), sym("n"), add1, Value::Int(0)]).unwrap();
            assert_eq!(
                call(i, "hashtable-ref", vec![h, sym("n"), Value::Int(-1)]).unwrap().to_string(),
                "2"
            );
        });
    }

    #[test]
    fn unhashable_keys_rejected() {
        with_interp(|i| {
            let h = call(i, "make-eq-hashtable", vec![]).unwrap();
            let key = Value::list(vec![Value::Int(1)]);
            assert!(call(i, "hashtable-set!", vec![h, key, Value::Int(1)]).is_err());
        });
    }
}
