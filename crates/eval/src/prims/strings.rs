//! String, character, and symbol primitives.

use super::{runtime_error, want_char, want_index, want_string, want_symbol};
use crate::interp::Interp;
use crate::value::Value;
use pgmp_syntax::Symbol;

pub(super) fn install(interp: &mut Interp) {
    interp.define_native("string?", 1, Some(1), |_, args| {
        Ok(Value::Bool(matches!(args[0], Value::Str(_))))
    });
    interp.define_native("string-length", 1, Some(1), |_, args| {
        Ok(Value::Int(want_string(&args[0])?.chars().count() as i64))
    });
    interp.define_native("string-ref", 2, Some(2), |_, args| {
        let s = want_string(&args[0])?;
        let i = want_index(&args[1])?;
        s.chars()
            .nth(i)
            .map(Value::Char)
            .ok_or_else(|| runtime_error(format!("string-ref: index {i} out of range")))
    });
    interp.define_native("substring", 3, Some(3), |_, args| {
        let s = want_string(&args[0])?;
        let start = want_index(&args[1])?;
        let end = want_index(&args[2])?;
        let chars: Vec<char> = s.chars().collect();
        if start > end || end > chars.len() {
            return Err(runtime_error(format!(
                "substring: bad range {start}..{end} for length {}",
                chars.len()
            )));
        }
        Ok(Value::string(&chars[start..end].iter().collect::<String>()))
    });
    interp.define_native("string-append", 0, None, |_, args| {
        let mut out = String::new();
        for a in &args {
            out.push_str(&want_string(a)?);
        }
        Ok(Value::string(&out))
    });
    interp.define_native("string=?", 2, None, |_, args| {
        let first = want_string(&args[0])?;
        for a in &args[1..] {
            if want_string(a)? != first {
                return Ok(Value::Bool(false));
            }
        }
        Ok(Value::Bool(true))
    });
    interp.define_native("string<?", 2, Some(2), |_, args| {
        Ok(Value::Bool(want_string(&args[0])? < want_string(&args[1])?))
    });
    interp.define_native("string-contains?", 2, Some(2), |_, args| {
        Ok(Value::Bool(
            want_string(&args[0])?.contains(&want_string(&args[1])?),
        ))
    });
    interp.define_native("string-upcase", 1, Some(1), |_, args| {
        Ok(Value::string(&want_string(&args[0])?.to_uppercase()))
    });
    interp.define_native("string-downcase", 1, Some(1), |_, args| {
        Ok(Value::string(&want_string(&args[0])?.to_lowercase()))
    });
    interp.define_native("string->list", 1, Some(1), |_, args| {
        Ok(Value::list(
            want_string(&args[0])?.chars().map(Value::Char).collect(),
        ))
    });
    interp.define_native("list->string", 1, Some(1), |_, args| {
        let mut out = String::new();
        for c in super::want_list(&args[0])? {
            out.push(want_char(&c)?);
        }
        Ok(Value::string(&out))
    });
    interp.define_native("string-copy", 1, Some(1), |_, args| {
        Ok(Value::string(&want_string(&args[0])?))
    });
    interp.define_native("make-string", 1, Some(2), |_, args| {
        let n = want_index(&args[0])?;
        let c = match args.get(1) {
            Some(v) => want_char(v)?,
            None => ' ',
        };
        Ok(Value::string(&c.to_string().repeat(n)))
    });
    interp.define_native("string", 0, None, |_, args| {
        let mut out = String::new();
        for a in &args {
            out.push(want_char(a)?);
        }
        Ok(Value::string(&out))
    });
    interp.define_native("symbol->string", 1, Some(1), |_, args| {
        Ok(Value::string(want_symbol(&args[0])?.as_str()))
    });
    interp.define_native("string->symbol", 1, Some(1), |_, args| {
        Ok(Value::Sym(Symbol::intern(&want_string(&args[0])?)))
    });
    interp.define_native("gensym", 0, Some(1), |_, args| {
        let base = match args.first() {
            Some(Value::Str(s)) => s.borrow().clone(),
            Some(Value::Sym(s)) => s.as_str().to_owned(),
            Some(other) => return Err(crate::error::EvalError::type_error("string or symbol", other)),
            None => "g".to_owned(),
        };
        Ok(Value::Sym(Symbol::gensym(&base)))
    });

    interp.define_native("char?", 1, Some(1), |_, args| {
        Ok(Value::Bool(matches!(args[0], Value::Char(_))))
    });
    interp.define_native("char=?", 2, None, |_, args| {
        let first = want_char(&args[0])?;
        for a in &args[1..] {
            if want_char(a)? != first {
                return Ok(Value::Bool(false));
            }
        }
        Ok(Value::Bool(true))
    });
    interp.define_native("char<?", 2, Some(2), |_, args| {
        Ok(Value::Bool(want_char(&args[0])? < want_char(&args[1])?))
    });
    interp.define_native("char->integer", 1, Some(1), |_, args| {
        Ok(Value::Int(want_char(&args[0])? as i64))
    });
    interp.define_native("integer->char", 1, Some(1), |_, args| {
        let n = super::want_int(&args[0])?;
        u32::try_from(n)
            .ok()
            .and_then(char::from_u32)
            .map(Value::Char)
            .ok_or_else(|| runtime_error(format!("integer->char: {n} is not a scalar value")))
    });
    interp.define_native("char-alphabetic?", 1, Some(1), |_, args| {
        Ok(Value::Bool(want_char(&args[0])?.is_alphabetic()))
    });
    interp.define_native("char-numeric?", 1, Some(1), |_, args| {
        Ok(Value::Bool(want_char(&args[0])?.is_numeric()))
    });
    interp.define_native("char-whitespace?", 1, Some(1), |_, args| {
        Ok(Value::Bool(want_char(&args[0])?.is_whitespace()))
    });
    interp.define_native("char-upcase", 1, Some(1), |_, args| {
        Ok(Value::Char(want_char(&args[0])?.to_ascii_uppercase()))
    });
    interp.define_native("char-downcase", 1, Some(1), |_, args| {
        Ok(Value::Char(want_char(&args[0])?.to_ascii_lowercase()))
    });
}

#[cfg(test)]
mod tests {
    use crate::error::EvalError;
    use crate::interp::Interp;
    use crate::prims::install_primitives;
    use crate::value::Value;
    use pgmp_syntax::Symbol;

    fn call(name: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        let mut i = Interp::new();
        install_primitives(&mut i);
        let f = i.global(Symbol::intern(name)).cloned().unwrap();
        i.apply(&f, args)
    }

    #[test]
    fn basic_string_ops() {
        assert_eq!(call("string-length", vec![Value::string("abc")]).unwrap().to_string(), "3");
        assert_eq!(
            call("string-append", vec![Value::string("ab"), Value::string("cd")])
                .unwrap()
                .to_string(),
            "abcd"
        );
        assert_eq!(
            call("substring", vec![Value::string("hello"), Value::Int(1), Value::Int(3)])
                .unwrap()
                .to_string(),
            "el"
        );
        assert!(call("substring", vec![Value::string("hi"), Value::Int(2), Value::Int(1)]).is_err());
    }

    #[test]
    fn string_contains_for_subject_contains() {
        // The running example's `subject-contains` is built on this.
        assert_eq!(
            call(
                "string-contains?",
                vec![Value::string("Re: PLDI paper"), Value::string("PLDI")]
            )
            .unwrap()
            .to_string(),
            "#t"
        );
        assert_eq!(
            call("string-contains?", vec![Value::string("spam"), Value::string("PLDI")])
                .unwrap()
                .to_string(),
            "#f"
        );
    }

    #[test]
    fn symbol_string_round_trip() {
        let v = call("symbol->string", vec![Value::Sym(Symbol::intern("hi"))]).unwrap();
        assert_eq!(v.to_string(), "hi");
        let v = call("string->symbol", vec![Value::string("hi")]).unwrap();
        assert!(matches!(v, Value::Sym(s) if s.as_str() == "hi"));
    }

    #[test]
    fn char_classification() {
        assert_eq!(call("char-numeric?", vec![Value::Char('7')]).unwrap().to_string(), "#t");
        assert_eq!(call("char-alphabetic?", vec![Value::Char('7')]).unwrap().to_string(), "#f");
        assert_eq!(call("char-whitespace?", vec![Value::Char(' ')]).unwrap().to_string(), "#t");
        assert_eq!(call("char->integer", vec![Value::Char('A')]).unwrap().to_string(), "65");
        assert_eq!(call("integer->char", vec![Value::Int(65)]).unwrap().write_string(), "#\\A");
        assert!(call("integer->char", vec![Value::Int(-1)]).is_err());
    }

    #[test]
    fn gensym_produces_fresh_symbols() {
        let a = call("gensym", vec![]).unwrap();
        let b = call("gensym", vec![]).unwrap();
        assert!(!a.eqv(&b));
    }

    #[test]
    fn unicode_string_indexing_is_char_based() {
        assert_eq!(call("string-length", vec![Value::string("héllo")]).unwrap().to_string(), "5");
        assert_eq!(
            call("string-ref", vec![Value::string("héllo"), Value::Int(1)])
                .unwrap()
                .to_string(),
            "é"
        );
    }
}
