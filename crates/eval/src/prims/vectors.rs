//! Vector primitives.

use super::{runtime_error, want_index, want_list, want_procedure};
use crate::error::EvalError;
use crate::interp::Interp;
use crate::value::Value;
use std::cell::RefCell;
use std::rc::Rc;

fn want_vector(v: &Value) -> Result<Rc<RefCell<Vec<Value>>>, EvalError> {
    match v {
        Value::Vector(v) => Ok(v.clone()),
        other => Err(EvalError::type_error("vector", other)),
    }
}

pub(super) fn install(interp: &mut Interp) {
    interp.define_native("vector?", 1, Some(1), |_, args| {
        Ok(Value::Bool(matches!(args[0], Value::Vector(_))))
    });
    interp.define_native("vector", 0, None, |_, args| {
        Ok(Value::Vector(Rc::new(RefCell::new(args))))
    });
    interp.define_native("make-vector", 1, Some(2), |_, args| {
        let n = want_index(&args[0])?;
        let fill = args.get(1).cloned().unwrap_or(Value::Int(0));
        Ok(Value::Vector(Rc::new(RefCell::new(vec![fill; n]))))
    });
    interp.define_native("vector-length", 1, Some(1), |_, args| {
        Ok(Value::Int(want_vector(&args[0])?.borrow().len() as i64))
    });
    interp.define_native("vector-ref", 2, Some(2), |_, args| {
        let v = want_vector(&args[0])?;
        let i = want_index(&args[1])?;
        let v = v.borrow();
        v.get(i)
            .cloned()
            .ok_or_else(|| runtime_error(format!("vector-ref: index {i} out of range for length {}", v.len())))
    });
    interp.define_native("vector-set!", 3, Some(3), |_, args| {
        let v = want_vector(&args[0])?;
        let i = want_index(&args[1])?;
        let mut v = v.borrow_mut();
        let len = v.len();
        *v.get_mut(i)
            .ok_or_else(|| runtime_error(format!("vector-set!: index {i} out of range for length {len}")))? =
            args[2].clone();
        Ok(Value::Unspecified)
    });
    interp.define_native("vector-fill!", 2, Some(2), |_, args| {
        let v = want_vector(&args[0])?;
        for slot in v.borrow_mut().iter_mut() {
            *slot = args[1].clone();
        }
        Ok(Value::Unspecified)
    });
    interp.define_native("vector-copy", 1, Some(1), |_, args| {
        let v = want_vector(&args[0])?;
        let copy = v.borrow().clone();
        Ok(Value::Vector(Rc::new(RefCell::new(copy))))
    });
    interp.define_native("vector->list", 1, Some(1), |_, args| {
        Ok(Value::list(want_vector(&args[0])?.borrow().clone()))
    });
    interp.define_native("list->vector", 1, Some(1), |_, args| {
        Ok(Value::Vector(Rc::new(RefCell::new(want_list(&args[0])?))))
    });
    interp.define_native("vector-map", 2, Some(2), |interp, args| {
        let f = args[0].clone();
        want_procedure(&f)?;
        let v = want_vector(&args[1])?;
        let snapshot = v.borrow().clone();
        let mut out = Vec::with_capacity(snapshot.len());
        for e in snapshot {
            out.push(interp.apply(&f, vec![e])?);
        }
        Ok(Value::Vector(Rc::new(RefCell::new(out))))
    });
    interp.define_native("vector-for-each", 2, Some(2), |interp, args| {
        let f = args[0].clone();
        want_procedure(&f)?;
        let v = want_vector(&args[1])?;
        let snapshot = v.borrow().clone();
        for e in snapshot {
            interp.apply(&f, vec![e])?;
        }
        Ok(Value::Unspecified)
    });
}

#[cfg(test)]
mod tests {
    use crate::error::EvalError;
    use crate::interp::Interp;
    use crate::prims::install_primitives;
    use crate::value::Value;
    use pgmp_syntax::Symbol;

    fn with_interp<R>(f: impl FnOnce(&mut Interp) -> R) -> R {
        let mut i = Interp::new();
        install_primitives(&mut i);
        f(&mut i)
    }

    fn call(i: &mut Interp, name: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        let f = i.global(Symbol::intern(name)).cloned().unwrap();
        i.apply(&f, args)
    }

    #[test]
    fn construct_ref_set() {
        with_interp(|i| {
            let v = call(i, "make-vector", vec![Value::Int(3), Value::Int(7)]).unwrap();
            assert_eq!(v.to_string(), "#(7 7 7)");
            call(i, "vector-set!", vec![v.clone(), Value::Int(1), Value::Int(9)]).unwrap();
            assert_eq!(
                call(i, "vector-ref", vec![v.clone(), Value::Int(1)]).unwrap().to_string(),
                "9"
            );
            assert_eq!(call(i, "vector-length", vec![v]).unwrap().to_string(), "3");
        });
    }

    #[test]
    fn list_vector_round_trip() {
        with_interp(|i| {
            let lst = Value::list(vec![Value::Int(1), Value::Int(2)]);
            let v = call(i, "list->vector", vec![lst]).unwrap();
            assert_eq!(v.to_string(), "#(1 2)");
            let back = call(i, "vector->list", vec![v]).unwrap();
            assert_eq!(back.to_string(), "(1 2)");
        });
    }

    #[test]
    fn vector_map_applies() {
        with_interp(|i| {
            let v = call(i, "vector", vec![Value::Int(1), Value::Int(2)]).unwrap();
            let add1 = i.global(Symbol::intern("add1")).cloned().unwrap();
            let mapped = call(i, "vector-map", vec![add1, v]).unwrap();
            assert_eq!(mapped.to_string(), "#(2 3)");
        });
    }

    #[test]
    fn out_of_range_errors() {
        with_interp(|i| {
            let v = call(i, "vector", vec![Value::Int(1)]).unwrap();
            assert!(call(i, "vector-ref", vec![v.clone(), Value::Int(5)]).is_err());
            assert!(call(i, "vector-set!", vec![v, Value::Int(5), Value::Int(0)]).is_err());
        });
    }

    #[test]
    fn copy_is_independent() {
        with_interp(|i| {
            let v = call(i, "vector", vec![Value::Int(1)]).unwrap();
            let c = call(i, "vector-copy", vec![v.clone()]).unwrap();
            call(i, "vector-set!", vec![v, Value::Int(0), Value::Int(9)]).unwrap();
            assert_eq!(c.to_string(), "#(1)");
        });
    }
}
