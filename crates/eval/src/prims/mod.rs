//! Native primitives: the standard library of the object language.
//!
//! Installed into an [`Interp`]'s global environment by
//! [`install_primitives`]. The set covers what the paper's case studies and
//! our benchmark workloads need: pairs/lists, vectors, strings, characters,
//! hashtables, arithmetic, higher-order control (`apply`, `map`, `sort`,
//! `curry`), I/O capture (`display`, `printf`), and syntax-object
//! operations for meta-programs.

mod arith;
mod control;
mod hash;
mod lists;
mod strings;
mod syntax_ops;

pub use syntax_ops::value_to_syntax;
mod vectors;

use crate::error::EvalError;
use crate::interp::Interp;
use crate::value::Value;

/// Installs every primitive into `interp`'s global environment.
///
/// # Example
///
/// ```
/// use pgmp_eval::{install_primitives, Interp, Value};
/// use pgmp_syntax::Symbol;
/// let mut interp = Interp::new();
/// install_primitives(&mut interp);
/// let plus = interp.global(Symbol::intern("+")).cloned().unwrap();
/// let v = interp.apply(&plus, vec![Value::Int(2), Value::Int(3)])?;
/// assert_eq!(v.to_string(), "5");
/// # Ok::<(), pgmp_eval::EvalError>(())
/// ```
pub fn install_primitives(interp: &mut Interp) {
    arith::install(interp);
    lists::install(interp);
    strings::install(interp);
    vectors::install(interp);
    hash::install(interp);
    control::install(interp);
    syntax_ops::install(interp);
}

pub(crate) fn want_int(v: &Value) -> Result<i64, EvalError> {
    match v {
        Value::Int(n) => Ok(*n),
        other => Err(EvalError::type_error("integer", other)),
    }
}

pub(crate) fn want_index(v: &Value) -> Result<usize, EvalError> {
    let n = want_int(v)?;
    usize::try_from(n).map_err(|_| {
        EvalError::new(
            crate::error::EvalErrorKind::Runtime,
            format!("index must be non-negative, got {n}"),
        )
    })
}

pub(crate) fn want_char(v: &Value) -> Result<char, EvalError> {
    match v {
        Value::Char(c) => Ok(*c),
        other => Err(EvalError::type_error("character", other)),
    }
}

pub(crate) fn want_string(v: &Value) -> Result<String, EvalError> {
    match v {
        Value::Str(s) => Ok(s.borrow().clone()),
        other => Err(EvalError::type_error("string", other)),
    }
}

pub(crate) fn want_symbol(v: &Value) -> Result<pgmp_syntax::Symbol, EvalError> {
    match v {
        Value::Sym(s) => Ok(*s),
        other => Err(EvalError::type_error("symbol", other)),
    }
}

pub(crate) fn want_list(v: &Value) -> Result<Vec<Value>, EvalError> {
    v.list_elems()
        .ok_or_else(|| EvalError::type_error("proper list", v))
}

pub(crate) fn want_procedure(v: &Value) -> Result<&Value, EvalError> {
    if v.is_procedure() {
        Ok(v)
    } else {
        Err(EvalError::type_error("procedure", v))
    }
}

pub(crate) fn runtime_error(msg: impl Into<String>) -> EvalError {
    EvalError::new(crate::error::EvalErrorKind::Runtime, msg)
}
