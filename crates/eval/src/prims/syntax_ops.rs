//! Syntax-object primitives available to meta-programs.
//!
//! The profile-specific operations (`make-profile-point`, `annotate-expr`,
//! `profile-query`, …) are installed by the `pgmp` engine, since they close
//! over engine state; this module provides the profile-agnostic syntax
//! operations.

use crate::error::EvalError;
use crate::interp::Interp;
use crate::value::Value;
use pgmp_syntax::{Syntax, SyntaxBody};
use std::rc::Rc;

fn want_syntax(v: &Value) -> Result<Rc<Syntax>, EvalError> {
    match v {
        Value::Syntax(s) => Ok(s.clone()),
        other => Err(EvalError::type_error("syntax", other)),
    }
}

/// Converts a runtime value into a syntax object in the context of `ctx`:
/// embedded syntax objects pass through untouched, everything else is
/// wrapped with `ctx`'s source and marks.
///
/// This is the engine behind both the `datum->syntax` primitive and the
/// expander's template splicing (`#,` / `#,@`).
pub fn value_to_syntax(ctx: &Syntax, v: &Value) -> Result<Syntax, EvalError> {
    match v {
        Value::Syntax(s) => Ok((**s).clone()),
        Value::Pair(_) | Value::Nil => {
            let mut elems = Vec::new();
            let mut cur = v.clone();
            loop {
                match cur {
                    Value::Nil => {
                        let mut out = Syntax::new(SyntaxBody::List(elems), ctx.source);
                        out.marks = ctx.marks.clone();
                        return Ok(out);
                    }
                    Value::Pair(p) => {
                        elems.push(Rc::new(value_to_syntax(ctx, &p.car.borrow())?));
                        let next = p.cdr.borrow().clone();
                        cur = next;
                    }
                    tail => {
                        let tail = Rc::new(value_to_syntax(ctx, &tail)?);
                        let mut out = Syntax::new(SyntaxBody::Improper(elems, tail), ctx.source);
                        out.marks = ctx.marks.clone();
                        return Ok(out);
                    }
                }
            }
        }
        Value::Vector(elems) => {
            let elems: Result<Vec<Rc<Syntax>>, EvalError> = elems
                .borrow()
                .iter()
                .map(|e| value_to_syntax(ctx, e).map(Rc::new))
                .collect();
            let mut out = Syntax::new(SyntaxBody::Vector(elems?), ctx.source);
            out.marks = ctx.marks.clone();
            Ok(out)
        }
        other => {
            let d = other
                .to_datum()
                .ok_or_else(|| EvalError::type_error("datum-convertible value", other))?;
            let mut out = Syntax::atom(d, ctx.source);
            out.marks = ctx.marks.clone();
            Ok(out)
        }
    }
}

/// Converts a syntax object to a value whose leaves are plain data — i.e.
/// `syntax->datum` lifted to values.
fn syntax_to_value(s: &Syntax) -> Value {
    Value::from_datum(&s.to_datum())
}

pub(super) fn install(interp: &mut Interp) {
    interp.define_native("syntax?", 1, Some(1), |_, args| {
        Ok(Value::Bool(matches!(args[0], Value::Syntax(_))))
    });
    interp.define_native("identifier?", 1, Some(1), |_, args| {
        Ok(Value::Bool(match &args[0] {
            Value::Syntax(s) => s.is_identifier(),
            _ => false,
        }))
    });
    interp.define_native("syntax->datum", 1, Some(1), |_, args| {
        let s = want_syntax(&args[0])?;
        Ok(syntax_to_value(&s))
    });
    interp.define_native("datum->syntax", 2, Some(2), |_, args| {
        let ctx = want_syntax(&args[0])?;
        Ok(Value::Syntax(Rc::new(value_to_syntax(&ctx, &args[1])?)))
    });
    // Returns the elements of a list-shaped syntax object as a list of
    // syntax objects, or #f if the syntax is not a proper list.
    interp.define_native("syntax->list", 1, Some(1), |_, args| {
        let s = want_syntax(&args[0])?;
        match s.as_list() {
            Some(elems) => Ok(Value::list(
                elems.iter().map(|e| Value::Syntax(e.clone())).collect(),
            )),
            None => Ok(Value::Bool(false)),
        }
    });
    interp.define_native("syntax-source", 1, Some(1), |_, args| {
        let s = want_syntax(&args[0])?;
        Ok(match s.first_source() {
            Some(src) => Value::Source(src),
            None => Value::Bool(false),
        })
    });
    interp.define_native("source-object?", 1, Some(1), |_, args| {
        Ok(Value::Bool(matches!(args[0], Value::Source(_))))
    });
    interp.define_native("bound-identifier=?", 2, Some(2), |_, args| {
        let a = want_syntax(&args[0])?;
        let b = want_syntax(&args[1])?;
        Ok(Value::Bool(a.bound_identifier_eq(&b)))
    });
    // Approximation of free-identifier=?: treats identifiers as equal when
    // they have the same name. Sufficient for literal matching in the case
    // studies; documented as a simplification in DESIGN.md.
    interp.define_native("free-identifier=?", 2, Some(2), |_, args| {
        let a = want_syntax(&args[0])?;
        let b = want_syntax(&args[1])?;
        Ok(Value::Bool(match (a.as_symbol(), b.as_symbol()) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prims::install_primitives;
    use pgmp_syntax::{Datum, Mark, SourceObject, Symbol};

    fn with_interp<R>(f: impl FnOnce(&mut Interp) -> R) -> R {
        let mut i = Interp::new();
        install_primitives(&mut i);
        f(&mut i)
    }

    fn call(i: &mut Interp, name: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        let f = i.global(Symbol::intern(name)).cloned().unwrap();
        i.apply(&f, args)
    }

    fn stx(src: &str) -> Value {
        let forms = pgmp_reader::read_str(src, "t.scm").unwrap();
        Value::Syntax(forms.into_iter().next().unwrap())
    }

    #[test]
    fn syntax_predicates() {
        with_interp(|i| {
            assert_eq!(call(i, "syntax?", vec![stx("(a)")]).unwrap().to_string(), "#t");
            assert_eq!(call(i, "syntax?", vec![Value::Int(1)]).unwrap().to_string(), "#f");
            assert_eq!(call(i, "identifier?", vec![stx("x")]).unwrap().to_string(), "#t");
            assert_eq!(call(i, "identifier?", vec![stx("(x)")]).unwrap().to_string(), "#f");
        });
    }

    #[test]
    fn syntax_datum_round_trip() {
        with_interp(|i| {
            let v = call(i, "syntax->datum", vec![stx("(a 1 \"s\")")]).unwrap();
            assert_eq!(v.write_string(), "(a 1 \"s\")");
        });
    }

    #[test]
    fn datum_to_syntax_takes_context() {
        with_interp(|i| {
            let ctx = stx("here");
            let v = call(i, "datum->syntax", vec![ctx, Value::list(vec![Value::Int(1)])]).unwrap();
            let Value::Syntax(s) = v else { panic!() };
            assert_eq!(s.to_datum().to_string(), "(1)");
            assert!(s.source.is_some(), "context source propagates");
        });
    }

    #[test]
    fn syntax_to_list_splits() {
        with_interp(|i| {
            let v = call(i, "syntax->list", vec![stx("(a b c)")]).unwrap();
            let elems = v.list_elems().unwrap();
            assert_eq!(elems.len(), 3);
            assert!(matches!(&elems[0], Value::Syntax(s) if s.to_datum().to_string() == "a"));
            assert_eq!(call(i, "syntax->list", vec![stx("x")]).unwrap().to_string(), "#f");
        });
    }

    #[test]
    fn syntax_source_finds_profile_point() {
        with_interp(|i| {
            let v = call(i, "syntax-source", vec![stx("(f x)")]).unwrap();
            assert!(matches!(v, Value::Source(s) if s.file.as_str() == "t.scm"));
        });
    }

    #[test]
    fn value_to_syntax_passes_embedded_syntax_through() {
        let ctx = Syntax::ident("ctx", Some(SourceObject::new("c.scm", 0, 3)));
        let inner = Rc::new(Syntax::ident("kept", Some(SourceObject::new("orig.scm", 5, 9))));
        let v = Value::list(vec![Value::Syntax(inner.clone()), Value::Int(2)]);
        let out = value_to_syntax(&ctx, &v).unwrap();
        let elems = out.as_list().unwrap();
        assert_eq!(elems[0].source, inner.source, "embedded syntax keeps its source");
        assert_eq!(elems[1].source, ctx.source, "fresh atoms take context source");
    }

    #[test]
    fn value_to_syntax_applies_context_marks() {
        let ctx = Syntax::ident("ctx", None).apply_mark(Mark(3));
        let out = value_to_syntax(&ctx, &Value::Sym(Symbol::intern("fresh"))).unwrap();
        assert!(out.marks.contains(Mark(3)));
    }

    #[test]
    fn value_to_syntax_rejects_procedures() {
        with_interp(|i| {
            let plus = i.global(Symbol::intern("+")).cloned().unwrap();
            let ctx = Syntax::atom(Datum::sym("c"), None);
            assert!(value_to_syntax(&ctx, &plus).is_err());
        });
    }
}
