//! Pair and list primitives, including higher-order ones (`map`, `sort`, …).

use super::{runtime_error, want_index, want_list, want_procedure};
use crate::error::EvalError;
use crate::interp::Interp;
use crate::value::{Native, Value};
use std::rc::Rc;

fn want_pair(v: &Value) -> Result<Rc<crate::value::PairCell>, EvalError> {
    match v {
        Value::Pair(p) => Ok(p.clone()),
        other => Err(EvalError::type_error("pair", other)),
    }
}

/// Stable merge sort whose comparator may fail (it is an object-language
/// procedure).
fn merge_sort(
    interp: &mut Interp,
    mut items: Vec<Value>,
    less: &impl Fn(&mut Interp, &Value, &Value) -> Result<bool, EvalError>,
) -> Result<Vec<Value>, EvalError> {
    let n = items.len();
    if n <= 1 {
        return Ok(items);
    }
    let right = items.split_off(n / 2);
    let left = merge_sort(interp, items, less)?;
    let right = merge_sort(interp, right, less)?;
    let mut out = Vec::with_capacity(n);
    let (mut li, mut ri) = (0, 0);
    while li < left.len() && ri < right.len() {
        // Stable: take from the left unless the right is strictly smaller.
        if less(interp, &right[ri], &left[li])? {
            out.push(right[ri].clone());
            ri += 1;
        } else {
            out.push(left[li].clone());
            li += 1;
        }
    }
    out.extend_from_slice(&left[li..]);
    out.extend_from_slice(&right[ri..]);
    Ok(out)
}

pub(super) fn install(interp: &mut Interp) {
    interp.define_native("cons", 2, Some(2), |_, mut args| {
        let cdr = args.pop().expect("arity");
        let car = args.pop().expect("arity");
        Ok(Value::cons(car, cdr))
    });
    interp.define_native("car", 1, Some(1), |_, args| {
        Ok(want_pair(&args[0])?.car.borrow().clone())
    });
    interp.define_native("cdr", 1, Some(1), |_, args| {
        Ok(want_pair(&args[0])?.cdr.borrow().clone())
    });
    interp.define_native("cadr", 1, Some(1), |_, args| {
        let cdr = want_pair(&args[0])?.cdr.borrow().clone();
        Ok(want_pair(&cdr)?.car.borrow().clone())
    });
    interp.define_native("cddr", 1, Some(1), |_, args| {
        let cdr = want_pair(&args[0])?.cdr.borrow().clone();
        Ok(want_pair(&cdr)?.cdr.borrow().clone())
    });
    interp.define_native("caddr", 1, Some(1), |_, args| {
        let cdr = want_pair(&args[0])?.cdr.borrow().clone();
        let cddr = want_pair(&cdr)?.cdr.borrow().clone();
        Ok(want_pair(&cddr)?.car.borrow().clone())
    });
    interp.define_native("set-car!", 2, Some(2), |_, mut args| {
        let v = args.pop().expect("arity");
        *want_pair(&args[0])?.car.borrow_mut() = v;
        Ok(Value::Unspecified)
    });
    interp.define_native("set-cdr!", 2, Some(2), |_, mut args| {
        let v = args.pop().expect("arity");
        *want_pair(&args[0])?.cdr.borrow_mut() = v;
        Ok(Value::Unspecified)
    });
    interp.define_native("pair?", 1, Some(1), |_, args| {
        Ok(Value::Bool(matches!(args[0], Value::Pair(_))))
    });
    interp.define_native("null?", 1, Some(1), |_, args| {
        Ok(Value::Bool(matches!(args[0], Value::Nil)))
    });
    interp.define_native("list?", 1, Some(1), |_, args| {
        Ok(Value::Bool(args[0].list_elems().is_some()))
    });
    interp.define_native("list", 0, None, |_, args| Ok(Value::list(args)));
    interp.define_native("length", 1, Some(1), |_, args| {
        Ok(Value::Int(want_list(&args[0])?.len() as i64))
    });
    interp.define_native("append", 0, None, |_, args| {
        let Some((last, init)) = args.split_last() else {
            return Ok(Value::Nil);
        };
        let mut elems = Vec::new();
        for a in init {
            elems.extend(want_list(a)?);
        }
        let mut acc = last.clone();
        for e in elems.into_iter().rev() {
            acc = Value::cons(e, acc);
        }
        Ok(acc)
    });
    interp.define_native("reverse", 1, Some(1), |_, args| {
        let mut elems = want_list(&args[0])?;
        elems.reverse();
        Ok(Value::list(elems))
    });
    interp.define_native("list-ref", 2, Some(2), |_, args| {
        let elems = want_list(&args[0])?;
        let i = want_index(&args[1])?;
        elems
            .get(i)
            .cloned()
            .ok_or_else(|| runtime_error(format!("list-ref: index {i} out of range")))
    });
    interp.define_native("list-tail", 2, Some(2), |_, args| {
        let elems = want_list(&args[0])?;
        let i = want_index(&args[1])?;
        if i > elems.len() {
            return Err(runtime_error(format!("list-tail: index {i} out of range")));
        }
        Ok(Value::list(elems[i..].to_vec()))
    });
    interp.define_native("last", 1, Some(1), |_, args| {
        want_list(&args[0])?
            .pop()
            .ok_or_else(|| runtime_error("last: empty list"))
    });
    interp.define_native("take", 2, Some(2), |_, args| {
        let elems = want_list(&args[0])?;
        let n = want_index(&args[1])?;
        Ok(Value::list(elems.into_iter().take(n).collect()))
    });
    interp.define_native("list-copy", 1, Some(1), |_, args| {
        Ok(Value::list(want_list(&args[0])?))
    });
    interp.define_native("iota", 1, Some(3), |_, args| {
        let n = want_index(&args[0])? as i64;
        let start = match args.get(1) {
            Some(v) => super::want_int(v)?,
            None => 0,
        };
        let step = match args.get(2) {
            Some(v) => super::want_int(v)?,
            None => 1,
        };
        Ok(Value::list(
            (0..n).map(|i| Value::Int(start + i * step)).collect(),
        ))
    });

    // Membership and association with the three equality predicates.
    fn mem(args: &[Value], eq: fn(&Value, &Value) -> bool) -> Result<Value, EvalError> {
        let mut cur = args[1].clone();
        loop {
            match cur {
                Value::Nil => return Ok(Value::Bool(false)),
                Value::Pair(p) => {
                    if eq(&p.car.borrow(), &args[0]) {
                        return Ok(Value::Pair(p));
                    }
                    let next = p.cdr.borrow().clone();
                    cur = next;
                }
                other => return Err(EvalError::type_error("proper list", &other)),
            }
        }
    }
    fn ass(args: &[Value], eq: fn(&Value, &Value) -> bool) -> Result<Value, EvalError> {
        for entry in want_list(&args[1])? {
            let p = want_pair(&entry)?;
            if eq(&p.car.borrow(), &args[0]) {
                return Ok(Value::Pair(p));
            }
        }
        Ok(Value::Bool(false))
    }
    interp.define_native("memq", 2, Some(2), |_, args| mem(&args, Value::eqv));
    interp.define_native("memv", 2, Some(2), |_, args| mem(&args, Value::eqv));
    interp.define_native("member", 2, Some(2), |_, args| mem(&args, Value::equal));
    interp.define_native("assq", 2, Some(2), |_, args| ass(&args, Value::eqv));
    interp.define_native("assv", 2, Some(2), |_, args| ass(&args, Value::eqv));
    interp.define_native("assoc", 2, Some(2), |_, args| ass(&args, Value::equal));

    interp.define_native("map", 2, None, |interp, args| {
        let f = args[0].clone();
        want_procedure(&f)?;
        let lists: Vec<Vec<Value>> = args[1..]
            .iter()
            .map(want_list)
            .collect::<Result<_, _>>()?;
        let n = lists.iter().map(Vec::len).min().unwrap_or(0);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let row: Vec<Value> = lists.iter().map(|l| l[i].clone()).collect();
            out.push(interp.apply(&f, row)?);
        }
        Ok(Value::list(out))
    });
    interp.define_native("for-each", 2, None, |interp, args| {
        let f = args[0].clone();
        want_procedure(&f)?;
        let lists: Vec<Vec<Value>> = args[1..]
            .iter()
            .map(want_list)
            .collect::<Result<_, _>>()?;
        let n = lists.iter().map(Vec::len).min().unwrap_or(0);
        for i in 0..n {
            let row: Vec<Value> = lists.iter().map(|l| l[i].clone()).collect();
            interp.apply(&f, row)?;
        }
        Ok(Value::Unspecified)
    });
    interp.define_native("filter", 2, Some(2), |interp, args| {
        let f = args[0].clone();
        want_procedure(&f)?;
        let mut out = Vec::new();
        for e in want_list(&args[1])? {
            if interp.apply(&f, vec![e.clone()])?.is_truthy() {
                out.push(e);
            }
        }
        Ok(Value::list(out))
    });
    interp.define_native("fold-left", 3, Some(3), |interp, args| {
        let f = args[0].clone();
        want_procedure(&f)?;
        let mut acc = args[1].clone();
        for e in want_list(&args[2])? {
            acc = interp.apply(&f, vec![acc, e])?;
        }
        Ok(acc)
    });
    interp.define_native("fold-right", 3, Some(3), |interp, args| {
        let f = args[0].clone();
        want_procedure(&f)?;
        let mut acc = args[1].clone();
        for e in want_list(&args[2])?.into_iter().rev() {
            acc = interp.apply(&f, vec![e, acc])?;
        }
        Ok(acc)
    });
    // (sort lst less?) — stable.
    interp.define_native("sort", 2, Some(2), |interp, args| {
        let items = want_list(&args[0])?;
        let less = args[1].clone();
        want_procedure(&less)?;
        let sorted = merge_sort(interp, items, &|interp, a, b| {
            Ok(interp.apply(&less, vec![a.clone(), b.clone()])?.is_truthy())
        })?;
        Ok(Value::list(sorted))
    });
    // (sort-by lst less? key) — our spelling of Racket's `sort … #:key`.
    interp.define_native("sort-by", 3, Some(3), |interp, args| {
        let items = want_list(&args[0])?;
        let less = args[1].clone();
        let key = args[2].clone();
        want_procedure(&less)?;
        want_procedure(&key)?;
        let sorted = merge_sort(interp, items, &|interp, a, b| {
            let ka = interp.apply(&key, vec![a.clone()])?;
            let kb = interp.apply(&key, vec![b.clone()])?;
            Ok(interp.apply(&less, vec![ka, kb])?.is_truthy())
        })?;
        Ok(Value::list(sorted))
    });
    // (curry f a …) — partial application, as used in Figure 6.
    interp.define_native("curry", 1, None, |_, mut args| {
        let f = args.remove(0);
        want_procedure(&f)?;
        let pre = args;
        let native = Native {
            name: "curried",
            min_args: 0,
            max_args: None,
            quick: None,
            f: Box::new(move |interp: &mut Interp, more: Vec<Value>| {
                let mut all = pre.clone();
                all.extend(more);
                interp.apply(&f, all)
            }),
        };
        Ok(Value::Native(Rc::new(native)))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prims::install_primitives;
    use pgmp_syntax::Symbol;

    fn with_interp<R>(f: impl FnOnce(&mut Interp) -> R) -> R {
        let mut i = Interp::new();
        install_primitives(&mut i);
        f(&mut i)
    }

    fn call(i: &mut Interp, name: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        let f = i.global(Symbol::intern(name)).cloned().unwrap();
        i.apply(&f, args)
    }

    fn ints(ns: &[i64]) -> Value {
        Value::list(ns.iter().map(|n| Value::Int(*n)).collect())
    }

    #[test]
    fn cons_car_cdr() {
        with_interp(|i| {
            let p = call(i, "cons", vec![Value::Int(1), Value::Int(2)]).unwrap();
            assert_eq!(p.to_string(), "(1 . 2)");
            assert_eq!(call(i, "car", vec![p.clone()]).unwrap().to_string(), "1");
            assert_eq!(call(i, "cdr", vec![p]).unwrap().to_string(), "2");
        });
    }

    #[test]
    fn mutation() {
        with_interp(|i| {
            let p = call(i, "cons", vec![Value::Int(1), Value::Nil]).unwrap();
            call(i, "set-car!", vec![p.clone(), Value::Int(9)]).unwrap();
            assert_eq!(p.to_string(), "(9)");
        });
    }

    #[test]
    fn append_and_reverse() {
        with_interp(|i| {
            let v = call(i, "append", vec![ints(&[1, 2]), ints(&[3])]).unwrap();
            assert_eq!(v.to_string(), "(1 2 3)");
            let r = call(i, "reverse", vec![ints(&[1, 2, 3])]).unwrap();
            assert_eq!(r.to_string(), "(3 2 1)");
            assert_eq!(call(i, "append", vec![]).unwrap().to_string(), "()");
        });
    }

    #[test]
    fn membership() {
        with_interp(|i| {
            let v = call(i, "memv", vec![Value::Int(2), ints(&[1, 2, 3])]).unwrap();
            assert_eq!(v.to_string(), "(2 3)");
            let v = call(i, "memv", vec![Value::Int(9), ints(&[1, 2, 3])]).unwrap();
            assert_eq!(v.to_string(), "#f");
            let lst = Value::list(vec![Value::string("a"), Value::string("b")]);
            let v = call(i, "member", vec![Value::string("b"), lst]).unwrap();
            assert_eq!(v.to_string(), "(b)");
        });
    }

    #[test]
    fn assoc_family() {
        with_interp(|i| {
            let alist = Value::list(vec![
                Value::cons(Value::Sym(Symbol::intern("a")), Value::Int(1)),
                Value::cons(Value::Sym(Symbol::intern("b")), Value::Int(2)),
            ]);
            let hit = call(i, "assq", vec![Value::Sym(Symbol::intern("b")), alist.clone()]).unwrap();
            assert_eq!(hit.to_string(), "(b . 2)");
            let miss = call(i, "assq", vec![Value::Sym(Symbol::intern("z")), alist]).unwrap();
            assert_eq!(miss.to_string(), "#f");
        });
    }

    #[test]
    fn map_over_two_lists_stops_at_shorter() {
        with_interp(|i| {
            let plus = i.global(Symbol::intern("+")).cloned().unwrap();
            let v = call(i, "map", vec![plus, ints(&[1, 2, 3]), ints(&[10, 20])]).unwrap();
            assert_eq!(v.to_string(), "(11 22)");
        });
    }

    #[test]
    fn sort_is_stable_and_ordered() {
        with_interp(|i| {
            let less = i.global(Symbol::intern("<")).cloned().unwrap();
            let v = call(i, "sort", vec![ints(&[3, 1, 2, 1]), less]).unwrap();
            assert_eq!(v.to_string(), "(1 1 2 3)");
        });
    }

    #[test]
    fn sort_by_key() {
        with_interp(|i| {
            let gt = i.global(Symbol::intern(">")).cloned().unwrap();
            let abs = i.global(Symbol::intern("abs")).cloned().unwrap();
            let v = call(i, "sort-by", vec![ints(&[-1, 3, -2]), gt, abs]).unwrap();
            assert_eq!(v.to_string(), "(3 -2 -1)");
        });
    }

    #[test]
    fn curry_partial_application() {
        with_interp(|i| {
            let plus = i.global(Symbol::intern("+")).cloned().unwrap();
            let add10 = call(i, "curry", vec![plus, Value::Int(10)]).unwrap();
            let v = i.apply(&add10, vec![Value::Int(5)]).unwrap();
            assert_eq!(v.to_string(), "15");
        });
    }

    #[test]
    fn iota_and_take() {
        with_interp(|i| {
            assert_eq!(call(i, "iota", vec![Value::Int(3)]).unwrap().to_string(), "(0 1 2)");
            assert_eq!(
                call(i, "iota", vec![Value::Int(3), Value::Int(5), Value::Int(2)])
                    .unwrap()
                    .to_string(),
                "(5 7 9)"
            );
            assert_eq!(
                call(i, "take", vec![ints(&[1, 2, 3]), Value::Int(2)]).unwrap().to_string(),
                "(1 2)"
            );
        });
    }

    #[test]
    fn errors_on_improper_input() {
        with_interp(|i| {
            assert!(call(i, "car", vec![Value::Nil]).is_err());
            assert!(call(i, "length", vec![Value::Int(1)]).is_err());
            let improper = Value::cons(Value::Int(1), Value::Int(2));
            assert!(call(i, "length", vec![improper]).is_err());
            assert!(call(i, "list-ref", vec![ints(&[1]), Value::Int(5)]).is_err());
            assert!(call(i, "list-ref", vec![ints(&[1]), Value::Int(-1)]).is_err());
        });
    }
}
