//! Control, equality, predicates, and output primitives.

use super::{runtime_error, want_list, want_procedure, want_string};
use crate::error::{EvalError, EvalErrorKind};
use crate::interp::Interp;
use crate::value::Value;

/// Expands `~a ~s ~d ~% ~~` directives against `args`, Chez `format`-style.
fn format_directives(fmt: &str, args: &[Value]) -> Result<String, EvalError> {
    let mut out = String::new();
    let mut chars = fmt.chars();
    let mut next = args.iter();
    while let Some(c) = chars.next() {
        if c != '~' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('a') | Some('A') => {
                let v = next
                    .next()
                    .ok_or_else(|| runtime_error("format: too few arguments for ~a"))?;
                out.push_str(&v.to_string());
            }
            Some('s') | Some('S') => {
                let v = next
                    .next()
                    .ok_or_else(|| runtime_error("format: too few arguments for ~s"))?;
                out.push_str(&v.write_string());
            }
            Some('d') | Some('D') => {
                let v = next
                    .next()
                    .ok_or_else(|| runtime_error("format: too few arguments for ~d"))?;
                out.push_str(&v.to_string());
            }
            Some('%') | Some('n') => out.push('\n'),
            Some('~') => out.push('~'),
            other => {
                return Err(runtime_error(format!(
                    "format: unknown directive ~{}",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

pub(super) fn install(interp: &mut Interp) {
    interp.define_native("apply", 2, None, |interp, mut args| {
        let f = args.remove(0);
        want_procedure(&f)?;
        let last = args.pop().expect("arity checked");
        let mut call_args = args;
        call_args.extend(want_list(&last)?);
        interp.apply(&f, call_args)
    });
    interp.define_native("procedure?", 1, Some(1), |_, args| {
        Ok(Value::Bool(args[0].is_procedure()))
    });
    interp.define_native("not", 1, Some(1), |_, args| {
        Ok(Value::Bool(!args[0].is_truthy()))
    });
    interp.define_native("eq?", 2, Some(2), |_, args| {
        Ok(Value::Bool(args[0].eqv(&args[1])))
    });
    interp.define_native("eqv?", 2, Some(2), |_, args| {
        Ok(Value::Bool(args[0].eqv(&args[1])))
    });
    interp.define_native("equal?", 2, Some(2), |_, args| {
        Ok(Value::Bool(args[0].equal(&args[1])))
    });
    interp.define_native("boolean?", 1, Some(1), |_, args| {
        Ok(Value::Bool(matches!(args[0], Value::Bool(_))))
    });
    interp.define_native("symbol?", 1, Some(1), |_, args| {
        Ok(Value::Bool(matches!(args[0], Value::Sym(_))))
    });
    interp.define_native("void", 0, None, |_, _| Ok(Value::Unspecified));
    interp.define_native("error", 1, None, |_, args| {
        let mut msg = String::new();
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                msg.push(' ');
            }
            msg.push_str(&a.to_string());
        }
        Err(EvalError::new(EvalErrorKind::User, msg))
    });
    interp.define_native("assert", 1, Some(1), |_, args| {
        if args[0].is_truthy() {
            Ok(Value::Unspecified)
        } else {
            Err(EvalError::new(EvalErrorKind::User, "assertion failed"))
        }
    });
    interp.define_native("display", 1, Some(1), |interp, args| {
        let s = args[0].to_string();
        interp.print(&s);
        Ok(Value::Unspecified)
    });
    interp.define_native("write", 1, Some(1), |interp, args| {
        let s = args[0].write_string();
        interp.print(&s);
        Ok(Value::Unspecified)
    });
    interp.define_native("newline", 0, Some(0), |interp, _| {
        interp.print("\n");
        Ok(Value::Unspecified)
    });
    interp.define_native("printf", 1, None, |interp, args| {
        let fmt = want_string(&args[0])?;
        let s = format_directives(&fmt, &args[1..])?;
        interp.print(&s);
        Ok(Value::Unspecified)
    });
    interp.define_native("format", 1, None, |_, args| {
        let fmt = want_string(&args[0])?;
        Ok(Value::string(&format_directives(&fmt, &args[1..])?))
    });
    // (warn "message") — records a compile-time warning when run inside the
    // expander's meta interpreter (used by the §6.3 libraries).
    interp.define_native("warn", 1, None, |interp, args| {
        let fmt = want_string(&args[0])?;
        let s = format_directives(&fmt, &args[1..])?;
        interp.warnings.push(s);
        Ok(Value::Unspecified)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prims::install_primitives;
    use pgmp_syntax::Symbol;

    fn with_interp<R>(f: impl FnOnce(&mut Interp) -> R) -> R {
        let mut i = Interp::new();
        install_primitives(&mut i);
        f(&mut i)
    }

    fn call(i: &mut Interp, name: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        let f = i.global(Symbol::intern(name)).cloned().unwrap();
        i.apply(&f, args)
    }

    #[test]
    fn apply_spreads_last_list() {
        with_interp(|i| {
            let plus = i.global(Symbol::intern("+")).cloned().unwrap();
            let lst = Value::list(vec![Value::Int(2), Value::Int(3)]);
            let v = call(i, "apply", vec![plus, Value::Int(1), lst]).unwrap();
            assert_eq!(v.to_string(), "6");
        });
    }

    #[test]
    fn equality_predicates() {
        with_interp(|i| {
            let a = Value::list(vec![Value::Int(1)]);
            let b = Value::list(vec![Value::Int(1)]);
            assert_eq!(call(i, "eq?", vec![a.clone(), b.clone()]).unwrap().to_string(), "#f");
            assert_eq!(call(i, "equal?", vec![a, b]).unwrap().to_string(), "#t");
            assert_eq!(
                call(i, "eqv?", vec![Value::Int(1), Value::Int(1)]).unwrap().to_string(),
                "#t"
            );
        });
    }

    #[test]
    fn error_raises_user_error() {
        with_interp(|i| {
            let e = call(i, "error", vec![Value::string("boom"), Value::Int(3)]).unwrap_err();
            assert_eq!(e.kind, EvalErrorKind::User);
            assert_eq!(e.message, "boom 3");
        });
    }

    #[test]
    fn display_and_printf_capture_output() {
        with_interp(|i| {
            call(i, "display", vec![Value::string("x")]).unwrap();
            call(i, "newline", vec![]).unwrap();
            call(
                i,
                "printf",
                vec![Value::string("n=~a s=~s~%"), Value::Int(5), Value::string("q")],
            )
            .unwrap();
            assert_eq!(i.take_output(), "x\nn=5 s=\"q\"\n");
        });
    }

    #[test]
    fn format_returns_string() {
        with_interp(|i| {
            let v = call(i, "format", vec![Value::string("~a+~a=~a"), Value::Int(1), Value::Int(2), Value::Int(3)]).unwrap();
            assert_eq!(v.to_string(), "1+2=3");
            assert!(call(i, "format", vec![Value::string("~a")]).is_err());
            assert!(call(i, "format", vec![Value::string("~z")]).is_err());
        });
    }

    #[test]
    fn warn_records_warning() {
        with_interp(|i| {
            call(i, "warn", vec![Value::string("consider a vector: ~a"), Value::Int(1)]).unwrap();
            assert_eq!(i.warnings, vec!["consider a vector: 1"]);
        });
    }

    #[test]
    fn assert_passes_and_fails() {
        with_interp(|i| {
            assert!(call(i, "assert", vec![Value::Bool(true)]).is_ok());
            assert!(call(i, "assert", vec![Value::Bool(false)]).is_err());
        });
    }
}
