//! Numeric primitives over a two-rung tower: exact `i64` and inexact `f64`.

use super::{runtime_error, want_int};
use crate::error::EvalError;
use crate::interp::Interp;
use crate::value::Value;
use pgmp_syntax::Symbol;

#[derive(Clone, Copy)]
enum Num {
    Int(i64),
    Float(f64),
}

fn want_num(v: &Value) -> Result<Num, EvalError> {
    match v {
        Value::Int(n) => Ok(Num::Int(*n)),
        Value::Float(x) => Ok(Num::Float(*x)),
        other => Err(EvalError::type_error("number", other)),
    }
}

impl Num {
    fn as_f64(self) -> f64 {
        match self {
            Num::Int(n) => n as f64,
            Num::Float(x) => x,
        }
    }

    fn to_value(self) -> Value {
        match self {
            Num::Int(n) => Value::Int(n),
            Num::Float(x) => Value::Float(x),
        }
    }
}

fn fold_nums(
    name: &'static str,
    args: &[Value],
    int_op: fn(i64, i64) -> Option<i64>,
    float_op: fn(f64, f64) -> f64,
    init: Num,
) -> Result<Value, EvalError> {
    let mut acc = init;
    for a in args {
        let n = want_num(a)?;
        acc = match (acc, n) {
            (Num::Int(a), Num::Int(b)) => Num::Int(
                int_op(a, b).ok_or_else(|| runtime_error(format!("{name}: integer overflow")))?,
            ),
            (a, b) => Num::Float(float_op(a.as_f64(), b.as_f64())),
        };
    }
    Ok(acc.to_value())
}

fn compare_chain(args: &[Value], ok: fn(std::cmp::Ordering) -> bool) -> Result<Value, EvalError> {
    for w in args.windows(2) {
        let a = want_num(&w[0])?;
        let b = want_num(&w[1])?;
        let ord = match (a, b) {
            (Num::Int(a), Num::Int(b)) => a.cmp(&b),
            (a, b) => a
                .as_f64()
                .partial_cmp(&b.as_f64())
                .ok_or_else(|| runtime_error("comparison with NaN"))?,
        };
        if !ok(ord) {
            return Ok(Value::Bool(false));
        }
    }
    Ok(Value::Bool(true))
}

pub(super) fn install(interp: &mut Interp) {
    interp.define_native("+", 0, None, |_, args| {
        fold_nums("+", &args, i64::checked_add, |a, b| a + b, Num::Int(0))
    });
    interp.define_native("*", 0, None, |_, args| {
        fold_nums("*", &args, i64::checked_mul, |a, b| a * b, Num::Int(1))
    });
    interp.define_native("-", 1, None, |_, args| {
        if args.len() == 1 {
            return match want_num(&args[0])? {
                Num::Int(n) => Ok(Value::Int(
                    n.checked_neg().ok_or_else(|| runtime_error("-: overflow"))?,
                )),
                Num::Float(x) => Ok(Value::Float(-x)),
            };
        }
        fold_nums(
            "-",
            &args[1..],
            i64::checked_sub,
            |a, b| a - b,
            want_num(&args[0])?,
        )
    });
    interp.define_native("/", 1, None, |_, args| {
        if args.len() == 1 {
            let x = want_num(&args[0])?.as_f64();
            if x == 0.0 {
                return Err(runtime_error("/: division by zero"));
            }
            return Ok(Value::Float(1.0 / x));
        }
        let mut acc = want_num(&args[0])?;
        for a in &args[1..] {
            let b = want_num(a)?;
            acc = match (acc, b) {
                (Num::Int(x), Num::Int(y)) => {
                    if y == 0 {
                        return Err(runtime_error("/: division by zero"));
                    }
                    if x % y == 0 {
                        Num::Int(x / y)
                    } else {
                        Num::Float(x as f64 / y as f64)
                    }
                }
                (x, y) => {
                    if y.as_f64() == 0.0 {
                        return Err(runtime_error("/: division by zero"));
                    }
                    Num::Float(x.as_f64() / y.as_f64())
                }
            };
        }
        Ok(acc.to_value())
    });
    interp.define_native("quotient", 2, Some(2), |_, args| {
        let (a, b) = (want_int(&args[0])?, want_int(&args[1])?);
        if b == 0 {
            return Err(runtime_error("quotient: division by zero"));
        }
        Ok(Value::Int(a / b))
    });
    interp.define_native("remainder", 2, Some(2), |_, args| {
        let (a, b) = (want_int(&args[0])?, want_int(&args[1])?);
        if b == 0 {
            return Err(runtime_error("remainder: division by zero"));
        }
        Ok(Value::Int(a % b))
    });
    interp.define_native("modulo", 2, Some(2), |_, args| {
        let (a, b) = (want_int(&args[0])?, want_int(&args[1])?);
        if b == 0 {
            return Err(runtime_error("modulo: division by zero"));
        }
        let r = a % b;
        Ok(Value::Int(if r != 0 && (r < 0) != (b < 0) { r + b } else { r }))
    });
    interp.define_native("=", 2, None, |_, args| {
        compare_chain(&args, |o| o == std::cmp::Ordering::Equal)
    });
    interp.define_native("<", 2, None, |_, args| {
        compare_chain(&args, |o| o == std::cmp::Ordering::Less)
    });
    interp.define_native(">", 2, None, |_, args| {
        compare_chain(&args, |o| o == std::cmp::Ordering::Greater)
    });
    interp.define_native("<=", 2, None, |_, args| {
        compare_chain(&args, |o| o != std::cmp::Ordering::Greater)
    });
    interp.define_native(">=", 2, None, |_, args| {
        compare_chain(&args, |o| o != std::cmp::Ordering::Less)
    });
    interp.define_native("abs", 1, Some(1), |_, args| match want_num(&args[0])? {
        Num::Int(n) => Ok(Value::Int(
            n.checked_abs().ok_or_else(|| runtime_error("abs: overflow"))?,
        )),
        Num::Float(x) => Ok(Value::Float(x.abs())),
    });
    interp.define_native("min", 1, None, |_, args| {
        let mut best = want_num(&args[0])?;
        for a in &args[1..] {
            let n = want_num(a)?;
            if n.as_f64() < best.as_f64() {
                best = n;
            }
        }
        Ok(best.to_value())
    });
    interp.define_native("max", 1, None, |_, args| {
        let mut best = want_num(&args[0])?;
        for a in &args[1..] {
            let n = want_num(a)?;
            if n.as_f64() > best.as_f64() {
                best = n;
            }
        }
        Ok(best.to_value())
    });
    interp.define_native("zero?", 1, Some(1), |_, args| {
        Ok(Value::Bool(want_num(&args[0])?.as_f64() == 0.0))
    });
    interp.define_native("positive?", 1, Some(1), |_, args| {
        Ok(Value::Bool(want_num(&args[0])?.as_f64() > 0.0))
    });
    interp.define_native("negative?", 1, Some(1), |_, args| {
        Ok(Value::Bool(want_num(&args[0])?.as_f64() < 0.0))
    });
    interp.define_native("even?", 1, Some(1), |_, args| {
        Ok(Value::Bool(want_int(&args[0])? % 2 == 0))
    });
    interp.define_native("odd?", 1, Some(1), |_, args| {
        Ok(Value::Bool(want_int(&args[0])? % 2 != 0))
    });
    interp.define_native("add1", 1, Some(1), |_, args| match want_num(&args[0])? {
        Num::Int(n) => Ok(Value::Int(
            n.checked_add(1).ok_or_else(|| runtime_error("add1: overflow"))?,
        )),
        Num::Float(x) => Ok(Value::Float(x + 1.0)),
    });
    interp.define_native("sub1", 1, Some(1), |_, args| match want_num(&args[0])? {
        Num::Int(n) => Ok(Value::Int(
            n.checked_sub(1).ok_or_else(|| runtime_error("sub1: overflow"))?,
        )),
        Num::Float(x) => Ok(Value::Float(x - 1.0)),
    });
    interp.define_native("sqr", 1, Some(1), |_, args| match want_num(&args[0])? {
        Num::Int(n) => Ok(Value::Int(
            n.checked_mul(n).ok_or_else(|| runtime_error("sqr: overflow"))?,
        )),
        Num::Float(x) => Ok(Value::Float(x * x)),
    });
    interp.define_native("sqrt", 1, Some(1), |_, args| {
        Ok(Value::Float(want_num(&args[0])?.as_f64().sqrt()))
    });
    interp.define_native("expt", 2, Some(2), |_, args| {
        match (want_num(&args[0])?, want_num(&args[1])?) {
            (Num::Int(b), Num::Int(e)) if e >= 0 => {
                let e = u32::try_from(e).map_err(|_| runtime_error("expt: exponent too large"))?;
                Ok(Value::Int(
                    b.checked_pow(e).ok_or_else(|| runtime_error("expt: overflow"))?,
                ))
            }
            (b, e) => Ok(Value::Float(b.as_f64().powf(e.as_f64()))),
        }
    });
    interp.define_native("number?", 1, Some(1), |_, args| {
        Ok(Value::Bool(matches!(args[0], Value::Int(_) | Value::Float(_))))
    });
    interp.define_native("integer?", 1, Some(1), |_, args| {
        Ok(Value::Bool(match &args[0] {
            Value::Int(_) => true,
            Value::Float(x) => x.fract() == 0.0,
            _ => false,
        }))
    });
    interp.define_native("exact->inexact", 1, Some(1), |_, args| {
        Ok(Value::Float(want_num(&args[0])?.as_f64()))
    });
    interp.define_native("inexact->exact", 1, Some(1), |_, args| {
        match want_num(&args[0])? {
            Num::Int(n) => Ok(Value::Int(n)),
            Num::Float(x) if x.fract() == 0.0 && x.abs() < i64::MAX as f64 => {
                Ok(Value::Int(x as i64))
            }
            Num::Float(x) => Err(runtime_error(format!("inexact->exact: {x} is not integral"))),
        }
    });
    for (name, f) in [
        ("floor", f64::floor as fn(f64) -> f64),
        ("ceiling", f64::ceil),
        ("round", f64::round),
        ("truncate", f64::trunc),
    ] {
        interp.define_native(name, 1, Some(1), move |_, args| match want_num(&args[0])? {
            Num::Int(n) => Ok(Value::Int(n)),
            Num::Float(x) => Ok(Value::Float(f(x))),
        });
    }
    interp.define_native("number->string", 1, Some(1), |_, args| {
        let n = want_num(&args[0])?;
        Ok(Value::string(&n.to_value().to_string()))
    });
    interp.define_native("string->number", 1, Some(1), |_, args| {
        let s = super::want_string(&args[0])?;
        if let Ok(n) = s.parse::<i64>() {
            Ok(Value::Int(n))
        } else if let Ok(x) = s.parse::<f64>() {
            Ok(Value::Float(x))
        } else {
            Ok(Value::Bool(false))
        }
    });
    // Deterministic pseudo-random generator (xorshift) for workload
    // generation in examples; seeded explicitly so runs are reproducible.
    interp.define_global(Symbol::intern("%random-state"), Value::Int(0x9E3779B9));
    interp.define_native("random-seed!", 1, Some(1), |interp, args| {
        let n = want_int(&args[0])?;
        interp.define_global(Symbol::intern("%random-state"), Value::Int(n | 1));
        Ok(Value::Unspecified)
    });
    interp.define_native("random", 1, Some(1), |interp, args| {
        let bound = want_int(&args[0])?;
        if bound <= 0 {
            return Err(runtime_error("random: bound must be positive"));
        }
        let state_sym = Symbol::intern("%random-state");
        let mut x = match interp.global(state_sym) {
            Some(Value::Int(n)) => *n as u64,
            _ => 0x9E3779B9,
        };
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        interp.define_global(state_sym, Value::Int(x as i64));
        Ok(Value::Int((x % bound as u64) as i64))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prims::install_primitives;

    fn run(name: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        let mut i = Interp::new();
        install_primitives(&mut i);
        let f = i.global(Symbol::intern(name)).cloned().unwrap();
        i.apply(&f, args)
    }

    #[test]
    fn addition_mixed_tower() {
        assert_eq!(run("+", vec![Value::Int(1), Value::Int(2)]).unwrap().to_string(), "3");
        assert_eq!(
            run("+", vec![Value::Int(1), Value::Float(0.5)]).unwrap().to_string(),
            "1.5"
        );
        assert_eq!(run("+", vec![]).unwrap().to_string(), "0");
    }

    #[test]
    fn subtraction_and_negation() {
        assert_eq!(run("-", vec![Value::Int(5)]).unwrap().to_string(), "-5");
        assert_eq!(
            run("-", vec![Value::Int(5), Value::Int(2), Value::Int(1)]).unwrap().to_string(),
            "2"
        );
    }

    #[test]
    fn division_exactness() {
        assert_eq!(run("/", vec![Value::Int(6), Value::Int(2)]).unwrap().to_string(), "3");
        assert_eq!(run("/", vec![Value::Int(1), Value::Int(2)]).unwrap().to_string(), "0.5");
        assert!(run("/", vec![Value::Int(1), Value::Int(0)]).is_err());
    }

    #[test]
    fn comparison_chains() {
        assert_eq!(
            run("<", vec![Value::Int(1), Value::Int(2), Value::Int(3)]).unwrap().to_string(),
            "#t"
        );
        assert_eq!(
            run("<", vec![Value::Int(1), Value::Int(3), Value::Int(2)]).unwrap().to_string(),
            "#f"
        );
        assert_eq!(
            run(">=", vec![Value::Int(3), Value::Int(3), Value::Int(1)]).unwrap().to_string(),
            "#t"
        );
    }

    #[test]
    fn modulo_follows_sign_of_divisor() {
        assert_eq!(run("modulo", vec![Value::Int(-7), Value::Int(3)]).unwrap().to_string(), "2");
        assert_eq!(run("modulo", vec![Value::Int(7), Value::Int(-3)]).unwrap().to_string(), "-2");
        assert_eq!(
            run("remainder", vec![Value::Int(-7), Value::Int(3)]).unwrap().to_string(),
            "-1"
        );
    }

    #[test]
    fn overflow_is_an_error_not_a_wrap() {
        assert!(run("+", vec![Value::Int(i64::MAX), Value::Int(1)]).is_err());
        assert!(run("sqr", vec![Value::Int(i64::MAX)]).is_err());
    }

    #[test]
    fn sqr_and_expt() {
        assert_eq!(run("sqr", vec![Value::Int(9)]).unwrap().to_string(), "81");
        assert_eq!(run("expt", vec![Value::Int(2), Value::Int(10)]).unwrap().to_string(), "1024");
    }

    #[test]
    fn string_number_conversions() {
        assert_eq!(run("number->string", vec![Value::Int(42)]).unwrap().to_string(), "42");
        assert_eq!(run("string->number", vec![Value::string("42")]).unwrap().to_string(), "42");
        assert_eq!(
            run("string->number", vec![Value::string("nope")]).unwrap().to_string(),
            "#f"
        );
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(run("+", vec![Value::string("x")]).is_err());
        assert!(run("even?", vec![Value::Float(1.5)]).is_err());
    }

    #[test]
    fn random_is_deterministic_given_seed() {
        let mut i = Interp::new();
        install_primitives(&mut i);
        let seed = i.global(Symbol::intern("random-seed!")).cloned().unwrap();
        let random = i.global(Symbol::intern("random")).cloned().unwrap();
        i.apply(&seed, vec![Value::Int(42)]).unwrap();
        let a: Vec<String> = (0..5)
            .map(|_| i.apply(&random, vec![Value::Int(100)]).unwrap().to_string())
            .collect();
        i.apply(&seed, vec![Value::Int(42)]).unwrap();
        let b: Vec<String> = (0..5)
            .map(|_| i.apply(&random, vec![Value::Int(100)]).unwrap().to_string())
            .collect();
        assert_eq!(a, b);
    }
}
