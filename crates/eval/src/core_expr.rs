//! The core expression language produced by the expander.
//!
//! Variables are resolved at expansion time to lexical addresses
//! `(depth, index)`, so hygiene questions never reach the evaluator. Every
//! node carries an optional [`SourceObject`] — its profile point — which is
//! all the profiler needs (§3.1: "each node in the AST of a program can be
//! associated with a unique profile point").

use pgmp_profiler::Counters;
use pgmp_syntax::{Datum, SourceObject, Symbol, Syntax};
use std::cell::Cell;
use std::rc::Rc;

/// A core expression: node kind plus profile point.
#[derive(Clone, Debug)]
pub struct Core {
    /// The node.
    pub kind: CoreKind,
    /// Source object (profile point), if any.
    pub src: Option<SourceObject>,
    /// Cached dense counter slot for `src`, packed as
    /// `(map_id << 32) | slot` against a specific [`Counters`] registry
    /// (0 = unresolved — dense map ids start at 1). Interior-mutable so the
    /// instrumented interpreter resolves each node at most once and then
    /// bumps by vector index; revalidated against the live registry's map
    /// id, so a stale cache from a previously installed registry can never
    /// misdirect a count.
    pp_cache: Cell<u64>,
}

/// Node identity ignores the slot cache: two nodes are the same expression
/// if they have the same kind and source, whatever counters they last ran
/// under.
impl PartialEq for Core {
    fn eq(&self, other: &Core) -> bool {
        self.kind == other.kind && self.src == other.src
    }
}

impl Core {
    /// Creates a node.
    pub fn new(kind: CoreKind, src: Option<SourceObject>) -> Core {
        Core {
            kind,
            src,
            pp_cache: Cell::new(0),
        }
    }

    /// The cached dense slot for this node, if it was resolved against the
    /// registry identified by `map_id`.
    #[inline]
    pub fn cached_slot(&self, map_id: u32) -> Option<u32> {
        let packed = self.pp_cache.get();
        if (packed >> 32) as u32 == map_id {
            Some(packed as u32)
        } else {
            None
        }
    }

    /// Caches `slot` as this node's dense slot under registry `map_id`.
    #[inline]
    pub fn cache_slot(&self, map_id: u32, slot: u32) {
        self.pp_cache.set(((map_id as u64) << 32) | slot as u64);
    }

    /// Convenience constructor wrapping in `Rc`.
    pub fn rc(kind: CoreKind, src: Option<SourceObject>) -> Rc<Core> {
        Rc::new(Core::new(kind, src))
    }

    /// Walks the tree, calling `f` on every node (preorder).
    pub fn walk(&self, f: &mut impl FnMut(&Core)) {
        f(self);
        match &self.kind {
            CoreKind::Const(_)
            | CoreKind::SyntaxConst(_)
            | CoreKind::LocalRef { .. }
            | CoreKind::GlobalRef(_) => {}
            CoreKind::SetLocal { value, .. } | CoreKind::SetGlobal(_, value) => value.walk(f),
            CoreKind::If(c, t, e) => {
                c.walk(f);
                t.walk(f);
                e.walk(f);
            }
            CoreKind::Lambda(def) => def.body.walk(f),
            CoreKind::Call { func, args } => {
                func.walk(f);
                args.iter().for_each(|a| a.walk(f));
            }
            CoreKind::Seq(es) => es.iter().for_each(|e| e.walk(f)),
            CoreKind::Let { inits, body } | CoreKind::LetRec { inits, body } => {
                inits.iter().for_each(|e| e.walk(f));
                body.walk(f);
            }
            CoreKind::DefineGlobal(_, value) => value.walk(f),
        }
    }

    /// Counts nodes in the tree; handy for compile-size assertions.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }
}

/// Eagerly resolves the dense counter slot of every node in `root` that
/// carries a source object, caching it on the node. After this, an
/// instrumented run against `counters` never takes the resolve path — the
/// point is "resolved at instrumentation time", and every bump is a vector
/// index. No-op for hash-keyed registries (map id 0).
pub fn resolve_profile_slots(root: &Core, counters: &Counters) {
    let map_id = counters.map_id();
    if map_id == 0 {
        return;
    }
    root.walk(&mut |node| {
        if let Some(src) = node.src {
            if node.cached_slot(map_id).is_none() {
                node.cache_slot(map_id, counters.resolve(src));
            }
        }
    });
}

/// Core expression node kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreKind {
    /// Self-evaluating constant / quoted datum.
    Const(Datum),
    /// A constant syntax object (the residue of `#'template` fragments that
    /// contain no pattern variables).
    SyntaxConst(Rc<Syntax>),
    /// Lexical variable reference by frame depth and slot index.
    LocalRef {
        /// How many frames up.
        depth: u16,
        /// Slot within that frame.
        index: u16,
    },
    /// Global (top-level) variable reference.
    GlobalRef(Symbol),
    /// `set!` of a lexical variable.
    SetLocal {
        /// How many frames up.
        depth: u16,
        /// Slot within that frame.
        index: u16,
        /// New value.
        value: Rc<Core>,
    },
    /// `set!` of a global variable.
    SetGlobal(Symbol, Rc<Core>),
    /// Two-armed conditional.
    If(Rc<Core>, Rc<Core>, Rc<Core>),
    /// Procedure abstraction.
    Lambda(Rc<LambdaDef>),
    /// Procedure application.
    Call {
        /// Operator.
        func: Rc<Core>,
        /// Operands, left to right.
        args: Vec<Rc<Core>>,
    },
    /// Sequencing; value of the last expression.
    Seq(Vec<Rc<Core>>),
    /// `let`: one new frame, initializers evaluated in the *enclosing*
    /// environment.
    Let {
        /// Slot initializers.
        inits: Vec<Rc<Core>>,
        /// Body, evaluated with the new frame pushed.
        body: Rc<Core>,
    },
    /// `letrec*`: one new frame whose slots start unspecified;
    /// initializers are evaluated *inside* the new frame and assigned in
    /// order. Used for `letrec`, `letrec*`, and internal definitions.
    LetRec {
        /// Slot initializers, evaluated left to right in the new frame.
        inits: Vec<Rc<Core>>,
        /// Body.
        body: Rc<Core>,
    },
    /// Top-level `define`.
    DefineGlobal(Symbol, Rc<Core>),
}

/// A compiled `lambda`.
#[derive(Clone, Debug, PartialEq)]
pub struct LambdaDef {
    /// Number of required parameters.
    pub params: u16,
    /// Whether extra arguments are collected into a rest list.
    pub variadic: bool,
    /// Body expression; parameters occupy slots `0..params` (+ rest slot).
    pub body: Rc<Core>,
    /// Name for diagnostics, when known (e.g. from `define`).
    pub name: Option<Symbol>,
    /// Source object of the `lambda` form.
    pub src: Option<SourceObject>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn konst(n: i64) -> Rc<Core> {
        Core::rc(CoreKind::Const(Datum::Int(n)), None)
    }

    #[test]
    fn walk_visits_every_node() {
        let e = Core::new(
            CoreKind::If(konst(1), konst(2), konst(3)),
            Some(SourceObject::new("t.scm", 0, 1)),
        );
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 4);
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn walk_descends_into_lambdas_and_lets() {
        let lam = Core::new(
            CoreKind::Lambda(Rc::new(LambdaDef {
                params: 1,
                variadic: false,
                body: konst(7),
                name: None,
                src: None,
            })),
            None,
        );
        assert_eq!(lam.size(), 2);
        let letrec = Core::new(
            CoreKind::LetRec {
                inits: vec![konst(1), konst(2)],
                body: konst(3),
            },
            None,
        );
        assert_eq!(letrec.size(), 4);
    }
}
