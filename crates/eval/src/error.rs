//! Evaluation errors.

use pgmp_syntax::SourceObject;
use std::fmt;

/// An error raised during evaluation.
///
/// Carries the source object of the offending expression when known, so
/// errors in macro-generated code still point at a source location — the
/// property §4.1 notes as a benefit of deriving generated profile points
/// from base source objects.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalError {
    /// What went wrong.
    pub kind: EvalErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Where, if known.
    pub src: Option<SourceObject>,
}

/// Classification of evaluation errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalErrorKind {
    /// Reference to an undefined global variable.
    Unbound,
    /// Wrong number of arguments.
    Arity,
    /// Wrong type of argument.
    Type,
    /// Raised by the `error` primitive.
    User,
    /// Evaluation exceeded the configured fuel (step budget).
    Fuel,
    /// Anything else (bad index, division by zero, …).
    Runtime,
}

impl EvalError {
    /// Creates an error of `kind` with `message` and no location.
    pub fn new(kind: EvalErrorKind, message: impl Into<String>) -> EvalError {
        EvalError {
            kind,
            message: message.into(),
            src: None,
        }
    }

    /// Attaches a source location if one is not already present.
    pub fn with_src(mut self, src: Option<SourceObject>) -> EvalError {
        if self.src.is_none() {
            self.src = src;
        }
        self
    }

    /// Convenience constructor for type errors.
    pub fn type_error(expected: &str, got: &crate::value::Value) -> EvalError {
        EvalError::new(
            EvalErrorKind::Type,
            format!("expected {expected}, got {}: {got}", got.type_name()),
        )
    }

    /// Convenience constructor for arity errors.
    pub fn arity(name: &str, expected: &str, got: usize) -> EvalError {
        EvalError::new(
            EvalErrorKind::Arity,
            format!("{name}: expected {expected} arguments, got {got}"),
        )
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.src {
            Some(src) => write!(f, "{} (at {src})", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = EvalError::new(EvalErrorKind::Unbound, "unbound variable x")
            .with_src(Some(SourceObject::new("f.scm", 3, 4)));
        assert_eq!(e.to_string(), "unbound variable x (at f.scm:3-4)");
    }

    #[test]
    fn with_src_keeps_first_location() {
        let first = SourceObject::new("a.scm", 0, 1);
        let second = SourceObject::new("b.scm", 2, 3);
        let e = EvalError::new(EvalErrorKind::Runtime, "boom")
            .with_src(Some(first))
            .with_src(Some(second));
        assert_eq!(e.src, Some(first));
    }
}
