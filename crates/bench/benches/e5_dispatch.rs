//! E5 bench — §6.2 receiver class prediction: dynamic dispatch vs. the
//! profile-built polymorphic inline cache, on the shapes workload.
//!
//! Paper claim (after Grove et al. / Hölzle–Ungar): inlining the hottest
//! receivers' methods at the call site beats hashing through the method
//! table.

use criterion::{criterion_group, criterion_main, Criterion};
use pgmp_bench::workloads::{optimized_engine, shapes_library, train};
use pgmp_case_studies::{engine_with, Lib};

fn bench_dispatch(c: &mut Criterion) {
    let setup = format!("{}\n(total-area 1)", shapes_library(100));
    let driver = "(total-area 20)";
    let mut group = c.benchmark_group("e5_dispatch");
    group.sample_size(10);

    let mut dynamic = engine_with(&[Lib::ObjectSystem]).expect("libs");
    dynamic.run_str(&setup, "e5.scm").expect("setup");
    group.bench_function("dynamic-dispatch", |b| {
        b.iter(|| dynamic.run_str(driver, "drive.scm").expect("run"))
    });

    let weights = train(&[Lib::ObjectSystem], &setup, "e5.scm");
    let mut pic = optimized_engine(&[Lib::ObjectSystem], weights);
    pic.run_str(&setup, "e5.scm").expect("setup");
    group.bench_function("polymorphic-inline-cache", |b| {
        b.iter(|| pic.run_str(driver, "drive.scm").expect("run"))
    });

    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
