//! E14 bench — cold vs. warm process start: how fast does a *fresh*
//! process reach an optimized compile of an unchanged program?
//!
//! Cold start expands and compiles everything from source — for the
//! profile-guided `case` workload that means the §6.1 meta-program
//! rewrites every clause and sorts them by profile weight, in interpreted
//! Scheme, once per form. Warm start restores a persisted session
//! ([`pgmp::IncrementalEngine::save_state`] / `load_state`) — per-form
//! fingerprints, read sets, and expanded artifacts — then compiles,
//! reusing every form without re-expanding anything. Both sides include
//! full engine construction (case-study libraries included), so the
//! numbers are end-to-end process-start costs.
//!
//! Claim under test (acceptance criterion for the persistent store): at
//! 100 top-level forms, warm start is ≥ 3× faster than cold start.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgmp::{IncrementalConfig, IncrementalEngine};
use pgmp_case_studies::{engine_with, Lib};
use pgmp_profiler::ProfileInformation;
use pgmp_reader::read_str;
use pgmp_syntax::SourceObject;
use std::hint::black_box;

/// `n` token-classifier definitions, each an 8-way profile-guided `case`.
fn program(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!(
            "(define (classify{i} x)\n  (case x\n    [(0 1 2) 'c0-{i}]\n    [(3 4 5) 'c1-{i}]\n    [(6 7 8) 'c2-{i}]\n    [(9 10 11) 'c3-{i}]\n    [(12 13 14) 'c4-{i}]\n    [(15 16 17) 'c5-{i}]\n    [(18 19 20) 'c6-{i}]\n    [(21 22 23) 'c7-{i}]\n    [else 'other{i}]))\n"
        ));
    }
    src
}

/// Clause weights skewed inversely to source order, so every `case`
/// expansion performs a real reorder.
fn weights(src: &str, file: &str) -> ProfileInformation {
    let mut pts: Vec<(SourceObject, f64)> = Vec::new();
    for form in read_str(src, file).expect("bench program reads").iter() {
        let Some(define) = form.as_list() else { continue };
        let Some(case) = define.get(2).and_then(|b| b.as_list()) else {
            continue;
        };
        for (j, clause) in case.iter().skip(2).enumerate() {
            let Some(cl) = clause.as_list() else { continue };
            if let Some(body) = cl.get(1).and_then(|b| b.source) {
                pts.push((body, 0.9 / (j as f64 + 1.0)));
            }
        }
    }
    ProfileInformation::from_weights(pts, 1)
}

fn case_engine() -> pgmp::Engine {
    engine_with(&[Lib::Case]).expect("case-study libraries")
}

fn bench_warmstart(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("pgmp-e14-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");

    let mut group = c.benchmark_group("e14_warmstart");
    group.sample_size(20);
    for n in [10usize, 100, 1000] {
        let src = program(n);
        let file = format!("e14_{n}.scm");
        let w = weights(&src, &file);

        // Persist one session for this program size; every warm iteration
        // restores from it, simulating a process restart.
        let session = dir.join(format!("e14_{n}.session"));
        {
            let mut incr = IncrementalEngine::with_engine(
                case_engine(),
                &src,
                &file,
                IncrementalConfig::default(),
            )
            .expect("incremental engine");
            incr.compile(&w).expect("prime");
            let stats = incr.save_state(&session).expect("save session");
            assert_eq!(stats.skipped, 0, "bench program must persist fully");
        }

        group.bench_with_input(BenchmarkId::new("cold", n), &n, |b, _| {
            b.iter(|| {
                let mut incr = IncrementalEngine::with_engine(
                    case_engine(),
                    &src,
                    &file,
                    IncrementalConfig::default(),
                )
                .expect("incremental engine");
                let unit = incr.compile(&w).expect("cold compile");
                black_box(unit.stats.reexpanded)
            });
        });

        group.bench_with_input(BenchmarkId::new("warm", n), &n, |b, _| {
            b.iter(|| {
                let mut incr = IncrementalEngine::with_engine(
                    case_engine(),
                    &src,
                    &file,
                    IncrementalConfig::default(),
                )
                .expect("incremental engine");
                let ws = incr.load_state(&session).expect("warm start");
                assert_eq!(ws.skipped, 0);
                let stored = incr.engine_mut().profile();
                let unit = incr.compile(&stored).expect("warm compile");
                assert_eq!(unit.stats.reexpanded, 0, "warm start must reuse everything");
                black_box(unit.stats.reused)
            });
        });
    }
    group.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_warmstart);
criterion_main!(benches);
